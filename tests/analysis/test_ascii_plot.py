"""ASCII line plots."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import line_plot
from repro.errors import ConfigError


class TestLinePlot:
    def test_basic_structure(self):
        x = np.linspace(0, 1, 50)
        text = line_plot(
            {"rising": (x, x), "falling": (x, 1 - x)},
            width=40,
            height=10,
            x_label="t",
            y_label="v",
        )
        lines = text.splitlines()
        assert len([ln for ln in lines if "|" in ln]) == 10
        assert "* rising" in text and "+ falling" in text
        assert "x: t" in text and "y: v" in text

    def test_markers_land_monotonically(self):
        x = np.linspace(0, 1, 30)
        text = line_plot({"up": (x, x)}, width=30, height=10)
        rows = [ln.split("|", 1)[1] for ln in text.splitlines() if "|" in ln]
        # Rows are printed top (high y) to bottom; for y = x the marker
        # column must shrink as we move down the grid.
        cols = [row.index("*") for row in rows if "*" in row]
        assert cols == sorted(cols, reverse=True)

    def test_axis_labels_show_ranges(self):
        x = np.array([2.0, 4.0])
        y = np.array([10.0, 30.0])
        text = line_plot({"s": (x, y)}, width=20, height=5)
        assert "30" in text and "10" in text  # y extremes
        assert "2" in text and "4" in text    # x extremes

    def test_constant_series_handled(self):
        x = np.linspace(0, 1, 5)
        text = line_plot({"flat": (x, np.ones(5))})
        assert "*" in text

    def test_non_finite_points_dropped(self):
        x = np.array([0.0, 0.5, 1.0])
        y = np.array([0.0, np.nan, 1.0])
        text = line_plot({"gappy": (x, y)}, width=20, height=5)
        assert "*" in text

    def test_validation(self):
        with pytest.raises(ConfigError):
            line_plot({})
        with pytest.raises(ConfigError):
            line_plot({"s": ([1], [1, 2])})
        with pytest.raises(ConfigError):
            line_plot({"s": ([1], [1])}, width=2)
        with pytest.raises(ConfigError):
            line_plot({"s": ([np.nan], [np.nan])})
        too_many = {f"s{i}": ([0, 1], [0, 1]) for i in range(9)}
        with pytest.raises(ConfigError):
            line_plot(too_many)

    def test_figure1_integration(self, tmp_path, monkeypatch):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.figure1 import run_figure1

        tiny = ExperimentConfig(
            scale="smoke",
            unconstrained_size=800,
            constrained_size=800,
            num_runs=2,
            circuits=("c432",),
            cache_dir=tmp_path / "cache",
        )
        table = run_figure1(tiny, circuit="c432", num_maxima=80)
        # The rendered notes now include the ASCII curves.
        assert "fitted Weibull" in table.notes
        assert "|" in table.notes

"""Probabilistic signal/transition analysis."""

import itertools

import numpy as np
import pytest

from repro.analysis.signal_prob import (
    expected_power,
    expected_switched_capacitance,
    pair_probabilities,
    signal_probabilities,
    transition_probabilities,
)
from repro.errors import ConfigError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.sim.power import PowerAnalyzer
from repro.vectors.generators import transition_prob_vector_pairs


def tree_circuit():
    """A fanout-free tree — independence assumption is exact here."""
    c = Circuit("tree")
    for name in ("a", "b", "c", "d"):
        c.add_input(name)
    c.add_gate("ab", GateType.AND, ["a", "b"])
    c.add_gate("cd", GateType.OR, ["c", "d"])
    c.add_gate("y", GateType.XOR, ["ab", "cd"])
    c.set_outputs(["y"])
    c.validate()
    return c


class TestSignalProbabilities:
    def test_hand_computed_tree(self):
        c = tree_circuit()
        probs = signal_probabilities(
            c, {"a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5}
        )
        assert probs["ab"] == pytest.approx(0.25)
        assert probs["cd"] == pytest.approx(0.75)
        # XOR: p(1) = .25*.25 + .75*.75 -> p_xor = p(1-q)+q(1-p)
        assert probs["y"] == pytest.approx(0.25 * 0.25 + 0.75 * 0.75)

    def test_gate_laws(self):
        cases = [
            (GateType.NAND, [0.5, 0.5], 0.75),
            (GateType.NOR, [0.5, 0.5], 0.25),
            (GateType.XNOR, [0.5, 0.5], 0.5),
            (GateType.NOT, [0.3], 0.7),
            (GateType.BUF, [0.3], 0.3),
            (GateType.MUX, [0.5, 0.2, 0.8], 0.5),
        ]
        for gtype, in_probs, expected in cases:
            c = Circuit("g")
            for i in range(len(in_probs)):
                c.add_input(f"i{i}")
            c.add_gate("y", gtype, [f"i{i}" for i in range(len(in_probs))])
            c.set_outputs(["y"])
            probs = signal_probabilities(
                c, {f"i{i}": p for i, p in enumerate(in_probs)}
            )
            assert probs["y"] == pytest.approx(expected), gtype

    def test_exact_on_tree_vs_enumeration(self):
        c = tree_circuit()
        spec = {"a": 0.3, "b": 0.8, "c": 0.1, "d": 0.6}
        probs = signal_probabilities(c, spec)
        total = 0.0
        for bits in itertools.product((0, 1), repeat=4):
            w = 1.0
            for name, bit in zip(("a", "b", "c", "d"), bits):
                w *= spec[name] if bit else 1 - spec[name]
            total += w * c.evaluate(dict(zip(("a", "b", "c", "d"), bits)))["y"]
        assert probs["y"] == pytest.approx(total)

    def test_missing_input_rejected(self):
        c = tree_circuit()
        with pytest.raises(ConfigError, match="missing"):
            signal_probabilities(c, {"a": 0.5})

    def test_out_of_range_rejected(self):
        c = tree_circuit()
        with pytest.raises(ConfigError):
            signal_probabilities(
                c, {"a": 1.5, "b": 0.5, "c": 0.5, "d": 0.5}
            )


class TestPairProbabilities:
    def test_joints_sum_to_one(self):
        c = tree_circuit()
        joints = pair_probabilities(
            c,
            {k: 0.4 for k in c.inputs},
            {k: 0.6 for k in c.inputs},
        )
        for net, joint in joints.items():
            assert sum(joint) == pytest.approx(1.0), net
            assert all(p >= -1e-12 for p in joint)

    def test_input_joint_formula(self):
        c = tree_circuit()
        joints = pair_probabilities(
            c,
            {k: 0.25 for k in c.inputs},
            {k: 0.4 for k in c.inputs},
        )
        p00, p01, p10, p11 = joints["a"]
        assert p00 == pytest.approx(0.75 * 0.6)
        assert p01 == pytest.approx(0.75 * 0.4)
        assert p10 == pytest.approx(0.25 * 0.4)
        assert p11 == pytest.approx(0.25 * 0.6)

    def test_transition_prob_exact_on_tree_vs_simulation(self):
        c = tree_circuit()
        t = 0.7
        toggles = transition_probabilities(
            c, {k: 0.5 for k in c.inputs}, {k: t for k in c.inputs}
        )
        v1, v2 = transition_prob_vector_pairs(60000, 4, t, rng=3)
        pa = PowerAnalyzer(c, mode="zero")
        sim = __import__("repro.sim.bitsim", fromlist=["BitParallelSimulator"])
        bsim = sim.BitParallelSimulator(c)
        from repro.sim.bitsim import pack_vectors

        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        counts = bsim.toggle_counts_zero_delay(w1, w2, lanes)
        for net, count in zip(bsim.net_order, counts):
            assert count / lanes == pytest.approx(toggles[net], abs=0.02), net

    def test_xor_toggle_is_parity_of_input_toggles(self):
        c = Circuit("x")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.XOR, ["a", "b"])
        c.set_outputs(["y"])
        ta, tb = 0.3, 0.6
        toggles = transition_probabilities(
            c, {"a": 0.5, "b": 0.5}, {"a": ta, "b": tb}
        )
        expected = ta * (1 - tb) + tb * (1 - ta)
        assert toggles["y"] == pytest.approx(expected)

    def test_constants_never_toggle(self):
        c = Circuit("k")
        c.add_input("a")
        c.add_gate("one", GateType.CONST1, [])
        c.add_gate("y", GateType.AND, ["a", "one"])
        c.set_outputs(["y"])
        toggles = transition_probabilities(c, {"a": 0.5}, {"a": 0.9})
        assert toggles["one"] == 0.0
        assert toggles["y"] == pytest.approx(0.9)


class TestExpectedPower:
    def test_matches_simulated_mean_on_tree(self):
        c = tree_circuit()
        pa = PowerAnalyzer(c, mode="zero")
        t = 0.5
        analytic = expected_power(
            c,
            {k: 0.5 for k in c.inputs},
            {k: t for k in c.inputs},
            frequency_hz=pa.frequency_hz,
        )
        v1, v2 = transition_prob_vector_pairs(40000, 4, t, rng=5)
        simulated = pa.powers_for_pairs(v1, v2).mean()
        assert analytic == pytest.approx(simulated, rel=0.03)

    def test_capacitance_increases_with_activity(self):
        c = tree_circuit()
        low = expected_switched_capacitance(
            c, {k: 0.5 for k in c.inputs}, {k: 0.1 for k in c.inputs}
        )
        high = expected_switched_capacitance(
            c, {k: 0.5 for k in c.inputs}, {k: 0.9 for k in c.inputs}
        )
        assert high > low

    def test_zero_activity_zero_power(self):
        c = tree_circuit()
        p = expected_power(
            c, {k: 0.5 for k in c.inputs}, {k: 0.0 for k in c.inputs}
        )
        assert p == 0.0

"""Workload power reports."""

import numpy as np
import pytest

from repro.analysis.report import power_report
from repro.errors import SimulationError
from repro.sim.power import PowerAnalyzer
from repro.vectors.generators import random_vector_pairs


@pytest.fixture
def workload(c17, rng):
    v1, v2 = random_vector_pairs(2000, c17.num_inputs, rng)
    return v1, v2


class TestPowerReport:
    def test_total_matches_analyzer_mean(self, c17, workload):
        v1, v2 = workload
        report = power_report(c17, v1, v2)
        pa = PowerAnalyzer(c17, mode="zero")
        assert report.total_power_w == pytest.approx(
            pa.powers_for_pairs(v1, v2).mean(), rel=1e-9
        )

    def test_records_cover_all_nets(self, c17, workload):
        report = power_report(c17, *workload)
        assert len(report.records) == len(c17.nets)
        assert {r.net for r in report.records} == set(c17.nets)

    def test_by_gate_type_partitions_total(self, c17, workload):
        report = power_report(c17, *workload)
        assert sum(report.by_gate_type.values()) == pytest.approx(
            report.total_power_w
        )
        assert "input" in report.by_gate_type
        assert "nand" in report.by_gate_type

    def test_top_sorted_descending(self, c17, workload):
        report = power_report(c17, *workload)
        top = report.top(5)
        powers = [r.power_w for r in top]
        assert powers == sorted(powers, reverse=True)

    def test_toggle_rates_bounded(self, c17, workload):
        report = power_report(c17, *workload)
        for r in report.records:
            assert 0.0 <= r.toggle_rate <= 1.0  # zero-delay: <=1 per cycle

    def test_activity_histogram(self, c17, workload):
        report = power_report(c17, *workload)
        counts, edges = report.activity_histogram(bins=5)
        assert counts.sum() == len(report.records)
        assert len(edges) == 6

    def test_render_contains_sections(self, c17, workload):
        report = power_report(c17, *workload)
        text = report.render(top_count=3)
        assert "power report" in text
        assert "by gate type" in text
        assert "top 3 nets" in text

    def test_shape_validation(self, c17):
        with pytest.raises(SimulationError):
            power_report(
                c17,
                np.zeros((5, 5), dtype=np.uint8),
                np.zeros((6, 5), dtype=np.uint8),
            )

"""Activity measures against hand-computed values."""

import numpy as np
import pytest

from repro.errors import PopulationError
from repro.vectors.activity import (
    hamming_distance,
    mean_activity,
    pair_activity,
    per_line_transition_prob,
    toggle_correlation,
)

V1 = np.array([[0, 0, 1, 1], [1, 1, 1, 1]], dtype=np.uint8)
V2 = np.array([[0, 1, 1, 0], [1, 1, 0, 0]], dtype=np.uint8)
# toggles:     [0, 1, 0, 1]  [0, 0, 1, 1]


class TestHandValues:
    def test_pair_activity(self):
        assert pair_activity(V1, V2) == pytest.approx([0.5, 0.5])

    def test_mean_activity(self):
        assert mean_activity(V1, V2) == pytest.approx(0.5)

    def test_per_line_transition_prob(self):
        assert per_line_transition_prob(V1, V2) == pytest.approx(
            [0.0, 0.5, 0.5, 1.0]
        )

    def test_hamming_distance(self):
        assert list(hamming_distance(V1, V2)) == [2, 2]


class TestCorrelation:
    def test_perfectly_coupled_lines(self):
        rng = np.random.default_rng(0)
        v1 = rng.integers(0, 2, size=(500, 3), dtype=np.uint8)
        togg = rng.integers(0, 2, size=(500, 1), dtype=np.uint8)
        v2 = v1 ^ togg  # identical toggle column on all three lines
        corr = toggle_correlation(v1, v2)
        assert corr == pytest.approx([1.0, 1.0], abs=1e-9)

    def test_constant_line_gives_nan(self):
        v1 = np.zeros((100, 2), dtype=np.uint8)
        v2 = np.zeros((100, 2), dtype=np.uint8)
        corr = toggle_correlation(v1, v2)
        assert np.isnan(corr).all()

    def test_single_line_empty_result(self):
        v1 = np.zeros((10, 1), dtype=np.uint8)
        assert toggle_correlation(v1, v1).size == 0


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(PopulationError):
            pair_activity(V1, V2[:1])

    def test_non_2d_rejected(self):
        with pytest.raises(PopulationError):
            mean_activity(np.zeros(4), np.zeros(4))

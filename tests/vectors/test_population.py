"""Finite and streaming power populations."""

import numpy as np
import pytest

from repro.errors import PopulationError
from repro.vectors.population import FinitePopulation, StreamingPopulation


def simple_pool(values=(1.0, 2.0, 3.0, 4.0, 10.0)):
    return FinitePopulation(np.array(values), name="pool")


class TestFinitePopulation:
    def test_basic_properties(self):
        pop = simple_pool()
        assert pop.size == 5
        assert pop.actual_max_power == 10.0
        assert pop.mean_power == pytest.approx(4.0)

    def test_qualified_portion(self):
        pop = simple_pool([1.0, 9.6, 9.7, 10.0])
        # within 5% of 10.0 -> >= 9.5: three units of four.
        assert pop.qualified_portion(0.05) == pytest.approx(0.75)
        with pytest.raises(PopulationError):
            pop.qualified_portion(0.0)

    def test_sampling_with_replacement(self):
        pop = simple_pool()
        draws = pop.sample_powers(1000, rng=1)
        assert draws.shape == (1000,)
        assert set(np.unique(draws)) <= {1.0, 2.0, 3.0, 4.0, 10.0}
        # With replacement, 1000 draws from 5 units must repeat.
        assert len(np.unique(draws)) <= 5

    def test_sampling_reproducible(self):
        pop = simple_pool()
        a = pop.sample_powers(50, rng=42)
        b = pop.sample_powers(50, rng=42)
        assert np.array_equal(a, b)

    def test_invalid_powers_rejected(self):
        with pytest.raises(PopulationError):
            FinitePopulation(np.array([]))
        with pytest.raises(PopulationError):
            FinitePopulation(np.array([1.0, np.inf]))
        with pytest.raises(PopulationError):
            FinitePopulation(np.array([[1.0], [2.0]]))

    def test_vector_consistency_checked(self):
        with pytest.raises(PopulationError):
            FinitePopulation(
                np.array([1.0, 2.0]),
                v1=np.zeros((3, 4), dtype=np.uint8),
                v2=np.zeros((3, 4), dtype=np.uint8),
            )
        with pytest.raises(PopulationError):
            FinitePopulation(
                np.array([1.0]), v1=np.zeros((1, 2), dtype=np.uint8)
            )

    def test_sample_units_requires_vectors(self):
        pop = simple_pool()
        with pytest.raises(PopulationError, match="no vectors"):
            pop.sample_units(3)

    def test_sample_units_returns_matching_rows(self):
        v1 = np.arange(8, dtype=np.uint8).reshape(4, 2) % 2
        v2 = (v1 ^ 1).astype(np.uint8)
        powers = np.array([1.0, 2.0, 3.0, 4.0])
        pop = FinitePopulation(powers, v1, v2)
        p, s1, s2 = pop.sample_units(10, rng=3)
        for k in range(10):
            idx = int(p[k]) - 1
            assert np.array_equal(s1[k], v1[idx])
            assert np.array_equal(s2[k], v2[idx])

    def test_save_load_roundtrip(self, tmp_path):
        v1 = np.random.default_rng(0).integers(
            0, 2, size=(6, 3), dtype=np.uint8
        )
        v2 = (v1 ^ 1).astype(np.uint8)
        pop = FinitePopulation(
            np.arange(1.0, 7.0),
            v1,
            v2,
            name="roundtrip",
            metadata={"circuit": "c17", "seed": 5},
        )
        path = tmp_path / "pool.npz"
        pop.save(path)
        loaded = FinitePopulation.load(path)
        assert loaded.name == "roundtrip"
        assert loaded.metadata["circuit"] == "c17"
        assert np.array_equal(loaded.powers, pop.powers)
        assert np.array_equal(loaded.v1, v1)

    def test_save_load_without_vectors(self, tmp_path):
        pop = simple_pool()
        path = tmp_path / "bare.npz"
        pop.save(path)
        loaded = FinitePopulation.load(path)
        assert loaded.v1 is None
        assert loaded.size == 5

    def test_build_pipeline(self):
        def generate(n, rng):
            v1 = rng.integers(0, 2, size=(n, 4), dtype=np.uint8)
            return v1, (v1 ^ 1).astype(np.uint8)

        def power(v1, v2):
            return (v1 != v2).sum(axis=1).astype(float)

        pop = FinitePopulation.build(
            generate, power, num_pairs=100, seed=9, name="built"
        )
        assert pop.size == 100
        assert (pop.powers == 4.0).all()
        assert pop.metadata["seed"] == 9


class TestSaveLoadSuffix:
    def test_save_without_suffix_roundtrips(self, tmp_path):
        """Regression: np.savez silently appends .npz, breaking load."""
        pop = simple_pool()
        requested = tmp_path / "pool"  # no .npz suffix
        written = pop.save(requested)
        assert written == tmp_path / "pool.npz"
        assert written.exists()
        loaded = FinitePopulation.load(requested)  # suffix-less path ok
        assert np.array_equal(loaded.powers, pop.powers)

    def test_save_returns_written_path(self, tmp_path):
        pop = simple_pool()
        path = tmp_path / "pool.npz"
        assert pop.save(path) == path

    def test_load_explicit_suffixed_path(self, tmp_path):
        pop = simple_pool()
        written = pop.save(tmp_path / "pool")
        loaded = FinitePopulation.load(written)
        assert loaded.size == pop.size


class TestBuildChunked:
    @staticmethod
    def generate(n, rng):
        v1 = rng.integers(0, 2, size=(n, 4), dtype=np.uint8)
        v2 = rng.integers(0, 2, size=(n, 4), dtype=np.uint8)
        return v1, v2

    @staticmethod
    def power(v1, v2):
        return (v1 != v2).sum(axis=1).astype(np.float64)

    def test_serial_vs_parallel_bit_identical(self):
        serial = FinitePopulation.build(
            self.generate, self.power, num_pairs=1000, seed=7,
            workers=1, chunk_size=128,
        )
        parallel = FinitePopulation.build(
            self.generate, self.power, num_pairs=1000, seed=7,
            workers=4, chunk_size=128,
        )
        assert np.array_equal(serial.powers, parallel.powers)
        assert np.array_equal(serial.v1, parallel.v1)
        assert np.array_equal(serial.v2, parallel.v2)

    def test_int_power_function_cast_to_float64(self):
        """Regression: build skipped the float64 cast sample_powers does."""
        pop = FinitePopulation.build(
            self.generate,
            lambda v1, v2: (v1 != v2).sum(axis=1),  # int64 output
            num_pairs=50,
            seed=1,
        )
        assert pop.powers.dtype == np.float64

    def test_float32_power_function_cast_to_float64(self):
        pop = FinitePopulation.build(
            self.generate,
            lambda v1, v2: (v1 != v2).sum(axis=1).astype(np.float32),
            num_pairs=50,
            seed=1,
        )
        assert pop.powers.dtype == np.float64

    def test_wrong_shape_power_output_rejected(self):
        with pytest.raises(PopulationError, match="shape"):
            FinitePopulation.build(
                self.generate,
                lambda v1, v2: np.zeros(3),  # wrong length
                num_pairs=50,
                seed=1,
            )

    def test_chunk_metadata_recorded(self):
        pop = FinitePopulation.build(
            self.generate, self.power, num_pairs=10, seed=2, chunk_size=4
        )
        assert pop.metadata["chunk_size"] == 4
        assert pop.metadata["seed"] == 2
        assert pop.size == 10

    def test_invalid_parameters(self):
        with pytest.raises(PopulationError):
            FinitePopulation.build(
                self.generate, self.power, num_pairs=0, seed=1
            )
        with pytest.raises(PopulationError):
            FinitePopulation.build(
                self.generate, self.power, num_pairs=10, seed=1, workers=0
            )
        with pytest.raises(PopulationError):
            FinitePopulation.build(
                self.generate, self.power, num_pairs=10, seed=1,
                chunk_size=0,
            )


class TestSampleBlockMaxima:
    def test_matches_sample_powers_stream(self):
        """The fast path consumes the RNG exactly like sample_powers."""
        pop = FinitePopulation(
            np.random.default_rng(0).random(500), name="pool"
        )
        maxima = pop.sample_block_maxima(6, 4, rng=31)
        draws = pop.sample_powers(24, rng=31)
        assert np.array_equal(maxima, draws.reshape(4, 6).max(axis=1))

    def test_generic_path_used_for_sample_powers_overrides(self):
        class Doubling(FinitePopulation):
            def sample_powers(self, n, rng=None):
                return 2.0 * super().sample_powers(n, rng)

        base = FinitePopulation(
            np.random.default_rng(1).random(200), name="pool"
        )
        doubled = Doubling(base.powers, name="doubled")
        assert np.array_equal(
            doubled.sample_block_maxima(5, 3, rng=8),
            2.0 * base.sample_block_maxima(5, 3, rng=8),
        )

    def test_validation(self):
        pop = simple_pool()
        with pytest.raises(PopulationError):
            pop.sample_block_maxima(0, 3)
        with pytest.raises(PopulationError):
            pop.sample_block_maxima(3, 0)


class TestStreamingPopulation:
    def make(self):
        def generate(n, rng):
            v1 = rng.integers(0, 2, size=(n, 3), dtype=np.uint8)
            v2 = rng.integers(0, 2, size=(n, 3), dtype=np.uint8)
            return v1, v2

        def power(v1, v2):
            return (v1 != v2).sum(axis=1).astype(float)

        return StreamingPopulation(generate, power, name="stream")

    def test_infinite_size(self):
        pop = self.make()
        assert pop.size is None
        assert pop.actual_max_power is None

    def test_sampling_counts_units(self):
        pop = self.make()
        a = pop.sample_powers(40, rng=1)
        b = pop.sample_powers(60, rng=2)
        assert a.shape == (40,) and b.shape == (60,)
        assert pop.units_simulated == 100

    def test_values_in_expected_range(self):
        pop = self.make()
        draws = pop.sample_powers(500, rng=3)
        assert draws.min() >= 0 and draws.max() <= 3

    def test_invalid_count(self):
        with pytest.raises(PopulationError):
            self.make().sample_powers(0)

    def test_failed_simulation_does_not_count_units(self):
        """Regression: the unit budget was incremented before the power
        function ran, overcounting when simulation raised."""

        def generate(n, rng):
            return np.zeros((n, 2), np.uint8), np.zeros((n, 2), np.uint8)

        def power(v1, v2):
            raise RuntimeError("simulator crashed")

        pop = StreamingPopulation(generate, power, name="crashy")
        with pytest.raises(RuntimeError):
            pop.sample_powers(25)
        assert pop.units_simulated == 0

    def test_wrong_shape_power_output_rejected(self):
        def generate(n, rng):
            return np.zeros((n, 2), np.uint8), np.zeros((n, 2), np.uint8)

        pop = StreamingPopulation(
            generate, lambda v1, v2: np.zeros(1), name="short"
        )
        with pytest.raises(PopulationError, match="shape"):
            pop.sample_powers(5)
        assert pop.units_simulated == 0

    def test_block_maxima_single_generator_call(self):
        """The batched path simulates all n*m pairs in one call."""
        calls = []

        def generate(n, rng):
            calls.append(n)
            v1 = rng.integers(0, 2, size=(n, 3), dtype=np.uint8)
            v2 = rng.integers(0, 2, size=(n, 3), dtype=np.uint8)
            return v1, v2

        def power(v1, v2):
            return (v1 != v2).sum(axis=1).astype(float)

        pop = StreamingPopulation(generate, power, name="stream")
        maxima = pop.sample_block_maxima(10, 4, rng=5)
        assert maxima.shape == (4,)
        assert calls == [40]
        assert pop.units_simulated == 40

    def test_block_maxima_matches_sample_powers_stream(self):
        a = self.make()
        b = self.make()
        maxima = a.sample_block_maxima(7, 3, rng=13)
        draws = b.sample_powers(21, rng=13)
        assert np.array_equal(maxima, draws.reshape(3, 7).max(axis=1))

"""Finite and streaming power populations."""

import numpy as np
import pytest

from repro.errors import PopulationError
from repro.vectors.population import FinitePopulation, StreamingPopulation


def simple_pool(values=(1.0, 2.0, 3.0, 4.0, 10.0)):
    return FinitePopulation(np.array(values), name="pool")


class TestFinitePopulation:
    def test_basic_properties(self):
        pop = simple_pool()
        assert pop.size == 5
        assert pop.actual_max_power == 10.0
        assert pop.mean_power == pytest.approx(4.0)

    def test_qualified_portion(self):
        pop = simple_pool([1.0, 9.6, 9.7, 10.0])
        # within 5% of 10.0 -> >= 9.5: three units of four.
        assert pop.qualified_portion(0.05) == pytest.approx(0.75)
        with pytest.raises(PopulationError):
            pop.qualified_portion(0.0)

    def test_sampling_with_replacement(self):
        pop = simple_pool()
        draws = pop.sample_powers(1000, rng=1)
        assert draws.shape == (1000,)
        assert set(np.unique(draws)) <= {1.0, 2.0, 3.0, 4.0, 10.0}
        # With replacement, 1000 draws from 5 units must repeat.
        assert len(np.unique(draws)) <= 5

    def test_sampling_reproducible(self):
        pop = simple_pool()
        a = pop.sample_powers(50, rng=42)
        b = pop.sample_powers(50, rng=42)
        assert np.array_equal(a, b)

    def test_invalid_powers_rejected(self):
        with pytest.raises(PopulationError):
            FinitePopulation(np.array([]))
        with pytest.raises(PopulationError):
            FinitePopulation(np.array([1.0, np.inf]))
        with pytest.raises(PopulationError):
            FinitePopulation(np.array([[1.0], [2.0]]))

    def test_vector_consistency_checked(self):
        with pytest.raises(PopulationError):
            FinitePopulation(
                np.array([1.0, 2.0]),
                v1=np.zeros((3, 4), dtype=np.uint8),
                v2=np.zeros((3, 4), dtype=np.uint8),
            )
        with pytest.raises(PopulationError):
            FinitePopulation(
                np.array([1.0]), v1=np.zeros((1, 2), dtype=np.uint8)
            )

    def test_sample_units_requires_vectors(self):
        pop = simple_pool()
        with pytest.raises(PopulationError, match="no vectors"):
            pop.sample_units(3)

    def test_sample_units_returns_matching_rows(self):
        v1 = np.arange(8, dtype=np.uint8).reshape(4, 2) % 2
        v2 = (v1 ^ 1).astype(np.uint8)
        powers = np.array([1.0, 2.0, 3.0, 4.0])
        pop = FinitePopulation(powers, v1, v2)
        p, s1, s2 = pop.sample_units(10, rng=3)
        for k in range(10):
            idx = int(p[k]) - 1
            assert np.array_equal(s1[k], v1[idx])
            assert np.array_equal(s2[k], v2[idx])

    def test_save_load_roundtrip(self, tmp_path):
        v1 = np.random.default_rng(0).integers(
            0, 2, size=(6, 3), dtype=np.uint8
        )
        v2 = (v1 ^ 1).astype(np.uint8)
        pop = FinitePopulation(
            np.arange(1.0, 7.0),
            v1,
            v2,
            name="roundtrip",
            metadata={"circuit": "c17", "seed": 5},
        )
        path = tmp_path / "pool.npz"
        pop.save(path)
        loaded = FinitePopulation.load(path)
        assert loaded.name == "roundtrip"
        assert loaded.metadata["circuit"] == "c17"
        assert np.array_equal(loaded.powers, pop.powers)
        assert np.array_equal(loaded.v1, v1)

    def test_save_load_without_vectors(self, tmp_path):
        pop = simple_pool()
        path = tmp_path / "bare.npz"
        pop.save(path)
        loaded = FinitePopulation.load(path)
        assert loaded.v1 is None
        assert loaded.size == 5

    def test_build_pipeline(self):
        def generate(n, rng):
            v1 = rng.integers(0, 2, size=(n, 4), dtype=np.uint8)
            return v1, (v1 ^ 1).astype(np.uint8)

        def power(v1, v2):
            return (v1 != v2).sum(axis=1).astype(float)

        pop = FinitePopulation.build(
            generate, power, num_pairs=100, seed=9, name="built"
        )
        assert pop.size == 100
        assert (pop.powers == 4.0).all()
        assert pop.metadata["seed"] == 9


class TestStreamingPopulation:
    def make(self):
        def generate(n, rng):
            v1 = rng.integers(0, 2, size=(n, 3), dtype=np.uint8)
            v2 = rng.integers(0, 2, size=(n, 3), dtype=np.uint8)
            return v1, v2

        def power(v1, v2):
            return (v1 != v2).sum(axis=1).astype(float)

        return StreamingPopulation(generate, power, name="stream")

    def test_infinite_size(self):
        pop = self.make()
        assert pop.size is None
        assert pop.actual_max_power is None

    def test_sampling_counts_units(self):
        pop = self.make()
        a = pop.sample_powers(40, rng=1)
        b = pop.sample_powers(60, rng=2)
        assert a.shape == (40,) and b.shape == (60,)
        assert pop.units_simulated == 100

    def test_values_in_expected_range(self):
        pop = self.make()
        draws = pop.sample_powers(500, rng=3)
        assert draws.min() >= 0 and draws.max() <= 3

    def test_invalid_count(self):
        with pytest.raises(PopulationError):
            self.make().sample_powers(0)

"""Vector-pair generators: constraints, determinism, validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PopulationError
from repro.vectors.activity import (
    mean_activity,
    pair_activity,
    per_line_transition_prob,
    toggle_correlation,
)
from repro.vectors.generators import (
    as_rng,
    high_activity_vector_pairs,
    markov_transition_vector_pairs,
    random_vector_pairs,
    transition_prob_vector_pairs,
)


class TestRandomPairs:
    def test_shapes_and_dtype(self):
        v1, v2 = random_vector_pairs(100, 17, rng=0)
        assert v1.shape == v2.shape == (100, 17)
        assert v1.dtype == np.uint8
        assert set(np.unique(v1)) <= {0, 1}

    def test_deterministic_by_seed(self):
        a = random_vector_pairs(50, 8, rng=7)
        b = random_vector_pairs(50, 8, rng=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_activity_near_half(self):
        v1, v2 = random_vector_pairs(20000, 16, rng=1)
        assert mean_activity(v1, v2) == pytest.approx(0.5, abs=0.02)

    @pytest.mark.parametrize("num_pairs,num_inputs", [(0, 5), (5, 0)])
    def test_bad_dims(self, num_pairs, num_inputs):
        with pytest.raises(PopulationError):
            random_vector_pairs(num_pairs, num_inputs)


class TestHighActivityPairs:
    def test_every_pair_above_threshold(self):
        v1, v2 = high_activity_vector_pairs(5000, 20, 0.3, rng=3)
        assert (pair_activity(v1, v2) > 0.3).all()
        assert v1.shape == (5000, 20)

    def test_extreme_threshold_fails_cleanly(self):
        with pytest.raises(PopulationError, match="could not collect"):
            high_activity_vector_pairs(
                10, 64, min_activity=0.99, rng=1, max_batches=3
            )

    def test_invalid_threshold(self):
        with pytest.raises(PopulationError):
            high_activity_vector_pairs(10, 8, min_activity=1.0)

    def test_exact_count_returned(self):
        v1, _ = high_activity_vector_pairs(777, 9, 0.3, rng=5)
        assert v1.shape[0] == 777


class TestTransitionProbPairs:
    @pytest.mark.parametrize("t", [0.0, 0.3, 0.7, 1.0])
    def test_scalar_probability_honoured(self, t):
        v1, v2 = transition_prob_vector_pairs(20000, 10, t, rng=2)
        observed = per_line_transition_prob(v1, v2)
        assert observed == pytest.approx(np.full(10, t), abs=0.02)

    def test_per_line_probabilities(self):
        probs = [0.1, 0.5, 0.9]
        v1, v2 = transition_prob_vector_pairs(30000, 3, probs, rng=4)
        observed = per_line_transition_prob(v1, v2)
        assert observed == pytest.approx(probs, abs=0.02)

    def test_v1_marginal_uniform(self):
        v1, _ = transition_prob_vector_pairs(30000, 4, 0.7, rng=6)
        assert v1.mean() == pytest.approx(0.5, abs=0.02)

    def test_out_of_range_rejected(self):
        with pytest.raises(PopulationError):
            transition_prob_vector_pairs(10, 3, 1.5)
        with pytest.raises(PopulationError):
            transition_prob_vector_pairs(10, 3, [-0.1, 0.5, 0.5])

    @given(t=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_property_activity_equals_probability(self, t):
        v1, v2 = transition_prob_vector_pairs(4000, 8, t, rng=11)
        assert mean_activity(v1, v2) == pytest.approx(t, abs=0.05)


class TestMarkovPairs:
    def test_zero_correlation_reduces_to_independent(self):
        v1, v2 = markov_transition_vector_pairs(
            30000, 6, base_prob=0.4, correlation=0.0, rng=8
        )
        observed = per_line_transition_prob(v1, v2)
        assert observed == pytest.approx(np.full(6, 0.4), abs=0.02)
        corr = toggle_correlation(v1, v2)
        assert np.nanmax(np.abs(corr)) < 0.05

    def test_high_correlation_couples_neighbours(self):
        v1, v2 = markov_transition_vector_pairs(
            20000, 6, base_prob=0.5, correlation=0.9, rng=9
        )
        corr = toggle_correlation(v1, v2)
        assert np.nanmin(corr) > 0.5

    def test_stationary_marginal_preserved(self):
        v1, v2 = markov_transition_vector_pairs(
            40000, 10, base_prob=0.3, correlation=0.8, rng=10
        )
        observed = per_line_transition_prob(v1, v2)
        assert observed == pytest.approx(np.full(10, 0.3), abs=0.03)

    def test_parameter_validation(self):
        with pytest.raises(PopulationError):
            markov_transition_vector_pairs(10, 4, base_prob=2.0, correlation=0.5)
        with pytest.raises(PopulationError):
            markov_transition_vector_pairs(10, 4, base_prob=0.5, correlation=-1)


class TestRngHelper:
    def test_as_rng_accepts_generator(self):
        gen = np.random.default_rng(3)
        assert as_rng(gen) is gen

    def test_as_rng_accepts_seed_and_none(self):
        assert isinstance(as_rng(5), np.random.Generator)
        assert isinstance(as_rng(None), np.random.Generator)

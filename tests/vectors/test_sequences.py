"""Temporally correlated vector sequences."""

import numpy as np
import pytest

from repro.errors import PopulationError
from repro.vectors.sequences import (
    markov_vector_sequence,
    sequence_activity,
    sequence_to_pairs,
)


class TestMarkovSequence:
    def test_shape_and_dtype(self):
        stream = markov_vector_sequence(100, 8, 0.4, rng=1)
        assert stream.shape == (100, 8)
        assert stream.dtype == np.uint8
        assert set(np.unique(stream)) <= {0, 1}

    def test_transition_probability_honoured(self):
        stream = markov_vector_sequence(40000, 4, 0.3, rng=2)
        toggles = (stream[:-1] != stream[1:]).mean(axis=0)
        assert toggles == pytest.approx(np.full(4, 0.3), abs=0.02)

    def test_per_line_probabilities(self):
        probs = [0.1, 0.9]
        stream = markov_vector_sequence(40000, 2, probs, rng=3)
        toggles = (stream[:-1] != stream[1:]).mean(axis=0)
        assert toggles == pytest.approx(probs, abs=0.02)

    def test_stationary_marginal(self):
        stream = markov_vector_sequence(30000, 6, 0.5, rng=4)
        assert stream.mean() == pytest.approx(0.5, abs=0.02)

    def test_zero_probability_freezes_lines(self):
        stream = markov_vector_sequence(50, 3, 0.0, rng=5)
        assert (stream == stream[0]).all()

    def test_validation(self):
        with pytest.raises(PopulationError):
            markov_vector_sequence(1, 3, 0.5)
        with pytest.raises(PopulationError):
            markov_vector_sequence(10, 0, 0.5)
        with pytest.raises(PopulationError):
            markov_vector_sequence(10, 3, 1.5)
        with pytest.raises(PopulationError):
            markov_vector_sequence(10, 3, 0.5, initial_p1=-0.1)


class TestSequenceToPairs:
    def test_pairing(self):
        stream = np.array([[0, 0], [1, 0], [1, 1]], dtype=np.uint8)
        v1, v2 = sequence_to_pairs(stream)
        assert np.array_equal(v1, stream[:-1])
        assert np.array_equal(v2, stream[1:])

    def test_activity(self):
        stream = np.array([[0, 0], [1, 1], [1, 1]], dtype=np.uint8)
        assert sequence_activity(stream) == pytest.approx(0.5)

    def test_too_short_rejected(self):
        with pytest.raises(PopulationError):
            sequence_to_pairs(np.zeros((1, 4), dtype=np.uint8))

    def test_power_trace_integration(self, c17):
        from repro.sim.power import PowerAnalyzer

        stream = markov_vector_sequence(200, 5, 0.5, rng=6)
        v1, v2 = sequence_to_pairs(stream)
        pa = PowerAnalyzer(c17, mode="zero")
        trace = pa.powers_for_pairs(v1, v2)
        assert trace.shape == (199,)
        assert (trace >= 0).all()

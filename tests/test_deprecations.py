"""Deprecation shims for names that moved to repro.schemas."""

from __future__ import annotations

import pytest

import repro.schemas as schemas


class TestMovedSchemaConstants:
    def test_result_schema_shim_warns_and_matches(self):
        import repro.estimation.result as result_mod

        with pytest.warns(DeprecationWarning, match="repro.schemas"):
            value = result_mod.RESULT_SCHEMA
        assert value == schemas.RESULT_SCHEMA

    def test_checkpoint_schema_shim_warns_and_matches(self):
        import repro.estimation.checkpoint as checkpoint_mod

        with pytest.warns(DeprecationWarning, match="repro.schemas"):
            value = checkpoint_mod.CHECKPOINT_SCHEMA
        assert value == schemas.CHECKPOINT_SCHEMA

    def test_unknown_attributes_still_raise(self):
        import repro.estimation.checkpoint as checkpoint_mod
        import repro.estimation.result as result_mod

        with pytest.raises(AttributeError):
            result_mod.NO_SUCH_NAME
        with pytest.raises(AttributeError):
            checkpoint_mod.NO_SUCH_NAME

    def test_curated_all_omits_moved_names(self):
        import repro.estimation.checkpoint as checkpoint_mod
        import repro.estimation.result as result_mod

        assert "RESULT_SCHEMA" not in result_mod.__all__
        assert "CHECKPOINT_SCHEMA" not in checkpoint_mod.__all__


class TestPotRoundsAliases:
    """``min_rounds``/``max_rounds`` became ``min/max_hyper_samples``."""

    @pytest.fixture
    def pool(self):
        import numpy as np

        from repro.vectors.population import FinitePopulation

        rng = np.random.default_rng(0)
        return FinitePopulation(rng.weibull(2.0, size=500) + 0.1)

    def test_constructor_aliases_warn_and_map(self, pool):
        from repro.estimation.pot import PeaksOverThresholdEstimator

        with pytest.warns(DeprecationWarning, match="min_hyper_samples"):
            est = PeaksOverThresholdEstimator(pool, min_rounds=3)
        assert est.min_hyper_samples == 3
        with pytest.warns(DeprecationWarning, match="max_hyper_samples"):
            est = PeaksOverThresholdEstimator(pool, max_rounds=50)
        assert est.max_hyper_samples == 50

    def test_property_aliases_warn_and_match(self, pool):
        from repro.estimation.pot import PeaksOverThresholdEstimator

        est = PeaksOverThresholdEstimator(pool)
        with pytest.warns(DeprecationWarning, match="min_hyper_samples"):
            assert est.min_rounds == est.min_hyper_samples
        with pytest.warns(DeprecationWarning, match="max_hyper_samples"):
            assert est.max_rounds == est.max_hyper_samples

    def test_alias_and_new_name_together_rejected(self, pool):
        from repro.errors import ConfigError
        from repro.estimation.pot import PeaksOverThresholdEstimator

        with pytest.raises(ConfigError):
            with pytest.warns(DeprecationWarning):
                PeaksOverThresholdEstimator(
                    pool, min_rounds=3, min_hyper_samples=4
                )

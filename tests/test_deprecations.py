"""Deprecation shims for names that moved to repro.schemas."""

from __future__ import annotations

import pytest

import repro.schemas as schemas


class TestMovedSchemaConstants:
    def test_result_schema_shim_warns_and_matches(self):
        import repro.estimation.result as result_mod

        with pytest.warns(DeprecationWarning, match="repro.schemas"):
            value = result_mod.RESULT_SCHEMA
        assert value == schemas.RESULT_SCHEMA

    def test_checkpoint_schema_shim_warns_and_matches(self):
        import repro.estimation.checkpoint as checkpoint_mod

        with pytest.warns(DeprecationWarning, match="repro.schemas"):
            value = checkpoint_mod.CHECKPOINT_SCHEMA
        assert value == schemas.CHECKPOINT_SCHEMA

    def test_unknown_attributes_still_raise(self):
        import repro.estimation.checkpoint as checkpoint_mod
        import repro.estimation.result as result_mod

        with pytest.raises(AttributeError):
            result_mod.NO_SUCH_NAME
        with pytest.raises(AttributeError):
            checkpoint_mod.NO_SUCH_NAME

    def test_curated_all_omits_moved_names(self):
        import repro.estimation.checkpoint as checkpoint_mod
        import repro.estimation.result as result_mod

        assert "RESULT_SCHEMA" not in result_mod.__all__
        assert "CHECKPOINT_SCHEMA" not in checkpoint_mod.__all__

"""The unified public API (repro.api): config object + facades."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    EstimatorConfig,
    build_population,
    estimate,
    hyper_sample_many,
    run_many,
)
from repro.errors import ConfigError
from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.estimation.parallel import run_many as raw_run_many


class TestEstimatorConfig:
    def test_defaults_match_estimator(self, small_population):
        est = MaxPowerEstimator.from_config(small_population, EstimatorConfig())
        ref = MaxPowerEstimator(small_population)
        assert (est.n, est.m, est.error, est.confidence) == (
            ref.n, ref.m, ref.error, ref.confidence
        )
        assert est.finite_correction == ref.finite_correction

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 1},
            {"m": 2},
            {"error": 0.0},
            {"error": 1.0},
            {"confidence": 1.5},
            {"min_hyper_samples": 1},
            {"max_hyper_samples": 1},
            {"upper_bound": -1.0},
            {"workers": 0},
            {"retries": -1},
            {"task_timeout": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            EstimatorConfig(**kwargs)

    def test_with_overrides(self):
        config = EstimatorConfig().with_overrides(error=0.01, workers=3)
        assert config.error == 0.01 and config.workers == 3
        assert EstimatorConfig().error == 0.05  # original untouched

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigError):
            EstimatorConfig().with_overrides(error=2.0)


class TestBuildPopulation:
    def test_matches_manual_build(self, c17, tmp_path):
        from repro.netlist.bench import dump_bench
        from repro.sim.power import PowerAnalyzer
        from repro.vectors.generators import high_activity_vector_pairs
        from repro.vectors.population import FinitePopulation

        path = tmp_path / "c17.bench"
        dump_bench(c17, path)
        pop = build_population(str(path), population_size=300, seed=5)
        analyzer = PowerAnalyzer(c17, frequency_hz=50e6, mode="zero")
        ref = FinitePopulation.build(
            lambda n, g: high_activity_vector_pairs(n, c17.num_inputs, rng=g),
            analyzer.powers_for_pairs,
            num_pairs=300,
            seed=5,
            name="ref",
        )
        assert np.array_equal(pop.powers, ref.powers)

    def test_streaming_when_size_zero(self, c17, tmp_path):
        from repro.netlist.bench import dump_bench
        from repro.vectors.population import StreamingPopulation

        path = tmp_path / "c17.bench"
        dump_bench(c17, path)
        pop = build_population(str(path), population_size=0)
        assert isinstance(pop, StreamingPopulation)
        assert pop.size is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": -1},
            {"sim_mode": "bogus"},
            {"frequency_mhz": 0.0},
            {"activity": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            build_population("c432", **kwargs)


class TestEstimateFacade:
    def test_population_seed_contract(self, small_population):
        config = EstimatorConfig(max_hyper_samples=10)
        via_facade = estimate(small_population, config, seed=7)
        direct = MaxPowerEstimator.from_config(small_population, config).run(
            rng=np.random.default_rng(7)
        )
        assert via_facade.to_dict() == direct.to_dict()

    def test_circuit_parity_with_manual_pipeline(self, c17, tmp_path):
        from repro.netlist.bench import dump_bench

        path = tmp_path / "c17.bench"
        dump_bench(c17, path)
        config = EstimatorConfig(max_hyper_samples=10)
        via_facade = estimate(
            str(path), config, seed=3, population_size=300
        )
        pop = build_population(str(path), population_size=300, seed=3)
        direct = MaxPowerEstimator.from_config(pop, config).run(
            rng=np.random.default_rng(4)  # facade runs with seed + 1
        )
        assert via_facade.to_dict() == direct.to_dict()

    def test_progress_fires_per_hyper_sample_and_changes_nothing(
        self, small_population
    ):
        config = EstimatorConfig(max_hyper_samples=10)
        seen = []

        def progress(hs, interval, cumulative_units):
            seen.append((hs.index, interval, cumulative_units))

        watched = estimate(small_population, config, seed=7, progress=progress)
        plain = estimate(small_population, config, seed=7)
        assert watched.to_dict() == plain.to_dict()
        assert len(seen) == watched.k
        assert seen[0][1] is None  # before min_hyper_samples
        assert seen[-1][2] == watched.units_used

    def test_progress_exception_aborts(self, small_population):
        class Abort(RuntimeError):
            pass

        def progress(hs, interval, cumulative_units):
            raise Abort()

        with pytest.raises(Abort):
            estimate(small_population, EstimatorConfig(), seed=7, progress=progress)


class TestConfigDrivers:
    def test_run_many_matches_raw_driver(self, small_population):
        config = EstimatorConfig(max_hyper_samples=6)
        via_api = run_many(small_population, 3, config, base_seed=11)
        estimator = MaxPowerEstimator.from_config(small_population, config)
        raw = raw_run_many(estimator, 3, base_seed=11)
        assert [r.to_dict() for r in via_api] == [r.to_dict() for r in raw]

    def test_on_result_observes_everything_without_changing_results(
        self, small_population
    ):
        config = EstimatorConfig(max_hyper_samples=6)
        seen = []
        watched = run_many(
            small_population, 4, config, base_seed=11,
            on_result=lambda i, r: seen.append((i, r.estimate)),
        )
        plain = run_many(small_population, 4, config, base_seed=11)
        assert [r.to_dict() for r in watched] == [r.to_dict() for r in plain]
        assert sorted(i for i, _ in seen) == [0, 1, 2, 3]
        assert {i: e for i, e in seen} == {
            i: r.estimate for i, r in enumerate(plain)
        }

    def test_hyper_sample_many_with_hook(self, small_population):
        config = EstimatorConfig()
        seen = []
        samples = hyper_sample_many(
            small_population, 5, config, base_seed=2,
            on_result=lambda i, hs: seen.append(i),
        )
        assert len(samples) == 5
        assert sorted(seen) == [0, 1, 2, 3, 4]

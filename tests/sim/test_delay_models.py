"""Delay model strategies."""

import pytest

from repro.netlist.library import default_library
from repro.sim.delay import LibraryDelay, UnitDelay, ZeroDelay


class TestZeroDelay:
    def test_all_zero(self, c17):
        delays = ZeroDelay().delays_for(c17)
        assert set(delays) == set(c17.gates)
        assert all(d == 0.0 for d in delays.values())


class TestUnitDelay:
    def test_default_unit(self, c17):
        delays = UnitDelay().delays_for(c17)
        assert all(d == 1.0 for d in delays.values())

    def test_custom_unit(self, c17):
        delays = UnitDelay(2.5).delays_for(c17)
        assert all(d == 2.5 for d in delays.values())

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            UnitDelay(0.0)
        with pytest.raises(ValueError):
            UnitDelay(-1.0)


class TestLibraryDelay:
    def test_matches_library_computation(self, c17):
        lib = default_library()
        delays = LibraryDelay(lib).delays_for(c17)
        for net in c17.gates:
            assert delays[net] == pytest.approx(lib.gate_delay(c17, net))

    def test_default_library_used(self, c17):
        delays = LibraryDelay().delays_for(c17)
        assert all(d > 0 for d in delays.values())

    def test_loaded_gates_slower(self, c17):
        # G16 drives two sinks, G22 none: same cell, more load = slower.
        delays = LibraryDelay().delays_for(c17)
        assert delays["G16"] > delays["G22"]

    def test_model_names(self):
        assert ZeroDelay().name == "ZeroDelay"
        assert UnitDelay().name == "UnitDelay"
        assert LibraryDelay().name == "LibraryDelay"

"""VCD waveform export/import."""

import pytest

from repro.errors import SimulationError
from repro.sim.delay import UnitDelay
from repro.sim.event_sim import EventDrivenSimulator
from repro.sim.vcd import dump_vcd, parse_vcd, write_vcd
from repro.sim.vcd import _identifier


class TestIdentifier:
    def test_unique_and_printable(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500
        for ident in ids:
            assert all(33 <= ord(ch) <= 126 for ch in ident)


@pytest.fixture
def sim_result(hazard_circuit):
    sim = EventDrivenSimulator(hazard_circuit, UnitDelay())
    return sim.simulate_pair([0], [1], record_waveforms=True)


class TestWrite:
    def test_structure(self, hazard_circuit, sim_result):
        text = write_vcd(hazard_circuit, sim_result)
        assert "$timescale 1ps $end" in text
        assert "$scope module hazard $end" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text
        # One $var per net.
        assert text.count("$var wire 1 ") == len(hazard_circuit.nets)

    def test_subset_of_nets(self, hazard_circuit, sim_result):
        text = write_vcd(hazard_circuit, sim_result, nets=["a", "y"])
        assert text.count("$var wire 1 ") == 2

    def test_unknown_net_rejected(self, hazard_circuit, sim_result):
        with pytest.raises(SimulationError, match="unknown net"):
            write_vcd(hazard_circuit, sim_result, nets=["ghost"])

    def test_requires_waveforms(self, hazard_circuit):
        sim = EventDrivenSimulator(hazard_circuit, UnitDelay())
        bare = sim.simulate_pair([0], [1])  # no recording
        with pytest.raises(SimulationError, match="record_waveforms"):
            write_vcd(hazard_circuit, bare)

    def test_timescale_validation(self, hazard_circuit, sim_result):
        with pytest.raises(SimulationError):
            write_vcd(hazard_circuit, sim_result, timescale_ps=0)

    def test_dump_to_file(self, hazard_circuit, sim_result, tmp_path):
        path = tmp_path / "wave.vcd"
        dump_vcd(hazard_circuit, sim_result, path)
        assert path.read_text().startswith("$date")


class TestRoundTrip:
    def test_final_values_and_toggles_survive(
        self, hazard_circuit, sim_result
    ):
        text = write_vcd(hazard_circuit, sim_result)
        data = parse_vcd(text)
        assert set(data.signals) == set(hazard_circuit.nets)
        for net in hazard_circuit.nets:
            assert data.final_value(net) == sim_result.final_values[net]
            assert data.toggle_count(net) == sim_result.toggle_counts.get(
                net, 0
            )

    def test_hazard_pulse_visible(self, hazard_circuit, sim_result):
        data = parse_vcd(write_vcd(hazard_circuit, sim_result))
        wave = data.changes["y"]
        assert [v for _, v in wave] == [1, 0]
        times = [t for t, _ in wave]
        assert times == sorted(times)

    def test_timescale_rounding(self, hazard_circuit):
        from repro.sim.delay import LibraryDelay

        sim = EventDrivenSimulator(hazard_circuit, LibraryDelay())
        result = sim.simulate_pair([0], [1], record_waveforms=True)
        data = parse_vcd(
            write_vcd(hazard_circuit, result, timescale_ps=10)
        )
        for net, wave in data.changes.items():
            for t, _ in wave:
                assert t == int(t)

    def test_quiet_pair_parses(self, hazard_circuit):
        sim = EventDrivenSimulator(hazard_circuit, UnitDelay())
        result = sim.simulate_pair([1], [1], record_waveforms=True)
        data = parse_vcd(write_vcd(hazard_circuit, result))
        assert all(data.toggle_count(n) == 0 for n in data.signals)


class TestParserValidation:
    def test_unsupported_vector_var(self):
        bad = "$timescale 1ps $end\n$var wire 8 ! bus $end\n"
        with pytest.raises(SimulationError, match="unsupported var"):
            parse_vcd(bad)

    def test_missing_definitions(self):
        with pytest.raises(SimulationError, match="enddefinitions"):
            parse_vcd("$timescale 1ps $end\n")

    def test_unknown_identifier(self):
        text = (
            "$timescale 1ps $end\n"
            "$var wire 1 ! a $end\n"
            "$enddefinitions $end\n"
            "#0\n"
            '1"\n'
        )
        with pytest.raises(SimulationError, match="unknown identifier"):
            parse_vcd(text)

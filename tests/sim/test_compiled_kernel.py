"""Differential tests: compiled kernel vs interpreter vs event sim.

The compiled struct-of-arrays kernel must be *indistinguishable* from
the legacy per-gate interpreter: bit-identical steady states and toggle
counts, float-identical energies (both kernels charge through
``charge_rows`` with identically ordered rows).  The event-driven
simulator under a unit-delay model provides a third, independently
implemented reference for the glitch-capturing unit-delay semantics.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.netlist.generators.random_dag import random_layered_circuit
from repro.sim import compiled
from repro.sim.bitsim import BitParallelSimulator, pack_vectors
from repro.sim.compiled import (
    MAX_BATCH_ARITY,
    CompiledPlan,
    compile_plan,
    popcount_rows,
    resolve_kernel,
)
from repro.sim.delay import UnitDelay
from repro.sim.event_sim import EventDrivenSimulator
from repro.errors import ConfigError, SimulationError

# Lane counts straddling the word boundary: single lane, partial word,
# exactly one word, and spill into a second word.
LANE_COUNTS = (1, 63, 64, 65)

# (inputs, outputs, gates, depth, seed) profiles for the random DAGs.
DAG_PROFILES = (
    (8, 4, 30, 5, 101),
    (16, 8, 120, 10, 202),
    (24, 12, 400, 18, 303),
)


def _random_pairs(num_inputs: int, num_pairs: int, seed: int):
    rng = np.random.default_rng(seed)
    v1 = rng.integers(0, 2, size=(num_pairs, num_inputs), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(num_pairs, num_inputs), dtype=np.uint8)
    return v1, v2


def _random_caps(num_nets: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    caps = rng.uniform(0.5, 20.0, size=num_nets)
    caps[rng.random(num_nets) < 0.1] = 0.0  # exercise the zero-cap filter
    return caps


def _special_circuit() -> Circuit:
    """Hand-built net exercising every batch kind in one plan.

    Covers MUX, CONST0/CONST1, NOT, BUF, XNOR, and a NAND wider than
    ``MAX_BATCH_ARITY`` (forcing a per-gate straggler batch).
    """
    c = Circuit("special")
    names = [f"i{k}" for k in range(MAX_BATCH_ARITY + 2)]
    for n in names:
        c.add_input(n)
    c.add_gate("zero", GateType.CONST0, [])
    c.add_gate("one", GateType.CONST1, [])
    c.add_gate("ninv", GateType.NOT, ["i0"])
    c.add_gate("buf", GateType.BUF, ["i1"])
    c.add_gate("m", GateType.MUX, ["i0", "i1", "i2"])
    c.add_gate("xn", GateType.XNOR, ["m", "ninv"])
    c.add_gate("wide", GateType.NAND, names)  # arity > MAX_BATCH_ARITY
    c.add_gate("mix", GateType.OR, ["wide", "xn", "zero"])
    c.add_gate("mix2", GateType.AND, ["mix", "one", "buf"])
    c.set_outputs(["mix2", "m"])
    c.validate()
    return c


def _sims(circuit: Circuit):
    return (
        BitParallelSimulator(circuit, kernel="compiled"),
        BitParallelSimulator(circuit, kernel="interp"),
    )


class TestKernelSelection:
    def test_default_is_compiled(self, c17, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        sim = BitParallelSimulator(c17)
        assert sim.kernel == "compiled"
        assert sim._plan is not None

    def test_env_var_selects_interp(self, c17, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "interp")
        sim = BitParallelSimulator(c17)
        assert sim.kernel == "interp"
        assert sim._plan is None
        assert sim._ops  # the interpreter's op list is built

    def test_explicit_arg_beats_env(self, c17, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "interp")
        sim = BitParallelSimulator(c17, kernel="compiled")
        assert sim.kernel == "compiled"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError, match="turbo"):
            resolve_kernel("turbo")

    def test_unknown_kernel_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "turbo")
        with pytest.raises(ConfigError, match="REPRO_SIM_KERNEL"):
            resolve_kernel()


class TestDifferentialParity:
    """Compiled and interpreted kernels must agree exactly."""

    @pytest.mark.parametrize("profile", DAG_PROFILES)
    @pytest.mark.parametrize("num_lanes", LANE_COUNTS)
    def test_random_dag_parity(self, profile, num_lanes):
        ni, no, ng, depth, seed = profile
        circuit = random_layered_circuit(
            f"dag{seed}", ni, no, ng, depth, seed=seed
        )
        comp, interp = _sims(circuit)
        v1, v2 = _random_pairs(ni, num_lanes, seed + 1)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        caps = _random_caps(comp.num_nets, seed + 2)

        s_c = comp.steady_state(w1, lanes)
        s_i = interp.steady_state(w1, lanes)
        assert np.array_equal(s_c, s_i)

        assert np.array_equal(
            comp.toggle_counts_zero_delay(w1, w2, lanes),
            interp.toggle_counts_zero_delay(w1, w2, lanes),
        )
        # Float-identical, not merely close: both kernels charge the
        # same rows in the same order through charge_rows.
        assert np.array_equal(
            comp.toggle_energy_zero_delay(w1, w2, lanes, caps),
            interp.toggle_energy_zero_delay(w1, w2, lanes, caps),
        )
        assert np.array_equal(
            comp.toggle_energy_unit_delay(w1, w2, lanes, caps),
            interp.toggle_energy_unit_delay(w1, w2, lanes, caps),
        )

    @pytest.mark.parametrize("num_lanes", LANE_COUNTS)
    def test_special_gates_parity(self, num_lanes):
        circuit = _special_circuit()
        comp, interp = _sims(circuit)
        v1, v2 = _random_pairs(circuit.num_inputs, num_lanes, 7)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        caps = _random_caps(comp.num_nets, 8)
        assert np.array_equal(
            comp.steady_state(w1, lanes), interp.steady_state(w1, lanes)
        )
        assert np.array_equal(
            comp.toggle_energy_unit_delay(w1, w2, lanes, caps),
            interp.toggle_energy_unit_delay(w1, w2, lanes, caps),
        )

    def test_special_circuit_has_straggler_batch(self):
        plan = CompiledPlan(_special_circuit())
        kinds = {b.kind for b in plan.batches}
        assert "pergate" in kinds
        assert "mux" in kinds
        assert "reduce" in kinds

    def test_parity_against_circuit_evaluate(self, c17):
        # Both kernels vs the dict-based scalar evaluator.
        comp, interp = _sims(c17)
        rng = np.random.default_rng(5)
        vecs = rng.integers(0, 2, size=(17, c17.num_inputs), dtype=np.uint8)
        w, lanes = pack_vectors(vecs)
        s_c = comp.steady_state(w, lanes)
        s_i = interp.steady_state(w, lanes)
        assert np.array_equal(s_c, s_i)
        from repro.sim.bitsim import unpack_vectors

        bits = unpack_vectors(s_c, lanes)
        for lane in range(lanes):
            ref = c17.evaluate_vector(list(vecs[lane]))
            for j, net in enumerate(comp.net_order):
                assert bits[lane, j] == ref[net], (lane, net)


class TestEventDrivenParity:
    """Unit-delay bitsim vs the event-driven simulator (UnitDelay).

    With all capacitances equal to 1.0 the per-lane unit-delay energy
    is an exact integer: the total number of transitions, including the
    primary-input transitions — directly comparable to the event sim's
    ``total_toggles()`` (integer sums of this size are exact in
    float64).
    """

    @pytest.mark.parametrize(
        "profile", [(6, 3, 25, 4, 11), (10, 5, 60, 8, 22)]
    )
    def test_total_toggles_match(self, profile):
        ni, no, ng, depth, seed = profile
        circuit = random_layered_circuit(
            f"evt{seed}", ni, no, ng, depth, seed=seed
        )
        comp = BitParallelSimulator(circuit, kernel="compiled")
        event = EventDrivenSimulator(circuit, UnitDelay())
        num_pairs = 40
        v1, v2 = _random_pairs(ni, num_pairs, seed + 1)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        caps = np.ones(comp.num_nets, dtype=np.float64)
        energies = comp.toggle_energy_unit_delay(w1, w2, lanes, caps)
        for lane in range(lanes):
            expected = event.simulate_pair(
                v1[lane], v2[lane]
            ).total_toggles()
            assert energies[lane] == expected, lane

    def test_hazard_pulse_counted(self, hazard_circuit):
        comp = BitParallelSimulator(hazard_circuit, kernel="compiled")
        event = EventDrivenSimulator(hazard_circuit, UnitDelay())
        w1, lanes = pack_vectors(np.array([[0]], dtype=np.uint8))
        w2, _ = pack_vectors(np.array([[1]], dtype=np.uint8))
        caps = np.ones(comp.num_nets, dtype=np.float64)
        energy = comp.toggle_energy_unit_delay(w1, w2, lanes, caps)
        assert energy[0] == event.simulate_pair([0], [1]).total_toggles()


class TestPlanCache:
    def test_plan_shared_between_simulators(self, c17):
        a = BitParallelSimulator(c17, kernel="compiled")
        b = BitParallelSimulator(c17, kernel="compiled")
        assert a._plan is b._plan

    def test_mutation_invalidates_plan(self, c17):
        plan1 = compile_plan(c17)
        c17.add_gate("extra", GateType.NOT, ["G22"])
        c17.add_output("extra")
        plan2 = compile_plan(c17)
        assert plan2 is not plan1
        assert plan2.num_gates == plan1.num_gates + 1

    def test_circuit_pickle_drops_cache(self, c17):
        compile_plan(c17)
        clone = pickle.loads(pickle.dumps(c17))
        assert clone._cache == {}

    def test_simulator_pickle_roundtrip(self, c17):
        sim = BitParallelSimulator(c17, kernel="compiled")
        clone = pickle.loads(pickle.dumps(sim))
        assert clone.kernel == "compiled"
        assert clone._plan is not None
        v1, v2 = _random_pairs(c17.num_inputs, 10, 3)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        caps = np.ones(sim.num_nets)
        assert np.array_equal(
            sim.toggle_energy_unit_delay(w1, w2, lanes, caps),
            clone.toggle_energy_unit_delay(w1, w2, lanes, caps),
        )

    def test_interp_pickle_preserves_kernel(self, c17):
        sim = BitParallelSimulator(c17, kernel="interp")
        clone = pickle.loads(pickle.dumps(sim))
        assert clone.kernel == "interp"
        assert clone._plan is None


class TestPopcountRows:
    def test_matches_python_popcount(self):
        rng = np.random.default_rng(9)
        words = rng.integers(
            0, 2**64, size=(7, 5), dtype=np.uint64
        )
        expected = [
            sum(int(w).bit_count() for w in row) for row in words
        ]
        assert popcount_rows(words).tolist() == expected

    def test_lut_fallback_matches(self, monkeypatch):
        rng = np.random.default_rng(10)
        words = rng.integers(0, 2**64, size=(4, 9), dtype=np.uint64)
        fast = popcount_rows(words)
        monkeypatch.setattr(compiled, "_HAS_BITWISE_COUNT", False)
        slow = popcount_rows(words)
        assert np.array_equal(fast, slow)
        assert slow.dtype == np.int64

    def test_no_uint8_overflow(self):
        # > 255 set bits per row must not wrap the per-word uint8 counts.
        words = np.full((1, 8), np.uint64(0xFFFFFFFFFFFFFFFF))
        assert popcount_rows(words)[0] == 512


class TestKernelMetrics:
    def test_compiled_metrics_recorded(self):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        registry.reset()
        registry.enable()
        try:
            circuit = random_layered_circuit("met", 8, 4, 40, 6, seed=77)
            sim = BitParallelSimulator(circuit, kernel="compiled")
            v1, v2 = _random_pairs(8, 32, 78)
            w1, lanes = pack_vectors(v1)
            w2, _ = pack_vectors(v2)
            caps = np.ones(sim.num_nets)
            sim.toggle_energy_unit_delay(w1, w2, lanes, caps)
            assert compiled._COMPILE_TOTAL.value >= 1
            assert compiled._COMPILE_TIMER.count >= 1
            assert compiled._BATCH_EVALS.value > 0
            assert compiled._STEPS_TOTAL.value > 0
            assert compiled._ACTIVE_LEVELS.count > 0
        finally:
            registry.disable()
            registry.reset()

    def test_cache_hit_counter(self):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        registry.reset()
        registry.enable()
        try:
            circuit = random_layered_circuit("hit", 6, 3, 20, 4, seed=88)
            compile_plan(circuit)
            hits0 = compiled._PLAN_CACHE_HITS.value
            compile_plan(circuit)
            assert compiled._PLAN_CACHE_HITS.value == hits0 + 1
        finally:
            registry.disable()
            registry.reset()

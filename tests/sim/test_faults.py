"""Stuck-at fault simulation."""

import itertools

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.faults import CoverageReport, Fault, FaultSimulator


def all_vectors(width):
    return np.array(
        list(itertools.product([0, 1], repeat=width)), dtype=np.uint8
    )


class TestFault:
    def test_validation(self):
        with pytest.raises(SimulationError):
            Fault("a", 2)

    def test_str(self):
        assert str(Fault("G10", 1)) == "G10/SA1"


class TestDetection:
    def test_and_gate_classic_faults(self, half_adder):
        sim = FaultSimulator(half_adder)
        vectors = all_vectors(2)
        # carry = AND(a, b): carry/SA1 detected by any vector with
        # carry=0 and ... specifically vectors where AND=0 -> output
        # differs: (0,0),(0,1),(1,0).
        lanes = sim.detecting_lanes(vectors, Fault("carry", 1))
        assert list(lanes) == [True, True, True, False]
        # carry/SA0 detected only by (1,1).
        lanes = sim.detecting_lanes(vectors, Fault("carry", 0))
        assert list(lanes) == [False, False, False, True]

    def test_input_fault(self, half_adder):
        sim = FaultSimulator(half_adder)
        vectors = all_vectors(2)
        # a/SA0: differs whenever a=1 (sum flips; carry flips if b=1).
        lanes = sim.detecting_lanes(vectors, Fault("a", 0))
        assert list(lanes) == [False, False, True, True]

    def test_unknown_net_rejected(self, half_adder):
        sim = FaultSimulator(half_adder)
        with pytest.raises(SimulationError, match="unknown net"):
            sim.detecting_lanes(all_vectors(2), Fault("ghost", 0))

    def test_vector_shape_checked(self, half_adder):
        sim = FaultSimulator(half_adder)
        with pytest.raises(SimulationError, match="vectors"):
            sim.detecting_lanes(
                np.zeros((4, 3), dtype=np.uint8), Fault("a", 0)
            )

    def test_matches_reference_evaluation(self, c17, rng):
        sim = FaultSimulator(c17)
        vectors = rng.integers(0, 2, size=(50, 5)).astype(np.uint8)
        fault = Fault("G11", 0)
        lanes = sim.detecting_lanes(vectors, fault)
        # Reference: rebuild circuit with G11 replaced by CONST0.
        from repro.netlist.circuit import Circuit
        from repro.netlist.gates import GateType

        mutant = Circuit("c17_sa")
        for net in c17.inputs:
            mutant.add_input(net)
        for name in c17.topological_order():
            gate = c17.gate(name)
            if name == "G11":
                mutant.add_gate(name, GateType.CONST0, [])
            else:
                mutant.add_gate(name, gate.gtype, gate.fanin)
        mutant.set_outputs(c17.outputs)
        for k in range(50):
            good = c17.evaluate_vector(list(vectors[k]))
            bad = mutant.evaluate_vector(list(vectors[k]))
            expected = any(good[o] != bad[o] for o in c17.outputs)
            assert lanes[k] == expected, k


class TestCoverage:
    def test_exhaustive_coverage_of_c17(self, c17):
        sim = FaultSimulator(c17)
        report = sim.coverage(all_vectors(5))
        # c17 is fully testable under exhaustive stimulus.
        assert report.coverage == 1.0
        assert not report.undetected
        assert str(report).endswith("(100.0%)")

    def test_single_vector_low_coverage(self, c17):
        sim = FaultSimulator(c17)
        one = np.array([[0, 0, 0, 0, 0]], dtype=np.uint8)
        report = sim.coverage(one)
        assert 0 < report.coverage < 1.0

    def test_first_detection_indices(self, half_adder):
        sim = FaultSimulator(half_adder)
        vectors = all_vectors(2)
        report = sim.coverage(vectors, [Fault("carry", 0)])
        assert report.first_detection[Fault("carry", 0)] == 3

    def test_undetectable_fault_reported(self):
        # A net that no output observes can never be detected.
        from repro.netlist.circuit import Circuit
        from repro.netlist.gates import GateType

        c = Circuit("dangle")
        c.add_input("a")
        c.add_gate("dead", GateType.NOT, ["a"])
        c.add_gate("out", GateType.BUF, ["a"])
        c.set_outputs(["out"])
        sim = FaultSimulator(c)
        report = sim.coverage(
            np.array([[0], [1]], dtype=np.uint8),
            [Fault("dead", 0), Fault("dead", 1)],
        )
        assert report.coverage == 0.0

    def test_all_faults_enumeration(self, half_adder):
        sim = FaultSimulator(half_adder)
        faults = sim.all_faults()
        assert len(faults) == 2 * len(half_adder.nets)


class TestPowerUnderFault:
    def test_stuck_net_never_toggles(self, c17, rng):
        sim = FaultSimulator(c17)
        bsim_order = FaultSimulator(c17)._sim.net_order
        caps = np.zeros(len(bsim_order))
        caps[bsim_order.index("G11")] = 1.0  # charge only the stuck net
        v1 = rng.integers(0, 2, size=(30, 5)).astype(np.uint8)
        v2 = rng.integers(0, 2, size=(30, 5)).astype(np.uint8)
        energy = sim.power_under_fault(v1, v2, Fault("G11", 1), caps)
        assert (energy == 0).all()

    def test_fault_changes_power_distribution(self, c17, rng):
        from repro.sim.power import PowerAnalyzer

        sim = FaultSimulator(c17)
        pa = PowerAnalyzer(c17, mode="zero")
        caps = pa._net_caps_f
        v1 = rng.integers(0, 2, size=(200, 5)).astype(np.uint8)
        v2 = rng.integers(0, 2, size=(200, 5)).astype(np.uint8)
        healthy = pa.powers_for_pairs(v1, v2) / (
            pa.energy_scale * pa.frequency_hz
        )
        faulty = sim.power_under_fault(v1, v2, Fault("G11", 0), caps)
        # Capacitances are femtofarad-scale, so compare with rtol only.
        assert not np.allclose(healthy, faulty, rtol=1e-3, atol=0.0)
        # The stuck circuit can only lose switching on G11's cone side.
        assert faulty.mean() < healthy.mean() * 1.2

"""Power analyzer: unit conversions, mode consistency, validation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist.library import default_library
from repro.sim.power import PowerAnalyzer


class TestConfiguration:
    def test_invalid_mode_rejected(self, c17):
        with pytest.raises(SimulationError, match="mode"):
            PowerAnalyzer(c17, mode="spice")

    def test_invalid_frequency_rejected(self, c17):
        with pytest.raises(SimulationError, match="frequency"):
            PowerAnalyzer(c17, frequency_hz=0)

    def test_energy_scale(self, c17):
        pa = PowerAnalyzer(c17)
        lib = default_library()
        assert pa.energy_scale == pytest.approx(0.5 * lib.vdd ** 2)

    def test_max_possible_power_formula(self, c17):
        pa = PowerAnalyzer(c17, frequency_hz=1e6)
        expected = pa.energy_scale * pa.total_capacitance_f() * 1e6
        assert pa.max_possible_power_w() == pytest.approx(expected)


class TestPairPower:
    def test_identical_vectors_zero_power(self, c17):
        for mode in ("zero", "unit", "event"):
            pa = PowerAnalyzer(c17, mode=mode)
            bd = pa.pair_power([1, 0, 1, 0, 1], [1, 0, 1, 0, 1])
            assert bd.power_w == 0.0
            assert bd.energy_j == 0.0

    def test_power_scales_with_frequency(self, c17):
        pa1 = PowerAnalyzer(c17, frequency_hz=10e6)
        pa2 = PowerAnalyzer(c17, frequency_hz=20e6)
        v1, v2 = [0, 0, 0, 0, 0], [1, 1, 1, 1, 1]
        p1 = pa1.pair_power(v1, v2).power_w
        p2 = pa2.pair_power(v1, v2).power_w
        assert p2 == pytest.approx(2 * p1)
        # energy is frequency independent
        assert pa1.pair_power(v1, v2).energy_j == pytest.approx(
            pa2.pair_power(v1, v2).energy_j
        )

    def test_hand_computed_single_toggle(self, half_adder):
        # a: 0->1 with b=1: a toggles, sum toggles 1->0, carry 0->1.
        pa = PowerAnalyzer(half_adder, mode="zero", frequency_hz=1e6)
        lib = pa.library
        bd = pa.pair_power([0, 1], [1, 1])
        caps = lib.all_net_capacitances(half_adder)
        expected_energy = (
            0.5
            * lib.vdd ** 2
            * (caps["a"] + caps["sum"] + caps["carry"])
            * 1e-15
        )
        assert bd.energy_j == pytest.approx(expected_energy)
        assert set(bd.toggle_counts) == {"a", "sum", "carry"}

    def test_event_mode_reports_settle_time(self, c17):
        pa = PowerAnalyzer(c17, mode="event")
        bd = pa.pair_power([0] * 5, [1] * 5)
        assert bd.settle_time > 0

    def test_event_mode_glitch_power_exceeds_zero_delay(self, hazard_circuit):
        pz = PowerAnalyzer(hazard_circuit, mode="zero")
        pu = PowerAnalyzer(hazard_circuit, mode="unit")
        vz = pz.pair_power([0], [1]).power_w
        vu = pu.pair_power([0], [1]).power_w
        assert vu > vz  # hazard pulse adds switched capacitance

    def test_power_mw_property(self, c17):
        pa = PowerAnalyzer(c17)
        bd = pa.pair_power([0] * 5, [1] * 5)
        assert bd.power_mw == pytest.approx(bd.power_w * 1e3)


class TestPopulationPowers:
    def test_shape_and_consistency_with_pair_power(self, c17, rng):
        for mode in ("zero", "unit"):
            pa = PowerAnalyzer(c17, mode=mode)
            v1 = rng.integers(0, 2, size=(40, 5)).astype(np.uint8)
            v2 = rng.integers(0, 2, size=(40, 5)).astype(np.uint8)
            powers = pa.powers_for_pairs(v1, v2)
            assert powers.shape == (40,)
            for k in (0, 17, 39):
                single = pa.pair_power(list(v1[k]), list(v2[k]))
                assert powers[k] == pytest.approx(single.power_w)

    def test_event_mode_population_matches_loop(self, half_adder, rng):
        pa = PowerAnalyzer(half_adder, mode="event")
        v1 = rng.integers(0, 2, size=(10, 2)).astype(np.uint8)
        v2 = rng.integers(0, 2, size=(10, 2)).astype(np.uint8)
        powers = pa.powers_for_pairs(v1, v2)
        for k in range(10):
            assert powers[k] == pytest.approx(
                pa.pair_power(list(v1[k]), list(v2[k])).power_w
            )

    def test_block_processing_equivalence(self, c17, rng):
        pa = PowerAnalyzer(c17, mode="zero")
        v1 = rng.integers(0, 2, size=(200, 5)).astype(np.uint8)
        v2 = rng.integers(0, 2, size=(200, 5)).astype(np.uint8)
        whole = pa.powers_for_pairs(v1, v2)
        blocked = pa.powers_for_pairs(v1, v2, block_lanes=64)
        assert np.allclose(whole, blocked)

    def test_shape_mismatch_rejected(self, c17):
        pa = PowerAnalyzer(c17)
        with pytest.raises(SimulationError, match="mismatch"):
            pa.powers_for_pairs(
                np.zeros((3, 5), dtype=np.uint8),
                np.zeros((4, 5), dtype=np.uint8),
            )

    def test_wrong_width_rejected(self, c17):
        pa = PowerAnalyzer(c17)
        with pytest.raises(SimulationError, match="expected"):
            pa.powers_for_pairs(
                np.zeros((3, 4), dtype=np.uint8),
                np.zeros((3, 4), dtype=np.uint8),
            )

    def test_powers_bounded_by_ceiling(self, c17, rng):
        pa = PowerAnalyzer(c17, mode="zero")
        v1 = rng.integers(0, 2, size=(100, 5)).astype(np.uint8)
        v2 = rng.integers(0, 2, size=(100, 5)).astype(np.uint8)
        powers = pa.powers_for_pairs(v1, v2)
        assert (powers <= pa.max_possible_power_w() + 1e-12).all()
        assert (powers >= 0).all()

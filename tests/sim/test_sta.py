"""Static timing analysis."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.netlist.generators import ripple_carry_adder
from repro.sim.delay import LibraryDelay, UnitDelay
from repro.sim.event_sim import EventDrivenSimulator
from repro.sim.sta import StaticTimingAnalyzer


class TestArrivalTimes:
    def test_unit_delay_arrival_equals_level(self, c17):
        sta = StaticTimingAnalyzer(c17, UnitDelay())
        report = sta.run()
        levels = c17.levels()
        for net, arr in report.arrival.items():
            assert arr == pytest.approx(float(levels[net]))

    def test_max_delay_is_output_arrival(self, c17):
        report = StaticTimingAnalyzer(c17, UnitDelay()).run()
        assert report.max_delay == pytest.approx(3.0)

    def test_critical_path_is_connected(self, c17):
        report = StaticTimingAnalyzer(c17, UnitDelay()).run()
        path = report.critical_path
        assert c17.is_input(path[0])
        assert path[-1] in c17.outputs
        for src, dst in zip(path, path[1:]):
            assert src in c17.gate(dst).fanin

    def test_library_delay_accumulates(self, half_adder):
        model = LibraryDelay()
        report = StaticTimingAnalyzer(half_adder, model).run()
        delays = model.delays_for(half_adder)
        assert report.arrival["sum"] == pytest.approx(delays["sum"])
        assert report.max_delay == pytest.approx(
            max(delays["sum"], delays["carry"])
        )


class TestUpperBoundProperty:
    def test_sta_bounds_dynamic_settle_time(self, rng):
        rca = ripple_carry_adder(6)
        model = LibraryDelay()
        bound = StaticTimingAnalyzer(rca, model).max_delay()
        sim = EventDrivenSimulator(rca, model)
        for _ in range(25):
            v1 = list(rng.integers(0, 2, size=rca.num_inputs))
            v2 = list(rng.integers(0, 2, size=rca.num_inputs))
            result = sim.simulate_pair(v1, v2)
            assert result.settle_time <= bound + 1e-9

    def test_carry_chain_is_critical(self):
        rca = ripple_carry_adder(8)
        report = StaticTimingAnalyzer(rca, UnitDelay()).run()
        # The critical path must end at the final carry or last sum.
        assert report.critical_path[-1] in (rca.outputs[-1], rca.outputs[-2])


class TestNonOutputNets:
    def test_dangling_net_circuit(self):
        c = Circuit("dangle")
        c.add_input("a")
        c.add_gate("deep1", GateType.NOT, ["a"])
        c.add_gate("deep2", GateType.NOT, ["deep1"])
        c.add_gate("out", GateType.NOT, ["a"])
        c.set_outputs(["out"])
        report = StaticTimingAnalyzer(c, UnitDelay()).run()
        # max_delay is over *outputs*, so 1.0 even though deep2 is at 2.
        assert report.max_delay == pytest.approx(1.0)
        assert report.arrival["deep2"] == pytest.approx(2.0)

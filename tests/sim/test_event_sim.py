"""Event-driven timing simulator semantics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.sim.delay import LibraryDelay, UnitDelay, ZeroDelay
from repro.sim.event_sim import EventDrivenSimulator


class TestFunctional:
    def test_final_values_match_reference(self, c17, rng):
        sim = EventDrivenSimulator(c17, UnitDelay())
        for _ in range(30):
            v1 = rng.integers(0, 2, size=5)
            v2 = rng.integers(0, 2, size=5)
            result = sim.simulate_pair(list(v1), list(v2))
            expected = c17.evaluate_vector(list(v2))
            assert result.final_values == expected

    @pytest.mark.parametrize("model", [ZeroDelay(), UnitDelay(), LibraryDelay()])
    def test_final_values_model_independent(self, c17, model, rng):
        sim = EventDrivenSimulator(c17, model)
        v1 = [0, 1, 0, 1, 0]
        v2 = [1, 1, 1, 0, 0]
        result = sim.simulate_pair(v1, v2)
        assert result.final_values == c17.evaluate_vector(v2)

    def test_no_change_no_events(self, c17):
        sim = EventDrivenSimulator(c17, UnitDelay())
        v = [1, 0, 1, 0, 1]
        result = sim.simulate_pair(v, v)
        assert result.num_events == 0
        assert result.settle_time == 0.0
        assert result.total_toggles() == 0

    def test_wrong_width_rejected(self, c17):
        sim = EventDrivenSimulator(c17, UnitDelay())
        with pytest.raises(SimulationError, match="width"):
            sim.simulate_pair([0, 1], [1, 0])


class TestTimingAndGlitches:
    def test_not_chain_settle_time(self):
        c = Circuit("chain")
        c.add_input("a")
        prev = "a"
        for i in range(5):
            c.add_gate(f"n{i}", GateType.NOT, [prev])
            prev = f"n{i}"
        c.set_outputs([prev])
        sim = EventDrivenSimulator(c, UnitDelay())
        result = sim.simulate_pair([0], [1])
        assert result.settle_time == 5.0
        assert result.total_toggles() == 6  # input + 5 gates

    def test_hazard_pulse_counted(self, hazard_circuit):
        sim = EventDrivenSimulator(hazard_circuit, UnitDelay())
        # a: 0 -> 1 creates a 0->1->0 pulse on y (static-0 hazard).
        result = sim.simulate_pair([0], [1])
        assert result.toggle_counts.get("y", 0) == 2
        assert result.glitch_count(hazard_circuit) >= 2

    def test_zero_delay_has_no_glitches(self, hazard_circuit):
        sim = EventDrivenSimulator(hazard_circuit, ZeroDelay())
        result = sim.simulate_pair([0], [1])
        # y is 0 before and after; zero delay produces no pulse.
        assert result.toggle_counts.get("y", 0) == 0

    def test_inertial_filter_drops_short_pulse(self, hazard_circuit):
        # The y pulse is 2 units wide and the AND delay is 3 units, so
        # an inertial gate swallows it.
        class WideAnd(UnitDelay):
            def delays_for(self, circuit):
                d = {net: 1.0 for net in circuit.gates}
                d["y"] = 3.0
                return d

        transport = EventDrivenSimulator(hazard_circuit, WideAnd())
        assert transport.simulate_pair([0], [1]).toggle_counts.get("y", 0) == 2
        inertial = EventDrivenSimulator(
            hazard_circuit, WideAnd(), inertial=True
        )
        result = inertial.simulate_pair([0], [1])
        assert result.toggle_counts.get("y", 0) == 0

    def test_simultaneous_input_changes_no_phantom_pulse(self):
        # XOR(a, b) with both inputs flipping at t=0 must not pulse.
        c = Circuit("xor2")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.XOR, ["a", "b"])
        c.set_outputs(["y"])
        sim = EventDrivenSimulator(c, UnitDelay())
        result = sim.simulate_pair([0, 0], [1, 1])
        assert result.toggle_counts.get("y", 0) == 0

    def test_waveform_recording(self, hazard_circuit):
        sim = EventDrivenSimulator(hazard_circuit, UnitDelay())
        result = sim.simulate_pair([0], [1], record_waveforms=True)
        wave = result.waveforms["y"]
        assert [v for _, v in wave] == [1, 0]
        times = [t for t, _ in wave]
        assert times == sorted(times)

    def test_settle_time_matches_library_delays(self, half_adder):
        model = LibraryDelay()
        sim = EventDrivenSimulator(half_adder, model)
        delays = model.delays_for(half_adder)
        result = sim.simulate_pair([0, 0], [1, 1])
        # carry flips 0->1 via one AND delay; sum stays 0 (may glitch).
        assert result.settle_time >= delays["carry"] - 1e-9


class TestSequence:
    def test_sequence_results_chain(self, c17, rng):
        sim = EventDrivenSimulator(c17, UnitDelay())
        vectors = [list(rng.integers(0, 2, size=5)) for _ in range(4)]
        results = sim.simulate_sequence(vectors)
        assert len(results) == 3
        for i, res in enumerate(results):
            assert res.final_values == c17.evaluate_vector(vectors[i + 1])

    def test_sequence_needs_two_vectors(self, c17):
        sim = EventDrivenSimulator(c17, UnitDelay())
        with pytest.raises(SimulationError):
            sim.simulate_sequence([[0, 0, 0, 0, 0]])

"""Bit-parallel simulator: packing, steady state, toggle accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.netlist.generators import build_circuit, ripple_carry_adder
from repro.sim.bitsim import (
    BitParallelSimulator,
    pack_vectors,
    unpack_vectors,
)
from repro.sim.delay import UnitDelay
from repro.sim.event_sim import EventDrivenSimulator


class TestPacking:
    @given(
        n=st.integers(min_value=1, max_value=200),
        w=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_unpack_roundtrip(self, n, w, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(n, w)).astype(np.uint8)
        words, lanes = pack_vectors(bits)
        assert lanes == n
        assert words.shape == (w, (n + 63) // 64)
        back = unpack_vectors(words, lanes)
        assert np.array_equal(back, bits)

    def test_pack_requires_2d(self):
        with pytest.raises(SimulationError):
            pack_vectors(np.zeros(5))


class TestSteadyState:
    def test_matches_reference_evaluator(self, c17, rng):
        sim = BitParallelSimulator(c17)
        bits = rng.integers(0, 2, size=(100, 5)).astype(np.uint8)
        words, lanes = pack_vectors(bits)
        state = sim.steady_state(words, lanes)
        values = unpack_vectors(state, lanes)
        for k in (0, 13, 64, 99):  # includes a word-boundary lane
            expected = c17.evaluate_vector(list(bits[k]))
            for i, net in enumerate(sim.net_order):
                assert values[k][i] == expected[net], (k, net)

    def test_partial_word_lanes_handled(self, half_adder):
        sim = BitParallelSimulator(half_adder)
        bits = np.array([[1, 1], [1, 0], [0, 1]], dtype=np.uint8)
        words, lanes = pack_vectors(bits)
        state = sim.steady_state(words, lanes)
        values = unpack_vectors(state, lanes)
        sums = values[:, sim.net_index("sum")]
        carries = values[:, sim.net_index("carry")]
        assert list(sums) == [0, 1, 1]
        assert list(carries) == [1, 0, 0]

    def test_wrong_input_rows_rejected(self, half_adder):
        sim = BitParallelSimulator(half_adder)
        with pytest.raises(SimulationError, match="input rows"):
            sim.steady_state(np.zeros((5, 1), dtype=np.uint64), 3)

    def test_lane_overflow_rejected(self, half_adder):
        sim = BitParallelSimulator(half_adder)
        with pytest.raises(SimulationError, match="capacity"):
            sim.steady_state(np.zeros((2, 1), dtype=np.uint64), 65)

    def test_output_values_extraction(self, half_adder):
        sim = BitParallelSimulator(half_adder)
        bits = np.array([[1, 1]], dtype=np.uint8)
        words, lanes = pack_vectors(bits)
        state = sim.steady_state(words, lanes)
        outs = sim.output_values(state, lanes)
        assert outs.shape == (1, 2)
        assert list(outs[0]) == [0, 1]  # sum=0, carry=1

    def test_output_values_zero_outputs(self, half_adder):
        # Regression: an empty output list used to go through a float64
        # np.empty and crash/round-trip on the uint64 view.
        sim = BitParallelSimulator(half_adder)
        bits = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.uint8)
        words, lanes = pack_vectors(bits)
        state = sim.steady_state(words, lanes)
        half_adder.set_outputs([])
        outs = sim.output_values(state, lanes)
        assert outs.shape == (lanes, 0)
        assert outs.dtype == np.uint8


class TestToggleAccounting:
    def test_zero_delay_energy_matches_reference(self, c17, rng):
        sim = BitParallelSimulator(c17)
        caps = rng.random(len(sim.net_order))
        v1 = rng.integers(0, 2, size=(70, 5)).astype(np.uint8)
        v2 = rng.integers(0, 2, size=(70, 5)).astype(np.uint8)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        energy = sim.toggle_energy_zero_delay(w1, w2, lanes, caps)
        for k in (0, 31, 69):
            s1 = c17.evaluate_vector(list(v1[k]))
            s2 = c17.evaluate_vector(list(v2[k]))
            expected = sum(
                caps[i]
                for i, net in enumerate(sim.net_order)
                if s1[net] != s2[net]
            )
            assert energy[k] == pytest.approx(expected)

    def test_zero_delay_counts(self, half_adder):
        sim = BitParallelSimulator(half_adder)
        v1 = np.array([[0, 0]], dtype=np.uint8)
        v2 = np.array([[1, 1]], dtype=np.uint8)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        counts = sim.toggle_counts_zero_delay(w1, w2, lanes)
        by_net = dict(zip(sim.net_order, counts))
        assert by_net["a"] == 1 and by_net["b"] == 1
        assert by_net["sum"] == 0  # 0 -> 0
        assert by_net["carry"] == 1

    @pytest.mark.parametrize("circuit_name", ["c432", "c880"])
    def test_unit_delay_equals_event_driven(self, circuit_name, rng):
        circuit = build_circuit(circuit_name)
        bsim = BitParallelSimulator(circuit)
        esim = EventDrivenSimulator(circuit, UnitDelay())
        caps = np.ones(len(bsim.net_order))
        n = 20
        v1 = rng.integers(0, 2, size=(n, circuit.num_inputs)).astype(np.uint8)
        v2 = rng.integers(0, 2, size=(n, circuit.num_inputs)).astype(np.uint8)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        energy = bsim.toggle_energy_unit_delay(w1, w2, lanes, caps)
        for k in range(n):
            expected = esim.simulate_pair(
                list(v1[k]), list(v2[k])
            ).total_toggles()
            assert energy[k] == pytest.approx(expected), k

    def test_unit_delay_captures_hazard(self, hazard_circuit):
        sim = BitParallelSimulator(hazard_circuit)
        caps = np.zeros(len(sim.net_order))
        caps[sim.net_index("y")] = 1.0  # only count the hazard net
        v1 = np.array([[0]], dtype=np.uint8)
        v2 = np.array([[1]], dtype=np.uint8)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        zero_energy = sim.toggle_energy_zero_delay(w1, w2, lanes, caps)
        unit_energy = sim.toggle_energy_unit_delay(w1, w2, lanes, caps)
        assert zero_energy[0] == 0.0
        assert unit_energy[0] == 2.0  # the 0->1->0 pulse

    def test_unit_delay_ripple_adder_carry_chain(self):
        # Flipping a0 with b=111 ripples the carry chain: every fa
        # carry toggles once, deterministic and hand-checkable.
        rca = ripple_carry_adder(3)
        sim = BitParallelSimulator(rca)
        caps = np.ones(len(sim.net_order))
        base = [0, 0, 0, 1, 1, 1, 0]  # a=0, b=7, cin=0
        bump = [1, 0, 0, 1, 1, 1, 0]  # a=1 -> sum wraps to 0, carry out
        w1, lanes = pack_vectors(np.array([base], dtype=np.uint8))
        w2, _ = pack_vectors(np.array([bump], dtype=np.uint8))
        energy = sim.toggle_energy_unit_delay(w1, w2, lanes, caps)
        esim = EventDrivenSimulator(rca, UnitDelay())
        assert energy[0] == pytest.approx(
            esim.simulate_pair(base, bump).total_toggles()
        )

"""Differential tests: native kernel tier vs compiled vs interpreter.

The native tier (Numba- or C-extension-backed wavefront loop) must be
*indistinguishable* from the compiled kernel: bit-identical toggle
planes and float-identical energies (all tiers charge through the one
shared :func:`~repro.sim.compiled.charge_planes`).  Everything that
needs an accelerator skips — never fails — when neither backend is
available, and the selection tests prove the graceful degradation
contract: ``REPRO_SIM_KERNEL=native`` without an accelerator runs on
the compiled tier, logged and metric-counted, never an error.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.netlist.generators.iscas_like import build_circuit
from repro.netlist.generators.random_dag import random_layered_circuit
from repro.obs.metrics import get_registry
from repro.sim.bitsim import BitParallelSimulator, pack_vectors
from repro.sim.compiled import (
    MAX_BATCH_ARITY,
    charge_planes,
    compile_plan,
    kernel_info,
    lane_mask,
    resolve_kernel,
)
from repro.sim.native import (
    backend_name,
    native_available,
    reset_backend,
    unit_delay_planes_native,
)

HAVE_NATIVE = native_available()
requires_native = pytest.mark.skipif(
    not HAVE_NATIVE, reason="no native backend (Numba or C compiler)"
)

# Lane counts straddling word and charge-block boundaries.
LANE_COUNTS = (1, 63, 64, 65, 200)

DAG_PROFILES = (
    (8, 4, 30, 5, 401),
    (16, 8, 120, 10, 402),
    (24, 12, 400, 18, 403),
)


def _random_pairs(num_inputs: int, num_pairs: int, seed: int):
    rng = np.random.default_rng(seed)
    v1 = rng.integers(0, 2, size=(num_pairs, num_inputs), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(num_pairs, num_inputs), dtype=np.uint8)
    return v1, v2


def _random_caps(num_nets: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    caps = rng.uniform(0.5, 20.0, size=num_nets)
    caps[rng.random(num_nets) < 0.1] = 0.0
    return caps


def _mixed_arity_circuit() -> Circuit:
    """Every batch kind in one netlist: MUX, consts, NOT/BUF, XNOR, a
    NAND wider than ``MAX_BATCH_ARITY`` and ragged mid-arity gates."""
    c = Circuit("native-mixed")
    names = [f"i{k}" for k in range(MAX_BATCH_ARITY + 2)]
    for n in names:
        c.add_input(n)
    c.add_gate("zero", GateType.CONST0, [])
    c.add_gate("one", GateType.CONST1, [])
    c.add_gate("ninv", GateType.NOT, ["i0"])
    c.add_gate("buf", GateType.BUF, ["i1"])
    c.add_gate("m", GateType.MUX, ["i0", "i1", "i2"])
    c.add_gate("xn", GateType.XNOR, ["m", "ninv"])
    c.add_gate("wide", GateType.NAND, names)
    c.add_gate("nor3", GateType.NOR, ["i3", "i4", "i5"])
    c.add_gate("mix", GateType.OR, ["wide", "xn", "zero", "nor3"])
    c.add_gate("mix2", GateType.AND, ["mix", "one", "buf"])
    c.set_outputs(["mix2", "m"])
    c.validate()
    return c


def _dangling_circuit() -> Circuit:
    """Gates with zero fanout: toggles on nets that feed nothing must
    still be counted, and the 'dirty nets feed no gates' quiescent step
    must terminate identically across tiers."""
    c = Circuit("native-dangling")
    for n in ("a", "b", "c"):
        c.add_input(n)
    c.add_gate("g1", GateType.AND, ["a", "b"])
    c.add_gate("dead1", GateType.XOR, ["g1", "c"])  # no consumers
    c.add_gate("dead2", GateType.NOT, ["a"])  # no consumers
    c.add_gate("g2", GateType.OR, ["g1", "c"])
    c.set_outputs(["g2", "dead1", "dead2"])
    c.validate()
    return c


@pytest.fixture
def clean_backend(monkeypatch):
    """Restore whatever backend state the other tests rely on."""
    yield monkeypatch
    monkeypatch.undo()
    reset_backend()


class TestNativeSelection:
    def test_native_is_a_known_kernel(self):
        assert resolve_kernel("native") == "native"

    def test_env_var_selects_native(self, c17, clean_backend):
        clean_backend.setenv("REPRO_SIM_KERNEL", "native")
        sim = BitParallelSimulator(c17)
        # With an accelerator: native.  Without: the documented
        # degradation to compiled.  Never an error.
        assert sim.kernel == ("native" if HAVE_NATIVE else "compiled")
        assert sim._plan is not None

    def test_no_accelerator_degrades_to_compiled(self, c17, clean_backend):
        registry = get_registry()
        was_enabled = registry.enabled
        registry.enable()
        before = registry.counter("sim_native_fallback_total").value
        clean_backend.setenv("REPRO_NATIVE_BACKEND", "none")
        reset_backend()
        assert not native_available()
        assert backend_name() is None
        sim = BitParallelSimulator(c17, kernel="native")
        assert sim.kernel == "compiled"
        assert (
            registry.counter("sim_native_fallback_total").value == before + 1
        )
        # The degraded simulator still simulates correctly.
        v1, v2 = _random_pairs(c17.num_inputs, 10, 1)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        caps = np.ones(sim.num_nets)
        ref = BitParallelSimulator(c17, kernel="compiled")
        assert np.array_equal(
            sim.toggle_energy_unit_delay(w1, w2, lanes, caps),
            ref.toggle_energy_unit_delay(w1, w2, lanes, caps),
        )
        if not was_enabled:
            registry.disable()

    def test_kernel_info_reports_fallback(self, clean_backend):
        clean_backend.setenv("REPRO_SIM_KERNEL", "native")
        clean_backend.setenv("REPRO_NATIVE_BACKEND", "none")
        reset_backend()
        info = kernel_info()
        assert info["requested"] == "native"
        assert info["active"] == "compiled"
        assert info["fallback"] is True

    def test_kernel_info_active_native(self, clean_backend):
        if not HAVE_NATIVE:
            pytest.skip("no native backend")
        clean_backend.setenv("REPRO_SIM_KERNEL", "native")
        info = kernel_info()
        assert info["active"] == "native"
        assert info["backend"] in ("numba", "cext")
        assert info["fallback"] is False

    def test_unknown_native_backend_env_rejected(self, clean_backend):
        clean_backend.setenv("REPRO_NATIVE_BACKEND", "turbo")
        reset_backend()
        with pytest.raises(ConfigError, match="REPRO_NATIVE_BACKEND"):
            native_available()

    @requires_native
    def test_pickled_sim_keeps_native_kernel(self, c17):
        sim = BitParallelSimulator(c17, kernel="native")
        clone = pickle.loads(pickle.dumps(sim))
        assert clone.kernel == "native"
        v1, v2 = _random_pairs(c17.num_inputs, 5, 2)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        caps = np.ones(sim.num_nets)
        assert np.array_equal(
            sim.toggle_energy_unit_delay(w1, w2, lanes, caps),
            clone.toggle_energy_unit_delay(w1, w2, lanes, caps),
        )


@requires_native
class TestNativeDifferential:
    """Native vs compiled vs interpreted: exact agreement."""

    def _three_way(self, circuit, num_lanes, seed):
        native = BitParallelSimulator(circuit, kernel="native")
        comp = BitParallelSimulator(circuit, kernel="compiled")
        interp = BitParallelSimulator(circuit, kernel="interp")
        v1, v2 = _random_pairs(circuit.num_inputs, num_lanes, seed)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        caps = _random_caps(native.num_nets, seed + 1)
        e_n = native.toggle_energy_unit_delay(w1, w2, lanes, caps)
        e_c = comp.toggle_energy_unit_delay(w1, w2, lanes, caps)
        e_i = interp.toggle_energy_unit_delay(w1, w2, lanes, caps)
        # Float-identical, not merely close.
        assert np.array_equal(e_n, e_c)
        assert np.array_equal(e_c, e_i)

    @pytest.mark.parametrize("profile", DAG_PROFILES)
    @pytest.mark.parametrize("num_lanes", LANE_COUNTS)
    def test_random_dag_parity(self, profile, num_lanes):
        ni, no, ng, depth, seed = profile
        circuit = random_layered_circuit(
            f"ndag{seed}", ni, no, ng, depth, seed=seed
        )
        self._three_way(circuit, num_lanes, seed)

    @pytest.mark.parametrize("num_lanes", LANE_COUNTS)
    def test_mixed_arity_parity(self, num_lanes):
        self._three_way(_mixed_arity_circuit(), num_lanes, 17)

    @pytest.mark.parametrize("num_lanes", (1, 65))
    def test_dangling_net_parity(self, num_lanes):
        self._three_way(_dangling_circuit(), num_lanes, 23)

    @pytest.mark.parametrize("name", ("c432", "c880"))
    def test_suite_circuit_parity(self, name):
        circuit = build_circuit(name)
        native = BitParallelSimulator(circuit, kernel="native")
        comp = BitParallelSimulator(circuit, kernel="compiled")
        v1, v2 = _random_pairs(circuit.num_inputs, 300, 31)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        caps = _random_caps(native.num_nets, 32)
        assert np.array_equal(
            native.toggle_energy_unit_delay(w1, w2, lanes, caps),
            comp.toggle_energy_unit_delay(w1, w2, lanes, caps),
        )

    def test_identical_vectors_zero_energy(self):
        circuit = build_circuit("c432")
        native = BitParallelSimulator(circuit, kernel="native")
        v1, _ = _random_pairs(circuit.num_inputs, 70, 41)
        w1, lanes = pack_vectors(v1)
        caps = _random_caps(native.num_nets, 42)
        energy = native.toggle_energy_unit_delay(w1, w1, lanes, caps)
        assert np.array_equal(energy, np.zeros(lanes))

    def test_planes_bit_identical(self):
        """The raw toggle planes — not just the charged energies —
        match the compiled kernel's, including the used-plane count."""
        circuit = random_layered_circuit("nplanes", 12, 6, 90, 8, seed=55)
        plan = compile_plan(circuit)
        v1, v2 = _random_pairs(circuit.num_inputs, 130, 56)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        mask = lane_mask(lanes, w1.shape[1])
        p_n, used_n = unit_delay_planes_native(plan, w1, w2, mask)
        p_c, used_c = plan.unit_delay_planes(w1, w2, mask)
        assert used_n == used_c
        for k in range(used_n):
            assert np.array_equal(np.asarray(p_n[k]), np.asarray(p_c[k])), k

    def test_charge_accelerator_matches_numpy(self, clean_backend):
        """charge_planes with the native charge accelerator vs the pure
        numpy grouped-SWAR path: bit-identical energies."""
        circuit = random_layered_circuit("ncharge", 10, 5, 80, 7, seed=66)
        plan = compile_plan(circuit)
        v1, v2 = _random_pairs(circuit.num_inputs, 150, 67)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        mask = lane_mask(lanes, w1.shape[1])
        planes, used = plan.unit_delay_planes(w1, w2, mask)
        caps = _random_caps(plan.num_nets, 68)
        with_accel = charge_planes(planes, caps, lanes, used)
        clean_backend.setenv("REPRO_NATIVE_BACKEND", "none")
        reset_backend()
        without = charge_planes(planes, caps, lanes, used)
        assert np.array_equal(with_accel, without)

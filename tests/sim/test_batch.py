"""Batch layer: fused kernel invocations must be invisible in results.

Every test here asserts *bit* identity (``np.array_equal`` on float64
energies), not closeness: the batcher's contract is that fusing many
callers' lanes into one kernel invocation changes when the kernel runs,
never what it computes.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.netlist.generators.iscas_like import build_circuit
from repro.netlist.generators.random_dag import random_layered_circuit
from repro.obs.metrics import get_registry
from repro.sim.batch import (
    DEFAULT_BATCH_LANES,
    SimBatcher,
    batching_enabled,
    get_batcher,
    reset_batcher,
)
from repro.sim.bitsim import BitParallelSimulator, pack_vectors
from repro.sim.native import native_available
from repro.sim.power import PowerAnalyzer

requires_native = pytest.mark.skipif(
    not native_available(), reason="no native backend"
)

# Lane counts chosen to straddle word (64) and charge-block (4096)
# boundaries, plus the degenerate single pair.
JOB_SIZES = (513, 100, 4096, 1, 64, 5000, 63, 4097)


def _jobs(circuit, sizes, seed):
    rng = np.random.default_rng(seed)
    return [
        (
            rng.integers(0, 2, size=(n, circuit.num_inputs), dtype=np.uint8),
            rng.integers(0, 2, size=(n, circuit.num_inputs), dtype=np.uint8),
        )
        for n in sizes
    ]


def _run_threaded(analyzers, jobs):
    results = [None] * len(jobs)
    errors = []

    def run(i):
        try:
            results[i] = analyzers[i].powers_for_pairs(*jobs[i])
        except BaseException as exc:  # propagate to the assertion below
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(len(jobs))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("kernel", ["compiled"])
    def test_threaded_jobs_match_unbatched(self, kernel):
        circuit = build_circuit("c880")
        base = PowerAnalyzer(circuit, mode="unit", kernel=kernel)
        jobs = _jobs(circuit, JOB_SIZES, 7)
        expected = [base.powers_for_pairs(v1, v2) for v1, v2 in jobs]

        batcher = SimBatcher()
        analyzers = [
            PowerAnalyzer(circuit, mode="unit", kernel=kernel, batcher=batcher)
            for _ in jobs
        ]
        results = _run_threaded(analyzers, jobs)
        for i, (exp, got) in enumerate(zip(expected, results)):
            assert np.array_equal(exp, got), f"job {i}"

    @requires_native
    def test_threaded_native_jobs_match_unbatched_compiled(self):
        circuit = build_circuit("c1908")
        base = PowerAnalyzer(circuit, mode="unit", kernel="compiled")
        jobs = _jobs(circuit, (700, 1, 4095, 8192, 64, 129), 3)
        expected = [base.powers_for_pairs(v1, v2) for v1, v2 in jobs]

        batcher = SimBatcher()
        analyzers = [
            PowerAnalyzer(
                circuit, mode="unit", kernel="native", batcher=batcher
            )
            for _ in jobs
        ]
        results = _run_threaded(analyzers, jobs)
        for i, (exp, got) in enumerate(zip(expected, results)):
            assert np.array_equal(exp, got), f"job {i}"

    def test_mixed_circuits_never_cross_fuse(self):
        circuits = [
            random_layered_circuit(f"bx{s}", 10, 5, 60, 6, seed=s)
            for s in (81, 82, 83)
        ]
        batcher = SimBatcher()
        jobs, analyzers, expected = [], [], []
        for circuit in circuits:
            (pair,) = _jobs(circuit, (300,), 9)
            jobs.append(pair)
            analyzers.append(
                PowerAnalyzer(circuit, mode="unit", batcher=batcher)
            )
            expected.append(
                PowerAnalyzer(circuit, mode="unit").powers_for_pairs(*pair)
            )
        results = _run_threaded(analyzers, jobs)
        for exp, got in zip(expected, results):
            assert np.array_equal(exp, got)

    def test_single_caller_passthrough_identical(self):
        circuit = build_circuit("c432")
        (pair,) = _jobs(circuit, (777,), 11)
        expected = PowerAnalyzer(circuit, mode="unit").powers_for_pairs(*pair)
        batched = PowerAnalyzer(
            circuit, mode="unit", batcher=SimBatcher()
        ).powers_for_pairs(*pair)
        assert np.array_equal(expected, batched)

    def test_interp_tier_passes_through(self):
        circuit = random_layered_circuit("bint", 8, 4, 30, 5, seed=91)
        (pair,) = _jobs(circuit, (70,), 12)
        expected = PowerAnalyzer(
            circuit, mode="unit", kernel="interp"
        ).powers_for_pairs(*pair)
        batched = PowerAnalyzer(
            circuit, mode="unit", kernel="interp", batcher=SimBatcher()
        ).powers_for_pairs(*pair)
        assert np.array_equal(expected, batched)

    def test_direct_call_matches_simulator(self):
        circuit = build_circuit("c432")
        sim = BitParallelSimulator(circuit, kernel="compiled")
        rng = np.random.default_rng(13)
        v1 = rng.integers(0, 2, size=(150, circuit.num_inputs), dtype=np.uint8)
        v2 = rng.integers(0, 2, size=(150, circuit.num_inputs), dtype=np.uint8)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        caps = rng.uniform(0.5, 5.0, size=sim.num_nets)
        batcher = SimBatcher()
        assert np.array_equal(
            batcher.toggle_energy_unit_delay(sim, w1, w2, lanes, caps),
            sim.toggle_energy_unit_delay(w1, w2, lanes, caps),
        )


class TestBatchFailureAndConfig:
    def test_simulation_error_propagates_to_caller(self):
        circuit = build_circuit("c880")  # depth >> 1
        sim = BitParallelSimulator(circuit, kernel="compiled")
        rng = np.random.default_rng(14)
        v1 = rng.integers(0, 2, size=(10, circuit.num_inputs), dtype=np.uint8)
        v2 = rng.integers(0, 2, size=(10, circuit.num_inputs), dtype=np.uint8)
        w1, lanes = pack_vectors(v1)
        w2, _ = pack_vectors(v2)
        caps = np.ones(sim.num_nets)
        batcher = SimBatcher()
        with pytest.raises(SimulationError):
            batcher.toggle_energy_unit_delay(
                sim, w1, w2, lanes, caps, max_steps=1
            )
        # The batcher recovers: the next call on the same instance works.
        assert np.array_equal(
            batcher.toggle_energy_unit_delay(sim, w1, w2, lanes, caps),
            sim.toggle_energy_unit_delay(w1, w2, lanes, caps),
        )

    def test_constructor_validation(self):
        with pytest.raises(ConfigError):
            SimBatcher(max_lanes=100)
        with pytest.raises(ConfigError):
            SimBatcher(window_s=-0.1)

    def test_pickle_ships_config_only(self):
        batcher = SimBatcher(max_lanes=8192, window_s=0.0)
        clone = pickle.loads(pickle.dumps(batcher))
        assert clone.max_lanes == 8192
        assert clone.window_s == 0.0
        circuit = build_circuit("c432")
        (pair,) = _jobs(circuit, (90,), 15)
        expected = PowerAnalyzer(circuit, mode="unit").powers_for_pairs(*pair)
        got = PowerAnalyzer(
            circuit, mode="unit", batcher=clone
        ).powers_for_pairs(*pair)
        assert np.array_equal(expected, got)

    def test_global_batcher_env_config(self, monkeypatch):
        reset_batcher()
        monkeypatch.setenv("REPRO_SIM_BATCH_LANES", "8192")
        monkeypatch.setenv("REPRO_SIM_BATCH_WINDOW_MS", "0")
        try:
            batcher = get_batcher()
            assert batcher.max_lanes == 8192
            assert batcher.window_s == 0.0
            assert get_batcher() is batcher  # singleton
        finally:
            reset_batcher()

    def test_global_batcher_bad_env_rejected(self, monkeypatch):
        reset_batcher()
        monkeypatch.setenv("REPRO_SIM_BATCH_LANES", "many")
        try:
            with pytest.raises(ConfigError, match="REPRO_SIM_BATCH_LANES"):
                get_batcher()
        finally:
            reset_batcher()

    def test_batching_enabled_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BATCH", raising=False)
        assert batching_enabled()
        monkeypatch.setenv("REPRO_SIM_BATCH", "0")
        assert not batching_enabled()

    def test_default_budget_covers_one_charge_block(self):
        assert DEFAULT_BATCH_LANES >= 4096


class TestBatchMetrics:
    def test_fused_invocations_recorded(self):
        registry = get_registry()
        was_enabled = registry.enabled
        registry.enable()
        jobs_before = registry.histogram(
            "sim_batch_jobs", buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
        ).count
        circuit = build_circuit("c880")
        batcher = SimBatcher()
        jobs = _jobs(circuit, (200, 300, 150, 250), 16)
        analyzers = [
            PowerAnalyzer(circuit, mode="unit", batcher=batcher) for _ in jobs
        ]
        _run_threaded(analyzers, jobs)
        hist = registry.histogram(
            "sim_batch_jobs", buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
        )
        assert hist.count > jobs_before
        tiers = {
            m.labels
            for m in registry.metrics()
            if m.name == "sim_kernel_invocations_total"
        }
        assert any(("tier", "compiled") in labels for labels in tiers) or any(
            ("tier", "native") in labels for labels in tiers
        )
        if not was_enabled:
            registry.disable()
            registry.reset()

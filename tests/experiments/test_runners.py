"""End-to-end experiment runners on a tiny configuration."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.ablations import (
    run_ablation_finite_population,
    run_ablation_fitting,
    run_ablation_sample_size,
)
from repro.experiments.base import ExperimentTable
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.runner import (
    EXPERIMENTS,
    _save_table,
    run_all,
    run_experiment,
)
from repro.obs import get_registry
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


@pytest.fixture
def tiny(tmp_path):
    return ExperimentConfig(
        scale="smoke",
        unconstrained_size=1200,
        constrained_size=1000,
        num_runs=2,
        srs_budgets=(100, 200),
        circuits=("c432",),
        cache_dir=tmp_path / "cache",
    )


class TestTables:
    def test_table1_structure(self, tiny):
        table = run_table1(tiny)
        assert table.experiment_id == "table1"
        assert len(table.rows) == 1
        row = table.data["rows"][0]
        assert row.circuit == "c432"
        assert row.units_min >= 600  # at least 2 hyper-samples of 300
        assert row.units_max >= row.units_min
        assert 0 <= row.err_min <= row.err_max
        assert row.qualified_portion > 0

    def test_table2_structure(self, tiny):
        table = run_table2(tiny)
        # Circuit, actual max, ours-worst, ours-%, plus two columns per budget.
        assert len(table.headers) == 4 + 2 * len(tiny.srs_budgets)
        row = table.data["rows"][0]
        assert row.actual_max_mw > 0
        assert all(e <= 0 for e in row.srs_largest_errors)
        assert 0 <= row.ours_exceed_frac <= 1

    def test_tables_3_and_4_use_constrained_pools(self, tiny):
        t3 = run_experiment("table3", tiny)
        t4 = run_experiment("table4", tiny)
        assert t3.experiment_id == "table3"
        assert t4.experiment_id == "table4"
        assert "0.7" in t3.title
        assert "0.3" in t4.title


class TestWorkerIndependence:
    def test_efficiency_rows_identical_serial_vs_parallel(self, tiny):
        """Table 1-4 rows are bit-for-bit identical for any workers."""
        from repro.experiments.efficiency import run_circuit_efficiency
        from repro.vectors.population import FinitePopulation

        rng = np.random.default_rng(0)
        population = FinitePopulation(
            rng.weibull(4.0, size=5000) + 0.5, name="synthetic"
        )
        serial = run_circuit_efficiency(
            tiny.with_overrides(workers=1), population, "syn", run_seed=77
        )
        parallel = run_circuit_efficiency(
            tiny.with_overrides(workers=2), population, "syn", run_seed=77
        )
        assert np.array_equal(serial.errors, parallel.errors)
        assert np.array_equal(serial.units, parallel.units)
        assert serial.units_avg == parallel.units_avg


class TestFigures:
    def test_figure1_series(self, tiny):
        table = run_figure1(tiny, circuit="c432", num_maxima=150)
        series = table.data["series"]
        assert [s.n for s in series] == [2, 20, 30, 50]
        for s in series:
            assert s.maxima.shape == (150,)
            x, emp, fitted = s.cdf_series(50)
            assert x.shape == emp.shape == fitted.shape == (50,)
            assert emp[-1] == pytest.approx(1.0)
        # Larger n -> block maxima concentrate near the top.
        assert series[-1].maxima.mean() > series[0].maxima.mean()

    def test_figure2_normality_improves_with_m(self, tiny):
        table = run_figure2(tiny, circuit="c432", repetitions=40)
        series = table.data["series"]
        assert [s.m for s in series] == [10, 50]
        # Std of the estimate shrinks as m grows (Theorem 3).
        assert series[1].estimates.std() < series[0].estimates.std()
        for s in series:
            assert 0 <= s.ks <= 1
            assert 0 <= s.shapiro_p <= 1


class TestAblations:
    def test_fitting_ablation_reports_three_methods(self, tiny):
        table = run_ablation_fitting(tiny, repetitions=40)
        methods = [row[0] for row in table.rows]
        assert methods == ["profile MLE", "LSQ curve fit", "moments"]

    def test_sample_size_ablation(self, tiny):
        table = run_ablation_sample_size(
            tiny, circuit="c432", block_sizes=(5, 30), repetitions=25
        )
        assert len(table.rows) == 2
        assert table.rows[0][1] == 5 * tiny.m  # units per hyper-sample

    def test_finite_population_ablation_shows_correction(self, tiny):
        table = run_ablation_finite_population(
            tiny, circuit="c432", repetitions=40
        )
        mu = table.data["mu"]
        corrected = table.data["corrected"]
        actual = table.data["actual"]
        assert abs(corrected.mean() - actual) < abs(mu.mean() - actual)


class TestExtensions:
    def test_mapping_ablation(self, tiny):
        from repro.experiments.ablations import run_ablation_mapping

        table = run_ablation_mapping(tiny, pool_size=1500)
        assert len(table.rows) == 3
        gates = [row[1] for row in table.rows]
        assert gates[0] < gates[1]  # native tree smallest

    def test_extension_delay(self, tiny):
        from repro.experiments.extension_delay import run_extension_delay

        table = run_extension_delay(tiny, probe_pairs=20)
        assert len(table.rows) == 3
        for label, (result, sta, probe) in table.data.items():
            assert result.estimate <= sta + 1e-9

    def test_extension_pot(self, tiny):
        from repro.experiments.extension_pot import run_extension_pot

        table = run_extension_pot(tiny, runs=2)
        assert len(table.rows) == 1  # tiny config has one circuit
        data = table.data["c432"]
        assert data["bm_units"].shape == (2,)
        assert data["pot_units"].shape == (2,)


class TestRunnerRegistry:
    def test_all_paper_artifacts_registered(self):
        for required in (
            "table1",
            "table2",
            "table3",
            "table4",
            "figure1",
            "figure2",
            "ablation_mapping",
            "extension_delay",
        ):
            assert required in EXPERIMENTS

    def test_unknown_experiment_rejected(self, tiny):
        with pytest.raises(ConfigError, match="unknown experiment"):
            run_experiment("table9", tiny)

    def test_save_writes_txt_and_csv(self, tiny, tmp_path):
        table = run_figure1(tiny, circuit="c432", num_maxima=60)
        out = tmp_path / "results"
        table.save(out)
        assert (out / "figure1.txt").exists()
        assert (out / "figure1.csv").exists()
        text = (out / "figure1.txt").read_text()
        assert "Figure 1" in text

    def test_render_and_csv(self, tiny):
        table = run_ablation_fitting(tiny, repetitions=25)
        text = table.render()
        assert "method" in text and "rel bias" in text
        csv_text = table.csv()
        assert csv_text.splitlines()[0].startswith("method,")


class TestOutputDirValidation:
    def test_run_all_rejects_unwritable_output_dir_up_front(self, tiny, tmp_path):
        """A bad --output-dir must fail in seconds, before any sweep."""
        blocker = tmp_path / "blocker"
        blocker.write_text("")  # a *file* where a directory is needed
        import time

        start = time.perf_counter()
        with pytest.raises(ConfigError, match="not writable"):
            run_all(tiny, output_dir=blocker / "results")
        # Fail-fast: validation only, no experiment ran first.
        assert time.perf_counter() - start < 5.0

    def test_save_failure_names_the_experiment(self, tiny, tmp_path):
        table = run_figure1(tiny, circuit="c432", num_maxima=60)
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(ConfigError, match="figure1"):
            _save_table(table, blocker / "results")


class TestWallClockRecording:
    def test_run_experiment_records_wall_time(self, tiny):
        registry = get_registry()
        was_enabled = registry.enabled
        registry.enable()
        registry.snapshot(reset=True)
        try:
            table = run_experiment("figure1", tiny)
            assert table.data["wall_time_s"] > 0
            timer = registry.timer("experiment_seconds", experiment="figure1")
            assert timer.count == 1
            assert timer.total == pytest.approx(
                table.data["wall_time_s"], rel=0.01
            )
        finally:
            registry.reset()
            if not was_enabled:
                registry.disable()

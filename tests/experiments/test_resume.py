"""Experiment-level checkpointing: table serialization and run_all resume."""

import json

import numpy as np
import pytest

import repro.experiments.runner as runner_mod
from repro.errors import ConfigError
from repro.experiments.base import TABLE_SCHEMA, ExperimentTable
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    _config_key,
    run_all,
    run_experiment,
)


@pytest.fixture
def tiny(tmp_path):
    return ExperimentConfig(
        scale="smoke",
        unconstrained_size=1200,
        constrained_size=1000,
        num_runs=2,
        circuits=("c432",),
        cache_dir=tmp_path / "cache",
    )


def _table(name, config):
    """A deterministic fake experiment result (numpy cells included)."""
    return ExperimentTable(
        experiment_id=name,
        title=f"Fake {name}",
        headers=("circuit", "estimate", "units"),
        rows=[
            ("c432", np.float64(1.2345), np.int64(900)),
            ("c880", np.float64(2.5), np.int64(1500)),
        ],
        notes=f"seed={config.seed}",
        data={"estimates": np.array([1.2345, 2.5])},
    )


@pytest.fixture
def fake_experiments(monkeypatch):
    """Replace the registry with two fake experiments that count calls."""
    calls = []

    def make(name):
        def run(config):
            calls.append(name)
            return _table(name, config)

        return run

    monkeypatch.setattr(
        runner_mod, "EXPERIMENTS", {"fake_a": make("fake_a"), "fake_b": make("fake_b")}
    )
    return calls


class TestTableSerialization:
    def test_round_trip_renders_identically(self, tiny):
        table = _table("fake_a", tiny)
        payload = json.loads(json.dumps(table.to_dict()))
        assert payload["schema"] == TABLE_SCHEMA
        restored = ExperimentTable.from_dict(payload)
        assert restored.render() == table.render()
        assert restored.csv() == table.csv()

    def test_numpy_data_becomes_jsonable(self, tiny):
        payload = _table("fake_a", tiny).to_dict()
        json.dumps(payload)  # must not raise
        assert payload["data"]["estimates"] == [1.2345, 2.5]


class TestConfigKey:
    def test_excludes_non_result_fields(self, tiny):
        base = _config_key(tiny)
        varied = _config_key(
            tiny.with_overrides(
                workers=4,
                retries=3,
                task_timeout=60.0,
                cache_dir=tiny.cache_dir / "elsewhere",
            )
        )
        assert varied == base

    def test_changes_with_result_affecting_fields(self, tiny):
        assert _config_key(tiny.with_overrides(seed=7)) != _config_key(tiny)
        assert _config_key(tiny.with_overrides(num_runs=3)) != _config_key(tiny)


class TestRunExperimentResume:
    def test_resume_requires_checkpoint_dir(self, tiny):
        with pytest.raises(ConfigError, match="checkpoint_dir"):
            run_experiment("table1", tiny, resume=True)

    def test_checkpoint_written_then_loaded(
        self, tiny, tmp_path, fake_experiments
    ):
        ck = tmp_path / "ck"
        first = run_experiment("fake_a", tiny, checkpoint_dir=ck, resume=True)
        assert fake_experiments == ["fake_a"]
        assert (ck / "fake_a.checkpoint.json").exists()
        again = run_experiment("fake_a", tiny, checkpoint_dir=ck, resume=True)
        assert fake_experiments == ["fake_a"]  # not re-run
        assert again.render() == first.render()
        assert again.csv() == first.csv()

    def test_without_resume_recomputes_and_overwrites(
        self, tiny, tmp_path, fake_experiments
    ):
        ck = tmp_path / "ck"
        run_experiment("fake_a", tiny, checkpoint_dir=ck)
        run_experiment("fake_a", tiny, checkpoint_dir=ck)
        assert fake_experiments == ["fake_a", "fake_a"]

    def test_stale_config_recomputes(self, tiny, tmp_path, fake_experiments):
        ck = tmp_path / "ck"
        run_experiment("fake_a", tiny, checkpoint_dir=ck, resume=True)
        run_experiment(
            "fake_a",
            tiny.with_overrides(seed=7),
            checkpoint_dir=ck,
            resume=True,
        )
        assert fake_experiments == ["fake_a", "fake_a"]

    def test_worker_count_does_not_invalidate(
        self, tiny, tmp_path, fake_experiments
    ):
        ck = tmp_path / "ck"
        run_experiment("fake_a", tiny, checkpoint_dir=ck, resume=True)
        run_experiment(
            "fake_a",
            tiny.with_overrides(workers=4, retries=2),
            checkpoint_dir=ck,
            resume=True,
        )
        assert fake_experiments == ["fake_a"]

    def test_corrupt_checkpoint_recomputes(
        self, tiny, tmp_path, fake_experiments
    ):
        ck = tmp_path / "ck"
        run_experiment("fake_a", tiny, checkpoint_dir=ck, resume=True)
        (ck / "fake_a.checkpoint.json").write_text("{torn write")
        run_experiment("fake_a", tiny, checkpoint_dir=ck, resume=True)
        assert fake_experiments == ["fake_a", "fake_a"]


class TestRunAllResume:
    def test_resume_needs_somewhere_to_look(self, tiny, fake_experiments):
        with pytest.raises(ConfigError, match="checkpoint_dir"):
            run_all(tiny, resume=True)

    def test_killed_sweep_resumes_with_identical_artifacts(
        self, tiny, tmp_path, fake_experiments, monkeypatch
    ):
        # Uninterrupted reference sweep.
        ref_dir = tmp_path / "reference"
        run_all(tiny, output_dir=ref_dir)

        # Sweep that dies after the first experiment completes.
        out_dir = tmp_path / "resumed"
        real_b = runner_mod.EXPERIMENTS["fake_b"]

        def dying_b(config):
            raise KeyboardInterrupt("killed mid-sweep")

        runner_mod.EXPERIMENTS["fake_b"] = dying_b
        with pytest.raises(KeyboardInterrupt):
            run_all(tiny, output_dir=out_dir, resume=True)
        assert fake_experiments.count("fake_a") == 2  # reference + first try

        # Restart with --resume: only the unfinished experiment runs,
        # checkpoints derived from <output_dir>/.checkpoints.
        runner_mod.EXPERIMENTS["fake_b"] = real_b
        tables = run_all(tiny, output_dir=out_dir, resume=True)
        assert fake_experiments.count("fake_a") == 2  # loaded, not re-run
        assert fake_experiments.count("fake_b") == 2  # reference + resume
        assert (out_dir / ".checkpoints" / "fake_a.checkpoint.json").exists()

        assert [t.experiment_id for t in tables] == ["fake_a", "fake_b"]
        for name in ("fake_a", "fake_b"):
            for ext in (".txt", ".csv"):
                resumed = (out_dir / f"{name}{ext}").read_text()
                reference = (ref_dir / f"{name}{ext}").read_text()
                assert resumed == reference

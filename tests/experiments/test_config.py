"""Experiment configuration and scale tiers."""

from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.experiments.config import (
    PAPER_CIRCUITS,
    ExperimentConfig,
    default_config,
)


class TestConfig:
    def test_paper_circuit_list(self):
        assert len(PAPER_CIRCUITS) == 9
        assert PAPER_CIRCUITS[0] == "c1355"  # paper table order

    def test_defaults_are_ci_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        cfg = default_config()
        assert cfg.scale == "ci"
        assert cfg.unconstrained_size == 20_000
        assert cfg.n == 30 and cfg.m == 10
        assert cfg.error == 0.05 and cfg.confidence == 0.90

    def test_paper_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        cfg = default_config()
        assert cfg.unconstrained_size == 160_000
        assert cfg.constrained_size == 80_000
        assert cfg.num_runs == 100

    def test_smoke_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        cfg = default_config()
        assert cfg.scale == "smoke"
        assert cfg.num_runs == 5
        assert len(cfg.circuits) == 3

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ConfigError):
            default_config()

    def test_cache_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        cfg = default_config()
        assert cfg.cache_dir == tmp_path / "cache"

    def test_with_overrides(self):
        cfg = ExperimentConfig()
        cfg2 = cfg.with_overrides(num_runs=3, circuits=("c432",))
        assert cfg2.num_runs == 3
        assert cfg.num_runs == 20  # original untouched

    def test_invalid_values(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(scale="huge")
        with pytest.raises(ConfigError):
            ExperimentConfig(unconstrained_size=10)
        with pytest.raises(ConfigError):
            ExperimentConfig(num_runs=0)
        with pytest.raises(ConfigError):
            ExperimentConfig(workers=0)

    def test_workers_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_config().workers == 1

    def test_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_config().workers == 4
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert default_config().workers == 4

    def test_workers_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigError):
            default_config()

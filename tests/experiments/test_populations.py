"""Experiment population building and caching."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.populations import (
    build_population,
    get_population,
    population_seed,
)
from repro.vectors.activity import mean_activity, per_line_transition_prob


@pytest.fixture
def config(tmp_path):
    return ExperimentConfig(
        scale="smoke",
        unconstrained_size=1500,
        constrained_size=1200,
        num_runs=2,
        circuits=("c432",),
        cache_dir=tmp_path / "cache",
    )


class TestBuild:
    def test_unconstrained_population_properties(self, config):
        pop = build_population(config, "c432", "unconstrained")
        assert pop.size == 1500
        assert pop.actual_max_power > 0
        # activity constraint honoured
        activity = (pop.v1 != pop.v2).mean(axis=1)
        assert (activity > 0.3).all()

    def test_high_kind_transition_probability(self, config):
        pop = build_population(config, "c432", "high")
        assert pop.size == 1200
        observed = per_line_transition_prob(pop.v1, pop.v2)
        assert observed.mean() == pytest.approx(0.7, abs=0.03)

    def test_low_kind_transition_probability(self, config):
        pop = build_population(config, "c432", "low")
        observed = mean_activity(pop.v1, pop.v2)
        assert observed == pytest.approx(0.3, abs=0.03)

    def test_unknown_kind_rejected(self, config):
        with pytest.raises(ConfigError):
            build_population(config, "c432", "medium")

    def test_metadata_provenance(self, config):
        pop = build_population(config, "c432", "unconstrained")
        assert pop.metadata["circuit"] == "c432"
        assert pop.metadata["kind"] == "unconstrained"
        assert pop.metadata["sim_mode"] == config.sim_mode


class TestCaching:
    def test_disk_cache_roundtrip(self, config):
        first = build_population(config, "c432", "unconstrained")
        cached_files = list(config.cache_dir.glob("pop_*.npz"))
        assert len(cached_files) == 1
        second = build_population(config, "c432", "unconstrained")
        assert np.array_equal(first.powers, second.powers)

    def test_memory_cache_identity(self, config):
        a = get_population(config, "c432", "unconstrained")
        b = get_population(config, "c432", "unconstrained")
        assert a is b

    def test_seed_derivation_stable_and_distinct(self, config):
        s1 = population_seed(config, "c432", "high")
        s2 = population_seed(config, "c432", "high")
        s3 = population_seed(config, "c432", "low")
        s4 = population_seed(config, "c880", "high")
        assert s1 == s2
        assert len({s1, s3, s4}) == 3

    def test_different_sizes_different_cache_entries(self, config):
        build_population(config, "c432", "unconstrained")
        bigger = config.with_overrides(unconstrained_size=1600)
        build_population(bigger, "c432", "unconstrained")
        assert len(list(config.cache_dir.glob("pop_*.npz"))) == 2

"""Table rendering/CSV helpers and the batch runner."""

import numpy as np
import pytest

from repro.experiments.base import ExperimentTable
from repro.experiments.tables import render_table, to_csv


class TestRenderTable:
    def test_alignment_and_borders(self):
        text = render_table(
            "My Title",
            ["name", "value"],
            [["a", 1], ["long-name", 123456]],
        )
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert lines[1].startswith("+") and lines[1].endswith("+")
        # all body rows share the same width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_float_formatting(self):
        text = render_table("t", ["x"], [[0.000123456], [float("nan")], [1234567.0]])
        assert "0.000123" in text
        assert "-" in text  # nan placeholder
        assert "1.23e+06" in text

    def test_to_csv(self):
        csv_text = to_csv(["a", "b"], [[1, "x"], [2, "y,z"]])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[2] == '2,"y,z"'


class TestExperimentTable:
    def make(self):
        return ExperimentTable(
            experiment_id="demo",
            title="Demo table",
            headers=("k", "v"),
            rows=[("a", 1)],
            notes="a note",
            data={"raw": np.arange(3)},
        )

    def test_render_includes_notes(self):
        text = self.make().render()
        assert "Demo table" in text
        assert "a note" in text

    def test_save_artifacts(self, tmp_path):
        table = self.make()
        table.save(tmp_path)
        assert (tmp_path / "demo.txt").read_text().startswith("Demo table")
        assert (tmp_path / "demo.csv").read_text().startswith("k,v")

    def test_csv_matches_rows(self):
        assert "a,1" in self.make().csv()


class TestRunAll:
    def test_run_all_saves_every_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import EXPERIMENTS, run_all

        tiny = ExperimentConfig(
            scale="smoke",
            unconstrained_size=800,
            constrained_size=800,
            num_runs=2,
            srs_budgets=(50, 100),
            circuits=("c432",),
            cache_dir=tmp_path / "cache",
        )
        results = run_all(tiny, output_dir=tmp_path / "out")
        assert len(results) == len(EXPERIMENTS)
        for name in EXPERIMENTS:
            assert (tmp_path / "out" / f"{name}.txt").exists(), name

"""Exception hierarchy and failure-injection behaviour."""

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    EstimationError,
    FitError,
    NetlistError,
    ParseError,
    PopulationError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            NetlistError,
            ParseError,
            SimulationError,
            PopulationError,
            EstimationError,
            FitError,
            ConfigError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        if exc is ParseError:
            instance = exc("boom", 3)
        else:
            instance = exc("boom")
        assert isinstance(instance, ReproError)

    def test_fit_error_is_estimation_error(self):
        assert issubclass(FitError, EstimationError)

    def test_parse_error_line_numbers(self):
        err = ParseError("bad token", line_no=7)
        assert err.line_no == 7
        assert "line 7" in str(err)
        bare = ParseError("no location")
        assert bare.line_no is None
        assert "line" not in str(bare)

    def test_one_catch_covers_the_library(self, c17):
        from repro.sim.power import PowerAnalyzer

        with pytest.raises(ReproError):
            PowerAnalyzer(c17, mode="nonsense")
        with pytest.raises(ReproError):
            c17.evaluate({})


class TestFailureInjection:
    def test_estimator_survives_fit_failures(self, monkeypatch):
        """If most MLE fits blow up, the run degrades, never crashes."""
        from repro.estimation import mc_estimator
        from repro.vectors.population import FinitePopulation

        rng_pool = np.random.default_rng(0)
        pop = FinitePopulation(rng_pool.random(5000), name="uniform")
        calls = {"n": 0}
        real_fit = mc_estimator.fit_weibull_mle

        def flaky_fit(x, **kwargs):
            calls["n"] += 1
            if calls["n"] % 2:
                raise FitError("injected failure")
            return real_fit(x, **kwargs)

        monkeypatch.setattr(mc_estimator, "fit_weibull_mle", flaky_fit)
        est = mc_estimator.MaxPowerEstimator(pop, max_hyper_samples=6)
        result = est.run(rng=1)
        assert np.isfinite(result.estimate)
        assert any(hs.degenerate for hs in result.hyper_samples)

    def test_population_load_rejects_corrupt_file(self, tmp_path):
        from repro.vectors.population import FinitePopulation

        bad = tmp_path / "corrupt.npz"
        bad.write_bytes(b"this is not an npz archive")
        with pytest.raises(Exception):
            FinitePopulation.load(bad)

    def test_streaming_population_propagates_generator_errors(self):
        from repro.vectors.population import StreamingPopulation

        def exploding(n, rng):
            raise RuntimeError("simulator crashed")

        pop = StreamingPopulation(exploding, lambda a, b: np.zeros(1))
        with pytest.raises(RuntimeError, match="simulator crashed"):
            pop.sample_powers(5, rng=0)

    def test_event_budget_guard_raises_not_hangs(self, c17):
        from repro.sim.delay import UnitDelay
        from repro.sim.event_sim import EventDrivenSimulator

        sim = EventDrivenSimulator(c17, UnitDelay())
        with pytest.raises(SimulationError, match="budget"):
            sim.simulate_pair([0] * 5, [1] * 5, max_events=1)

"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate", "c432"])
        assert args.population == 20_000
        assert args.mode == "zero"
        assert args.error == 0.05
        assert args.workers == 1

    def test_experiment_workers_flag(self):
        args = build_parser().parse_args(
            ["experiment", "table1", "--workers", "4"]
        )
        assert args.workers == 4
        # default: defer to REPRO_WORKERS / config default
        assert build_parser().parse_args(
            ["experiment", "table1"]
        ).workers is None

    def test_experiment_fault_flags(self):
        args = build_parser().parse_args(
            [
                "experiment",
                "table1",
                "--retries",
                "2",
                "--task-timeout",
                "30",
                "--checkpoint",
                "ck",
                "--resume",
            ]
        )
        assert args.retries == 2
        assert args.task_timeout == 30.0
        assert str(args.checkpoint) == "ck"
        assert args.resume is True

    def test_experiment_fault_flags_default_to_env(self):
        args = build_parser().parse_args(["experiment", "table1"])
        assert args.retries is None
        assert args.task_timeout is None
        assert args.checkpoint is None
        assert args.resume is False

    def test_obs_flags_default_off(self):
        for argv in (
            ["estimate", "c432"],
            ["experiment", "table1"],
            ["delay", "c432"],
        ):
            args = build_parser().parse_args(argv)
            assert args.trace is None
            assert args.metrics is None

    def test_obs_flags_parse_paths(self):
        args = build_parser().parse_args(
            ["estimate", "c432", "--trace", "t.jsonl", "--metrics", "m.json"]
        )
        assert str(args.trace) == "t.jsonl"
        assert str(args.metrics) == "m.json"

    def test_report_metrics_flag_is_separate_dest(self):
        args = build_parser().parse_args(["report", "--metrics", "m.json"])
        assert args.circuit is None
        assert str(args.metrics_in) == "m.json"


class TestCommands:
    def test_suite_lists_circuits(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        for name in ("c432", "c6288", "c7552"):
            assert name in out

    def test_info_builtin(self, capsys):
        assert main(["info", "c432"]) == 0
        out = capsys.readouterr().out
        assert "36 PI" in out
        assert "critical" in out

    def test_info_bench_file(self, tmp_path, capsys, c17):
        from repro.netlist.bench import dump_bench

        path = tmp_path / "mine.bench"
        dump_bench(c17, path)
        assert main(["info", str(path)]) == 0
        assert "5 PI" in capsys.readouterr().out

    def test_info_unknown_circuit_fails_cleanly(self, capsys):
        assert main(["info", "c404"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_estimate_small_pool(self, capsys):
        rc = main(
            [
                "estimate",
                "c432",
                "--population",
                "1500",
                "--seed",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "actual max" in out
        assert "relative error" in out

    def test_estimate_constrained_streaming(self, capsys):
        rc = main(
            [
                "estimate",
                "c432",
                "--population",
                "0",
                "--activity",
                "0.7",
                "--seed",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "streaming" in out

    def test_experiment_command(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        rc = main(
            [
                "experiment",
                "ablation_fitting",
                "--output-dir",
                str(tmp_path / "out"),
            ]
        )
        assert rc == 0
        assert (tmp_path / "out" / "ablation_fitting.txt").exists()
        assert "Ablation A" in capsys.readouterr().out

    def test_experiment_checkpoint_resume(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        ck = tmp_path / "ck"
        rc = main(
            [
                "experiment",
                "ablation_fitting",
                "--checkpoint",
                str(ck),
                "--resume",
            ]
        )
        assert rc == 0
        first = capsys.readouterr().out
        assert (ck / "ablation_fitting.checkpoint.json").exists()
        # Env-var equivalents resume from the same checkpoint: the
        # rendered table must come back identical without recomputing.
        monkeypatch.setenv("REPRO_CHECKPOINT", str(ck))
        monkeypatch.setenv("REPRO_RESUME", "1")
        assert main(["experiment", "ablation_fitting"]) == 0
        assert capsys.readouterr().out == first

    def test_experiment_unknown_fails_cleanly(self, capsys):
        assert main(["experiment", "table99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_report_command(self, capsys):
        assert main(["report", "c432", "--pairs", "500", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "power report" in out
        assert "top 3 nets" in out

    def test_report_with_activity_constraint(self, capsys):
        assert main(
            ["report", "c432", "--pairs", "500", "--activity", "0.2"]
        ) == 0
        assert "total average power" in capsys.readouterr().out

    def test_transform_command_roundtrip(self, tmp_path, capsys, c17):
        from repro.netlist.bench import dump_bench, load_bench

        src = tmp_path / "c17.bench"
        dump_bench(c17, src)
        dst = tmp_path / "c17_2in.bench"
        assert main(["transform", str(src), "two-input", str(dst)]) == 0
        out = capsys.readouterr().out
        assert "equivalence verified" in out
        assert load_bench(dst).num_gates == c17.num_gates

    def test_transform_nand_grows_circuit(self, tmp_path, capsys):
        from repro.netlist.bench import dump_bench, load_bench
        from repro.netlist.generators import parity_tree

        src = tmp_path / "p4.bench"
        dump_bench(parity_tree(4), src)
        dst = tmp_path / "p4_nand.bench"
        assert main(["transform", str(src), "nand", str(dst)]) == 0
        assert load_bench(dst).num_gates == 12  # 3 XOR * 4 NAND

    def test_delay_command(self, capsys):
        assert main(
            ["delay", "c432", "--n", "10", "--m", "5", "--max-rounds", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "D_max" in out
        assert "static timing bound" in out

    def test_wave_command_random(self, tmp_path, capsys, c17):
        from repro.netlist.bench import dump_bench
        from repro.sim.vcd import parse_vcd

        src = tmp_path / "c17.bench"
        dump_bench(c17, src)
        dst = tmp_path / "c17.vcd"
        assert main(["wave", str(src), str(dst)]) == 0
        data = parse_vcd(dst.read_text())
        assert set(data.signals) == set(c17.nets)

    def test_wave_command_explicit_vectors(self, tmp_path, capsys, c17):
        from repro.netlist.bench import dump_bench

        src = tmp_path / "c17.bench"
        dump_bench(c17, src)
        dst = tmp_path / "c17.vcd"
        assert main(
            ["wave", str(src), str(dst), "--vectors", "00000,11111"]
        ) == 0
        assert "transitions" in capsys.readouterr().out

    def test_wave_bad_vector_spec(self, tmp_path, capsys, c17):
        from repro.netlist.bench import dump_bench

        src = tmp_path / "c17.bench"
        dump_bench(c17, src)
        assert main(
            ["wave", str(src), str(tmp_path / "o.vcd"), "--vectors", "0101"]
        ) == 1

    def test_estimate_with_trace_and_metrics(self, tmp_path, capsys):
        import json

        from repro.obs import get_registry, load_trace

        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        rc = main(
            [
                "estimate",
                "c432",
                "--population",
                "1500",
                "--seed",
                "3",
                "--trace",
                str(trace),
                "--metrics",
                str(metrics),
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "trace written to" in err
        assert "metrics written to" in err
        events = load_trace(trace)
        assert any(e["event"] == "hyper_sample" for e in events)
        assert any(e["event"] == "run_end" for e in events)
        snap = json.loads(metrics.read_text())
        names = {c["name"] for c in snap["counters"]}
        assert "estimator_runs_total" in names
        assert "estimator_units_total" in names
        # the CLI session restores the globally-disabled default
        assert not get_registry().enabled

    def test_estimate_metrics_prom_format(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        rc = main(
            [
                "estimate",
                "c432",
                "--population",
                "1500",
                "--seed",
                "3",
                "--metrics",
                str(metrics),
            ]
        )
        assert rc == 0
        assert "# TYPE repro_estimator_runs_total counter" in metrics.read_text()

    def test_trace_env_var(self, tmp_path, capsys, monkeypatch):
        from repro.obs import load_trace

        trace = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        rc = main(["estimate", "c432", "--population", "1500", "--seed", "3"])
        assert rc == 0
        assert load_trace(trace)

    def test_report_metrics_on_trace_and_snapshot(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(
            [
                "estimate",
                "c432",
                "--population",
                "1500",
                "--seed",
                "3",
                "--trace",
                str(trace),
                "--metrics",
                str(metrics),
            ]
        ) == 0
        capsys.readouterr()

        assert main(["report", "--metrics", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "convergence diagnostics" in out
        assert "rel CI half-width by k" in out

        assert main(["report", "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "convergence diagnostics" in out
        assert "runs: 1" in out

    def test_report_without_circuit_or_metrics_fails(self, capsys):
        assert main(["report"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_transform_no_verify_skips_check(self, tmp_path, capsys, c17):
        from repro.netlist.bench import dump_bench

        src = tmp_path / "c17.bench"
        dump_bench(c17, src)
        dst = tmp_path / "out.bench"
        assert main(
            ["transform", str(src), "sweep", str(dst), "--no-verify"]
        ) == 0
        assert "equivalence" not in capsys.readouterr().out

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.sim.power import PowerAnalyzer
from repro.vectors.generators import random_vector_pairs
from repro.vectors.population import FinitePopulation

C17_BENCH = """
# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


@pytest.fixture
def c17() -> Circuit:
    """The classic 6-NAND c17 benchmark."""
    return parse_bench(C17_BENCH, name="c17")


@pytest.fixture
def half_adder() -> Circuit:
    c = Circuit("half_adder")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("sum", GateType.XOR, ["a", "b"])
    c.add_gate("carry", GateType.AND, ["a", "b"])
    c.set_outputs(["sum", "carry"])
    c.validate()
    return c


@pytest.fixture
def hazard_circuit() -> Circuit:
    """y = a AND (NOT a after a buffer chain): static-0 hazard generator.

    Under unit delay, a 0->1 transition on ``a`` produces a transient
    pulse on ``y`` because the inverted path arrives two steps late.
    """
    c = Circuit("hazard")
    c.add_input("a")
    c.add_gate("abuf", GateType.BUF, ["a"])
    c.add_gate("na", GateType.NOT, ["abuf"])
    c.add_gate("y", GateType.AND, ["a", "na"])
    c.set_outputs(["y"])
    c.validate()
    return c


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_population(c17) -> FinitePopulation:
    """A fully simulated 3000-pair pool on c17 (unit-delay power)."""
    analyzer = PowerAnalyzer(c17, mode="unit")
    return FinitePopulation.build(
        lambda n, g: random_vector_pairs(n, c17.num_inputs, g),
        analyzer.powers_for_pairs,
        num_pairs=3000,
        seed=99,
        name="c17-pool",
    )

"""The versioned wire-format module (repro.schemas)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EstimatorConfig
from repro.errors import SchemaError
from repro.estimation.result import EstimationResult, HyperSample
from repro.evt.confidence import MeanInterval
from repro.evt.mle import WeibullFit
from repro.schemas import (
    SCHEMA_MAJOR,
    SCHEMA_VERSION,
    check_schema_version,
    dump_estimation_result,
    dump_estimator_config,
    dump_job_spec,
    load_estimation_result,
    load_estimator_config,
    load_job_spec,
    parse_schema_version,
    stamp,
)
from repro.service.jobs import JobSpec


class TestVersionParsing:
    def test_current_version_parses_to_major(self):
        major, _minor = parse_schema_version(SCHEMA_VERSION)
        assert major == SCHEMA_MAJOR

    @pytest.mark.parametrize("bad", ["", "1", "one.two", "1.2.3", None, 1.0])
    def test_junk_versions_rejected(self, bad):
        with pytest.raises(SchemaError):
            parse_schema_version(bad)

    def test_missing_version_accepted_as_legacy(self):
        check_schema_version({"estimate": 1.0})  # no raise

    def test_minor_skew_tolerated(self):
        check_schema_version({"schema_version": f"{SCHEMA_MAJOR}.99"})

    def test_major_mismatch_rejected(self):
        with pytest.raises(SchemaError, match="major"):
            check_schema_version(
                {"schema_version": f"{SCHEMA_MAJOR + 1}.0"}, "test payload"
            )

    def test_stamp_adds_version(self):
        assert stamp({"a": 1})["schema_version"] == SCHEMA_VERSION


@pytest.fixture
def result() -> EstimationResult:
    from repro.evt.distributions import GeneralizedWeibull

    maxima = np.array([1.0, 1.2, 1.1, 1.3, 1.15])
    fit = WeibullFit(
        distribution=GeneralizedWeibull(alpha=2.5, beta=0.5, mu=1.4),
        loglik=-3.0,
        method="profile-mle",
        shape_gt2=True,
    )
    hyper = HyperSample(
        index=1, maxima=maxima, fit=fit, estimate=1.35, units_used=300
    )
    interval = MeanInterval(mean=1.35, half_width=0.05, level=0.9, k=2, std=0.02)
    return EstimationResult(
        estimate=1.35,
        interval=interval,
        converged=True,
        error_bound=0.05,
        confidence=0.9,
        hyper_samples=[hyper],
        units_used=300,
        population_name="test-pop",
        population_size=1000,
        ci_trajectory=[0.04],
    )


class TestResultSchema:
    def test_every_layer_is_stamped(self, result):
        data = dump_estimation_result(result)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["hyper_samples"][0]["schema_version"] == SCHEMA_VERSION
        assert data["hyper_samples"][0]["fit"]["schema_version"] == SCHEMA_VERSION
        assert data["interval"]["schema_version"] == SCHEMA_VERSION

    def test_round_trip(self, result):
        again = load_estimation_result(dump_estimation_result(result))
        assert again.to_dict() == result.to_dict()

    def test_legacy_payload_without_version_loads(self, result):
        data = dump_estimation_result(result)
        data.pop("schema_version")
        assert load_estimation_result(data).estimate == result.estimate

    def test_future_major_rejected(self, result):
        data = dump_estimation_result(result)
        data["schema_version"] = f"{SCHEMA_MAJOR + 1}.0"
        with pytest.raises(SchemaError):
            load_estimation_result(data)


class TestConfigSchema:
    def test_round_trip(self):
        config = EstimatorConfig(error=0.03, workers=4, task_timeout=2.5)
        assert load_estimator_config(dump_estimator_config(config)) == config

    def test_partial_payload_takes_defaults(self):
        config = load_estimator_config({"error": 0.1})
        assert config.error == 0.1
        assert config.m == EstimatorConfig().m

    def test_future_major_rejected(self):
        with pytest.raises(SchemaError):
            load_estimator_config(
                {"schema_version": f"{SCHEMA_MAJOR + 1}.0", "error": 0.1}
            )


class TestJobSpecSchema:
    def test_round_trip(self):
        spec = JobSpec(
            circuit="c432",
            config=EstimatorConfig(error=0.04),
            seed=7,
            num_runs=3,
            population_size=500,
            activity=0.2,
        )
        assert load_job_spec(dump_job_spec(spec)) == spec

    def test_minimal_payload(self):
        spec = load_job_spec({"circuit": "c432"})
        assert spec.seed == 0 and spec.num_runs == 1
        assert spec.config == EstimatorConfig()

    def test_missing_circuit_rejected(self):
        with pytest.raises(SchemaError, match="circuit"):
            load_job_spec({"seed": 1})


class TestEstimatorSelectionSchema:
    """The 1.1 estimator-selection fields: method + POT policy + decision."""

    def test_method_round_trips(self):
        config = EstimatorConfig(
            method="pot", pot_threshold_quantile=0.92, pot_batch_size=400
        )
        assert load_estimator_config(dump_estimator_config(config)) == config

    def test_legacy_config_without_method_loads_as_fixed(self):
        config = load_estimator_config({"error": 0.1})
        assert config.method == "fixed"
        assert config.pot_threshold_quantile is None
        assert config.pot_batch_size is None

    def test_decision_round_trips(self, result):
        from repro.estimation.result import AdaptiveDecision

        result.method = "auto"
        result.decision = AdaptiveDecision(
            chosen_n=60,
            chosen_m=10,
            family="pot",
            cv_score_weibull=0.12,
            cv_score_pot=0.08,
            pilot_units=2400,
            candidate_ns=[10, 30, 60],
            pilot_fallback_rate=0.25,
        )
        data = dump_estimation_result(result)
        assert data["method"] == "auto"
        assert data["decision"]["schema_version"] == SCHEMA_VERSION
        again = load_estimation_result(data)
        assert again.decision == result.decision
        assert again.to_dict() == result.to_dict()

    def test_legacy_result_without_method_loads_as_fixed(self, result):
        data = dump_estimation_result(result)
        data.pop("method", None)
        data.pop("decision", None)
        again = load_estimation_result(data)
        assert again.method == "fixed"
        assert again.decision is None

    def test_fingerprint_stable_for_legacy_default_specs(self):
        from repro.schemas import fingerprint_job_spec

        spec = JobSpec(circuit="c432", config=EstimatorConfig(), seed=1)
        payload = dump_job_spec(spec)
        # What a 1.0 build would have sent: no estimator-selection keys.
        for key in ("method", "pot_threshold_quantile", "pot_batch_size"):
            payload["config"].pop(key, None)
        legacy = load_job_spec(payload)
        assert fingerprint_job_spec(legacy) == fingerprint_job_spec(spec)

    def test_fingerprint_keys_on_non_default_method(self):
        from repro.schemas import fingerprint_job_spec

        fixed = JobSpec(circuit="c432", config=EstimatorConfig(), seed=1)
        auto = JobSpec(
            circuit="c432", config=EstimatorConfig(method="auto"), seed=1
        )
        pot = JobSpec(
            circuit="c432",
            config=EstimatorConfig(method="pot", pot_threshold_quantile=0.9),
            seed=1,
        )
        prints = {
            fingerprint_job_spec(fixed),
            fingerprint_job_spec(auto),
            fingerprint_job_spec(pot),
        }
        assert len(prints) == 3

"""Structural Verilog subset parser/writer."""

import itertools

import pytest

from repro.errors import ParseError
from repro.netlist.gates import GateType
from repro.netlist.verilog import (
    dump_verilog,
    load_verilog,
    parse_verilog,
    write_verilog,
)

C17_VERILOG = """
// c17 in gate-primitive Verilog
module c17 (G1, G2, G3, G6, G7, G22, G23);
  input  G1, G2, G3, G6, G7;
  output G22, G23;
  wire   G10, G11, G16, G19;
  nand g0 (G10, G1, G3);
  nand g1 (G11, G3, G6);
  nand g2 (G16, G2, G11);
  nand g3 (G19, G11, G7);
  nand g4 (G22, G10, G16);
  nand g5 (G23, G16, G19);
endmodule
"""


class TestParse:
    def test_c17(self):
        c = parse_verilog(C17_VERILOG)
        assert c.name == "c17"
        assert c.num_inputs == 5
        assert c.num_outputs == 2
        assert c.num_gates == 6

    def test_instance_name_optional(self):
        text = """
        module m (a, y);
          input a; output y;
          not (y, a);
        endmodule
        """
        c = parse_verilog(text)
        assert c.gate("y").gtype is GateType.NOT

    def test_assign_becomes_buffer(self):
        text = """
        module m (a, y);
          input a; output y;
          assign y = a;
        endmodule
        """
        assert parse_verilog(text).gate("y").gtype is GateType.BUF

    def test_block_comments_stripped(self):
        text = """
        /* multi
           line */ module m (a, y);
          input a; output y;
          buf (y, a); // buffer
        endmodule
        """
        assert parse_verilog(text).num_gates == 1

    def test_missing_module_rejected(self):
        with pytest.raises(ParseError, match="no module"):
            parse_verilog("wire x;")

    def test_missing_endmodule_rejected(self):
        with pytest.raises(ParseError, match="endmodule"):
            parse_verilog("module m (a); input a;")

    def test_vectors_rejected(self):
        text = """
        module m (a, y);
          input [3:0] a; output y;
        endmodule
        """
        with pytest.raises(ParseError, match="vector"):
            parse_verilog(text)

    def test_unknown_primitive_rejected(self):
        text = """
        module m (a, y);
          input a; output y;
          always @(a) y = a;
        endmodule
        """
        with pytest.raises(ParseError):
            parse_verilog(text)

    def test_name_override(self):
        c = parse_verilog(C17_VERILOG, name="renamed")
        assert c.name == "renamed"


class TestWrite:
    def test_roundtrip_functional(self, c17):
        text = write_verilog(c17)
        again = parse_verilog(text)
        for bits in itertools.product((0, 1), repeat=5):
            v1 = c17.evaluate_vector(bits)
            v2 = again.evaluate_vector(bits)
            for out in c17.outputs:
                assert v1[out] == v2[out]

    def test_mux_decomposed(self):
        from repro.netlist.circuit import Circuit

        c = Circuit("selector")
        for name in ("s", "d0", "d1"):
            c.add_input(name)
        c.add_gate("y", GateType.MUX, ["s", "d0", "d1"])
        c.set_outputs(["y"])
        text = write_verilog(c)
        assert "mux" not in text  # decomposed into and/or/not
        again = parse_verilog(text)
        for bits in itertools.product((0, 1), repeat=3):
            v1 = c.evaluate_vector(bits)["y"]
            v2 = again.evaluate_vector(bits)["y"]
            assert v1 == v2

    def test_illegal_module_name_legalized(self, half_adder):
        half_adder.name = "半加器 2000"
        text = write_verilog(half_adder)
        assert text.splitlines()[0].startswith("module ")
        # must be parseable back
        parse_verilog(text)

    def test_dump_and_load(self, c17, tmp_path):
        path = tmp_path / "c17.v"
        dump_verilog(c17, path)
        loaded = load_verilog(path)
        assert loaded.num_gates == c17.num_gates

"""Circuit DAG construction, validation and derived views."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit, Gate
from repro.netlist.gates import GateType


def build_chain(length=3) -> Circuit:
    c = Circuit("chain")
    c.add_input("a")
    prev = "a"
    for i in range(length):
        c.add_gate(f"n{i}", GateType.NOT, [prev])
        prev = f"n{i}"
    c.set_outputs([prev])
    return c


class TestConstruction:
    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(NetlistError, match="already defined"):
            c.add_input("a")

    def test_gate_shadowing_input_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(NetlistError, match="already defined"):
            c.add_gate("a", GateType.NOT, ["a"])

    def test_input_gate_type_rejected(self):
        c = Circuit()
        with pytest.raises(NetlistError, match="add_input"):
            c.add_gate("x", GateType.INPUT, [])

    def test_gate_arity_checked_at_construction(self):
        with pytest.raises(NetlistError):
            Gate("g", GateType.AND, ("a",))

    def test_duplicate_output_rejected(self):
        c = build_chain()
        with pytest.raises(NetlistError, match="duplicate output"):
            c.set_outputs(["n2", "n2"])
        with pytest.raises(NetlistError, match="duplicate output"):
            c.add_output("n2")

    def test_contains_and_accessors(self, half_adder):
        assert "a" in half_adder
        assert "sum" in half_adder
        assert "zzz" not in half_adder
        assert half_adder.is_input("a")
        assert not half_adder.is_input("sum")
        assert half_adder.gate("sum").gtype is GateType.XOR
        with pytest.raises(NetlistError):
            half_adder.gate("a")  # inputs have no driving gate
        assert len(half_adder) == 2
        assert half_adder.num_inputs == 2
        assert half_adder.num_outputs == 2
        assert half_adder.nets == ["a", "b", "sum", "carry"]


class TestValidation:
    def test_no_inputs_rejected(self):
        c = Circuit("empty")
        with pytest.raises(NetlistError, match="no primary inputs"):
            c.validate()

    def test_no_outputs_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(NetlistError, match="no primary outputs"):
            c.validate()

    def test_undefined_fanin_rejected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateType.AND, ["a", "ghost"])
        c.set_outputs(["g"])
        with pytest.raises(NetlistError, match="undefined net 'ghost'"):
            c.validate()

    def test_undefined_output_rejected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateType.NOT, ["a"])
        c.set_outputs(["ghost"])
        with pytest.raises(NetlistError, match="not a defined net"):
            c.validate()

    def test_cycle_detected(self):
        c = Circuit("cyclic")
        c.add_input("a")
        # g1 and g2 reference each other.
        c.add_gate("g1", GateType.AND, ["a", "g2"])
        c.add_gate("g2", GateType.AND, ["a", "g1"])
        c.set_outputs(["g2"])
        with pytest.raises(NetlistError, match="combinational cycle"):
            c.validate()


class TestDerivedViews:
    def test_topological_order_respects_dependencies(self, c17):
        order = c17.topological_order()
        pos = {net: i for i, net in enumerate(order)}
        for gate in c17.gates.values():
            for src in gate.fanin:
                if src in pos:
                    assert pos[src] < pos[gate.name]

    def test_levels_and_depth(self, c17):
        levels = c17.levels()
        assert levels["G1"] == 0
        assert levels["G10"] == 1
        assert levels["G16"] == 2
        assert levels["G22"] == 3
        assert c17.depth() == 3

    def test_chain_depth(self):
        assert build_chain(7).depth() == 7

    def test_fanout_map(self, c17):
        fo = c17.fanout_map()
        assert sorted(fo["G11"]) == ["G16", "G19"]
        assert fo["G22"] == []
        assert c17.fanout_count("G16") == 2

    def test_dangling_nets(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("used", GateType.NOT, ["a"])
        c.add_gate("out", GateType.NOT, ["used"])
        c.add_gate("orphan", GateType.NOT, ["a"])
        c.set_outputs(["out"])
        assert c.dangling_nets() == ["orphan"]

    def test_transitive_fanin(self, c17):
        cone = c17.transitive_fanin("G22")
        assert cone == {"G10", "G16", "G11", "G1", "G2", "G3", "G6"}
        assert "G7" not in cone

    def test_stats(self, c17):
        s = c17.stats()
        assert s.num_gates == 6
        assert s.num_inputs == 5
        assert s.num_outputs == 2
        assert s.depth == 3
        assert s.gate_counts == {"nand": 6}
        assert s.max_fanout == 2
        assert s.avg_fanin == 2.0
        assert "c17" in str(s)

    def test_cache_invalidation_on_mutation(self):
        c = build_chain(2)
        assert c.depth() == 2
        c.add_gate("extra", GateType.NOT, ["n1"])
        assert c.depth() == 3


class TestEvaluate:
    def test_half_adder_truth_table(self, half_adder):
        for a in (0, 1):
            for b in (0, 1):
                vals = half_adder.evaluate({"a": a, "b": b})
                assert vals["sum"] == a ^ b
                assert vals["carry"] == a & b

    def test_c17_known_vector(self, c17):
        # All-ones input: G10 = NAND(1,1)=0, G11=0, G16=NAND(1,0)=1,
        # G19=NAND(0,1)=1, G22=NAND(0,1)=1, G23=NAND(1,1)=0.
        vals = c17.evaluate({k: 1 for k in c17.inputs})
        assert vals["G22"] == 1
        assert vals["G23"] == 0

    def test_missing_input_raises(self, half_adder):
        with pytest.raises(NetlistError, match="missing value"):
            half_adder.evaluate({"a": 1})

    def test_evaluate_vector_width_checked(self, half_adder):
        with pytest.raises(NetlistError, match="expected 2"):
            half_adder.evaluate_vector([1])

    def test_evaluate_vector_order(self, half_adder):
        vals = half_adder.evaluate_vector([1, 0])
        assert vals["a"] == 1 and vals["b"] == 0

    def test_copy_is_independent(self, half_adder):
        clone = half_adder.copy("clone")
        clone.add_gate("extra", GateType.NOT, ["sum"])
        assert "extra" in clone
        assert "extra" not in half_adder
        assert clone.name == "clone"

    def test_iter_gates_topological(self, c17):
        names = [g.name for g in c17.iter_gates_topological()]
        assert names == c17.topological_order()

"""ISCAS85 .bench parser/writer."""

import pytest

from repro.errors import ParseError
from repro.netlist.bench import dump_bench, load_bench, parse_bench, write_bench
from repro.netlist.gates import GateType


class TestParse:
    def test_c17_structure(self, c17):
        assert c17.num_inputs == 5
        assert c17.num_outputs == 2
        assert c17.num_gates == 6
        assert all(g.gtype is GateType.NAND for g in c17.gates.values())

    def test_case_insensitive_keywords(self):
        text = """
        input(A)
        Input(B)
        OUTPUT(Y)
        Y = nAnD(A, B)
        """
        c = parse_bench(text)
        assert c.gate("Y").gtype is GateType.NAND

    def test_buff_and_not_aliases(self):
        text = """
        INPUT(a)
        OUTPUT(y)
        b = BUFF(a)
        y = NOT(b)
        """
        c = parse_bench(text)
        assert c.gate("b").gtype is GateType.BUF

    def test_comments_and_blank_lines_ignored(self):
        text = """
        # header comment

        INPUT(a)   # trailing comment
        OUTPUT(y)
        y = NOT(a)
        """
        assert parse_bench(text).num_gates == 1

    def test_dff_rejected_with_line_number(self):
        text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"
        with pytest.raises(ParseError, match="line 3.*sequential"):
            parse_bench(text)

    def test_unknown_gate_rejected(self):
        with pytest.raises(ParseError, match="unknown gate"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(ParseError, match="line 2.*unrecognized"):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_undefined_net_rejected(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"
        with pytest.raises(ParseError, match="invalid circuit"):
            parse_bench(text)

    def test_duplicate_definition_rejected(self):
        text = "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n"
        with pytest.raises(ParseError, match="already defined"):
            parse_bench(text)

    def test_bad_arity_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a)\n")


class TestWrite:
    def test_roundtrip_c17(self, c17):
        text = write_bench(c17)
        again = parse_bench(text, name="c17")
        assert again.inputs == c17.inputs
        assert again.outputs == c17.outputs
        assert again.num_gates == c17.num_gates
        # Functional equivalence on all 32 input vectors.
        import itertools

        for bits in itertools.product((0, 1), repeat=5):
            v1 = c17.evaluate_vector(bits)
            v2 = again.evaluate_vector(bits)
            for out in c17.outputs:
                assert v1[out] == v2[out]

    def test_roundtrip_generated_circuit(self):
        from repro.netlist.generators import ripple_carry_adder

        rca = ripple_carry_adder(4)
        again = parse_bench(write_bench(rca))
        assert again.num_gates == rca.num_gates
        assert again.depth() == rca.depth()

    def test_header_contains_counts(self, c17):
        text = write_bench(c17)
        assert "# 5 inputs, 2 outputs, 6 gates" in text

    def test_dump_and_load(self, c17, tmp_path):
        path = tmp_path / "c17.bench"
        dump_bench(c17, path)
        loaded = load_bench(path)
        assert loaded.name == "c17"
        assert loaded.num_gates == 6

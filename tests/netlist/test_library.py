"""Cell library: capacitance extraction and delay model."""

import pytest

from repro.errors import ConfigError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.netlist.library import (
    CellLibrary,
    CellParams,
    default_library,
)


@pytest.fixture
def tiny():
    c = Circuit("tiny")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("g1", GateType.AND, ["a", "b"])
    c.add_gate("g2", GateType.NOT, ["g1"])
    c.add_gate("g3", GateType.NOT, ["g1"])
    c.set_outputs(["g2", "g3"])
    c.validate()
    return c


class TestCellParams:
    def test_negative_values_rejected(self):
        with pytest.raises(ConfigError):
            CellParams(-1.0, 0.0, 0.0, 0.0)
        with pytest.raises(ConfigError):
            CellParams(0.0, 0.0, -5.0, 0.0)

    def test_frozen(self):
        p = CellParams(1.0, 2.0, 3.0, 4.0)
        with pytest.raises(AttributeError):
            p.input_cap_ff = 9.0


class TestCellLibrary:
    def test_default_library_covers_all_gate_types(self):
        lib = default_library()
        for gtype in GateType:
            assert gtype in lib

    def test_missing_cell_raises(self):
        lib = CellLibrary({GateType.NOT: CellParams(1, 1, 1, 1)})
        with pytest.raises(ConfigError, match="no cell for"):
            lib.params(GateType.AND)

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            CellLibrary({}, wire_cap_per_fanout_ff=-1)
        with pytest.raises(ConfigError):
            CellLibrary({}, vdd=0)

    def test_net_capacitance_formula(self, tiny):
        lib = default_library()
        and_out = lib.params(GateType.AND).output_cap_ff
        not_in = lib.params(GateType.NOT).input_cap_ff
        expected = and_out + 2 * not_in + 2 * lib.wire_cap_per_fanout_ff
        assert lib.net_capacitance(tiny, "g1") == pytest.approx(expected)

    def test_input_net_has_no_driver_cap(self, tiny):
        lib = default_library()
        and_in = lib.params(GateType.AND).input_cap_ff
        expected = and_in + lib.wire_cap_per_fanout_ff
        assert lib.net_capacitance(tiny, "a") == pytest.approx(expected)

    def test_output_net_only_driver_cap(self, tiny):
        lib = default_library()
        expected = lib.params(GateType.NOT).output_cap_ff
        assert lib.net_capacitance(tiny, "g2") == pytest.approx(expected)

    def test_gate_delay_linear_in_load(self, tiny):
        lib = default_library()
        cell = lib.params(GateType.AND)
        load = lib.net_capacitance(tiny, "g1")
        expected = cell.intrinsic_delay_ps + cell.delay_per_ff_ps * load
        assert lib.gate_delay(tiny, "g1") == pytest.approx(expected)

    def test_primary_input_delay_zero(self, tiny):
        assert default_library().gate_delay(tiny, "a") == 0.0

    def test_bulk_helpers_cover_all_nets(self, tiny):
        lib = default_library()
        caps = lib.all_net_capacitances(tiny)
        delays = lib.all_gate_delays(tiny)
        assert set(caps) == set(tiny.nets)
        assert set(delays) == set(tiny.nets)
        assert all(v >= 0 for v in caps.values())

    def test_higher_fanout_higher_cap(self, tiny):
        lib = default_library()
        assert lib.net_capacitance(tiny, "g1") > lib.net_capacitance(
            tiny, "g2"
        )

    def test_custom_vdd(self):
        lib = default_library(vdd=2.5)
        assert lib.vdd == 2.5

"""Random layered-DAG generator: profile guarantees and determinism."""

import pytest

from repro.errors import ConfigError
from repro.netlist.gates import GateType
from repro.netlist.generators.random_dag import (
    DEFAULT_GATE_WEIGHTS,
    random_layered_circuit,
)


def make(seed=1, **kwargs):
    defaults = dict(
        name="rand",
        num_inputs=12,
        num_outputs=6,
        num_gates=80,
        depth=9,
        seed=seed,
    )
    defaults.update(kwargs)
    return random_layered_circuit(**defaults)


class TestProfile:
    def test_exact_interface_counts(self):
        c = make()
        assert c.num_inputs == 12
        assert c.num_outputs == 6
        assert c.num_gates == 80

    @pytest.mark.parametrize("depth", [1, 3, 10, 25])
    def test_exact_depth(self, depth):
        c = make(num_gates=max(40, depth), depth=depth)
        assert c.depth() == depth

    def test_validates(self):
        make().validate()

    def test_outputs_are_unique_nets(self):
        c = make()
        assert len(set(c.outputs)) == c.num_outputs

    def test_dangling_prioritized_as_outputs(self):
        c = make(num_outputs=20, num_gates=60)
        dangling_or_output = set(c.outputs)
        # Every dangling net must be an output when capacity allows.
        for net in c.dangling_nets():
            assert net not in dangling_or_output or True  # no dangling left
        assert not set(c.dangling_nets()) - set(c.outputs) or len(
            c.dangling_nets()
        ) == 0

    def test_most_inputs_used(self):
        c = make(num_inputs=10, num_gates=120, depth=8)
        fo = c.fanout_map()
        used = sum(1 for net in c.inputs if fo[net])
        assert used >= 8  # the generator prefers unused inputs


class TestDeterminism:
    def test_same_seed_same_circuit(self):
        a, b = make(seed=42), make(seed=42)
        assert a.gates == b.gates
        assert a.outputs == b.outputs

    def test_different_seed_different_circuit(self):
        a, b = make(seed=1), make(seed=2)
        assert a.gates != b.gates


class TestValidationErrors:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_inputs=1),
            dict(num_outputs=0),
            dict(depth=0),
            dict(num_gates=3, depth=9),
            dict(num_outputs=1000),
            dict(local_fanin_prob=1.5),
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ConfigError):
            make(**kwargs)


class TestGateMix:
    def test_custom_weights_respected(self):
        weights = {GateType.XOR: 1.0, GateType.NOT: 0.0, GateType.BUF: 0.0}
        c = make(gate_weights=weights, num_gates=60)
        kinds = {g.gtype for g in c.gates.values()}
        # All multi-input gates are XOR; single-fanin fallbacks may add
        # NOT/BUF but nothing else.
        assert kinds <= {GateType.XOR, GateType.NOT, GateType.BUF}
        assert GateType.XOR in kinds

    def test_default_mix_is_nand_heavy(self):
        c = make(num_gates=400, depth=12, num_inputs=20)
        counts = c.stats().gate_counts
        assert counts.get("nand", 0) > counts.get("xnor", 0)

    def test_default_weights_are_normalizable(self):
        assert abs(sum(DEFAULT_GATE_WEIGHTS.values()) - 1.0) < 0.01

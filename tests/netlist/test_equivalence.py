"""Simulation-based equivalence checking."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.equivalence import check_equivalence
from repro.netlist.gates import GateType
from repro.netlist.generators import build_circuit


def xor_circuit(style: str) -> Circuit:
    c = Circuit(f"xor_{style}")
    c.add_input("a")
    c.add_input("b")
    if style == "native":
        c.add_gate("y", GateType.XOR, ["a", "b"])
    elif style == "nand":
        c.add_gate("t", GateType.NAND, ["a", "b"])
        c.add_gate("ta", GateType.NAND, ["a", "t"])
        c.add_gate("tb", GateType.NAND, ["b", "t"])
        c.add_gate("y", GateType.NAND, ["ta", "tb"])
    else:  # buggy: actually computes OR
        c.add_gate("y", GateType.OR, ["a", "b"])
    c.set_outputs(["y"])
    c.validate()
    return c


class TestExhaustive:
    def test_equivalent_implementations(self):
        result = check_equivalence(xor_circuit("native"), xor_circuit("nand"))
        assert result.equivalent
        assert result.exhaustive
        assert result.vectors_checked == 4
        assert bool(result)

    def test_inequivalent_yields_counterexample(self):
        result = check_equivalence(xor_circuit("native"), xor_circuit("bug"))
        assert not result.equivalent
        assert result.counterexample is not None
        bits, out_name = result.counterexample
        assert out_name == "y"
        assert bits == (1, 1)  # XOR=0, OR=1 only at a=b=1

    def test_self_equivalence_of_suite_circuit(self):
        a = build_circuit("c432")
        b = build_circuit("c432")
        result = check_equivalence(a, b)
        assert result.equivalent
        assert not result.exhaustive  # 36 inputs -> random mode


class TestRandomMode:
    def test_random_mode_detects_single_minterm_region(self):
        # Differ only on one of 2^20 inputs? Use a wide AND so the
        # difference region is tiny; dense random sim may miss it —
        # verify the API reports non-exhaustive honestly instead.
        a = Circuit("wide_and")
        b = Circuit("wide_and")
        for c in (a, b):
            for i in range(20):
                c.add_input(f"i{i}")
        a.add_gate("y", GateType.AND, [f"i{i}" for i in range(20)])
        b.add_gate("t", GateType.AND, [f"i{i}" for i in range(20)])
        b.add_gate("y", GateType.BUF, ["t"])
        a.set_outputs(["y"])
        b.set_outputs(["y"])
        result = check_equivalence(a, b, random_vectors=2048)
        assert result.equivalent  # genuinely equivalent
        assert not result.exhaustive
        assert result.vectors_checked == 2048

    def test_gross_difference_caught_randomly(self):
        a = build_circuit("c880")
        b = a.copy("mutant")
        # Re-type one output gate: find an output driven by a gate and
        # replace it with an inverter of the same fanin head.
        target = a.outputs[0]
        gate = a.gate(target)
        mutated = Circuit("mutant")
        for net in a.inputs:
            mutated.add_input(net)
        for name in a.topological_order():
            g = a.gate(name)
            if name == target:
                mutated.add_gate(name, GateType.NOT, [g.fanin[0]])
            else:
                mutated.add_gate(name, g.gtype, g.fanin)
        mutated.set_outputs(a.outputs)
        result = check_equivalence(a, mutated, random_vectors=4096)
        assert not result.equivalent


class TestInterface:
    def test_mismatched_inputs_rejected(self, c17, half_adder):
        with pytest.raises(NetlistError):
            check_equivalence(c17, half_adder)

    def test_mismatched_outputs_rejected(self, c17):
        other = c17.copy()
        other.set_outputs(["G22"])  # drop one output
        with pytest.raises(NetlistError):
            check_equivalence(c17, other)

"""ISCAS85-like suite: profiles, determinism, authentic cores."""

import pytest

from repro.errors import ConfigError
from repro.netlist.generators.iscas_like import (
    ISCAS85_PROFILES,
    available_circuits,
    build_circuit,
)


class TestSuite:
    def test_all_nine_circuits_listed(self):
        assert len(available_circuits()) == 9
        assert set(available_circuits()) == set(ISCAS85_PROFILES)

    @pytest.mark.parametrize("name", available_circuits())
    def test_interface_matches_profile(self, name):
        profile = ISCAS85_PROFILES[name]
        circuit = build_circuit(name)
        circuit.validate()
        assert circuit.num_inputs == profile.num_inputs
        assert circuit.num_outputs == profile.num_outputs
        # Gate count within 45% of the published figure (authentic
        # structural cores cannot hit it exactly).
        assert (
            abs(circuit.num_gates - profile.num_gates)
            <= 0.45 * profile.num_gates
        )

    @pytest.mark.parametrize("name", ["c432", "c3540"])
    def test_deterministic(self, name):
        a = build_circuit(name)
        b = build_circuit(name)
        assert a.gates == b.gates

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown circuit"):
            build_circuit("c9999")

    def test_c6288_is_a_real_multiplier(self):
        mult = build_circuit("c6288")
        # 5 * 7 = 35 on the 16x16 multiplier.
        assignment = {f"a{i}": (5 >> i) & 1 for i in range(16)}
        assignment.update({f"b{i}": (7 >> i) & 1 for i in range(16)})
        vals = mult.evaluate(assignment)
        product = sum(
            vals[o] << i for i, o in enumerate(mult.outputs)
        )
        assert product == 35

    def test_seed_override_changes_random_circuits(self):
        a = build_circuit("c1908", seed=1)
        b = build_circuit("c1908", seed=2)
        assert a.gates != b.gates

    def test_profiles_carry_documented_functions(self):
        assert "multiplier" in ISCAS85_PROFILES["c6288"].function
        assert "interrupt" in ISCAS85_PROFILES["c432"].function

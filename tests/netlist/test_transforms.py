"""Netlist transformations: equivalence-preserving rewrites."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.equivalence import check_equivalence
from repro.netlist.gates import GateType
from repro.netlist.generators import (
    carry_lookahead_adder,
    parity_tree,
    ripple_carry_adder,
    simple_alu,
)
from repro.netlist.transforms import (
    buffer_high_fanout,
    decompose_to_two_input,
    expand_xor_to_and_or,
    expand_xor_to_nand,
    propagate_constants,
    sweep_dangling,
)


class TestExpandXorToNand:
    def test_parity_tree_becomes_nand_only(self):
        tree = parity_tree(8)
        nand = expand_xor_to_nand(tree)
        kinds = {g.gtype for g in nand.gates.values()}
        assert kinds == {GateType.NAND}
        assert check_equivalence(tree, nand).equivalent

    def test_wide_xor_and_xnor(self):
        c = Circuit("wide")
        for i in range(5):
            c.add_input(f"i{i}")
        c.add_gate("x", GateType.XOR, [f"i{i}" for i in range(5)])
        c.add_gate("nx", GateType.XNOR, [f"i{i}" for i in range(5)])
        c.set_outputs(["x", "nx"])
        nand = expand_xor_to_nand(c)
        result = check_equivalence(c, nand)
        assert result.equivalent and result.exhaustive

    def test_c499_to_c1355_style_growth(self):
        # XOR expansion inflates gate count ~4x per XOR — the C499 ->
        # C1355 relationship.
        tree = parity_tree(16)
        nand = expand_xor_to_nand(tree)
        assert nand.num_gates == 4 * tree.num_gates

    def test_alu_with_mux_untouched_gates_preserved(self):
        alu = simple_alu(3)
        nand = expand_xor_to_nand(alu)
        assert check_equivalence(alu, nand).equivalent
        assert not any(
            g.gtype in (GateType.XOR, GateType.XNOR)
            for g in nand.gates.values()
        )


class TestExpandXorToAndOr:
    def test_no_xor_left_and_equivalent(self):
        tree = parity_tree(8)
        sop = expand_xor_to_and_or(tree)
        kinds = {g.gtype for g in sop.gates.values()}
        assert GateType.XOR not in kinds and GateType.XNOR not in kinds
        assert kinds <= {GateType.AND, GateType.OR, GateType.NOR, GateType.NOT}
        assert check_equivalence(tree, sop).equivalent

    def test_xnor_handled(self):
        c = Circuit("xn")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.XNOR, ["a", "b"])
        c.set_outputs(["y"])
        sop = expand_xor_to_and_or(c)
        result = check_equivalence(c, sop)
        assert result.equivalent and result.exhaustive

    def test_five_gates_per_xor(self):
        tree = parity_tree(16)
        sop = expand_xor_to_and_or(tree)
        assert sop.num_gates == 5 * tree.num_gates

    def test_differs_from_nand_mapping(self):
        tree = parity_tree(4)
        nand = expand_xor_to_nand(tree)
        sop = expand_xor_to_and_or(tree)
        assert nand.num_gates != sop.num_gates
        assert check_equivalence(nand, sop).equivalent


class TestDecomposeToTwoInput:
    def test_all_gates_at_most_two_inputs(self):
        cla = carry_lookahead_adder(8)
        two = decompose_to_two_input(cla)
        assert all(len(g.fanin) <= 2 for g in two.gates.values())

    def test_functional_equivalence(self):
        cla = carry_lookahead_adder(6)
        two = decompose_to_two_input(cla)
        assert check_equivalence(cla, two).equivalent

    def test_inverting_heads(self):
        c = Circuit("inv_heads")
        for i in range(4):
            c.add_input(f"i{i}")
        c.add_gate("n4", GateType.NAND, [f"i{i}" for i in range(4)])
        c.add_gate("r4", GateType.NOR, [f"i{i}" for i in range(4)])
        c.add_gate("x4", GateType.XNOR, [f"i{i}" for i in range(4)])
        c.set_outputs(["n4", "r4", "x4"])
        two = decompose_to_two_input(c)
        result = check_equivalence(c, two)
        assert result.equivalent and result.exhaustive

    def test_idempotent_on_two_input_circuit(self, c17):
        again = decompose_to_two_input(c17)
        assert again.num_gates == c17.num_gates


class TestPropagateConstants:
    def build_with_constants(self):
        c = Circuit("consty")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("one", GateType.CONST1, [])
        c.add_gate("zero", GateType.CONST0, [])
        c.add_gate("and0", GateType.AND, ["a", "zero"])      # -> 0
        c.add_gate("and1", GateType.AND, ["a", "one"])       # -> a
        c.add_gate("or1", GateType.OR, ["b", "one"])         # -> 1
        c.add_gate("x", GateType.XOR, ["a", "one"])          # -> not a
        c.add_gate("y", GateType.OR, ["and0", "and1", "x"])  # -> a | ~a = 1? no: OR(0, a, ~a)=1
        c.add_gate("m", GateType.MUX, ["zero", "a", "b"])    # -> a
        c.set_outputs(["y", "or1", "m"])
        c.validate()
        return c

    def test_equivalence_preserved(self):
        c = self.build_with_constants()
        folded = propagate_constants(c)
        assert check_equivalence(c, folded).equivalent

    def test_gates_actually_removed(self):
        c = self.build_with_constants()
        folded = propagate_constants(c)
        assert folded.num_gates < c.num_gates

    def test_pure_constant_output(self):
        c = Circuit("k")
        c.add_input("a")
        c.add_gate("zero", GateType.CONST0, [])
        c.add_gate("y", GateType.AND, ["a", "zero"])
        c.set_outputs(["y"])
        folded = propagate_constants(c)
        assert folded.gate("y").gtype is GateType.CONST0
        assert check_equivalence(c, folded).equivalent

    def test_no_constants_is_identity(self, c17):
        folded = propagate_constants(c17)
        assert folded.num_gates == c17.num_gates
        assert check_equivalence(c17, folded).equivalent


class TestSweepDangling:
    def test_unobservable_logic_removed(self):
        c = Circuit("dangle")
        c.add_input("a")
        c.add_gate("keep", GateType.NOT, ["a"])
        c.add_gate("dead1", GateType.NOT, ["a"])
        c.add_gate("dead2", GateType.NOT, ["dead1"])
        c.set_outputs(["keep"])
        swept = sweep_dangling(c)
        assert swept.num_gates == 1
        assert "dead1" not in swept
        assert check_equivalence(c, swept).equivalent

    def test_no_dangling_is_identity(self, c17):
        assert sweep_dangling(c17).num_gates == c17.num_gates


class TestBufferHighFanout:
    def test_fanout_limit_enforced(self):
        c = Circuit("fanouty")
        c.add_input("a")
        for i in range(20):
            c.add_gate(f"g{i}", GateType.NOT, ["a"])
        c.set_outputs([f"g{i}" for i in range(20)])
        buffered = buffer_high_fanout(c, max_fanout=4)
        fo = buffered.fanout_map()
        for net in buffered.nets:
            assert len(fo[net]) <= 4, net
        assert check_equivalence(c, buffered).equivalent

    def test_gate_nets_buffered_too(self):
        rca = ripple_carry_adder(8)
        buffered = buffer_high_fanout(rca, max_fanout=2)
        fo = buffered.fanout_map()
        assert max(len(v) for v in fo.values()) <= 2
        assert check_equivalence(rca, buffered).equivalent

    def test_low_fanout_is_identity(self, c17):
        assert buffer_high_fanout(c17, max_fanout=8).num_gates == c17.num_gates

    def test_invalid_limit(self, c17):
        with pytest.raises(NetlistError):
            buffer_high_fanout(c17, max_fanout=1)

    def test_changes_capacitance_distribution(self):
        from repro.netlist.library import default_library

        c = Circuit("fanouty")
        c.add_input("a")
        for i in range(16):
            c.add_gate(f"g{i}", GateType.NOT, ["a"])
        c.set_outputs([f"g{i}" for i in range(16)])
        buffered = buffer_high_fanout(c, max_fanout=4)
        lib = default_library()
        assert lib.net_capacitance(buffered, "a") < lib.net_capacitance(c, "a")

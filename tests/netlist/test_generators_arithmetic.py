"""Functional correctness of the arithmetic circuit generators."""

import itertools

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.netlist.generators import (
    array_multiplier,
    carry_lookahead_adder,
    comparator,
    decoder,
    ecc_checker,
    interrupt_controller,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
    simple_alu,
)


def bits_of(value, width):
    return [(value >> i) & 1 for i in range(width)]


def int_of(bits):
    return sum(b << i for i, b in enumerate(bits))


def adder_io(circuit, a, b, cin, width):
    assignment = {f"a{i}": (a >> i) & 1 for i in range(width)}
    assignment.update({f"b{i}": (b >> i) & 1 for i in range(width)})
    assignment["cin"] = cin
    vals = circuit.evaluate(assignment)
    out_bits = [vals[o] for o in circuit.outputs]
    return int_of(out_bits[:-1]) + (out_bits[-1] << width)


class TestAdders:
    def test_rca_exhaustive_3bit(self):
        rca = ripple_carry_adder(3)
        for a, b, cin in itertools.product(range(8), range(8), range(2)):
            assert adder_io(rca, a, b, cin, 3) == a + b + cin

    def test_rca_random_16bit(self, rng):
        rca = ripple_carry_adder(16)
        for _ in range(30):
            a = int(rng.integers(0, 1 << 16))
            b = int(rng.integers(0, 1 << 16))
            assert adder_io(rca, a, b, 0, 16) == a + b

    def test_cla_matches_rca_exhaustive_4bit(self):
        cla = carry_lookahead_adder(4)
        for a, b, cin in itertools.product(range(16), range(16), range(2)):
            assert adder_io(cla, a, b, cin, 4) == a + b + cin

    def test_cla_random_12bit(self, rng):
        cla = carry_lookahead_adder(12, group=4)
        for _ in range(30):
            a = int(rng.integers(0, 1 << 12))
            b = int(rng.integers(0, 1 << 12))
            cin = int(rng.integers(0, 2))
            assert adder_io(cla, a, b, cin, 12) == a + b + cin

    def test_cla_shallower_than_rca(self):
        assert carry_lookahead_adder(16).depth() < ripple_carry_adder(16).depth()

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            ripple_carry_adder(0)
        with pytest.raises(ConfigError):
            carry_lookahead_adder(8, group=1)


class TestMultiplier:
    def test_exhaustive_3x3(self):
        mult = array_multiplier(3)
        for a, b in itertools.product(range(8), range(8)):
            assignment = {f"a{i}": (a >> i) & 1 for i in range(3)}
            assignment.update({f"b{i}": (b >> i) & 1 for i in range(3)})
            vals = mult.evaluate(assignment)
            product = int_of([vals[o] for o in mult.outputs])
            assert product == a * b, (a, b)

    def test_random_8x8(self, rng):
        mult = array_multiplier(8)
        for _ in range(25):
            a = int(rng.integers(0, 256))
            b = int(rng.integers(0, 256))
            assignment = {f"a{i}": (a >> i) & 1 for i in range(8)}
            assignment.update({f"b{i}": (b >> i) & 1 for i in range(8)})
            vals = mult.evaluate(assignment)
            assert int_of([vals[o] for o in mult.outputs]) == a * b

    def test_16x16_profile(self):
        mult = array_multiplier(16)
        assert mult.num_inputs == 32
        assert mult.num_outputs == 32
        assert mult.num_gates > 1000
        assert mult.depth() > 60  # deep carry-save array like C6288


class TestParityAndEcc:
    @pytest.mark.parametrize("width", [1, 2, 5, 8, 13])
    def test_parity_tree(self, width, rng):
        tree = parity_tree(width)
        for _ in range(20):
            bits = rng.integers(0, 2, size=width)
            vals = tree.evaluate_vector(list(bits))
            assert vals[tree.outputs[0]] == int(bits.sum() % 2)

    def test_ecc_no_error_passthrough(self, rng):
        from repro.netlist.generators.arithmetic import hamming_check_bits

        ecc = ecc_checker(8)
        data = [int(b) for b in rng.integers(0, 2, size=8)]
        checks = hamming_check_bits(data)
        assignment = {f"d{i}": data[i] for i in range(8)}
        assignment.update({f"c{i}": checks[i] for i in range(len(checks))})
        assignment["en"] = 1
        vals = ecc.evaluate(assignment)
        # Zero syndrome and unmodified data.
        assert all(vals[f"syn{i}"] == 0 for i in range(len(checks)))
        for i in range(8):
            assert vals[f"q{i}"] == data[i]

    def test_ecc_corrects_single_data_error(self, rng):
        from repro.netlist.generators.arithmetic import hamming_check_bits

        ecc = ecc_checker(8)
        data = [int(b) for b in rng.integers(0, 2, size=8)]
        checks = hamming_check_bits(data)
        for flip in range(8):
            corrupted = {
                f"d{i}": data[i] ^ (1 if i == flip else 0) for i in range(8)
            }
            corrupted.update(
                {f"c{i}": checks[i] for i in range(len(checks))}
            )
            corrupted["en"] = 1
            vals = ecc.evaluate(corrupted)
            recovered = [vals[f"q{i}"] for i in range(8)]
            assert recovered == data, f"failed to correct bit {flip}"

    def test_ecc_correction_disabled_passes_error_through(self, rng):
        from repro.netlist.generators.arithmetic import hamming_check_bits

        ecc = ecc_checker(8)
        data = [int(b) for b in rng.integers(0, 2, size=8)]
        checks = hamming_check_bits(data)
        corrupted = {f"d{i}": data[i] for i in range(8)}
        corrupted["d3"] ^= 1
        corrupted.update({f"c{i}": checks[i] for i in range(len(checks))})
        corrupted["en"] = 0
        vals = ecc.evaluate(corrupted)
        assert vals["q3"] == data[3] ^ 1  # not corrected

    def test_ecc_interface_width_for_32(self):
        ecc = ecc_checker(32)
        num_checks = sum(1 for n in ecc.inputs if n.startswith("c"))
        assert ecc.num_inputs == 32 + num_checks + 1
        assert num_checks == 7  # SEC over 38 Hamming positions + overall
        assert ecc.num_outputs == 32


class TestSelectorsAndComparators:
    def test_comparator_exhaustive_3bit(self):
        cmp3 = comparator(3)
        for a, b in itertools.product(range(8), range(8)):
            assignment = {f"a{i}": (a >> i) & 1 for i in range(3)}
            assignment.update({f"b{i}": (b >> i) & 1 for i in range(3)})
            vals = cmp3.evaluate(assignment)
            assert vals["a_gt_b"] == int(a > b)
            assert vals["a_eq_b"] == int(a == b)
            assert vals["a_lt_b"] == int(a < b)

    def test_decoder_exhaustive(self):
        dec = decoder(3)
        for code in range(8):
            assignment = {f"s{i}": (code >> i) & 1 for i in range(3)}
            assignment["en"] = 1
            vals = dec.evaluate(assignment)
            for out in range(8):
                assert vals[f"y{out}"] == int(out == code)
        # Disabled: all outputs low.
        assignment["en"] = 0
        vals = dec.evaluate(assignment)
        assert all(vals[f"y{k}"] == 0 for k in range(8))

    def test_mux_tree_selects(self, rng):
        mux = mux_tree(3)
        for _ in range(20):
            data = rng.integers(0, 2, size=8)
            sel = int(rng.integers(0, 8))
            assignment = {f"d{i}": int(data[i]) for i in range(8)}
            assignment.update({f"s{i}": (sel >> i) & 1 for i in range(3)})
            vals = mux.evaluate(assignment)
            assert vals[mux.outputs[0]] == data[sel]


class TestAlu:
    def test_alu_all_ops_random(self, rng):
        alu = simple_alu(6)
        mask = (1 << 6) - 1
        ops = {
            (0, 0): lambda a, b, cin: a & b,
            (1, 0): lambda a, b, cin: a | b,
            (0, 1): lambda a, b, cin: a ^ b,
            (1, 1): lambda a, b, cin: (a + b + cin) & mask,
        }
        for _ in range(20):
            a = int(rng.integers(0, 64))
            b = int(rng.integers(0, 64))
            cin = int(rng.integers(0, 2))
            for (op0, op1), fn in ops.items():
                assignment = {f"a{i}": (a >> i) & 1 for i in range(6)}
                assignment.update({f"b{i}": (b >> i) & 1 for i in range(6)})
                assignment.update({"cin": cin, "op0": op0, "op1": op1})
                vals = alu.evaluate(assignment)
                result = int_of([vals[f"y{i}"] for i in range(6)])
                assert result == fn(a, b, cin), (a, b, cin, op0, op1)
                assert vals["zero"] == int(result == 0)

    def test_alu_carry_out(self):
        alu = simple_alu(4)
        assignment = {f"a{i}": 1 for i in range(4)}
        assignment.update({f"b{i}": 0 for i in range(4)})
        assignment.update({"cin": 1, "op0": 1, "op1": 1})
        vals = alu.evaluate(assignment)
        carry_net = alu.outputs[4]
        assert vals[carry_net] == 1  # 15 + 0 + 1 overflows 4 bits


class TestInterruptController:
    def test_single_request_granted(self):
        ic = interrupt_controller(9, groups=3)
        base = {f"req{i}": 0 for i in range(9)}
        base.update({f"en{g}": 1 for g in range(3)})
        for ch in range(9):
            assignment = dict(base)
            assignment[f"req{ch}"] = 1
            vals = ic.evaluate(assignment)
            grants = [vals[f"grant{g}"] for g in range(3)]
            assert grants == [int(g == ch // 3) for g in range(3)]

    def test_group_encoding_prefers_lowest_group(self):
        ic = interrupt_controller(9, groups=3)
        assignment = {f"req{i}": 0 for i in range(9)}
        assignment.update({f"en{g}": 1 for g in range(3)})
        assignment["req0"] = 1  # group 0
        assignment["req8"] = 1  # group 2
        vals = ic.evaluate(assignment)
        enc = [vals[n] for n in ic.outputs if n.startswith("vec")]
        assert int_of(enc) == 0  # lowest group wins

    def test_disabled_group_never_grants(self):
        ic = interrupt_controller(6, groups=2)
        assignment = {f"req{i}": 1 for i in range(6)}
        assignment.update({"en0": 0, "en1": 1})
        vals = ic.evaluate(assignment)
        assert vals["grant0"] == 0
        assert vals["grant1"] == 1

    def test_invalid_channel_split(self):
        with pytest.raises(ConfigError):
            interrupt_controller(10, groups=3)

"""Cell library JSON serialization."""

import pytest

from repro.errors import ConfigError
from repro.netlist.gates import GateType
from repro.netlist.library import CellLibrary, CellParams, default_library


class TestRoundTrip:
    def test_full_roundtrip(self):
        lib = default_library()
        again = CellLibrary.from_json(lib.to_json())
        assert again.name == lib.name
        assert again.vdd == lib.vdd
        assert again.wire_cap_per_fanout_ff == lib.wire_cap_per_fanout_ff
        for gtype in GateType:
            assert again.params(gtype) == lib.params(gtype)

    def test_save_load_file(self, tmp_path):
        lib = default_library(vdd=2.5)
        path = tmp_path / "tech.json"
        lib.save(path)
        loaded = CellLibrary.load(path)
        assert loaded.vdd == 2.5

    def test_capacitance_math_survives(self, c17):
        lib = default_library()
        again = CellLibrary.from_json(lib.to_json())
        for net in c17.nets:
            assert again.net_capacitance(c17, net) == pytest.approx(
                lib.net_capacitance(c17, net)
            )
            assert again.gate_delay(c17, net) == pytest.approx(
                lib.gate_delay(c17, net)
            )


class TestValidation:
    def test_invalid_json(self):
        with pytest.raises(ConfigError, match="invalid library JSON"):
            CellLibrary.from_json("{not json")

    def test_missing_keys(self):
        with pytest.raises(ConfigError, match="missing key"):
            CellLibrary.from_json('{"cells": {}}')

    def test_unknown_gate_type(self):
        text = (
            '{"name": "x", "vdd": 3.3, "wire_cap_per_fanout_ff": 1.0,'
            ' "cells": {"tri_state": {"input_cap_ff": 1, "output_cap_ff": 1,'
            ' "intrinsic_delay_ps": 1, "delay_per_ff_ps": 1}}}'
        )
        with pytest.raises(ConfigError, match="unknown gate type"):
            CellLibrary.from_json(text)

    def test_missing_cell_field(self):
        text = (
            '{"name": "x", "vdd": 3.3, "wire_cap_per_fanout_ff": 1.0,'
            ' "cells": {"and": {"input_cap_ff": 1}}}'
        )
        with pytest.raises(ConfigError, match="missing field"):
            CellLibrary.from_json(text)

    def test_negative_value_rejected_via_cellparams(self):
        text = (
            '{"name": "x", "vdd": 3.3, "wire_cap_per_fanout_ff": 1.0,'
            ' "cells": {"and": {"input_cap_ff": -1, "output_cap_ff": 1,'
            ' "intrinsic_delay_ps": 1, "delay_per_ff_ps": 1}}}'
        )
        with pytest.raises(ConfigError):
            CellLibrary.from_json(text)

    def test_custom_library_changes_power(self, c17):
        import numpy as np

        from repro.sim.power import PowerAnalyzer

        hot = CellLibrary(
            {g: CellParams(20.0, 20.0, 100.0, 2.0) for g in GateType},
            name="hot",
            vdd=5.0,
        )
        pa_default = PowerAnalyzer(c17)
        pa_hot = PowerAnalyzer(c17, library=hot)
        v1 = np.zeros((1, 5), dtype=np.uint8)
        v2 = np.ones((1, 5), dtype=np.uint8)
        assert (
            pa_hot.powers_for_pairs(v1, v2)[0]
            > pa_default.powers_for_pairs(v1, v2)[0]
        )

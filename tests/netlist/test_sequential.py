"""Sequential circuits: flops, unrolling, multi-cycle simulation."""

import numpy as np
import pytest

from repro.errors import NetlistError, ParseError, SimulationError
from repro.netlist.gates import GateType
from repro.netlist.sequential import SequentialCircuit, parse_sequential_bench


def toggle_ff() -> SequentialCircuit:
    """1-bit toggle flop: q' = q XOR en."""
    s = SequentialCircuit("toggle")
    s.add_input("en")
    s.add_flop("q", d="d")
    s.add_gate("d", GateType.XOR, ["q", "en"])
    s.set_outputs(["q"])
    s.finalize()
    return s


def counter2() -> SequentialCircuit:
    """2-bit synchronous counter with enable."""
    s = SequentialCircuit("cnt2")
    s.add_input("en")
    s.add_flop("q0", d="d0")
    s.add_flop("q1", d="d1")
    s.add_gate("d0", GateType.XOR, ["q0", "en"])
    s.add_gate("carry", GateType.AND, ["q0", "en"])
    s.add_gate("d1", GateType.XOR, ["q1", "carry"])
    s.set_outputs(["q0", "q1"])
    s.finalize()
    return s


class TestConstruction:
    def test_interface_partition(self):
        s = counter2()
        assert s.inputs == ("en",)
        assert s.num_flops == 2
        assert s.outputs == ("q0", "q1")
        assert s.num_gates == 3

    def test_undefined_next_state_rejected(self):
        s = SequentialCircuit("bad")
        s.add_input("a")
        s.add_flop("q", d="missing")
        s.set_outputs(["q"])
        with pytest.raises(NetlistError, match="missing"):
            s.finalize()

    def test_must_finalize_before_use(self):
        s = SequentialCircuit("raw")
        s.add_input("a")
        with pytest.raises(NetlistError, match="finalize"):
            s.unroll(2)


class TestSimulate:
    def test_toggle_flop_sequence(self):
        s = toggle_ff()
        # Outputs show the state *entering* each cycle (register
        # semantics): en = 1,1,0,1 from q=0 -> q at cycle starts
        # 0,1,0,0 and final state 1.
        stream = np.array([[1], [1], [0], [1]], dtype=np.uint8)
        outputs, final, _ = s.simulate(stream)
        assert list(outputs[:, 0, 0]) == [0, 1, 0, 0]
        assert final[0, 0] == 1

    def test_counter_counts(self):
        s = counter2()
        stream = np.ones((5, 1), dtype=np.uint8)
        outputs, final, _ = s.simulate(stream)
        counts = [int(o[0, 0]) + 2 * int(o[0, 1]) for o in outputs]
        assert counts == [0, 1, 2, 3, 0]  # state entering each cycle
        assert int(final[0, 0]) + 2 * int(final[0, 1]) == 1

    def test_multi_lane_independence(self, rng):
        s = counter2()
        stream = rng.integers(0, 2, size=(6, 8, 1)).astype(np.uint8)
        outputs, final, _ = s.simulate(stream)
        for lane in range(8):
            solo_out, solo_final, _ = s.simulate(stream[:, lane, :])
            assert np.array_equal(outputs[:, lane, :], solo_out[:, 0, :])
            assert np.array_equal(final[lane], solo_final[0])

    def test_initial_state(self):
        s = counter2()
        stream = np.ones((1, 1, 1), dtype=np.uint8)
        outputs, final, _ = s.simulate(
            stream, initial_state=np.array([[1, 1]], dtype=np.uint8)
        )
        # 3 + 1 wraps to 0.
        assert list(final[0]) == [0, 0]

    def test_energy_accounting(self):
        s = toggle_ff()
        caps = np.ones(len(s.core.nets))
        quiet = np.zeros((3, 1), dtype=np.uint8)  # en=0: nothing moves
        _, _, energies = s.simulate(quiet, net_caps=caps)
        assert energies[0, 0] == 0.0
        assert (energies[1:] == 0).all()
        busy = np.ones((3, 1), dtype=np.uint8)
        _, _, busy_energy = s.simulate(busy, net_caps=caps)
        assert busy_energy[1:].sum() > 0

    def test_shape_validation(self):
        s = counter2()
        with pytest.raises(SimulationError, match="input_stream"):
            s.simulate(np.zeros((3, 1, 5), dtype=np.uint8))
        with pytest.raises(SimulationError, match="initial_state"):
            s.simulate(
                np.zeros((2, 1, 1), dtype=np.uint8),
                initial_state=np.zeros((1, 5), dtype=np.uint8),
            )


class TestUnroll:
    def test_unrolled_matches_simulation(self, rng):
        s = counter2()
        cycles = 4
        unrolled = s.unroll(cycles)
        # Inputs: q0@0, q1@0, then en@t per frame.
        stream = rng.integers(0, 2, size=(cycles, 1, 1)).astype(np.uint8)
        init = rng.integers(0, 2, size=(1, 2)).astype(np.uint8)
        outputs, final, _ = s.simulate(stream, initial_state=init)
        assignment = {
            "q0@0": int(init[0, 0]),
            "q1@0": int(init[0, 1]),
        }
        for t in range(cycles):
            assignment[f"en@{t}"] = int(stream[t, 0, 0])
        values = unrolled.evaluate(assignment)
        # Frame t's state-entering value is q@0 at t=0 and the previous
        # frame's next-state net d@{t-1} afterwards.
        for t in range(cycles):
            q0_net = "q0@0" if t == 0 else f"d0@{t - 1}"
            q1_net = "q1@0" if t == 0 else f"d1@{t - 1}"
            assert values[q0_net] == outputs[t, 0, 0]
            assert values[q1_net] == outputs[t, 0, 1]
        assert values[f"d0@{cycles-1}"] == final[0, 0]
        assert values[f"d1@{cycles-1}"] == final[0, 1]

    def test_unroll_interface(self):
        s = counter2()
        u = s.unroll(3)
        assert u.num_inputs == 2 + 3  # initial state + en per frame
        assert u.num_gates == 3 * 3
        u.validate()

    def test_invalid_cycles(self):
        with pytest.raises(NetlistError):
            counter2().unroll(0)


class TestSequentialBench:
    BENCH = """
    # simple toggle
    INPUT(en)
    OUTPUT(q)
    q = DFF(d)
    d = XOR(q, en)
    """

    def test_parse_and_simulate(self):
        s = parse_sequential_bench(self.BENCH, name="tgl")
        assert s.num_flops == 1
        stream = np.ones((2, 1), dtype=np.uint8)
        outputs, final, _ = s.simulate(stream)
        assert list(outputs[:, 0, 0]) == [0, 1]
        assert final[0, 0] == 0

    def test_bad_gate_rejected(self):
        with pytest.raises(ParseError):
            parse_sequential_bench("INPUT(a)\nOUTPUT(q)\nq = FROB(a)\n")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError, match="unrecognized"):
            parse_sequential_bench("INPUT(a)\nnot bench at all\n")

    def test_undefined_d_rejected(self):
        text = "INPUT(a)\nOUTPUT(q)\nq = DFF(ghost)\n"
        with pytest.raises(ParseError, match="invalid circuit"):
            parse_sequential_bench(text)

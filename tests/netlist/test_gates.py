"""Gate primitive semantics: scalar, word-parallel, and metadata."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.gates import (
    GATE_ARITY,
    GateType,
    check_arity,
    controlling_value,
    eval_gate,
    eval_gate_words,
    gate_from_name,
)

MULTI_GATES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


class TestScalarEval:
    @pytest.mark.parametrize(
        "gtype,inputs,expected",
        [
            (GateType.AND, (1, 1), 1),
            (GateType.AND, (1, 0), 0),
            (GateType.NAND, (1, 1), 0),
            (GateType.NAND, (0, 1), 1),
            (GateType.OR, (0, 0), 0),
            (GateType.OR, (0, 1), 1),
            (GateType.NOR, (0, 0), 1),
            (GateType.NOR, (1, 0), 0),
            (GateType.XOR, (1, 1), 0),
            (GateType.XOR, (1, 0), 1),
            (GateType.XNOR, (1, 1), 1),
            (GateType.XNOR, (0, 1), 0),
            (GateType.NOT, (0,), 1),
            (GateType.NOT, (1,), 0),
            (GateType.BUF, (1,), 1),
            (GateType.BUF, (0,), 0),
            (GateType.MUX, (0, 1, 0), 1),  # sel=0 -> d0
            (GateType.MUX, (1, 1, 0), 0),  # sel=1 -> d1
            (GateType.CONST0, (), 0),
            (GateType.CONST1, (), 1),
        ],
    )
    def test_truth_table_entries(self, gtype, inputs, expected):
        assert eval_gate(gtype, inputs) == expected

    @pytest.mark.parametrize("gtype", MULTI_GATES)
    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_nary_consistency_with_pairwise_fold(self, gtype, arity):
        # n-ary associative gates must equal the pairwise fold of the
        # same operator (with inversion applied only once at the end).
        base = {
            GateType.NAND: GateType.AND,
            GateType.NOR: GateType.OR,
            GateType.XNOR: GateType.XOR,
        }.get(gtype, gtype)
        inverting = gtype is not base
        for bits in itertools.product((0, 1), repeat=arity):
            acc = bits[0]
            for b in bits[1:]:
                acc = eval_gate(base, (acc, b))
            expected = 1 - acc if inverting else acc
            assert eval_gate(gtype, bits) == expected

    def test_xor_is_parity(self):
        for bits in itertools.product((0, 1), repeat=5):
            assert eval_gate(GateType.XOR, bits) == sum(bits) % 2

    def test_input_type_not_evaluable(self):
        with pytest.raises(NetlistError):
            eval_gate(GateType.INPUT, ())


class TestWordEval:
    @pytest.mark.parametrize("gtype", MULTI_GATES + [GateType.NOT, GateType.BUF, GateType.MUX])
    def test_word_eval_matches_scalar(self, gtype, rng):
        arity = {GateType.NOT: 1, GateType.BUF: 1, GateType.MUX: 3}.get(
            gtype, 3
        )
        lanes = 130  # crosses a word boundary with a partial last word
        bits = rng.integers(0, 2, size=(arity, lanes), dtype=np.uint8)
        words = np.zeros((arity, 3), dtype=np.uint64)
        for i in range(arity):
            for j in range(lanes):
                if bits[i, j]:
                    words[i, j // 64] |= np.uint64(1 << (j % 64))
        mask = np.array(
            [~np.uint64(0), ~np.uint64(0), np.uint64((1 << 2) - 1)],
            dtype=np.uint64,
        )
        out = eval_gate_words(gtype, [words[i] for i in range(arity)], mask)
        for j in range(lanes):
            scalar = eval_gate(gtype, tuple(int(bits[i, j]) for i in range(arity)))
            got = int(out[j // 64] >> np.uint64(j % 64)) & 1
            assert got == scalar, (gtype, j)

    def test_padding_bits_stay_zero_for_inverting_gates(self):
        mask = np.array([np.uint64(0b111)])  # only 3 valid lanes
        x = np.array([np.uint64(0b010)])
        out = eval_gate_words(GateType.NOT, [x], mask)
        assert int(out[0]) == 0b101  # no bits set beyond the mask

    def test_constants_respect_mask(self):
        mask = np.array([np.uint64(0xF)])
        one = eval_gate_words(GateType.CONST1, [], mask)
        zero = eval_gate_words(GateType.CONST0, [], mask)
        assert int(one[0]) == 0xF
        assert int(zero[0]) == 0

    @given(
        data=st.lists(
            st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=64
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_and_word_property(self, data):
        lanes = len(data)
        a = np.array([np.uint64(0)])
        b = np.array([np.uint64(0)])
        for j, (x, y) in enumerate(data):
            if x:
                a[0] |= np.uint64(1 << j)
            if y:
                b[0] |= np.uint64(1 << j)
        mask = np.array([np.uint64((1 << lanes) - 1 if lanes < 64 else ~np.uint64(0))])
        out = eval_gate_words(GateType.AND, [a, b], mask)
        for j, (x, y) in enumerate(data):
            assert ((int(out[0]) >> j) & 1) == int(x and y)


class TestMetadata:
    def test_arity_bounds_enforced(self):
        with pytest.raises(NetlistError):
            check_arity(GateType.NOT, 2)
        with pytest.raises(NetlistError):
            check_arity(GateType.AND, 1)
        with pytest.raises(NetlistError):
            check_arity(GateType.MUX, 2)
        check_arity(GateType.AND, 9)  # unbounded above

    def test_every_gate_type_has_arity(self):
        assert set(GATE_ARITY) == set(GateType)

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("AND", GateType.AND),
            ("nand", GateType.NAND),
            ("BUFF", GateType.BUF),
            ("inv", GateType.NOT),
            ("Mux2", GateType.MUX),
            ("xor", GateType.XOR),
        ],
    )
    def test_gate_from_name_aliases(self, name, expected):
        assert gate_from_name(name) is expected

    def test_gate_from_name_unknown(self):
        with pytest.raises(NetlistError, match="unknown gate type"):
            gate_from_name("tristate")

    def test_controlling_values(self):
        assert controlling_value(GateType.AND) == 0
        assert controlling_value(GateType.NAND) == 0
        assert controlling_value(GateType.OR) == 1
        assert controlling_value(GateType.NOR) == 1
        assert controlling_value(GateType.XOR) is None
        assert controlling_value(GateType.BUF) is None

"""Property-based tests: transforms preserve function on random circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.equivalence import check_equivalence
from repro.netlist.generators.random_dag import random_layered_circuit
from repro.netlist.transforms import (
    buffer_high_fanout,
    decompose_to_two_input,
    expand_xor_to_and_or,
    expand_xor_to_nand,
    propagate_constants,
    sweep_dangling,
)

circuit_params = st.tuples(
    st.integers(min_value=3, max_value=8),    # num_inputs
    st.integers(min_value=1, max_value=4),    # num_outputs
    st.integers(min_value=8, max_value=40),   # num_gates
    st.integers(min_value=2, max_value=6),    # depth
    st.integers(min_value=0, max_value=10_000),  # seed
)


def build(params):
    ni, no, ng, depth, seed = params
    return random_layered_circuit(
        "prop", num_inputs=ni, num_outputs=min(no, ng),
        num_gates=max(ng, depth), depth=depth, seed=seed,
    )


@pytest.mark.parametrize(
    "transform",
    [
        expand_xor_to_nand,
        expand_xor_to_and_or,
        decompose_to_two_input,
        propagate_constants,
        sweep_dangling,
        lambda c: buffer_high_fanout(c, max_fanout=3),
    ],
    ids=["nand", "sop", "two-input", "const-prop", "sweep", "buffer"],
)
class TestTransformEquivalenceProperty:
    @given(params=circuit_params)
    @settings(max_examples=20, deadline=None)
    def test_random_circuits_stay_equivalent(self, transform, params):
        circuit = build(params)
        transformed = transform(circuit)
        result = check_equivalence(circuit, transformed)
        assert result.equivalent, result.counterexample

    @given(params=circuit_params)
    @settings(max_examples=10, deadline=None)
    def test_interface_preserved(self, transform, params):
        circuit = build(params)
        transformed = transform(circuit)
        assert transformed.inputs == circuit.inputs
        assert transformed.outputs == circuit.outputs


class TestCompositionProperty:
    @given(params=circuit_params)
    @settings(max_examples=15, deadline=None)
    def test_pipeline_of_transforms(self, params):
        circuit = build(params)
        staged = expand_xor_to_nand(circuit)
        staged = decompose_to_two_input(staged)
        staged = sweep_dangling(staged)
        result = check_equivalence(circuit, staged)
        assert result.equivalent, result.counterexample
        assert all(len(g.fanin) <= 2 for g in staged.gates.values())

"""Peaks-over-threshold maximum estimation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.estimation.pot import PeaksOverThresholdEstimator
from repro.evt.distributions import GeneralizedWeibull
from repro.vectors.population import FinitePopulation


@pytest.fixture(scope="module")
def pool():
    true = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(true.rvs(20000, rng=3), 0.0, None)
    return FinitePopulation(powers, name="weibull-pool")


class TestConfiguration:
    def test_validation(self, pool):
        with pytest.raises(ConfigError):
            PeaksOverThresholdEstimator(pool, batch_size=10)
        with pytest.raises(ConfigError):
            PeaksOverThresholdEstimator(pool, threshold_quantile=0.4)
        with pytest.raises(ConfigError):
            PeaksOverThresholdEstimator(pool, threshold_quantile=1.0)
        with pytest.raises(ConfigError):
            PeaksOverThresholdEstimator(pool, error=0)
        with pytest.raises(ConfigError):
            PeaksOverThresholdEstimator(pool, min_rounds=1)


class TestRounds:
    def test_round_units_and_domain(self, pool):
        est = PeaksOverThresholdEstimator(pool, batch_size=400)
        hs = est.round_estimate(1, rng=1)
        assert hs.units_used == 400
        assert hs.estimate > 0
        # The estimate can never sit below the best value in the batch.
        assert hs.estimate >= hs.maxima.max() - 1e-12

    def test_round_reproducible(self, pool):
        est = PeaksOverThresholdEstimator(pool)
        a = est.round_estimate(1, rng=5)
        b = est.round_estimate(1, rng=5)
        assert a.estimate == b.estimate


class TestRun:
    def test_converges_near_truth(self, pool):
        est = PeaksOverThresholdEstimator(pool)
        result = est.run(rng=7)
        assert result.converged
        assert "[POT]" in result.population_name
        assert abs(result.relative_error(pool.actual_max_power)) < 0.25

    def test_units_accounting(self, pool):
        est = PeaksOverThresholdEstimator(pool, batch_size=300)
        result = est.run(rng=8)
        assert result.units_used == result.k * 300

    def test_comparable_to_block_maxima_estimator(self, pool):
        from repro.estimation.mc_estimator import MaxPowerEstimator

        rng = np.random.default_rng(9)
        pot_errors, bm_errors = [], []
        for _ in range(6):
            pot = PeaksOverThresholdEstimator(pool).run(rng=rng)
            bm = MaxPowerEstimator(pool).run(rng=rng)
            actual = pool.actual_max_power
            pot_errors.append(abs(pot.relative_error(actual)))
            bm_errors.append(abs(bm.relative_error(actual)))
        # Both statistical routes land in the same accuracy regime.
        assert np.mean(pot_errors) < 0.2
        assert np.mean(bm_errors) < 0.2

    def test_heavy_tail_falls_back_to_sample_max(self):
        rng_pool = np.random.default_rng(10)
        heavy = FinitePopulation(
            rng_pool.pareto(1.0, size=20000) + 1.0, name="pareto"
        )
        est = PeaksOverThresholdEstimator(heavy, max_rounds=4)
        result = est.run(rng=11)
        # No crash, finite answer; POT cannot certify an endpoint here.
        assert np.isfinite(result.estimate)

    def test_budget_exhaustion_flagged(self, pool):
        est = PeaksOverThresholdEstimator(
            pool, error=1e-6, max_rounds=3
        )
        result = est.run(rng=12)
        assert not result.converged
        assert result.k == 3

"""High-quantile estimation baseline ([9][10])."""

import numpy as np
import pytest

from repro.errors import ConfigError, EstimationError
from repro.estimation.quantile_est import HighQuantileEstimator
from repro.vectors.population import FinitePopulation, StreamingPopulation


@pytest.fixture
def pool():
    rng = np.random.default_rng(1)
    return FinitePopulation(rng.random(5000), name="uniform")


class TestDefaults:
    def test_finite_pool_targets_one_minus_one_over_v(self, pool):
        est = HighQuantileEstimator(pool)
        assert est.q == pytest.approx(1.0 - 1.0 / 5000)

    def test_streaming_defaults_to_999(self):
        pop = StreamingPopulation(
            lambda n, rng: (n, rng), lambda n, rng: rng.random(n)
        )
        assert HighQuantileEstimator(pop).q == pytest.approx(0.999)

    def test_explicit_q_validated(self, pool):
        with pytest.raises(ConfigError):
            HighQuantileEstimator(pool, q=1.0)

    def test_size_one_pool_needs_explicit_q(self):
        # 1 - 1/|V| degenerates to q=0 for |V|=1; the error must say so
        # instead of the opaque "q must be in (0, 1)".
        pop = FinitePopulation(np.array([0.5]), name="singleton")
        with pytest.raises(ConfigError, match="size 1.*pass q explicitly"):
            HighQuantileEstimator(pop)

    def test_size_one_pool_accepts_explicit_q(self):
        pop = FinitePopulation(np.array([0.5]), name="singleton")
        assert HighQuantileEstimator(pop, q=0.5).q == 0.5


class TestEstimate:
    def test_interval_orders_and_bounds(self, pool):
        est = HighQuantileEstimator(pool, q=0.95)
        result = est.estimate(2000, level=0.9, rng=2)
        assert result.low <= result.point <= result.high
        assert result.units_used == 2000
        assert 0.9 <= result.point <= 1.0  # near the U(0,1) 0.95-quantile

    def test_point_close_to_true_quantile(self, pool):
        est = HighQuantileEstimator(pool, q=0.9)
        result = est.estimate(4000, rng=3)
        assert result.point == pytest.approx(0.9, abs=0.03)

    def test_underestimates_maximum_with_moderate_q(self, pool):
        # The paper's critique: a feasible-budget quantile estimate
        # sits below the true maximum.
        est = HighQuantileEstimator(pool, q=0.99)
        result = est.estimate(1000, rng=4)
        assert result.point < pool.actual_max_power
        assert result.relative_error(pool.actual_max_power) < 0

    def test_min_units(self, pool):
        with pytest.raises(ConfigError):
            HighQuantileEstimator(pool).estimate(1)

    def test_relative_error_rejects_zero_actual_max(self):
        # All-zero-power population: NaN/inf must not leak out silently.
        pop = FinitePopulation(np.zeros(100), name="dead")
        result = HighQuantileEstimator(pop, q=0.9).estimate(50, rng=1)
        with pytest.raises(EstimationError, match="zero actual maximum"):
            result.relative_error(pop.actual_max_power)

"""Max-delay estimation extension (paper §V)."""

import numpy as np
import pytest

from repro.estimation.delay_estimator import MaxDelayEstimator
from repro.netlist.generators import ripple_carry_adder
from repro.sim.delay import LibraryDelay, UnitDelay
from repro.sim.event_sim import EventDrivenSimulator


@pytest.fixture(scope="module")
def rca():
    return ripple_carry_adder(4)


class TestMaxDelayEstimator:
    def test_estimate_bounded_by_sta(self, rca):
        est = MaxDelayEstimator(
            rca, UnitDelay(), n=15, m=5, max_hyper_samples=6
        )
        result = est.run(rng=1)
        assert result.estimate <= est.static_bound() + 1e-9
        assert result.estimate > 0

    def test_estimate_dominates_observed_settles(self, rca, rng):
        model = UnitDelay()
        est = MaxDelayEstimator(rca, model, n=15, m=5, max_hyper_samples=6)
        result = est.run(rng=2)
        sim = EventDrivenSimulator(rca, model)
        observed = max(
            sim.simulate_pair(
                list(rng.integers(0, 2, size=rca.num_inputs)),
                list(rng.integers(0, 2, size=rca.num_inputs)),
            ).settle_time
            for _ in range(50)
        )
        # The endpoint estimate should reach at least near the best
        # observed dynamic delay.
        assert result.estimate >= observed * 0.8

    def test_library_delay_model(self, rca):
        est = MaxDelayEstimator(
            rca, LibraryDelay(), n=10, m=5, max_hyper_samples=4
        )
        result = est.run(rng=3)
        assert result.estimate <= est.static_bound() + 1e-9
        assert result.units_used == result.k * 50

    def test_population_name_mentions_delay(self, rca):
        est = MaxDelayEstimator(rca, UnitDelay(), n=5, m=5)
        assert "delay" in est._estimator.population.name

"""JSONL checkpointing and resume for the parallel drivers."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, WorkerError
from repro.estimation.checkpoint import CHECKPOINT_SCHEMA, open_checkpoint
from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.estimation.parallel import hyper_sample_many, run_many
from repro.evt.distributions import GeneralizedWeibull
from repro.vectors.population import FinitePopulation

from .faultlib import FaultyEstimator, RecordingEstimator

NUM_RUNS = 5
BASE_SEED = 17


@pytest.fixture(scope="module")
def estimator():
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(3000, rng=0), 0.0, None)
    pop = FinitePopulation(powers, name="synthetic")
    return MaxPowerEstimator(pop, error=0.05, confidence=0.90)


@pytest.fixture(scope="module")
def baseline(estimator):
    return [
        r.to_dict()
        for r in run_many(estimator, NUM_RUNS, base_seed=BASE_SEED, workers=1)
    ]


def dicts(results):
    return [r.to_dict() for r in results]


class TestCheckpointFile:
    def test_every_completed_run_is_streamed(
        self, estimator, baseline, tmp_path
    ):
        path = tmp_path / "runs.jsonl"
        results = run_many(
            estimator, NUM_RUNS, base_seed=BASE_SEED, workers=1,
            checkpoint=path,
        )
        assert dicts(results) == baseline
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["schema"] == CHECKPOINT_SCHEMA
        assert lines[0]["kind"] == "run_many"
        assert lines[0]["total"] == NUM_RUNS
        assert sorted(rec["index"] for rec in lines[1:]) == list(range(NUM_RUNS))

    def test_overwritten_without_resume(self, estimator, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("stale non-checkpoint content\n")
        run_many(estimator, 2, base_seed=BASE_SEED, workers=1, checkpoint=path)
        head = json.loads(path.read_text().splitlines()[0])
        assert head["schema"] == CHECKPOINT_SCHEMA


class TestResume:
    def test_interrupted_run_resumes_bit_identical(
        self, estimator, baseline, tmp_path
    ):
        path = tmp_path / "runs.jsonl"
        faulty = FaultyEstimator(
            estimator, crash_indices={3}, max_attempt=None
        )
        with pytest.raises(WorkerError):
            run_many(
                faulty, NUM_RUNS, base_seed=BASE_SEED, workers=1,
                retries=0, checkpoint=path, backoff=0.0, task_timeout=None,
            )
        # Serial order: tasks 0-2 completed and were streamed out.
        written = path.read_text().splitlines()
        assert len(written) == 1 + 3

        recorder = RecordingEstimator(estimator)
        resumed = run_many(
            recorder, NUM_RUNS, base_seed=BASE_SEED, workers=1,
            checkpoint=path, resume=True,
        )
        assert dicts(resumed) == baseline
        # Only the unfinished tasks were re-simulated.
        assert recorder.contexts == [(3, 0), (4, 0)]

    def test_resume_tolerates_truncated_tail(
        self, estimator, baseline, tmp_path
    ):
        path = tmp_path / "runs.jsonl"
        run_many(
            estimator, NUM_RUNS, base_seed=BASE_SEED, workers=1,
            checkpoint=path,
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 99, "result": {"trunc')  # kill mid-write
        resumed = run_many(
            estimator, NUM_RUNS, base_seed=BASE_SEED, workers=1,
            checkpoint=path, resume=True,
        )
        assert dicts(resumed) == baseline
        # The resume compacted the file: clean JSONL again, garbage gone.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_resume_with_different_seed_is_refused(self, estimator, tmp_path):
        path = tmp_path / "runs.jsonl"
        run_many(estimator, 3, base_seed=1, workers=1, checkpoint=path)
        with pytest.raises(ConfigError, match="different run"):
            run_many(
                estimator, 3, base_seed=2, workers=1,
                checkpoint=path, resume=True,
            )

    def test_resume_with_different_count_is_refused(self, estimator, tmp_path):
        path = tmp_path / "runs.jsonl"
        run_many(estimator, 3, base_seed=1, workers=1, checkpoint=path)
        with pytest.raises(ConfigError, match="different run"):
            run_many(
                estimator, 4, base_seed=1, workers=1,
                checkpoint=path, resume=True,
            )

    def test_resume_refuses_foreign_files(self, estimator, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("do not clobber me\n")
        with pytest.raises(ConfigError, match="not a"):
            run_many(
                estimator, 2, base_seed=1, workers=1,
                checkpoint=path, resume=True,
            )
        assert path.read_text() == "do not clobber me\n"

    def test_hyper_checkpoints_are_kind_scoped(self, estimator, tmp_path):
        path = tmp_path / "hyper.jsonl"
        clean = hyper_sample_many(estimator, 3, base_seed=5, workers=1)
        first = hyper_sample_many(
            estimator, 3, base_seed=5, workers=1, checkpoint=path
        )
        resumed = hyper_sample_many(
            estimator, 3, base_seed=5, workers=1, checkpoint=path, resume=True
        )
        assert dicts(first) == dicts(clean)
        assert dicts(resumed) == dicts(clean)
        # A run_many resume against a hyper checkpoint must be refused.
        with pytest.raises(ConfigError, match="different run"):
            run_many(
                estimator, 3, base_seed=5, workers=1,
                checkpoint=path, resume=True,
            )


class TestOpenCheckpoint:
    """Unit-level checks of the loader itself."""

    def test_missing_file_resumes_empty(self, tmp_path):
        loaded, writer = open_checkpoint(
            tmp_path / "new.jsonl", kind="run_many", key="k", total=2,
            resume=True, from_dict=lambda d: d,
        )
        writer.close()
        assert loaded == {}

    def test_out_of_range_indices_are_dropped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        header = {
            "schema": CHECKPOINT_SCHEMA, "kind": "run_many",
            "key": "k", "total": 2,
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write(json.dumps({"index": 0, "result": {"a": 1}}) + "\n")
            handle.write(json.dumps({"index": 9, "result": {"a": 2}}) + "\n")
        loaded, writer = open_checkpoint(
            path, kind="run_many", key="k", total=2,
            resume=True, from_dict=lambda d: d,
        )
        writer.close()
        assert loaded == {0: {"a": 1}}

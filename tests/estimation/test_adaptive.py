"""Adaptive controller: ``method="auto"`` and the estimator factory."""

import numpy as np
import pytest

from repro.api import EstimatorConfig, estimate, hyper_sample_many, run_many
from repro.errors import ConfigError
from repro.estimation.adaptive import (
    AdaptiveMaxPowerEstimator,
    build_estimator,
)
from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.estimation.pot import PeaksOverThresholdEstimator
from repro.evt.distributions import GeneralizedWeibull
from repro.obs.metrics import get_registry
from repro.vectors.population import FinitePopulation

AUTO = EstimatorConfig(method="auto", max_hyper_samples=12)


@pytest.fixture(scope="module")
def light_pool():
    """Bounded tail: the paper's generalized-Weibull model."""
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(20000, rng=0), 0.0, None)
    return FinitePopulation(powers, name="light-pool")


@pytest.fixture(scope="module")
def heavy_pool():
    """Heavy (lognormal) tail: block maxima resolve it poorly."""
    rng = np.random.default_rng(1)
    powers = rng.lognormal(mean=0.0, sigma=1.2, size=20000)
    return FinitePopulation(powers, name="heavy-pool")


class TestConfigValidation:
    def test_unknown_method(self):
        with pytest.raises(ConfigError, match="unknown method"):
            EstimatorConfig(method="bogus")

    def test_auto_rejects_schedule_overrides(self):
        with pytest.raises(ConfigError, match="method='auto'"):
            EstimatorConfig(method="auto", n=50)
        with pytest.raises(ConfigError, match="method='auto'"):
            EstimatorConfig(method="auto", m=20)

    def test_pot_requires_threshold_policy(self):
        with pytest.raises(ConfigError, match="threshold policy"):
            EstimatorConfig(method="pot")

    def test_fixed_rejects_pot_knobs(self):
        with pytest.raises(ConfigError, match="no effect"):
            EstimatorConfig(pot_threshold_quantile=0.9)
        with pytest.raises(ConfigError, match="no effect"):
            EstimatorConfig(pot_batch_size=200)

    def test_pot_knob_ranges(self):
        with pytest.raises(ConfigError, match=r"\[0.5, 1\)"):
            EstimatorConfig(method="pot", pot_threshold_quantile=0.3)
        with pytest.raises(ConfigError, match=">= 20"):
            EstimatorConfig(
                method="pot", pot_threshold_quantile=0.9, pot_batch_size=5
            )

    def test_controller_constructor_validation(self, light_pool):
        with pytest.raises(ConfigError, match="pilot_m"):
            AdaptiveMaxPowerEstimator(light_pool, pilot_m=2)
        with pytest.raises(ConfigError, match="cv_folds"):
            AdaptiveMaxPowerEstimator(light_pool, cv_folds=0)
        with pytest.raises(ConfigError, match="cv_holdout_blocks"):
            AdaptiveMaxPowerEstimator(light_pool, cv_holdout_blocks=1)


class TestFactory:
    def test_dispatch(self, light_pool):
        assert isinstance(
            build_estimator(light_pool, EstimatorConfig()), MaxPowerEstimator
        )
        assert isinstance(
            build_estimator(
                light_pool,
                EstimatorConfig(method="pot", pot_threshold_quantile=0.9),
            ),
            PeaksOverThresholdEstimator,
        )
        assert isinstance(
            build_estimator(light_pool, AUTO), AdaptiveMaxPowerEstimator
        )

    def test_config_threads_through(self, light_pool):
        config = EstimatorConfig(
            method="pot",
            pot_threshold_quantile=0.95,
            pot_batch_size=500,
            error=0.04,
            confidence=0.95,
            max_hyper_samples=33,
        )
        est = build_estimator(light_pool, config)
        assert est.threshold_quantile == 0.95
        assert est.batch_size == 500
        assert est.error == 0.04
        assert est.confidence == 0.95
        assert est.max_hyper_samples == 33

    def test_pot_batch_defaults_to_schedule_units(self, light_pool):
        config = EstimatorConfig(
            method="pot", pot_threshold_quantile=0.9, n=40, m=8
        )
        est = build_estimator(light_pool, config)
        assert est.batch_size == 40 * 8

    def test_hyper_sample_many_is_fixed_only(self, light_pool):
        with pytest.raises(ConfigError, match="method='fixed'"):
            hyper_sample_many(light_pool, 2, config=AUTO)


class TestDecision:
    def test_family_tracks_cv_scores(self, light_pool, heavy_pool):
        for pool in (light_pool, heavy_pool):
            for seed in range(4):
                decision, engine, overhead = AdaptiveMaxPowerEstimator(
                    pool
                ).decide(np.random.default_rng(seed))
                assert decision.family == (
                    "pot"
                    if decision.cv_score_pot < decision.cv_score_weibull
                    else "weibull"
                )
                assert decision.chosen_n in decision.candidate_ns
                assert decision.chosen_m >= 1
                assert overhead == decision.pilot_units > 0
                assert 0.0 <= decision.pilot_fallback_rate <= 1.0
                expected = (
                    PeaksOverThresholdEstimator
                    if decision.family == "pot"
                    else MaxPowerEstimator
                )
                assert isinstance(engine, expected)

    def test_pilot_cost_charged_to_budget(self, light_pool):
        controller = AdaptiveMaxPowerEstimator(light_pool, max_hyper_samples=12)
        decision, engine, overhead = controller.decide(np.random.default_rng(2))
        assert engine.max_hyper_samples < 12
        assert engine.max_hyper_samples >= controller.min_hyper_samples

    def test_result_records_decision(self, light_pool):
        result = estimate(light_pool, AUTO, seed=7)
        assert result.method == "auto"
        assert result.decision is not None
        assert result.decision.chosen_n > 0
        assert result.decision.family in ("weibull", "pot")
        # Total spend includes the pilot overhead on top of the engine.
        engine_units = sum(hs.units_used for hs in result.hyper_samples)
        assert result.units_used == engine_units + result.decision.pilot_units

    def test_round_trips_through_dict(self, light_pool):
        result = estimate(light_pool, AUTO, seed=7)
        clone = type(result).from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()
        assert clone.decision == result.decision

    def test_metrics_recorded(self, light_pool):
        registry = get_registry()
        was_enabled = registry.enabled
        registry.enable()
        try:
            estimate(light_pool, AUTO, seed=7)
            snap = registry.snapshot()
        finally:
            if not was_enabled:
                registry.disable()
                registry.reset()
        counters = {c["name"] for c in snap["counters"]}
        histograms = {h["name"] for h in snap["histograms"]}
        assert "adaptive_runs_total" in counters
        assert "adaptive_pilot_units_total" in counters
        assert "adaptive_chosen_n" in histograms


class TestSeedDeterminism:
    def test_estimate_bit_identical(self, light_pool):
        a = estimate(light_pool, AUTO, seed=7)
        b = estimate(light_pool, AUTO, seed=7)
        assert a.to_dict() == b.to_dict()

    def test_run_many_workers_invariant(self, light_pool):
        serial = run_many(light_pool, 3, AUTO, base_seed=11)
        parallel = run_many(
            light_pool,
            3,
            EstimatorConfig(method="auto", max_hyper_samples=12, workers=4),
            base_seed=11,
        )
        assert [r.to_dict() for r in serial] == [
            r.to_dict() for r in parallel
        ]

    def test_checkpoint_resume_bit_identical(self, light_pool, tmp_path):
        from repro.errors import WorkerError
        from repro.estimation import parallel

        from .faultlib import FaultyEstimator

        controller = AdaptiveMaxPowerEstimator(light_pool, max_hyper_samples=12)
        baseline = [
            r.to_dict()
            for r in parallel.run_many(controller, 4, base_seed=5, workers=1)
        ]
        # First pass dies on run 2 ("the process was killed"); the
        # resume completes the batch and must not re-run or perturb the
        # runs that already committed to the checkpoint.
        path = tmp_path / "auto.jsonl"
        faulty = FaultyEstimator(controller, crash_indices={2}, max_attempt=None)
        with pytest.raises(WorkerError):
            parallel.run_many(
                faulty, 4, base_seed=5, workers=1, retries=0,
                checkpoint=path, backoff=0.0, task_timeout=None,
            )
        resumed = parallel.run_many(
            controller, 4, base_seed=5, workers=1,
            checkpoint=path, resume=True,
        )
        assert [r.to_dict() for r in resumed] == baseline


class TestFamilyDifferential:
    def test_bounded_tail_both_families_converge(self, light_pool):
        truth = light_pool.actual_max_power
        pot = PeaksOverThresholdEstimator(light_pool).run(rng=7)
        weib = MaxPowerEstimator(light_pool).run(rng=7)
        assert pot.converged and weib.converged
        assert abs(pot.relative_error(truth)) < 0.10
        assert abs(weib.relative_error(truth)) < 0.10

    def test_heavy_tail_neither_family_claims_convergence(self, heavy_pool):
        # Lognormal tails defeat both models at this budget; the honest
        # outcome is converged=False, not a confidently wrong interval.
        pot = PeaksOverThresholdEstimator(
            heavy_pool, max_hyper_samples=20
        ).run(rng=7)
        weib = MaxPowerEstimator(heavy_pool, max_hyper_samples=20).run(rng=7)
        assert not pot.converged
        assert not weib.converged

    def test_cv_scores_separate_tail_difficulty(self, light_pool, heavy_pool):
        def mean_scores(pool):
            scores = [
                AdaptiveMaxPowerEstimator(pool).decide(
                    np.random.default_rng(seed)
                )[0]
                for seed in range(4)
            ]
            best = [
                min(d.cv_score_weibull, d.cv_score_pot) for d in scores
            ]
            return float(np.mean(best))

        # Prediction error on held-out block maxima is an order of
        # magnitude worse on the heavy tail: the controller *measures*
        # tail difficulty rather than assuming the paper's model.
        assert mean_scores(light_pool) < 0.15
        assert mean_scores(heavy_pool) > 0.25

"""Finite-population quantile correction (paper §3.4)."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation.finite_population import (
    finite_population_estimate,
    finite_population_quantile,
)
from repro.evt.distributions import GeneralizedWeibull
from repro.evt.mle import fit_weibull_mle


@pytest.fixture(scope="module")
def fit():
    true = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.5, mu=2.0)
    return fit_weibull_mle(true.rvs(500, rng=1))


class TestQuantileLevel:
    def test_level_formula(self):
        assert finite_population_quantile(100) == pytest.approx(0.99)
        assert finite_population_quantile(160_000) == pytest.approx(
            1 - 1 / 160_000
        )

    def test_validation(self):
        with pytest.raises(EstimationError):
            finite_population_quantile(1)


class TestEstimate:
    def test_infinite_population_returns_mu(self, fit):
        assert finite_population_estimate(fit, None) == fit.mu

    def test_finite_estimate_below_mu(self, fit):
        est = finite_population_estimate(fit, 10_000)
        assert est < fit.mu

    def test_larger_population_closer_to_mu(self, fit):
        small = finite_population_estimate(fit, 1_000)
        large = finite_population_estimate(fit, 1_000_000)
        assert small < large < fit.mu

    def test_correction_reduces_bias_empirically(self):
        # Build a finite pool from a known distribution and check the
        # corrected estimator's mean error is much smaller than raw mu.
        true = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.5, mu=2.0)
        rng = np.random.default_rng(9)
        pool = true.rvs(20_000, rng)
        actual = pool.max()
        raw, corrected = [], []
        for _ in range(60):
            idx = rng.integers(0, pool.size, size=300)
            maxima = pool[idx].reshape(10, 30).max(axis=1)
            try:
                f = fit_weibull_mle(maxima)
            except Exception:
                continue
            raw.append(f.mu)
            corrected.append(finite_population_estimate(f, pool.size))
        raw_bias = abs(np.mean(raw) - actual) / actual
        corrected_bias = abs(np.mean(corrected) - actual) / actual
        assert corrected_bias < raw_bias

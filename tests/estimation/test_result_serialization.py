"""EstimationResult / HyperSample JSON serialization round trips."""

import json

import numpy as np
import pytest

from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.estimation.result import (
    RESULT_SCHEMA,
    EstimationResult,
    HyperSample,
)
from repro.evt.distributions import GeneralizedWeibull
from repro.vectors.population import FinitePopulation


@pytest.fixture(scope="module")
def result():
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(8000, rng=0), 0.0, None)
    pop = FinitePopulation(powers, name="synthetic")
    est = MaxPowerEstimator(pop, error=0.05, confidence=0.90)
    return est.run(np.random.default_rng(42))


class TestToDict:
    def test_schema_and_top_level_fields(self, result):
        d = result.to_dict()
        assert d["schema"] == RESULT_SCHEMA
        assert d["estimate"] == result.estimate
        assert d["converged"] == result.converged
        assert d["k"] == result.k
        assert d["units_used"] == result.units_used
        assert d["population_name"] == "synthetic"
        assert d["population_size"] == 8000
        assert len(d["hyper_samples"]) == result.k
        assert d["ci_trajectory"] == result.ci_trajectory

    def test_hyper_samples_include_fits(self, result):
        d = result.to_dict()
        fitted = [hs for hs in d["hyper_samples"] if hs["fit"] is not None]
        assert fitted  # synthetic Weibull data: fits succeed
        for hs in fitted:
            for key in ("alpha", "beta", "mu", "loglik", "shape_gt2"):
                assert key in hs["fit"]

    def test_json_text_is_strict_json(self, result):
        json.loads(result.to_json())
        json.loads(result.to_json(indent=2))


class TestRoundTrip:
    def test_full_round_trip_preserves_everything(self, result):
        back = EstimationResult.from_json(result.to_json())
        assert back.to_dict() == result.to_dict()
        assert back.estimate == result.estimate
        assert back.units_used == result.units_used
        assert back.ci_trajectory == result.ci_trajectory
        assert back.interval.low == result.interval.low
        assert back.interval.high == result.interval.high
        assert back.rel_half_width == result.rel_half_width
        for a, b in zip(result.hyper_samples, back.hyper_samples):
            assert np.array_equal(a.maxima, b.maxima)
            assert a.estimate == b.estimate
            if a.fit is not None:
                assert b.fit.alpha == a.fit.alpha
                assert b.fit.mu == a.fit.mu
                # the distribution is reconstructed, not just echoed
                assert b.fit.distribution.cdf(a.fit.mu * 0.9) == (
                    pytest.approx(a.fit.distribution.cdf(a.fit.mu * 0.9))
                )

    def test_degenerate_fallback_round_trip(self):
        # Flat population -> every fit degenerates to the plain maximum.
        pop = FinitePopulation(np.full(2000, 1.5), name="flat")
        est = MaxPowerEstimator(pop, error=0.05, confidence=0.90)
        result = est.run(np.random.default_rng(0))
        assert all(hs.fit is None for hs in result.hyper_samples)
        assert all(hs.fallback_reason for hs in result.hyper_samples)
        back = EstimationResult.from_json(result.to_json())
        assert back.to_dict() == result.to_dict()
        assert back.hyper_samples[0].degenerate
        assert (
            back.hyper_samples[0].fallback_reason
            == result.hyper_samples[0].fallback_reason
        )

    def test_hyper_sample_round_trip_standalone(self):
        hs = HyperSample(
            index=3,
            maxima=np.array([1.0, 2.0, 3.0]),
            fit=None,
            estimate=3.0,
            units_used=90,
            fallback_reason="degenerate sample",
        )
        back = HyperSample.from_dict(
            json.loads(json.dumps(hs.to_dict()))
        )
        assert back.to_dict() == hs.to_dict()
        assert back.maxima.dtype == np.float64

    def test_missing_optional_fields_default(self, result):
        d = result.to_dict()
        del d["ci_trajectory"]
        del d["population_name"]
        back = EstimationResult.from_dict(d)
        assert back.ci_trajectory == []
        assert back.population_name == ""

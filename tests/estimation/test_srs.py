"""Simple random sampling baseline."""

import numpy as np
import pytest

from repro.errors import ConfigError, EstimationError
from repro.estimation.srs import SimpleRandomSampling, srs_required_units
from repro.vectors.population import FinitePopulation, StreamingPopulation


@pytest.fixture
def pool():
    rng = np.random.default_rng(0)
    powers = rng.random(10000)
    powers[1234] = 2.0  # a unique, isolated maximum
    return FinitePopulation(powers, name="uniform+spike")


class TestEstimate:
    def test_never_exceeds_actual(self, pool):
        srs = SimpleRandomSampling(pool)
        for seed in range(10):
            assert srs.estimate_max(500, rng=seed) <= pool.actual_max_power

    def test_more_units_no_worse_in_expectation(self, pool):
        srs = SimpleRandomSampling(pool)
        small = np.mean([srs.estimate_max(20, rng=s) for s in range(40)])
        large = np.mean([srs.estimate_max(2000, rng=s) for s in range(40)])
        assert large >= small

    def test_invalid_units(self, pool):
        with pytest.raises(ConfigError):
            SimpleRandomSampling(pool).estimate_max(0)


class TestStudy:
    def test_error_signs_non_positive(self, pool):
        study = SimpleRandomSampling(pool).study(300, 50, rng=1)
        assert (study.relative_errors <= 0).all()
        assert study.largest_error <= 0

    def test_largest_error_magnitude(self, pool):
        study = SimpleRandomSampling(pool).study(100, 30, rng=2)
        assert abs(study.largest_error) == np.abs(study.relative_errors).max()

    def test_zero_actual_max_raises_instead_of_nan(self):
        # A degenerate all-zero-power population used to yield NaN/inf
        # errors silently; both accessors must fail loudly now.
        pop = FinitePopulation(np.zeros(500), name="dead")
        study = SimpleRandomSampling(pop).study(50, 5, rng=3)
        with pytest.raises(EstimationError, match="zero actual maximum"):
            study.relative_errors
        with pytest.raises(EstimationError, match="zero actual maximum"):
            study.largest_error

    def test_exceed_fraction_monotone_in_epsilon(self, pool):
        study = SimpleRandomSampling(pool).study(100, 50, rng=3)
        assert study.exceed_fraction(0.01) >= study.exceed_fraction(0.20)

    def test_exceed_fraction_validation(self, pool):
        study = SimpleRandomSampling(pool).study(50, 5, rng=4)
        with pytest.raises(ConfigError):
            study.exceed_fraction(0.0)

    def test_streaming_requires_actual_max(self):
        pop = StreamingPopulation(
            lambda n, rng: (n, rng),
            lambda n, rng: rng.random(n),
            name="stream",
        )
        srs = SimpleRandomSampling(pop)
        with pytest.raises(ConfigError, match="actual_max"):
            srs.study(10, 3, rng=1)
        study = srs.study(10, 3, rng=1, actual_max=1.0)
        assert study.actual_max == 1.0

    def test_repetitions_validation(self, pool):
        with pytest.raises(ConfigError):
            SimpleRandomSampling(pool).study(10, 0)


class TestTheoreticalUnits:
    def test_matches_formula_on_pool(self, pool):
        srs = SimpleRandomSampling(pool)
        y = pool.qualified_portion(0.05)
        assert srs.theoretical_units(0.05, 0.9) == pytest.approx(
            srs_required_units(y, 0.9)
        )

    def test_spiked_pool_is_expensive(self, pool):
        # Only one of 10000 units is within 5% of the max.
        assert pool.qualified_portion(0.05) == pytest.approx(1e-4)
        assert SimpleRandomSampling(pool).theoretical_units() > 20000

    def test_streaming_rejected(self):
        pop = StreamingPopulation(
            lambda n, rng: (n, rng), lambda n, rng: rng.random(n)
        )
        with pytest.raises(ConfigError):
            SimpleRandomSampling(pop).theoretical_units()

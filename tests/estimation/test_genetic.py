"""Genetic max-power search baseline."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.estimation.genetic import GeneticMaxPowerSearch


def ones_count_power(v1, v2):
    """Toy fitness: number of toggled bits — max when v1 = ~v2."""
    return (v1 != v2).sum(axis=1).astype(float)


class TestConfiguration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_inputs=0),
            dict(population_size=2),
            dict(generations=0),
            dict(mutation_rate=1.5),
            dict(crossover_rate=-0.1),
            dict(elite=64),
            dict(tournament=0),
        ],
    )
    def test_bad_parameters(self, kwargs):
        defaults = dict(num_inputs=8, population_size=16)
        defaults.update(kwargs)
        with pytest.raises(ConfigError):
            GeneticMaxPowerSearch(ones_count_power, **defaults)


class TestSearch:
    def test_finds_global_optimum_on_toy_problem(self):
        ga = GeneticMaxPowerSearch(
            ones_count_power,
            num_inputs=10,
            population_size=40,
            generations=40,
            mutation_rate=0.05,
        )
        result = ga.run(rng=1)
        assert result.best_power == 10.0  # all bits toggled
        assert (result.best_v1 != result.best_v2).all()

    def test_history_monotone_nondecreasing(self):
        ga = GeneticMaxPowerSearch(
            ones_count_power, num_inputs=12, population_size=16, generations=15
        )
        result = ga.run(rng=2)
        assert all(
            b >= a for a, b in zip(result.history, result.history[1:])
        )
        assert result.best_power >= result.history[0]

    def test_units_accounting(self):
        ga = GeneticMaxPowerSearch(
            ones_count_power, num_inputs=6, population_size=10, generations=7
        )
        result = ga.run(rng=3)
        assert result.units_used == 10 * 8  # initial + 7 generations

    def test_beats_random_sampling_at_equal_budget(self):
        rng = np.random.default_rng(4)
        ga = GeneticMaxPowerSearch(
            ones_count_power, num_inputs=24, population_size=20, generations=20
        )
        result = ga.run(rng=5)
        budget = result.units_used
        v1 = rng.integers(0, 2, size=(budget, 24), dtype=np.uint8)
        v2 = rng.integers(0, 2, size=(budget, 24), dtype=np.uint8)
        random_best = ones_count_power(v1, v2).max()
        assert result.best_power >= random_best

    def test_reproducible(self):
        ga = GeneticMaxPowerSearch(
            ones_count_power, num_inputs=8, population_size=12, generations=5
        )
        r1, r2 = ga.run(rng=7), ga.run(rng=7)
        assert r1.best_power == r2.best_power
        assert r1.history == r2.history

    def test_relative_error_helper(self):
        ga = GeneticMaxPowerSearch(
            ones_count_power, num_inputs=4, population_size=8, generations=3
        )
        result = ga.run(rng=8)
        assert result.relative_error(4.0) <= 0.0

    def test_on_real_circuit_power(self, c17):
        from repro.sim.power import PowerAnalyzer

        pa = PowerAnalyzer(c17, mode="zero")
        ga = GeneticMaxPowerSearch(
            pa.powers_for_pairs, c17.num_inputs,
            population_size=16, generations=10,
        )
        result = ga.run(rng=9)
        assert 0 < result.best_power <= pa.max_possible_power_w()

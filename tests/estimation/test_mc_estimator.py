"""The iterative hyper-sample estimator (the paper's core flow)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.evt.distributions import GeneralizedWeibull
from repro.vectors.population import FinitePopulation, StreamingPopulation


def weibull_population(alpha=4.0, mu=1.0, size=20000, seed=0):
    dist = GeneralizedWeibull.from_scale(alpha=alpha, scale=0.3, mu=mu)
    powers = dist.rvs(size, rng=seed)
    powers = np.clip(powers, 0.0, None)
    return FinitePopulation(powers, name="synthetic-weibull")


class TestConfiguration:
    def test_parameter_validation(self, small_population):
        with pytest.raises(ConfigError):
            MaxPowerEstimator(small_population, n=1)
        with pytest.raises(ConfigError):
            MaxPowerEstimator(small_population, m=2)
        with pytest.raises(ConfigError):
            MaxPowerEstimator(small_population, error=0.0)
        with pytest.raises(ConfigError):
            MaxPowerEstimator(small_population, confidence=1.0)
        with pytest.raises(ConfigError):
            MaxPowerEstimator(small_population, min_hyper_samples=1)
        with pytest.raises(ConfigError):
            MaxPowerEstimator(
                small_population, min_hyper_samples=5, max_hyper_samples=4
            )
        with pytest.raises(ConfigError):
            MaxPowerEstimator(small_population, upper_bound=-1.0)

    def test_finite_correction_defaults(self, small_population):
        est = MaxPowerEstimator(small_population)
        assert est.finite_correction is True
        stream = StreamingPopulation(
            lambda n, rng: (None, None), lambda a, b: np.zeros(1)
        )
        est2 = MaxPowerEstimator(stream)
        assert est2.finite_correction is False
        with pytest.raises(ConfigError):
            MaxPowerEstimator(stream, finite_correction=True)


class TestHyperSample:
    def test_units_accounting(self, small_population):
        est = MaxPowerEstimator(small_population, n=25, m=8)
        hs = est.hyper_sample(1, rng=1)
        assert hs.units_used == 200
        assert hs.maxima.shape == (8,)

    def test_estimate_at_least_observed_max(self, small_population):
        est = MaxPowerEstimator(small_population)
        rng = np.random.default_rng(2)
        for i in range(20):
            hs = est.hyper_sample(i, rng)
            assert hs.estimate >= hs.maxima.max() - 1e-15

    def test_degenerate_sample_falls_back(self):
        pop = FinitePopulation(np.full(100, 3.0), name="flat")
        est = MaxPowerEstimator(pop)
        hs = est.hyper_sample(1, rng=1)
        assert hs.degenerate
        assert hs.fit is None
        assert hs.estimate == 3.0
        assert hs.units_used == est.n * est.m

    def test_uses_batched_block_maxima_path(self, small_population):
        """hyper_sample consumes the RNG exactly like one batched
        sample_block_maxima call (the vectorized hot path)."""
        est = MaxPowerEstimator(small_population, n=10, m=5)
        hs = est.hyper_sample(1, rng=77)
        expected = small_population.sample_block_maxima(10, 5, rng=77)
        assert np.array_equal(hs.maxima, expected)

    def test_upper_bound_clips(self, small_population):
        actual = small_population.actual_max_power
        bound = actual * 0.5
        est = MaxPowerEstimator(small_population, upper_bound=bound)
        hs = est.hyper_sample(1, rng=3)
        assert hs.estimate <= bound + 1e-15


class TestRun:
    def test_converges_on_synthetic_population(self):
        pop = weibull_population()
        result = MaxPowerEstimator(pop).run(rng=5)
        assert result.converged
        assert result.interval is not None
        assert result.rel_half_width <= 0.05
        assert abs(result.relative_error(pop.actual_max_power)) < 0.25
        assert result.population_size == pop.size
        assert result.population_name == pop.name

    def test_units_equal_k_times_nm(self):
        pop = weibull_population(seed=3)
        est = MaxPowerEstimator(pop, n=30, m=10)
        result = est.run(rng=7)
        assert result.units_used == result.k * 300
        assert len(result.hyper_samples) == result.k
        assert result.k >= 2

    def test_estimate_is_mean_of_hyper_samples(self):
        pop = weibull_population(seed=4)
        result = MaxPowerEstimator(pop).run(rng=9)
        values = [hs.estimate for hs in result.hyper_samples]
        assert result.estimate == pytest.approx(np.mean(values))

    def test_reproducible_with_seed(self):
        pop = weibull_population(seed=5)
        r1 = MaxPowerEstimator(pop).run(rng=11)
        r2 = MaxPowerEstimator(pop).run(rng=11)
        assert r1.estimate == r2.estimate
        assert r1.units_used == r2.units_used

    def test_flat_population_converges_immediately(self):
        pop = FinitePopulation(np.full(1000, 2.5), name="flat")
        result = MaxPowerEstimator(pop).run(rng=1)
        assert result.converged
        assert result.k == 2
        assert result.estimate == 2.5
        assert result.interval.half_width == 0.0

    def test_budget_exhaustion_flags_unconverged(self):
        rng_pool = np.random.default_rng(0)
        # Extremely heavy-tailed pool to defeat convergence at k<=3.
        powers = rng_pool.pareto(0.5, size=5000) + 0.1
        pop = FinitePopulation(powers, name="pareto")
        result = MaxPowerEstimator(
            pop, error=0.001, max_hyper_samples=3
        ).run(rng=3)
        assert not result.converged
        assert result.k == 3
        assert np.isfinite(result.estimate)

    def test_unconverged_estimate_equals_interval_mean(self):
        """Regression: the unconverged fallback overwrote the estimate
        with the plain mean while the interval lagged behind it."""
        rng_pool = np.random.default_rng(1)
        powers = rng_pool.pareto(0.5, size=5000) + 0.1
        pop = FinitePopulation(powers, name="pareto")
        result = MaxPowerEstimator(
            pop, error=0.0001, max_hyper_samples=4
        ).run(rng=5)
        assert not result.converged
        assert result.interval is not None
        assert result.estimate == result.interval.mean
        assert result.interval.k == result.k
        values = [hs.estimate for hs in result.hyper_samples]
        assert result.estimate == pytest.approx(np.mean(values))

    def test_tighter_error_needs_more_units(self):
        pop = weibull_population(seed=6)
        rng = np.random.default_rng(13)
        loose = [
            MaxPowerEstimator(pop, error=0.10).run(rng).units_used
            for _ in range(5)
        ]
        rng = np.random.default_rng(13)
        tight = [
            MaxPowerEstimator(pop, error=0.02).run(rng).units_used
            for _ in range(5)
        ]
        assert np.mean(tight) >= np.mean(loose)

    def test_summary_mentions_status(self):
        pop = weibull_population(seed=7)
        result = MaxPowerEstimator(pop).run(rng=15)
        text = result.summary()
        assert "converged" in text
        assert "units=" in text

    def test_relative_error_sign(self):
        pop = weibull_population(seed=8)
        result = MaxPowerEstimator(pop).run(rng=17)
        actual = pop.actual_max_power
        err = result.relative_error(actual)
        assert err == pytest.approx((result.estimate - actual) / actual)

    def test_works_on_streaming_population(self):
        dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)

        def generate(n, rng):
            return n, rng  # opaque pass-through

        def power(n, rng):
            return dist.rvs(n, rng)

        pop = StreamingPopulation(generate, power, name="stream")
        result = MaxPowerEstimator(pop, max_hyper_samples=100).run(rng=19)
        assert result.population_size is None
        # Infinite population: the raw mu-hat estimator is used.
        assert result.estimate == pytest.approx(1.0, abs=0.4)

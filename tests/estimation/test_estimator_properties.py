"""Property-based invariants of the estimation pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.evt.distributions import GeneralizedWeibull
from repro.vectors.population import FinitePopulation


def make_pool(seed: int, size: int = 5000) -> FinitePopulation:
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(size, rng=seed), 0.0, None)
    return FinitePopulation(powers, name=f"pool{seed}")


class TestScaleInvariance:
    @given(
        scale=st.floats(min_value=1e-3, max_value=1e3),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_estimate_scales_linearly(self, scale, seed):
        # Mathematically exact at any scale; float round-off in the
        # profile likelihood bounds the testable range/tolerance.
        pool = make_pool(seed)
        scaled = FinitePopulation(pool.powers * scale, name="scaled")
        base = MaxPowerEstimator(pool, max_hyper_samples=6).run(rng=seed)
        other = MaxPowerEstimator(scaled, max_hyper_samples=6).run(rng=seed)
        assert other.estimate == pytest.approx(
            base.estimate * scale, rel=1e-4
        )
        assert other.units_used == base.units_used
        assert other.k == base.k

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_interval_always_brackets_estimate(self, seed):
        pool = make_pool(seed)
        result = MaxPowerEstimator(pool, max_hyper_samples=5).run(rng=seed)
        if result.interval is not None:
            assert result.interval.low <= result.estimate
            assert result.estimate <= result.interval.high

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_estimate_at_least_best_block_max(self, seed):
        pool = make_pool(seed)
        result = MaxPowerEstimator(pool, max_hyper_samples=4).run(rng=seed)
        # Each hyper estimate >= its own block max; the mean over
        # hyper-samples must then be >= the smallest of those witnesses.
        witnesses = [hs.maxima.max() for hs in result.hyper_samples]
        assert result.estimate >= min(witnesses) - 1e-12


class TestQualifiedPortionProperties:
    @given(
        eps=st.floats(min_value=0.01, max_value=0.5),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_portion_monotone_in_epsilon(self, eps, seed):
        pool = make_pool(seed, size=2000)
        small = pool.qualified_portion(eps / 2)
        large = pool.qualified_portion(eps)
        assert 0 < small <= large <= 1

"""Parallel estimation drivers: seed contract and worker independence."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.estimation.parallel import (
    hyper_sample_many,
    run_many,
    spawn_run_seeds,
)
from repro.evt.distributions import GeneralizedWeibull
from repro.vectors.population import FinitePopulation


@pytest.fixture(scope="module")
def estimator():
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(8000, rng=0), 0.0, None)
    pop = FinitePopulation(powers, name="synthetic")
    return MaxPowerEstimator(pop, error=0.05, confidence=0.90)


class TestSpawnRunSeeds:
    def test_deterministic_and_distinct(self):
        a = spawn_run_seeds(42, 5)
        b = spawn_run_seeds(42, 5)
        assert len(a) == 5
        for s1, s2 in zip(a, b):
            assert np.array_equal(
                np.random.default_rng(s1).integers(0, 1 << 30, 4),
                np.random.default_rng(s2).integers(0, 1 << 30, 4),
            )
        # distinct children produce distinct streams
        d1 = np.random.default_rng(a[0]).random(8)
        d2 = np.random.default_rng(a[1]).random(8)
        assert not np.array_equal(d1, d2)

    def test_accepts_seed_sequence(self):
        root = np.random.SeedSequence([7, 11])
        children = spawn_run_seeds(root, 3)
        assert len(children) == 3

    def test_rejects_bad_count(self):
        with pytest.raises(ConfigError):
            spawn_run_seeds(0, 0)


class TestRunMany:
    def test_serial_matches_manual_loop(self, estimator):
        results = run_many(estimator, 4, base_seed=11, workers=1)
        seeds = spawn_run_seeds(11, 4)
        manual = [estimator.run(np.random.default_rng(s)) for s in seeds]
        assert [r.estimate for r in results] == [r.estimate for r in manual]
        assert [r.units_used for r in results] == [
            r.units_used for r in manual
        ]

    def test_serial_vs_parallel_bit_identical(self, estimator):
        serial = run_many(estimator, 6, base_seed=123, workers=1)
        parallel = run_many(estimator, 6, base_seed=123, workers=3)
        assert [r.estimate for r in serial] == [
            r.estimate for r in parallel
        ]
        assert [r.units_used for r in serial] == [
            r.units_used for r in parallel
        ]
        assert [r.converged for r in serial] == [
            r.converged for r in parallel
        ]

    def test_results_independent_of_worker_count(self, estimator):
        two = run_many(estimator, 5, base_seed=9, workers=2)
        four = run_many(estimator, 5, base_seed=9, workers=4)
        assert [r.estimate for r in two] == [r.estimate for r in four]

    def test_different_base_seeds_differ(self, estimator):
        a = run_many(estimator, 3, base_seed=1, workers=1)
        b = run_many(estimator, 3, base_seed=2, workers=1)
        assert [r.estimate for r in a] != [r.estimate for r in b]

    def test_validation(self, estimator):
        with pytest.raises(ConfigError):
            run_many(estimator, 0, base_seed=1)
        with pytest.raises(ConfigError):
            run_many(estimator, 2, base_seed=1, workers=0)


class TestHyperSampleMany:
    def test_indices_are_one_based_and_ordered(self, estimator):
        samples = hyper_sample_many(estimator, 5, base_seed=3, workers=1)
        assert [hs.index for hs in samples] == [1, 2, 3, 4, 5]

    def test_serial_vs_parallel_bit_identical(self, estimator):
        serial = hyper_sample_many(estimator, 8, base_seed=21, workers=1)
        parallel = hyper_sample_many(estimator, 8, base_seed=21, workers=2)
        assert [hs.estimate for hs in serial] == [
            hs.estimate for hs in parallel
        ]
        for s, p in zip(serial, parallel):
            assert np.array_equal(s.maxima, p.maxima)

    def test_validation(self, estimator):
        with pytest.raises(ConfigError):
            hyper_sample_many(estimator, 3, workers=-1)

"""Continuous-optimization (COSMOS-style) baseline."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.estimation.gradient import ContinuousMaxPowerSearch
from repro.netlist.generators import parity_tree
from repro.sim.power import PowerAnalyzer


class TestConfiguration:
    def test_bad_parameters(self, c17):
        pa = PowerAnalyzer(c17, mode="zero")
        with pytest.raises(ConfigError):
            ContinuousMaxPowerSearch(c17, pa.powers_for_pairs, iterations=0)
        with pytest.raises(ConfigError):
            ContinuousMaxPowerSearch(c17, pa.powers_for_pairs, samples=0)
        with pytest.raises(ConfigError):
            ContinuousMaxPowerSearch(c17, pa.powers_for_pairs, fd_eps=0.9)


class TestSearch:
    def test_objective_history_nondecreasing(self, c17):
        pa = PowerAnalyzer(c17, mode="zero")
        search = ContinuousMaxPowerSearch(
            c17, pa.powers_for_pairs, iterations=8, samples=64
        )
        result = search.run(rng=1)
        hist = result.objective_history
        assert all(b >= a - 1e-18 for a, b in zip(hist, hist[1:]))

    def test_buffer_chains_drive_toggles_to_one(self):
        # Independent NOT-chains: every net's toggle probability equals
        # its input line's, so expected switched capacitance is strictly
        # increasing in every t_i and the ascent must saturate at 1.
        from repro.netlist.circuit import Circuit
        from repro.netlist.gates import GateType

        c = Circuit("chains")
        outs = []
        for i in range(4):
            c.add_input(f"a{i}")
            c.add_gate(f"n{i}_0", GateType.NOT, [f"a{i}"])
            c.add_gate(f"n{i}_1", GateType.NOT, [f"n{i}_0"])
            outs.append(f"n{i}_1")
        c.set_outputs(outs)
        pa = PowerAnalyzer(c, mode="zero")
        search = ContinuousMaxPowerSearch(
            c, pa.powers_for_pairs, step=0.4, iterations=15, samples=32
        )
        result = search.run(rng=2)
        assert (result.toggle_probs > 0.9).all()

    def test_parity_tree_escapes_saddle_and_improves(self):
        # t = 0.5 is a stationary saddle for XOR logic; the default
        # off-center start must still make progress.
        tree = parity_tree(6)
        pa = PowerAnalyzer(tree, mode="zero")
        search = ContinuousMaxPowerSearch(
            tree, pa.powers_for_pairs, step=0.3, iterations=12, samples=32
        )
        result = search.run(rng=7)
        hist = result.objective_history
        assert hist[-1] > hist[0]

    def test_initial_toggles_parameter(self, c17):
        pa = PowerAnalyzer(c17, mode="zero")
        search = ContinuousMaxPowerSearch(
            c17, pa.powers_for_pairs, iterations=2, samples=16
        )
        result = search.run(rng=8, initial_toggles=np.full(5, 0.2))
        assert result.objective_history[0] == pytest.approx(
            search._objective(np.full(5, 0.2))
        )

    def test_best_power_is_achievable(self, c17):
        pa = PowerAnalyzer(c17, mode="zero")
        search = ContinuousMaxPowerSearch(
            c17, pa.powers_for_pairs, iterations=5, samples=128
        )
        result = search.run(rng=3)
        assert 0 < result.best_power <= pa.max_possible_power_w()
        assert result.units_used == 128

    def test_beats_mean_random_power(self, c17):
        pa = PowerAnalyzer(c17, mode="zero")
        rng = np.random.default_rng(4)
        v1 = rng.integers(0, 2, size=(256, 5), dtype=np.uint8)
        v2 = rng.integers(0, 2, size=(256, 5), dtype=np.uint8)
        mean_random = pa.powers_for_pairs(v1, v2).mean()
        search = ContinuousMaxPowerSearch(
            c17, pa.powers_for_pairs, iterations=8, samples=128
        )
        result = search.run(rng=5)
        assert result.best_power > mean_random

    def test_relative_error_is_lower_bound(self, c17):
        pa = PowerAnalyzer(c17, mode="zero")
        search = ContinuousMaxPowerSearch(
            c17, pa.powers_for_pairs, iterations=3, samples=64
        )
        result = search.run(rng=6)
        generous = pa.max_possible_power_w()
        assert result.relative_error(generous) <= 0

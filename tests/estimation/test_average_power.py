"""Average-power Monte-Carlo estimation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.estimation.average_power import AveragePowerEstimator
from repro.vectors.population import FinitePopulation


@pytest.fixture
def pool():
    rng = np.random.default_rng(2)
    return FinitePopulation(rng.gamma(4.0, 0.25, size=20000), name="gamma")


class TestConfiguration:
    def test_validation(self, pool):
        with pytest.raises(ConfigError):
            AveragePowerEstimator(pool, batch_size=1)
        with pytest.raises(ConfigError):
            AveragePowerEstimator(pool, error=0.0)
        with pytest.raises(ConfigError):
            AveragePowerEstimator(pool, confidence=1.0)
        with pytest.raises(ConfigError):
            AveragePowerEstimator(pool, min_batches=1)
        with pytest.raises(ConfigError):
            AveragePowerEstimator(pool, min_batches=10, max_batches=5)


class TestRun:
    def test_converges_close_to_true_mean(self, pool):
        result = AveragePowerEstimator(pool, error=0.02).run(rng=1)
        assert result.converged
        assert result.interval is not None
        true_mean = pool.mean_power
        assert abs(result.relative_error(true_mean)) < 0.05
        assert result.interval.rel_half_width <= 0.02

    def test_units_accounting(self, pool):
        est = AveragePowerEstimator(pool, batch_size=50)
        result = est.run(rng=2)
        assert result.units_used == len(result.batch_means) * 50

    def test_tighter_error_costs_more(self, pool):
        loose = AveragePowerEstimator(pool, error=0.05).run(rng=3)
        tight = AveragePowerEstimator(pool, error=0.005).run(rng=3)
        assert tight.units_used > loose.units_used

    def test_budget_exhaustion_flagged(self, pool):
        result = AveragePowerEstimator(
            pool, error=1e-6, max_batches=5
        ).run(rng=4)
        assert not result.converged
        assert np.isfinite(result.estimate)

    def test_reproducible(self, pool):
        a = AveragePowerEstimator(pool).run(rng=5)
        b = AveragePowerEstimator(pool).run(rng=5)
        assert a.estimate == b.estimate

    def test_summary(self, pool):
        result = AveragePowerEstimator(pool).run(rng=6)
        assert "P_avg" in result.summary()

    def test_max_to_avg_ratio_sanity_on_circuit(self, small_population):
        from repro.estimation.mc_estimator import MaxPowerEstimator

        avg = AveragePowerEstimator(small_population, error=0.05).run(rng=7)
        mx = MaxPowerEstimator(small_population).run(rng=8)
        assert mx.estimate > avg.estimate
        # Random-logic max/avg power ratios land in the low single digits.
        assert 1.0 < mx.estimate / avg.estimate < 10.0

"""Pilot-based block-size tuning."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.estimation.tuner import BlockSizeTuner
from repro.evt.distributions import GeneralizedWeibull
from repro.vectors.population import FinitePopulation


@pytest.fixture(scope="module")
def pool():
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(20000, rng=1), 0.0, None)
    return FinitePopulation(powers, name="weibull")


class TestConfiguration:
    def test_validation(self, pool):
        with pytest.raises(ConfigError):
            BlockSizeTuner(pool, pilot_hyper_samples=2)
        with pytest.raises(ConfigError):
            BlockSizeTuner(pool, candidates=())
        with pytest.raises(ConfigError):
            BlockSizeTuner(pool, candidates=(1, 30))

    def test_paper_default_always_included(self, pool):
        tuner = BlockSizeTuner(pool, candidates=(10, 50))
        assert 30 in tuner.candidates


class TestRun:
    def test_report_structure(self, pool):
        tuner = BlockSizeTuner(
            pool, candidates=(10, 30), pilot_hyper_samples=6
        )
        report = tuner.run(rng=2)
        assert len(report.pilots) == 2
        assert report.recommended_n in (10, 30)
        assert report.pilot_units_used == 6 * 10 * (10 + 30)
        text = report.render()
        assert "recommended" in text
        assert "pilot cost" in text

    def test_prediction_consistent_with_pilot(self, pool):
        tuner = BlockSizeTuner(pool, candidates=(30,), pilot_hyper_samples=8)
        report = tuner.run(rng=3)
        pilot = report.pilots[0]
        assert pilot.predicted_units == pytest.approx(
            pilot.predicted_k * pilot.units_per_hyper_sample
        )
        assert pilot.predicted_k >= 2.0
        assert pilot.rel_std > 0

    def test_recommendation_minimizes_predicted_units(self, pool):
        tuner = BlockSizeTuner(
            pool, candidates=(10, 30, 60), pilot_hyper_samples=8
        )
        report = tuner.run(rng=4)
        best = min(report.pilots, key=lambda p: p.predicted_units)
        assert report.recommended_n == best.n

    def test_tuned_estimator_runs(self, pool):
        tuner = BlockSizeTuner(
            pool, candidates=(10, 30), pilot_hyper_samples=5
        )
        estimator = tuner.tuned_estimator(rng=5)
        result = estimator.run(rng=6)
        assert np.isfinite(result.estimate)
        assert estimator.n in (10, 30)

    def test_reproducible(self, pool):
        tuner = BlockSizeTuner(pool, candidates=(10, 30), pilot_hyper_samples=5)
        a = tuner.run(rng=7)
        b = tuner.run(rng=7)
        assert a.recommended_n == b.recommended_n
        assert [p.rel_std for p in a.pilots] == [
            p.rel_std for p in b.pilots
        ]

"""Picklable fault injectors for the parallel-driver tests.

These wrappers must live in an importable module (not a test body): the
pool ships the estimator to workers by pickling a *reference* to its
class, so a locally defined class would not survive the trip.

Injection is keyed off :func:`repro.estimation.parallel.current_task`,
which the scheduler sets on both the worker and the in-process execution
paths, so one wrapper drives every code path deterministically.

Hard crashes (``os._exit``) and hangs fire only in child processes
(``os.getpid() != parent_pid``): when the driver degrades to in-process
serial execution after repeated pool failures, the parent must be able
to finish the batch.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.estimation import parallel
from repro.obs.metrics import get_registry


class InjectedCrash(RuntimeError):
    """Deterministic failure raised by :class:`FaultyEstimator`."""


class FaultyEstimator:
    """Wrap an estimator; fail deterministically on chosen (index, attempt).

    Parameters
    ----------
    inner:
        The real estimator whose ``run``/``hyper_sample`` do the work.
    crash_indices:
        Task indices that raise :class:`InjectedCrash` (or hard-kill the
        worker when ``hard=True``).
    hang_indices:
        Task indices that sleep ``hang_seconds`` (child processes only).
    max_attempt:
        Inject only while ``attempt <= max_attempt``; ``None`` injects on
        every attempt (for retry-exhaustion tests).  Default 0: only the
        first attempt fails, so one retry recovers.
    count_metric:
        When set, increment this counter *before* any injection — lets
        tests prove that a failed attempt's partial metrics are discarded
        (the final total must count successful attempts only).
    """

    def __init__(
        self,
        inner,
        *,
        crash_indices=(),
        hang_indices=(),
        hang_seconds: float = 60.0,
        hard: bool = False,
        max_attempt: Optional[int] = 0,
        count_metric: Optional[str] = None,
    ):
        self.inner = inner
        self.crash_indices = frozenset(crash_indices)
        self.hang_indices = frozenset(hang_indices)
        self.hang_seconds = hang_seconds
        self.hard = hard
        self.max_attempt = max_attempt
        self.count_metric = count_metric
        self.parent_pid = os.getpid()

    def _inject(self) -> None:
        if self.count_metric:
            get_registry().counter(self.count_metric).inc()
        task = parallel.current_task()
        if task is None:
            return
        if self.max_attempt is not None and task.attempt > self.max_attempt:
            return
        in_child = os.getpid() != self.parent_pid
        if task.index in self.hang_indices and in_child:
            time.sleep(self.hang_seconds)
        if task.index in self.crash_indices:
            if self.hard:
                if in_child:
                    os._exit(1)  # kill the worker: BrokenProcessPool
                return
            raise InjectedCrash(
                f"injected crash at task {task.index} attempt {task.attempt}"
            )

    def run(self, rng):
        self._inject()
        return self.inner.run(rng)

    def hyper_sample(self, index, rng):
        self._inject()
        return self.inner.hyper_sample(index, rng)


class RecordingEstimator:
    """Record every (index, attempt) seen; optionally crash some of them.

    Only meaningful on the ``workers=1`` in-process path (worker-process
    copies would record into their own memory).
    """

    def __init__(self, inner, *, crash_once_indices=()):
        self.inner = inner
        self.contexts = []
        self.crash_once_indices = frozenset(crash_once_indices)

    def run(self, rng):
        task = parallel.current_task()
        self.contexts.append((task.index, task.attempt) if task else None)
        if task and task.attempt == 0 and task.index in self.crash_once_indices:
            raise InjectedCrash(f"injected crash at task {task.index}")
        return self.inner.run(rng)

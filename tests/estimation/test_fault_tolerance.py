"""Fault-tolerant scheduling: retries, timeouts, pool recovery, metrics.

The contract under test (see ``docs/robustness.md``): crashes, hangs,
dead workers, retries and serial degradation may change *how long* a
batch takes, never *what it computes* — results stay bit-for-bit
identical to an undisturbed ``workers=1`` run.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, TaskTimeoutError, WorkerError
from repro.estimation import parallel
from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.estimation.parallel import (
    MAX_POOL_REBUILDS,
    current_task,
    hyper_sample_many,
    run_many,
)
from repro.evt.distributions import GeneralizedWeibull
from repro.obs.metrics import get_registry
from repro.vectors.population import FinitePopulation

from .faultlib import FaultyEstimator, InjectedCrash, RecordingEstimator

NUM_RUNS = 6
BASE_SEED = 42


@pytest.fixture(scope="module")
def estimator():
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(3000, rng=0), 0.0, None)
    pop = FinitePopulation(powers, name="synthetic")
    return MaxPowerEstimator(pop, error=0.05, confidence=0.90)


@pytest.fixture(scope="module")
def baseline(estimator):
    """Undisturbed serial run — the bit-identity reference."""
    return [
        r.to_dict()
        for r in run_many(estimator, NUM_RUNS, base_seed=BASE_SEED, workers=1)
    ]


@pytest.fixture
def registry():
    reg = get_registry()
    was_enabled = reg.enabled
    reg.reset()
    reg.enable()
    try:
        yield reg
    finally:
        reg.reset()
        if not was_enabled:
            reg.disable()


def dicts(results):
    return [r.to_dict() for r in results]


class TestCrashRecovery:
    def test_parallel_retry_is_bit_identical(self, estimator, baseline):
        faulty = FaultyEstimator(estimator, crash_indices={2})
        results = run_many(
            faulty, NUM_RUNS, base_seed=BASE_SEED, workers=2,
            retries=2, backoff=0.0,
        )
        assert dicts(results) == baseline

    def test_serial_retry_is_bit_identical(self, estimator, baseline):
        faulty = FaultyEstimator(estimator, crash_indices={0, 4})
        results = run_many(
            faulty, NUM_RUNS, base_seed=BASE_SEED, workers=1,
            retries=1, backoff=0.0,
        )
        assert dicts(results) == baseline

    def test_hyper_sample_many_retry_is_bit_identical(self, estimator):
        clean = hyper_sample_many(estimator, 5, base_seed=7, workers=1)
        faulty = FaultyEstimator(estimator, crash_indices={1, 3})
        recovered = hyper_sample_many(
            faulty, 5, base_seed=7, workers=2, retries=1, backoff=0.0
        )
        assert [hs.index for hs in recovered] == [1, 2, 3, 4, 5]
        assert dicts(recovered) == dicts(clean)

    def test_retries_exhausted_raises_with_cause(self, estimator):
        faulty = FaultyEstimator(
            estimator, crash_indices={1}, max_attempt=None
        )
        with pytest.raises(WorkerError) as err:
            run_many(
                faulty, 3, base_seed=BASE_SEED, workers=1,
                retries=1, backoff=0.0,
            )
        assert err.value.index == 1
        assert err.value.cause_type == "InjectedCrash"

    def test_zero_retries_fail_fast(self, estimator):
        # task_timeout forces the scheduled path even with workers=1
        # (the plain fast path would never set a TaskContext).
        faulty = FaultyEstimator(estimator, crash_indices={0})
        with pytest.raises(WorkerError):
            run_many(
                faulty, 2, base_seed=BASE_SEED, workers=1,
                retries=0, task_timeout=30.0, backoff=0.0,
            )


class TestHangRecovery:
    def test_hung_task_is_killed_and_retried(self, estimator, baseline, registry):
        faulty = FaultyEstimator(
            estimator, hang_indices={1}, hang_seconds=60.0
        )
        results = run_many(
            faulty, 4, base_seed=BASE_SEED, workers=2,
            retries=1, task_timeout=5.0, backoff=0.0,
        )
        assert dicts(results) == baseline[:4]
        assert registry.counter(
            "parallel_task_timeouts_total", kind="run"
        ).value == 1
        assert registry.counter(
            "parallel_retries_total", kind="run", cause="timeout"
        ).value == 1
        assert registry.counter(
            "parallel_pool_rebuilds_total", kind="run", cause="timeout"
        ).value == 1

    def test_timeout_exhausted_raises(self, estimator):
        faulty = FaultyEstimator(
            estimator, hang_indices={0}, hang_seconds=60.0, max_attempt=None
        )
        with pytest.raises(TaskTimeoutError) as err:
            run_many(
                faulty, 2, base_seed=BASE_SEED, workers=2,
                retries=0, task_timeout=1.5, backoff=0.0,
            )
        assert err.value.index == 0
        assert err.value.cause_type == "timeout"


class TestBrokenPoolRecovery:
    def test_dead_worker_degrades_to_serial_bit_identical(
        self, estimator, baseline, registry
    ):
        # Task 1 hard-kills its worker on *every* attempt: each rebuild
        # hits the same wall, so the driver must eventually give up on
        # the pool and finish in-process (where the injector stands
        # down — it only fires in child processes).
        faulty = FaultyEstimator(
            estimator, crash_indices={1}, hard=True, max_attempt=None
        )
        results = run_many(
            faulty, NUM_RUNS, base_seed=BASE_SEED, workers=2,
            retries=0, backoff=0.0,
        )
        assert dicts(results) == baseline
        assert registry.counter(
            "parallel_pool_rebuilds_total", kind="run", cause="broken"
        ).value == MAX_POOL_REBUILDS + 1
        assert registry.counter(
            "parallel_serial_degradations_total", kind="run"
        ).value == 1


class TestMetricsExactness:
    """Counter totals must not depend on the retry history."""

    def test_parallel_totals_unaffected_by_retries(
        self, estimator, registry
    ):
        faulty = FaultyEstimator(
            estimator,
            crash_indices={1},
            count_metric="fault_test_attempts_total",
        )
        run_many(
            faulty, NUM_RUNS, base_seed=BASE_SEED, workers=2,
            retries=1, backoff=0.0,
        )
        # The failed attempt incremented the counter too, but its
        # partial snapshot was discarded in the worker.
        assert registry.counter(
            "fault_test_attempts_total"
        ).value == NUM_RUNS
        assert registry.counter(
            "parallel_retries_total", kind="run", cause="error"
        ).value == 1

    def test_serial_totals_unaffected_by_retries(self, estimator, registry):
        faulty = FaultyEstimator(
            estimator,
            crash_indices={0, 2},
            count_metric="fault_test_attempts_total",
        )
        run_many(
            faulty, 4, base_seed=BASE_SEED, workers=1,
            retries=1, backoff=0.0,
        )
        assert registry.counter("fault_test_attempts_total").value == 4
        assert registry.counter(
            "parallel_retries_total", kind="run", cause="error"
        ).value == 2


class TestTaskContext:
    def test_none_outside_a_task(self):
        assert current_task() is None

    def test_records_index_and_attempt_across_retries(self, estimator):
        recorder = RecordingEstimator(estimator, crash_once_indices={1})
        run_many(
            recorder, 3, base_seed=BASE_SEED, workers=1,
            retries=1, backoff=0.0,
        )
        assert recorder.contexts == [(0, 0), (1, 0), (1, 1), (2, 0)]
        assert current_task() is None  # cleared after the batch


class TestWorkerSlot:
    def test_uninitialized_worker_slot_fails_fast(self, monkeypatch):
        monkeypatch.setattr(parallel, "_WORKER_ESTIMATOR", None)
        with pytest.raises(WorkerError, match="never initialized"):
            parallel._require_estimator()


class TestValidation:
    def test_fault_options_validated(self, estimator):
        with pytest.raises(ConfigError):
            run_many(estimator, 2, retries=-1)
        with pytest.raises(ConfigError):
            run_many(estimator, 2, task_timeout=0.0)
        with pytest.raises(ConfigError):
            run_many(estimator, 2, backoff=-0.1)
        with pytest.raises(ConfigError, match="requires a checkpoint"):
            run_many(estimator, 2, resume=True)
        with pytest.raises(ConfigError, match="requires a checkpoint"):
            hyper_sample_many(estimator, 2, resume=True)


class TestMetricsSurviveRebuild:
    def test_histograms_and_timers_survive_hung_pool_rebuild(
        self, estimator, baseline, registry
    ):
        """A hung task's kill/rebuild must not lose the metrics of tasks
        that completed before the pool went down (regression: merged
        snapshots dropped on rebuild leave histogram counts short)."""
        run_many(estimator, 4, base_seed=BASE_SEED, workers=1)
        serial = registry.snapshot(reset=True)

        faulty = FaultyEstimator(
            estimator, hang_indices={1}, hang_seconds=30.0
        )
        results = run_many(
            faulty, 4, base_seed=BASE_SEED, workers=2,
            retries=2, task_timeout=3.0, backoff=0.0,
        )
        rebuilt = registry.snapshot(reset=True)
        assert dicts(results) == baseline[:4]
        assert any(
            c["name"] == "parallel_pool_rebuilds_total" and c["value"] >= 1
            for c in rebuilt["counters"]
        )

        def hist_counts(snap):
            return {
                (h["name"], tuple(sorted(h["labels"].items()))): h["counts"]
                for h in snap["histograms"]
            }

        def timer_counts(snap):
            return {
                (t["name"], tuple(sorted(t["labels"].items()))): t["count"]
                for t in snap["timers"]
            }

        # Estimation metrics identical to the serial reference;
        # parallel_* bookkeeping exists only in the faulted run.
        serial_hists = hist_counts(serial)
        rebuilt_hists = hist_counts(rebuilt)
        assert serial_hists and serial_hists == {
            k: v
            for k, v in rebuilt_hists.items()
            if not k[0].startswith("parallel_")
        }
        serial_timers = timer_counts(serial)
        rebuilt_timers = timer_counts(rebuilt)
        assert serial_timers and serial_timers == {
            k: v
            for k, v in rebuilt_timers.items()
            if not k[0].startswith("parallel_")
        }
        # Timer maxima survive the merge (a lost merge zeroes them out).
        for t in rebuilt["timers"]:
            if not t["name"].startswith("parallel_"):
                assert t["max"] > 0.0

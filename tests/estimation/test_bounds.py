"""Structural uncertainty-propagation upper bound."""

import itertools

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.estimation.bounds import UncertaintyBound
from repro.sim.power import PowerAnalyzer


class TestUpperBoundProperty:
    def test_bound_dominates_exhaustive_max_zero_delay(self, c17):
        bound = UncertaintyBound(c17).power_bound()
        pa = PowerAnalyzer(c17, mode="zero")
        vectors = np.array(
            list(itertools.product([0, 1], repeat=5)), dtype=np.uint8
        )
        pairs = np.array(
            list(itertools.product(range(32), repeat=2))
        )
        powers = pa.powers_for_pairs(vectors[pairs[:, 0]], vectors[pairs[:, 1]])
        assert bound >= powers.max()

    def test_glitch_aware_bound_dominates_unit_delay(self, c17):
        bound = UncertaintyBound(c17).power_bound(glitch_aware=True)
        pa = PowerAnalyzer(c17, mode="unit")
        rng = np.random.default_rng(1)
        v1 = rng.integers(0, 2, size=(500, 5), dtype=np.uint8)
        v2 = rng.integers(0, 2, size=(500, 5), dtype=np.uint8)
        assert bound >= pa.powers_for_pairs(v1, v2).max()

    def test_glitch_bound_at_least_plain_bound(self, c17):
        ub = UncertaintyBound(c17)
        assert ub.power_bound(glitch_aware=True) >= ub.power_bound()

    def test_unconstrained_bound_equals_power_ceiling(self, c17):
        ub = UncertaintyBound(c17)
        pa = PowerAnalyzer(c17, mode="zero")
        assert ub.power_bound() == pytest.approx(pa.max_possible_power_w())


class TestConstraints:
    def test_freezing_inputs_reduces_bound(self, c17):
        ub = UncertaintyBound(c17)
        free = ub.power_bound()
        frozen = ub.power_bound(frozen_inputs=["G1", "G2"])
        assert frozen < free

    def test_freezing_all_inputs_zeroes_bound(self, c17):
        ub = UncertaintyBound(c17)
        assert ub.power_bound(frozen_inputs=list(c17.inputs)) == 0.0

    def test_frozen_cone_exclusion_is_exact(self, half_adder):
        ub = UncertaintyBound(half_adder)
        # Freezing both inputs kills everything.
        assert ub.power_bound(frozen_inputs=["a", "b"]) == 0.0
        # Freezing one input keeps both gates alive (each reads both
        # inputs) but removes the frozen net's own capacitance.
        lib = ub.library
        cap_a = lib.net_capacitance(half_adder, "a") * 1e-15
        expected = ub.power_bound() - (
            0.5 * lib.vdd ** 2 * cap_a * ub.frequency_hz
        )
        assert ub.power_bound(frozen_inputs=["a"]) == pytest.approx(expected)

    def test_non_input_rejected(self, c17):
        with pytest.raises(ConfigError):
            UncertaintyBound(c17).power_bound(frozen_inputs=["G10"])


class TestTightness:
    def test_tightness_ratio(self, c17):
        ub = UncertaintyBound(c17)
        bound = ub.power_bound()
        assert ub.tightness(bound / 2) == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            ub.tightness(0.0)

    def test_invalid_frequency(self, c17):
        with pytest.raises(ConfigError):
            UncertaintyBound(c17, frequency_hz=0)

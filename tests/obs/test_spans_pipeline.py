"""Spans threaded through the estimation pipeline.

Covers the tentpole's estimator-side acceptance criteria:

* enabling spans reproduces the span-free estimates bit-for-bit;
* one ``estimator.run`` span parents one ``estimator.hyper_sample`` span
  per k, each with its ``mle.fit`` child;
* spans recorded inside pool worker processes ship back with task
  results and merge into the parent's buffer on the same trace;
* a failed serial attempt's spans are discarded, so retries never leave
  duplicate phases in the tree.
"""

import numpy as np
import pytest

from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.estimation.parallel import run_many
from repro.evt.distributions import GeneralizedWeibull
from repro.obs import build_span_tree, get_registry, get_span_recorder
from repro.obs.spans import SpanContext, new_span_id, new_trace_id
from repro.vectors.population import FinitePopulation


@pytest.fixture(scope="module")
def estimator():
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(6000, rng=0), 0.0, None)
    pop = FinitePopulation(powers, name="synthetic")
    return MaxPowerEstimator(pop, error=0.05, confidence=0.90)


def _run(estimator, seed=7):
    return estimator.run(np.random.default_rng(seed))


class TestBitIdentity:
    def test_spans_enabled_is_bit_identical(self, estimator):
        baseline = _run(estimator)
        get_span_recorder().enable()
        with_spans = _run(estimator)
        assert with_spans.estimate == baseline.estimate
        assert with_spans.units_used == baseline.units_used
        assert with_spans.k == baseline.k
        for a, b in zip(baseline.hyper_samples, with_spans.hyper_samples):
            assert a.estimate == b.estimate
            assert np.array_equal(a.maxima, b.maxima)

    def test_disabled_run_records_no_spans(self, estimator):
        spans = get_span_recorder()
        assert not spans.enabled
        _run(estimator)
        assert spans.snapshot() == []


class TestEstimatorSpanTree:
    def test_run_span_parents_per_k_hyper_samples(self, estimator):
        spans = get_span_recorder()
        spans.enable()
        result = _run(estimator)
        records = spans.snapshot()
        (root,) = build_span_tree(records)
        assert root["name"] == "estimator.run"
        assert root["attributes"]["k"] == result.k
        assert root["attributes"]["estimate"] == result.estimate
        hypers = [
            c for c in root["children"] if c["name"] == "estimator.hyper_sample"
        ]
        assert [h["attributes"]["k"] for h in hypers] == list(
            range(1, result.k + 1)
        )
        for h, hs in zip(hypers, result.hyper_samples):
            assert h["attributes"]["estimate"] == hs.estimate
            fits = [c for c in h["children"] if c["name"] == "mle.fit"]
            if hs.fit is not None:
                assert len(fits) == 1
                assert fits[0]["attributes"]["alpha"] == hs.fit.alpha

    def test_all_spans_share_one_trace(self, estimator):
        spans = get_span_recorder()
        spans.enable()
        _run(estimator)
        assert len({r["trace_id"] for r in spans.snapshot()}) == 1


class TestCrossProcessSpans:
    def test_pool_worker_spans_merge_onto_parent_trace(self, estimator):
        spans = get_span_recorder()
        spans.enable()
        get_registry().enable()
        parent = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        token = spans.attach(parent)
        try:
            run_many(estimator, 3, base_seed=11, workers=2)
        finally:
            spans.detach(token)
        records = spans.spans_for_trace(parent.trace_id)
        runs = [r for r in records if r["name"] == "estimator.run"]
        assert len(runs) == 3
        # worker spans are re-parented nowhere — they keep the ids they
        # had in the child, so the tree stays connected through `parent`
        assert all(r["trace_id"] == parent.trace_id for r in records)
        hypers = [r for r in records if r["name"] == "estimator.hyper_sample"]
        assert len(hypers) == sum(
            run["attributes"]["k"] for run in runs
        )

    def test_disabled_parent_keeps_workers_span_silent(self, estimator):
        spans = get_span_recorder()
        assert not spans.enabled
        run_many(estimator, 2, base_seed=1, workers=2)
        assert spans.snapshot() == []


class _CrashAfterRun:
    """Run the real estimator, then fail the attempt — the recorded
    spans of that attempt must be discarded on retry."""

    def __init__(self, inner):
        self.inner = inner

    def run(self, rng):
        from repro.estimation import parallel

        result = self.inner.run(rng)
        task = parallel.current_task()
        if task is not None and task.attempt == 0 and task.index == 1:
            raise RuntimeError("injected failure after a recorded run")
        return result


class TestRetryDiscard:
    def test_failed_serial_attempt_spans_are_discarded(self, estimator):
        spans = get_span_recorder()
        spans.enable()
        parent = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        token = spans.attach(parent)
        try:
            results = run_many(
                _CrashAfterRun(estimator), 3, base_seed=11, workers=1,
                retries=1, backoff=0.0,
            )
        finally:
            spans.detach(token)
        clean = run_many(estimator, 3, base_seed=11, workers=1)
        assert [r.estimate for r in results] == [r.estimate for r in clean]
        records = spans.spans_for_trace(parent.trace_id)
        runs = [r for r in records if r["name"] == "estimator.run"]
        # exactly one estimator.run span per task — the crashed first
        # attempt of task 1 left nothing behind
        assert len(runs) == 3

"""Unit tests for the span layer: recorder, context propagation,
traceparent parsing, and the presentation helpers."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.spans import (
    SpanContext,
    SpanRecorder,
    build_span_tree,
    get_span_recorder,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    render_span_waterfall,
    to_chrome_trace,
)


@pytest.fixture
def recorder():
    r = SpanRecorder()
    r.enable()
    return r


class TestIdsAndTraceparent:
    def test_id_widths_are_w3c(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(100)}) == 100

    def test_roundtrip(self):
        ctx = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    def test_header_format(self):
        ctx = SpanContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert ctx.to_traceparent() == f"00-{'ab' * 16}-{'cd' * 8}-01"

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-abc-def-01",  # wrong widths
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex
            "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",  # forbidden version
            "00-" + "0" * 32 + "-" + "2" * 16 + "-01",  # all-zero trace
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
            "00-" + "1" * 32 + "-" + "2" * 16,  # missing flags
        ],
    )
    def test_malformed_headers_rejected(self, header):
        assert parse_traceparent(header) is None

    def test_context_without_span_id_still_serializes(self):
        ctx = SpanContext(trace_id="ab" * 16)
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed is not None and parsed.trace_id == "ab" * 16


class TestRecorder:
    def test_disabled_fast_path_records_nothing(self):
        r = SpanRecorder()
        assert r.start("x") is None
        with r.span("y") as span:
            span.set(a=1)
        assert r.emit("z") is None
        assert r.snapshot() == []

    def test_start_finish_records(self, recorder):
        span = recorder.start("phase", k=3)
        recorder.finish(span, extra="v")
        (record,) = recorder.snapshot()
        assert record["name"] == "phase"
        assert record["status"] == "ok"
        assert record["attributes"] == {"k": 3, "extra": "v"}
        assert record["parent_id"] is None
        assert record["duration_s"] >= 0.0

    def test_nesting_via_ambient_context(self, recorder):
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = sorted(
            recorder.snapshot(), key=lambda r: r["name"]
        )
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        # Ambient context restored after the tree finishes.
        assert recorder.current_context() is None

    def test_explicit_parent_wins_over_ambient(self, recorder):
        remote = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        with recorder.span("ambient"):
            span = recorder.start("child", parent=remote)
            recorder.finish(span)
        child = next(r for r in recorder.snapshot() if r["name"] == "child")
        assert child["trace_id"] == remote.trace_id
        assert child["parent_id"] == remote.span_id

    def test_exception_marks_error_status(self, recorder):
        with pytest.raises(ValueError):
            with recorder.span("boom"):
                raise ValueError("bad")
        (record,) = recorder.snapshot()
        assert record["status"] == "error"
        assert "ValueError: bad" in record["attributes"]["error"]

    def test_emit_retroactive(self, recorder):
        parent = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        record = recorder.emit(
            "job.queue_wait", parent=parent, start_ts=123.0, duration_s=4.5
        )
        assert record["start_ts"] == 123.0
        assert record["duration_s"] == 4.5
        assert record["trace_id"] == parent.trace_id
        # emit never touches the ambient context
        assert recorder.current_context() is None

    def test_attach_detach(self, recorder):
        ctx = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        token = recorder.attach(ctx)
        assert recorder.current_context() == ctx
        with recorder.span("child"):
            pass
        recorder.detach(token)
        assert recorder.current_context() is None
        (record,) = recorder.snapshot()
        assert record["trace_id"] == ctx.trace_id

    def test_context_is_per_thread(self, recorder):
        seen = {}

        def worker():
            seen["ctx"] = recorder.current_context()

        ctx = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        token = recorder.attach(ctx)
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        recorder.detach(token)
        assert seen["ctx"] is None

    def test_snapshot_reset_and_merge(self, recorder):
        with recorder.span("a"):
            pass
        shipped = recorder.snapshot(reset=True)
        assert recorder.snapshot() == []
        target = SpanRecorder()  # disabled, like an aggregating parent
        target.merge(shipped)
        merged = target.snapshot()
        assert [r["name"] for r in merged] == ["a"]
        assert "_seq" not in merged[0]

    def test_marker_discard_scoped_to_trace(self, recorder):
        with recorder.span("kept"):
            pass
        kept_trace = recorder.snapshot()[0]["trace_id"]
        marker = recorder.marker()
        # New spans on two traces: only the targeted one is dropped.
        recorder.emit("doomed", parent=SpanContext(trace_id="f" * 32))
        recorder.emit("other", parent=SpanContext(trace_id="e" * 32))
        assert recorder.discard_after(marker, trace_id="f" * 32) == 1
        names = {r["name"] for r in recorder.snapshot()}
        assert names == {"kept", "other"}
        assert recorder.spans_for_trace(kept_trace)

    def test_lru_eviction_of_traces(self):
        r = SpanRecorder(max_traces=2)
        r.enable()
        for i in range(3):
            r.emit("s", parent=SpanContext(trace_id=f"{i:032x}"))
        assert r.spans_for_trace(f"{0:032x}") == []
        assert r.spans_for_trace(f"{2:032x}")

    def test_span_emits_trace_event_when_tracer_enabled(self, tmp_path, recorder):
        from repro.obs import get_tracer

        tracer = get_tracer()
        path = tmp_path / "trace.jsonl"
        tracer.open(path)
        try:
            with recorder.span("traced"):
                pass
        finally:
            tracer.close()
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        span_events = [e for e in events if e["event"] == "span"]
        assert span_events and span_events[0]["name"] == "traced"

    def test_global_recorder_is_singleton(self):
        assert get_span_recorder() is get_span_recorder()


class TestPresentation:
    def _sample(self):
        r = SpanRecorder()
        r.enable()
        with r.span("root", endpoint="/v1/jobs"):
            with r.span("child", k=1):
                pass
            with r.span("child", k=2):
                pass
        return r.snapshot()

    def test_build_span_tree(self):
        spans = self._sample()
        (root,) = build_span_tree(spans)
        assert root["name"] == "root"
        assert [c["attributes"]["k"] for c in root["children"]] == [1, 2]

    def test_unknown_parent_becomes_root(self):
        spans = self._sample()
        orphans = [s for s in spans if s["name"] == "child"]
        roots = build_span_tree(orphans)
        assert len(roots) == 2

    def test_chrome_trace_shape(self):
        payload = to_chrome_trace(self._sample())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 3
        assert all(e["ph"] == "X" for e in events)
        assert events == sorted(events, key=lambda e: e["ts"])
        json.dumps(payload)  # must be serializable as-is

    def test_waterfall_renders_all_spans(self):
        text = render_span_waterfall(self._sample())
        assert "root" in text and text.count("child") == 2
        assert "3 spans" in text

    def test_waterfall_empty(self):
        assert render_span_waterfall([]) == "(no spans)"

"""Observability test fixtures: keep the global registry/tracer clean."""

from __future__ import annotations

import pytest

from repro.obs import get_registry, get_span_recorder, get_tracer


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Reset the process-wide observability state around every test.

    The registry, tracer and span recorder are deliberately global
    (module-level metric handles depend on it), so tests must not leak
    enablement or values into each other — or into the rest of the
    suite, which asserts bit-identical estimator output with
    observability off.
    """
    registry = get_registry()
    tracer = get_tracer()
    spans = get_span_recorder()
    registry.disable()
    registry.reset()
    tracer.close()
    tracer.clear()
    spans.disable()
    spans.reset()
    yield registry
    registry.disable()
    registry.reset()
    tracer.close()
    tracer.clear()
    spans.disable()
    spans.reset()

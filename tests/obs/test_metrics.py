"""Metrics registry semantics: primitives, snapshots, merge, buckets."""

import math
import threading

import pytest

from repro.errors import ConfigError
from repro.obs import (
    DEFAULT_ALPHA_BUCKETS,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_inc_and_amount(self, registry):
        c = registry.counter("events_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_disabled_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("events_total")
        c.inc(100)
        assert c.value == 0

    def test_labels_create_distinct_series(self, registry):
        a = registry.counter("errors_total", cause="degenerate")
        b = registry.counter("errors_total", cause="bracket")
        a.inc()
        a.inc()
        b.inc()
        assert a.value == 2
        assert b.value == 1
        # same (name, labels) -> same object, label order irrelevant
        assert registry.counter("errors_total", cause="degenerate") is a

    def test_kind_conflict_raises(self, registry):
        registry.counter("thing")
        with pytest.raises(ConfigError, match="already registered"):
            registry.gauge("thing")


class TestGauge:
    def test_set_keeps_last_value(self, registry):
        g = registry.gauge("pool_size")
        g.set(5)
        g.set(17)
        assert g.value == 17.0


class TestTimer:
    def test_observe_accumulates(self, registry):
        t = registry.timer("phase_seconds")
        t.observe(0.5)
        t.observe(1.5)
        assert t.count == 2
        assert t.total == 2.0
        assert t.mean == 1.0

    def test_context_manager_records(self, registry):
        t = registry.timer("phase_seconds")
        with t.time():
            pass
        assert t.count == 1
        assert t.total >= 0.0

    def test_disabled_context_is_shared_null(self):
        reg = MetricsRegistry(enabled=False)
        t = reg.timer("phase_seconds")
        ctx1 = t.time()
        ctx2 = t.time()
        assert ctx1 is ctx2  # shared singleton: no allocation on the fast path
        with ctx1:
            pass
        assert t.count == 0


class TestHistogramBucketEdges:
    """Prometheus ``le`` semantics at every edge case the pipeline hits."""

    def test_value_equal_to_bound_lands_in_that_bucket(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)  # le=2 is inclusive: the regularity boundary case
        assert h.counts == [0, 1, 0, 0]

    def test_below_first_bound(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(-5.0)
        h.observe(0.999)
        assert h.counts == [2, 0, 0]

    def test_above_last_bound_goes_to_overflow(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(2.0001)
        h.observe(1e9)
        assert h.counts == [0, 0, 2]
        assert h.count == 2

    def test_inf_counts_but_is_excluded_from_sum(self, registry):
        h = registry.histogram("h", buckets=(1.0,))
        h.observe(math.inf)
        h.observe(0.5)
        assert h.counts == [1, 1]
        assert h.count == 2
        snap = registry.snapshot()["histograms"][0]
        assert snap["sum"] == 0.5

    def test_nan_is_dropped(self, registry):
        h = registry.histogram("h", buckets=(1.0,))
        h.observe(math.nan)
        assert h.count == 0
        assert h.counts == [0, 0]

    def test_interior_values(self, registry):
        h = registry.histogram("alpha", buckets=DEFAULT_ALPHA_BUCKETS)
        for v in (0.5, 1.5, 2.5, 3.5, 5.0, 100.0):
            h.observe(v)
        # one per bucket: (<=1], (1,2], (2,3], (3,4], (4,6], overflow
        assert h.counts == [1, 1, 1, 1, 1, 0, 0, 0, 1]

    def test_invalid_bounds_rejected(self, registry):
        with pytest.raises(ConfigError):
            registry.histogram("bad", buckets=())
        with pytest.raises(ConfigError):
            registry.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ConfigError):
            registry.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ConfigError):
            registry.histogram("bad", buckets=(1.0, math.inf))


class TestSnapshot:
    def test_zero_valued_metrics_omitted(self, registry):
        registry.counter("silent")  # registered, never fired
        registry.counter("loud").inc()
        snap = registry.snapshot()
        assert [c["name"] for c in snap["counters"]] == ["loud"]

    def test_snapshot_reset_scopes_deltas(self, registry):
        c = registry.counter("n")
        c.inc(3)
        first = registry.snapshot(reset=True)
        assert first["counters"][0]["value"] == 3
        assert c.value == 0
        c.inc(1)
        second = registry.snapshot(reset=True)
        assert second["counters"][0]["value"] == 1

    def test_snapshot_is_jsonable(self, registry):
        import json

        registry.counter("a", x="1").inc()
        registry.timer("t").observe(0.1)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.gauge("g").set(2)
        json.dumps(registry.snapshot())  # must not raise


class TestMerge:
    def test_counters_add_timers_combine(self, registry):
        other = MetricsRegistry(enabled=True)
        other.counter("n", w="1").inc(4)
        other.timer("t").observe(1.0)
        other.timer("t").observe(3.0)
        registry.counter("n", w="1").inc(1)
        registry.merge(other.snapshot())
        assert registry.counter("n", w="1").value == 5
        t = registry.timer("t")
        assert t.count == 2
        assert t.total == 4.0
        snap = registry.snapshot()["timers"][0]
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0

    def test_histograms_merge_bucketwise(self, registry):
        other = MetricsRegistry(enabled=True)
        other.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        other.histogram("h", buckets=(1.0, 2.0)).observe(5.0)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        registry.merge(other.snapshot())
        h = registry.histogram("h", buckets=(1.0, 2.0))
        assert h.counts == [1, 1, 1]
        assert h.count == 3

    def test_mismatched_buckets_rejected(self, registry):
        other = MetricsRegistry(enabled=True)
        other.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigError, match="mismatched buckets"):
            registry.merge(other.snapshot())

    def test_merge_works_while_disabled(self):
        parent = MetricsRegistry(enabled=False)  # aggregator-only parent
        child = MetricsRegistry(enabled=True)
        child.counter("n").inc(7)
        parent.merge(child.snapshot())
        assert parent.counter("n").value == 7

    def test_merge_creates_missing_metrics(self, registry):
        other = MetricsRegistry(enabled=True)
        other.counter("only_in_child", k="v").inc(2)
        registry.merge(other.snapshot())
        assert registry.counter("only_in_child", k="v").value == 2


class TestThreadSafety:
    def test_concurrent_increments_are_not_lost(self, registry):
        c = registry.counter("n")
        h = registry.histogram("h", buckets=(0.5,))

        def work():
            for _ in range(1000):
                c.inc()
                h.observe(0.25)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000
        assert h.count == 4000


def test_global_registry_is_a_disabled_singleton():
    assert get_registry() is get_registry()
    assert not get_registry().enabled

"""Exporters: Prometheus text rendering, file round trips, reports."""

import pytest

from repro.errors import ConfigError
from repro.obs import (
    MetricsRegistry,
    convergence_report,
    load_metrics_file,
    phase_timings,
    render_prometheus,
    write_metrics_file,
)


@pytest.fixture
def snapshot():
    reg = MetricsRegistry(enabled=True)
    reg.counter("estimator_runs_total").inc(4)
    reg.counter("estimator_runs_converged_total").inc(3)
    reg.counter("estimator_hyper_samples_total").inc(20)
    reg.counter("estimator_units_total").inc(6000)
    reg.counter("mle_fit_errors_total", cause="degenerate").inc(2)
    reg.gauge("population_size").set(8000)
    t = reg.timer("estimator_run_seconds")
    t.observe(0.25)
    t.observe(0.75)
    h = reg.histogram("estimator_alpha", buckets=(1.0, 2.0, 4.0))
    h.observe(1.5)
    h.observe(3.0)
    h.observe(9.0)
    return reg.snapshot()


class TestPrometheus:
    def test_counter_gauge_lines(self, snapshot):
        text = render_prometheus(snapshot)
        assert "# TYPE repro_estimator_runs_total counter" in text
        assert "repro_estimator_runs_total 4" in text
        assert 'repro_mle_fit_errors_total{cause="degenerate"} 2' in text
        assert "# TYPE repro_population_size gauge" in text
        assert "repro_population_size 8000" in text

    def test_timer_summary_lines(self, snapshot):
        text = render_prometheus(snapshot)
        assert "# TYPE repro_estimator_run_seconds summary" in text
        assert "repro_estimator_run_seconds_count 2" in text
        assert "repro_estimator_run_seconds_sum 1" in text
        assert "repro_estimator_run_seconds_min 0.25" in text
        assert "repro_estimator_run_seconds_max 0.75" in text

    def test_histogram_buckets_are_cumulative(self, snapshot):
        text = render_prometheus(snapshot)
        assert 'repro_estimator_alpha_bucket{le="1"} 0' in text
        assert 'repro_estimator_alpha_bucket{le="2"} 1' in text
        assert 'repro_estimator_alpha_bucket{le="4"} 2' in text
        assert 'repro_estimator_alpha_bucket{le="+Inf"} 3' in text
        assert "repro_estimator_alpha_count 3" in text
        assert "repro_estimator_alpha_sum 13.5" in text

    def test_custom_prefix(self, snapshot):
        text = render_prometheus(snapshot, prefix="x_")
        assert "x_estimator_runs_total 4" in text


class TestScrapeFormatValid:
    """Validate the exposition against the Prometheus text-format spec:
    exactly one HELP/TYPE per family, samples contiguous under their
    family header, legal sample names for each type, escaped labels."""

    def _parse(self, text):
        families = {}
        current = None
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP "):
                name = line.split(" ", 3)[2]
                assert name not in families, f"duplicate HELP for {name}"
                current = families[name] = {"help": line, "type": None, "samples": []}
            elif line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert current is not None and name in families
                assert families[name]["type"] is None, f"duplicate TYPE for {name}"
                families[name]["type"] = kind
            else:
                assert current is not None, f"sample before any family: {line}"
                sample = line.split("{")[0].split(" ")[0]
                current["samples"].append((sample, line))
        return families

    def test_every_family_has_help_and_type(self, snapshot):
        families = self._parse(render_prometheus(snapshot))
        assert families
        for name, family in families.items():
            assert family["type"] in ("counter", "gauge", "summary", "histogram")
            assert family["help"].startswith(f"# HELP {name} ")
            assert family["samples"], f"family {name} has no samples"

    def test_sample_names_legal_for_type(self, snapshot):
        families = self._parse(render_prometheus(snapshot))
        for name, family in families.items():
            for sample, _ in family["samples"]:
                if family["type"] == "summary":
                    assert sample in (f"{name}_count", f"{name}_sum")
                elif family["type"] == "histogram":
                    assert sample in (
                        f"{name}_bucket", f"{name}_count", f"{name}_sum"
                    )
                else:
                    assert sample == name

    def test_histogram_bucket_counts_monotone_and_inf_total(self, snapshot):
        families = self._parse(render_prometheus(snapshot))
        for name, family in families.items():
            if family["type"] != "histogram":
                continue
            counts = []
            for sample, line in family["samples"]:
                if sample == f"{name}_bucket":
                    counts.append(float(line.rsplit(" ", 1)[1]))
            assert counts == sorted(counts)
            count_line = next(
                line for sample, line in family["samples"]
                if sample == f"{name}_count"
            )
            assert counts[-1] == float(count_line.rsplit(" ", 1)[1])
            assert 'le="+Inf"' in family["samples"][len(counts) - 1][1]

    def test_label_values_escaped(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter(
            "mle_fit_errors_total", cause='quo"te\\back\nnewline'
        ).inc()
        text = render_prometheus(reg.snapshot())
        assert '\\"' in text and "\\n" in text and "\\\\" in text
        # one line per sample: the newline must not split the exposition
        sample_lines = [
            line for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(sample_lines) == 1

    def test_timer_min_max_are_their_own_gauge_families(self, snapshot):
        families = self._parse(render_prometheus(snapshot))
        assert families["repro_estimator_run_seconds"]["type"] == "summary"
        assert families["repro_estimator_run_seconds_min"]["type"] == "gauge"
        assert families["repro_estimator_run_seconds_max"]["type"] == "gauge"


class TestFileRoundTrip:
    def test_json_snapshot_round_trip(self, snapshot, tmp_path):
        path = write_metrics_file(tmp_path / "m.json", snapshot)
        assert load_metrics_file(path) == snapshot

    def test_prom_suffix_writes_text_format(self, snapshot, tmp_path):
        path = write_metrics_file(tmp_path / "m.prom", snapshot)
        assert "# TYPE repro_estimator_runs_total counter" in path.read_text()

    def test_load_rejects_non_snapshot(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text('{"hello": 1}')
        with pytest.raises(ConfigError, match="metrics snapshot"):
            load_metrics_file(bad)
        bad.write_text("not json")
        with pytest.raises(ConfigError):
            load_metrics_file(bad)


class TestPhaseTimings:
    def test_timers_keyed_with_labels(self):
        reg = MetricsRegistry(enabled=True)
        reg.timer("experiment_seconds", experiment="table1").observe(2.0)
        reg.timer("mle_fit_seconds").observe(0.5)
        reg.timer("mle_fit_seconds").observe(1.5)
        phases = phase_timings(reg.snapshot())
        assert phases['experiment_seconds{experiment="table1"}'] == {
            "count": 1,
            "total_s": 2.0,
            "mean_s": 2.0,
        }
        assert phases["mle_fit_seconds"]["count"] == 2
        assert phases["mle_fit_seconds"]["mean_s"] == 1.0


class TestConvergenceReport:
    def test_metrics_section(self, snapshot):
        report = convergence_report(snapshot=snapshot)
        assert "convergence diagnostics" in report
        assert "runs: 4 (75.0% converged" in report
        assert "hyper-samples: 20" in report
        assert "alpha-hat:" in report
        assert "degenerate: 2" in report
        assert "wall-clock by phase:" in report

    def test_trace_section(self):
        events = [
            {"event": "run_start", "run_id": "run-1"},
            {
                "event": "hyper_sample",
                "run_id": "run-1",
                "k": 1,
                "alpha": 3.0,
                "rel_half_width": None,
            },
            {
                "event": "hyper_sample",
                "run_id": "run-1",
                "k": 2,
                "alpha": 4.0,
                "rel_half_width": 0.04,
            },
            {
                "event": "run_end",
                "run_id": "run-1",
                "converged": True,
                "k": 2,
                "units_used": 600,
            },
        ]
        report = convergence_report(trace_events=events)
        assert "runs: 1 (1 converged)" in report
        assert "hyper-samples: 2, fallbacks: 0" in report
        assert "run-1: rel CI half-width by k: -- 0.040" in report

    def test_empty_inputs(self):
        report = convergence_report(snapshot={"counters": []})
        assert "(no estimation metrics recorded)" in report
        report = convergence_report(trace_events=[])
        assert "(no estimation events in trace)" in report
        with pytest.raises(ConfigError):
            convergence_report()

"""Trace recorder: ring buffer, JSONL sink, sanitization, no-op path."""

import json
import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.obs import TraceRecorder, get_tracer, load_trace


@pytest.fixture
def tracer():
    rec = TraceRecorder(ring_size=16)
    rec.open()  # ring-only: no sink
    yield rec
    rec.close()


class TestLifecycle:
    def test_disabled_by_default_and_emit_is_noop(self):
        rec = TraceRecorder()
        rec.emit("run_start", foo=1)
        assert rec.recent() == []
        assert not rec.enabled

    def test_open_enables_close_disables(self, tmp_path):
        rec = TraceRecorder()
        path = tmp_path / "t.jsonl"
        rec.open(path)
        assert rec.enabled
        assert rec.path == path
        returned = rec.close()
        assert returned == path
        assert not rec.enabled
        rec.emit("run_start")  # after close: dropped
        assert rec.recent() == []

    def test_global_tracer_is_singleton(self):
        assert get_tracer() is get_tracer()


class TestRingBuffer:
    def test_bounded_to_ring_size(self, tracer):
        for i in range(40):
            tracer.emit("hyper_sample", k=i)
        events = tracer.recent()
        assert len(events) == 16
        assert events[0]["k"] == 24
        assert events[-1]["k"] == 39

    def test_recent_n_returns_tail(self, tracer):
        for i in range(5):
            tracer.emit("hyper_sample", k=i)
        assert [e["k"] for e in tracer.recent(2)] == [3, 4]

    def test_clear(self, tracer):
        tracer.emit("run_start")
        tracer.clear()
        assert tracer.recent() == []


class TestJsonlSink:
    def test_events_stream_to_file_and_parse(self, tmp_path):
        rec = TraceRecorder()
        path = tmp_path / "run.jsonl"
        rec.open(path)
        rec.emit("run_start", run_id="run-1", population="c17")
        rec.emit("hyper_sample", run_id="run-1", k=1, alpha=3.2)
        rec.close()
        events = load_trace(path)
        assert [e["event"] for e in events] == ["run_start", "hyper_sample"]
        for e in events:
            assert isinstance(e["ts"], float)
        assert events[1]["alpha"] == 3.2

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event":"ok"}\nnot json\n')
        with pytest.raises(ConfigError, match="bad.jsonl:2"):
            load_trace(path)
        path.write_text('["no", "event", "key"]\n')
        with pytest.raises(ConfigError, match="not an event object"):
            load_trace(path)


class TestSanitization:
    def test_numpy_scalars_and_arrays(self, tracer):
        tracer.emit(
            "hyper_sample",
            alpha=np.float64(3.5),
            k=np.int64(4),
            maxima=np.array([1.0, 2.0]),
        )
        e = tracer.recent()[0]
        assert e["alpha"] == 3.5 and isinstance(e["alpha"], float)
        assert e["k"] == 4 and isinstance(e["k"], int)
        assert e["maxima"] == [1.0, 2.0]
        json.dumps(e)  # fully JSON-able

    def test_nonfinite_floats_become_strings(self, tracer):
        tracer.emit("hyper_sample", a=math.nan, b=math.inf, c=-math.inf)
        e = tracer.recent()[0]
        assert (e["a"], e["b"], e["c"]) == ("nan", "inf", "-inf")
        # the file stays strict-JSON parseable
        json.loads(json.dumps(e))

    def test_unknown_objects_fall_back_to_str(self, tracer):
        class Weird:
            def __repr__(self):
                return "<weird>"

        tracer.emit("experiment", obj=Weird())
        assert tracer.recent()[0]["obj"] == "<weird>"


def test_next_id_is_unique_and_prefixed():
    rec = TraceRecorder()
    a = rec.next_id("run")
    b = rec.next_id("run")
    assert a != b
    assert a.startswith("run-") and b.startswith("run-")

"""Observability threaded through the estimation pipeline.

Covers the PR's acceptance criteria end to end:

* disabling observability reproduces the seed estimates bit-for-bit;
* a traced run emits one ``hyper_sample`` JSONL event per hyper-sample
  carrying (k, fitted alpha/beta/mu or the fallback reason, the relative
  CI half-width, and the cumulative unit count);
* metrics recorded inside ``run_many`` survive the process pool with
  >= 2 workers and merge to the same totals as a serial run.
"""

import numpy as np
import pytest

from repro.errors import FitError
from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.estimation.parallel import hyper_sample_many, run_many
from repro.evt.distributions import GeneralizedWeibull
from repro.evt.mle import fit_weibull_mle
from repro.obs import get_registry, get_tracer, load_trace
from repro.vectors.population import FinitePopulation


@pytest.fixture(scope="module")
def estimator():
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(8000, rng=0), 0.0, None)
    pop = FinitePopulation(powers, name="synthetic")
    return MaxPowerEstimator(pop, error=0.05, confidence=0.90)


def _run(estimator, seed=7):
    return estimator.run(np.random.default_rng(seed))


class TestNoOpIdentity:
    def test_disabled_enabled_traced_all_bit_identical(
        self, estimator, tmp_path
    ):
        baseline = _run(estimator)

        get_registry().enable()
        with_metrics = _run(estimator)

        get_tracer().open(tmp_path / "run.jsonl")
        with_trace = _run(estimator)
        get_tracer().close()

        for other in (with_metrics, with_trace):
            assert other.estimate == baseline.estimate
            assert other.units_used == baseline.units_used
            assert other.converged == baseline.converged
            assert other.k == baseline.k
            for a, b in zip(baseline.hyper_samples, other.hyper_samples):
                assert a.estimate == b.estimate
                assert np.array_equal(a.maxima, b.maxima)

    def test_disabled_run_records_nothing(self, estimator):
        registry = get_registry()
        _run(estimator)
        snap = registry.snapshot()
        assert snap == {
            "counters": [],
            "gauges": [],
            "timers": [],
            "histograms": [],
        }
        assert get_tracer().recent() == []


class TestTraceSchema:
    def test_one_hyper_sample_event_per_iteration(self, estimator, tmp_path):
        path = tmp_path / "run.jsonl"
        get_registry().enable()
        get_tracer().open(path)
        result = _run(estimator)
        get_tracer().close()

        events = load_trace(path)
        hypers = [e for e in events if e["event"] == "hyper_sample"]
        assert len(hypers) == result.k
        assert [e["k"] for e in hypers] == list(range(1, result.k + 1))

        run_starts = [e for e in events if e["event"] == "run_start"]
        run_ends = [e for e in events if e["event"] == "run_end"]
        assert len(run_starts) == len(run_ends) == 1
        run_id = run_starts[0]["run_id"]

        for e in hypers:
            # acceptance-criterion payload, field by field
            assert e["run_id"] == run_id
            assert isinstance(e["k"], int)
            assert isinstance(e["estimate"], float)
            assert isinstance(e["units_used"], int)
            assert isinstance(e["cumulative_units"], int)
            assert "rel_half_width" in e
            assert "fallback_reason" in e
            if e["fallback_reason"] is None:
                assert isinstance(e["alpha"], float)
                assert isinstance(e["beta"], float)
                assert isinstance(e["mu"], float)
            else:
                assert e["alpha"] is None
            for stat in ("maxima_min", "maxima_mean", "maxima_max"):
                assert isinstance(e[stat], float)

        # intervals start at min_hyper_samples; cumulative units ascend
        assert hypers[0]["rel_half_width"] is None
        cumulative = [e["cumulative_units"] for e in hypers]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == result.units_used

        end = run_ends[0]
        assert end["converged"] == result.converged
        assert end["k"] == result.k
        assert end["estimate"] == result.estimate

    def test_ci_trajectory_matches_trace(self, estimator, tmp_path):
        get_tracer().open(tmp_path / "run.jsonl")
        result = _run(estimator)
        get_tracer().close()
        hypers = [
            e for e in get_tracer().recent() if e["event"] == "hyper_sample"
        ]
        traced = [
            e["rel_half_width"]
            for e in hypers
            if e["rel_half_width"] is not None
        ]
        assert traced == pytest.approx(result.ci_trajectory)
        assert len(result.ci_trajectory) == result.k - (
            estimator.min_hyper_samples - 1
        )


class TestCrossProcessMerge:
    def test_run_many_metrics_survive_two_workers(self, estimator):
        registry = get_registry()
        registry.enable()

        serial = run_many(estimator, 4, base_seed=11, workers=1)
        serial_snap = registry.snapshot(reset=True)

        parallel = run_many(estimator, 4, base_seed=11, workers=2)
        parallel_snap = registry.snapshot(reset=True)

        assert [r.estimate for r in serial] == [r.estimate for r in parallel]

        def totals(snap):
            return {
                (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
                for c in snap["counters"]
            }

        assert totals(parallel_snap) == totals(serial_snap)
        assert totals(parallel_snap)[("estimator_runs_total", ())] == 4
        expected_units = sum(r.units_used for r in parallel)
        assert (
            totals(parallel_snap)[("estimator_units_total", ())]
            == expected_units
        )

        def timer_counts(snap):
            return {t["name"]: t["count"] for t in snap["timers"]}

        assert timer_counts(parallel_snap) == timer_counts(serial_snap)

        def hist_counts(snap):
            return {h["name"]: h["counts"] for h in snap["histograms"]}

        assert hist_counts(parallel_snap) == hist_counts(serial_snap)

    def test_hyper_sample_many_counts_with_two_workers(self, estimator):
        registry = get_registry()
        registry.enable()
        hyper_sample_many(estimator, 6, base_seed=5, workers=2)
        snap = registry.snapshot()
        counters = {c["name"]: c["value"] for c in snap["counters"]}
        assert counters["estimator_hyper_samples_total"] == 6

    def test_disabled_parent_keeps_workers_silent(self, estimator):
        registry = get_registry()
        assert not registry.enabled
        run_many(estimator, 2, base_seed=1, workers=2)
        assert registry.snapshot()["counters"] == []


class TestMleInstrumentation:
    def test_fit_error_cause_counted_and_traced(self):
        registry = get_registry()
        registry.enable()
        get_tracer().open()  # ring-only
        with pytest.raises(FitError) as excinfo:
            fit_weibull_mle(np.full(30, 2.0))  # degenerate: all equal
        cause = excinfo.value.cause
        assert cause == "degenerate"
        snap = registry.snapshot()
        errors = {
            c["labels"]["cause"]: c["value"]
            for c in snap["counters"]
            if c["name"] == "mle_fit_errors_total"
        }
        assert errors == {"degenerate": 1}
        events = [
            e for e in get_tracer().recent() if e["event"] == "mle_fit_error"
        ]
        assert len(events) == 1
        assert events[0]["cause"] == "degenerate"

    def test_successful_fit_emits_mle_fit_event(self):
        registry = get_registry()
        registry.enable()
        get_tracer().open()
        rng = np.random.default_rng(0)
        dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
        x = dist.rvs(200, rng=rng)
        fit = fit_weibull_mle(x)
        events = [e for e in get_tracer().recent() if e["event"] == "mle_fit"]
        assert len(events) == 1
        assert events[0]["alpha"] == pytest.approx(fit.alpha)
        assert events[0]["m"] == 200
        counters = {
            c["name"]: c["value"] for c in registry.snapshot()["counters"]
        }
        assert counters["mle_fits_total"] == 1

    def test_fallback_reason_lands_in_hyper_sample(self, tmp_path):
        # A constant population makes every block maximum identical, so
        # the fit degenerates and the estimator falls back to the max.
        pop = FinitePopulation(np.full(4000, 1.5), name="flat")
        est = MaxPowerEstimator(pop, error=0.05, confidence=0.90)
        registry = get_registry()
        registry.enable()
        get_tracer().open(tmp_path / "run.jsonl")
        result = _run(est)
        get_tracer().close()
        assert all(hs.fallback_reason for hs in result.hyper_samples)
        hypers = [
            e
            for e in load_trace(tmp_path / "run.jsonl")
            if e["event"] == "hyper_sample"
        ]
        assert all(e["fallback_reason"] for e in hypers)
        assert all(e["alpha"] is None for e in hypers)
        counters = {
            c["name"]: c["value"] for c in registry.snapshot()["counters"]
        }
        assert counters["estimator_fallbacks_total"] == result.k

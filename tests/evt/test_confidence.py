"""Confidence machinery: u_l, Student-t intervals, SRS sizing."""

import math

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.evt.confidence import (
    MeanInterval,
    normal_interval,
    normal_two_sided_quantile,
    srs_required_units,
    t_mean_interval,
    t_two_sided_quantile,
)


class TestQuantiles:
    def test_u_l_known_values(self):
        assert normal_two_sided_quantile(0.90) == pytest.approx(1.6449, abs=1e-3)
        assert normal_two_sided_quantile(0.95) == pytest.approx(1.9600, abs=1e-3)
        assert normal_two_sided_quantile(0.99) == pytest.approx(2.5758, abs=1e-3)

    def test_t_quantile_known_values(self):
        # t_{0.9, 1} = 6.314 (the k=2 hyper-sample case)
        assert t_two_sided_quantile(0.90, 1) == pytest.approx(6.314, abs=1e-2)
        assert t_two_sided_quantile(0.90, 9) == pytest.approx(1.833, abs=1e-2)

    def test_t_approaches_normal(self):
        assert t_two_sided_quantile(0.90, 10000) == pytest.approx(
            normal_two_sided_quantile(0.90), abs=1e-3
        )

    def test_level_validation(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(EstimationError):
                normal_two_sided_quantile(bad)
            with pytest.raises(EstimationError):
                t_two_sided_quantile(bad, 5)
        with pytest.raises(EstimationError):
            t_two_sided_quantile(0.9, 0)


class TestTInterval:
    def test_hand_computed_interval(self):
        values = [10.0, 12.0, 11.0, 13.0]
        interval = t_mean_interval(values, 0.90)
        s = np.std(values, ddof=1)
        t = t_two_sided_quantile(0.90, 3)
        assert interval.mean == pytest.approx(11.5)
        assert interval.half_width == pytest.approx(t * s / 2.0)
        assert interval.k == 4
        assert interval.low == pytest.approx(11.5 - interval.half_width)
        assert interval.contains(11.5)
        assert not interval.contains(100.0)

    def test_rel_half_width(self):
        interval = MeanInterval(mean=10.0, half_width=0.5, level=0.9, k=5, std=1.0)
        assert interval.rel_half_width == pytest.approx(0.05)
        zero = MeanInterval(mean=0.0, half_width=0.5, level=0.9, k=5, std=1.0)
        assert zero.rel_half_width == math.inf

    def test_needs_two_values(self):
        with pytest.raises(EstimationError):
            t_mean_interval([1.0], 0.9)

    def test_interval_coverage_simulation(self):
        # 90% t-intervals over N(5,1) samples of size 8 should cover the
        # true mean ~90% of the time.
        rng = np.random.default_rng(13)
        hits = 0
        trials = 500
        for _ in range(trials):
            values = rng.normal(5.0, 1.0, size=8)
            if t_mean_interval(values, 0.90).contains(5.0):
                hits += 1
        assert hits / trials == pytest.approx(0.90, abs=0.04)


class TestNormalInterval:
    def test_formula(self):
        lo, hi = normal_interval(10.0, 2.0, 25, 0.95)
        half = 1.96 * 2.0 / 5.0
        assert lo == pytest.approx(10.0 - half, abs=1e-3)
        assert hi == pytest.approx(10.0 + half, abs=1e-3)

    def test_validation(self):
        with pytest.raises(EstimationError):
            normal_interval(0.0, -1.0, 5, 0.9)
        with pytest.raises(EstimationError):
            normal_interval(0.0, 1.0, 0, 0.9)


class TestSrsSizing:
    def test_paper_c1355_value(self):
        # Paper Table 1: Y = 0.0001 -> 23024 units at 90%.
        assert srs_required_units(0.0001, 0.9) == pytest.approx(23024, rel=1e-3)

    def test_paper_c432_value(self):
        # Paper Table 1: Y = 0.000038 -> 60593 units.
        assert srs_required_units(0.000038, 0.9) == pytest.approx(
            60591, rel=1e-3
        )

    def test_edge_cases(self):
        assert srs_required_units(0.0) == math.inf
        assert srs_required_units(1.0) == 1.0

    def test_edge_cases_hold_at_any_level(self):
        # Y = 0: no qualified unit can ever be drawn; Y = 1: the very
        # first draw qualifies — independent of the confidence level.
        for level in (0.1, 0.5, 0.9, 0.999):
            assert srs_required_units(0.0, level) == math.inf
            assert srs_required_units(1.0, level) == 1.0

    def test_near_edge_portions_finite_and_ordered(self):
        almost_all = srs_required_units(1.0 - 1e-12, 0.9)
        almost_none = srs_required_units(1e-12, 0.9)
        assert 0.0 < almost_all < 1.0 + 1e-6
        assert math.isfinite(almost_none) and almost_none > 1e9

    def test_monotone_in_portion(self):
        assert srs_required_units(1e-5) > srs_required_units(1e-3)

    def test_monotone_in_level(self):
        assert srs_required_units(1e-4, 0.99) > srs_required_units(1e-4, 0.9)

    def test_validation(self):
        with pytest.raises(EstimationError):
            srs_required_units(-0.1)
        with pytest.raises(EstimationError):
            srs_required_units(0.5, 1.0)

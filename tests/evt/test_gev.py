"""Unified GEV distribution and the Hosking PWM fit."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.errors import EstimationError, FitError
from repro.evt.distributions import GeneralizedWeibull
from repro.evt.gev import GEV, fit_gev_pwm, probability_weighted_moments

GEVS = [
    GEV(gamma=-0.4, mu=1.0, sigma=0.5),   # Weibull type
    GEV(gamma=0.0, mu=0.0, sigma=1.0),    # Gumbel
    GEV(gamma=0.3, mu=-1.0, sigma=2.0),   # Frechet type
]


class TestDistribution:
    def test_validation(self):
        with pytest.raises(EstimationError):
            GEV(gamma=0.1, sigma=0.0)
        with pytest.raises(EstimationError):
            GEV(gamma=math.inf)

    @pytest.mark.parametrize("dist", GEVS)
    def test_matches_scipy_genextreme(self, dist):
        ref = stats.genextreme(c=-dist.gamma, loc=dist.mu, scale=dist.sigma)
        xs = np.linspace(dist.mu - 4, dist.mu + 6, 50)
        assert dist.cdf(xs) == pytest.approx(ref.cdf(xs), abs=1e-10)
        assert dist.pdf(xs) == pytest.approx(ref.pdf(xs), abs=1e-10)

    @pytest.mark.parametrize("dist", GEVS)
    def test_ppf_inverts_cdf(self, dist):
        qs = np.array([0.01, 0.2, 0.5, 0.8, 0.999])
        assert dist.cdf(dist.ppf(qs)) == pytest.approx(qs, abs=1e-9)

    def test_right_endpoint(self):
        weib = GEVS[0]
        assert weib.right_endpoint() == pytest.approx(1.0 + 0.5 / 0.4)
        assert GEVS[1].right_endpoint() == math.inf
        assert GEVS[2].right_endpoint() == math.inf

    @pytest.mark.parametrize("dist", GEVS[:2])
    def test_moments_vs_samples(self, dist):
        draws = dist.rvs(60000, rng=4)
        assert draws.mean() == pytest.approx(dist.mean(), abs=0.03)
        assert draws.var() == pytest.approx(dist.var(), rel=0.08)

    def test_weibull_samples_below_endpoint(self):
        dist = GEVS[0]
        draws = dist.rvs(5000, rng=5)
        assert (draws <= dist.right_endpoint()).all()


class TestConversions:
    def test_weibull_roundtrip(self):
        g = GEV(gamma=-0.3, mu=1.0, sigma=0.5)
        w = g.to_weibull()
        assert isinstance(w, GeneralizedWeibull)
        assert w.mu == pytest.approx(g.right_endpoint())
        g2 = GEV.from_weibull(w)
        assert g2.gamma == pytest.approx(g.gamma)
        assert g2.mu == pytest.approx(g.mu)
        assert g2.sigma == pytest.approx(g.sigma)

    def test_cdf_agreement_after_conversion(self):
        g = GEV(gamma=-0.25, mu=2.0, sigma=1.5)
        w = g.to_weibull()
        xs = np.linspace(-2, g.right_endpoint(), 40)
        assert g.cdf(xs) == pytest.approx(w.cdf(xs), abs=1e-10)

    def test_non_weibull_conversion_rejected(self):
        with pytest.raises(EstimationError):
            GEVS[1].to_weibull()
        with pytest.raises(EstimationError):
            GEVS[2].to_weibull()

    def test_gumbel_conversion(self):
        gum = GEVS[1].to_gumbel()
        assert gum.mu == 0.0 and gum.sigma == 1.0
        with pytest.raises(EstimationError):
            GEVS[0].to_gumbel()


class TestPwm:
    def test_pwm_moments_of_uniform(self):
        # For U(0,1): b_r = E[X F(X)^r] = 1/(r+2).
        rng = np.random.default_rng(6)
        x = rng.random(200000)
        b = probability_weighted_moments(x, 3)
        assert b[0] == pytest.approx(1 / 2, abs=0.01)
        assert b[1] == pytest.approx(1 / 3, abs=0.01)
        assert b[2] == pytest.approx(1 / 4, abs=0.01)

    @pytest.mark.parametrize("gamma", [-0.4, -0.15, 0.0, 0.25])
    def test_parameter_recovery(self, gamma):
        true = GEV(gamma=gamma, mu=3.0, sigma=1.0)
        x = true.rvs(8000, rng=7)
        fit = fit_gev_pwm(x)
        assert fit.gamma == pytest.approx(gamma, abs=0.06)
        assert fit.mu == pytest.approx(3.0, abs=0.1)
        assert fit.sigma == pytest.approx(1.0, abs=0.1)

    def test_endpoint_recovery_for_weibull_type(self):
        true = GEV(gamma=-0.3, mu=1.0, sigma=0.5)
        x = true.rvs(8000, rng=8)
        fit = fit_gev_pwm(x)
        assert fit.right_endpoint() == pytest.approx(
            true.right_endpoint(), rel=0.08
        )

    def test_small_sample_robustness(self):
        true = GEV(gamma=-0.3, mu=0.0, sigma=1.0)
        rng = np.random.default_rng(9)
        for _ in range(50):
            fit = fit_gev_pwm(true.rvs(10, rng))
            assert math.isfinite(fit.gamma)
            assert fit.sigma > 0

    def test_validation(self):
        with pytest.raises(FitError):
            fit_gev_pwm(np.ones(20))
        with pytest.raises(FitError):
            fit_gev_pwm(np.array([1.0, 2.0]))

"""Block-maxima sample formation."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.evt.block_maxima import (
    DEFAULT_NUM_SAMPLES,
    DEFAULT_SAMPLE_SIZE,
    block_maxima,
    block_maxima_from_values,
)
from repro.vectors.population import FinitePopulation


class TestBlockMaxima:
    def test_paper_defaults(self):
        assert DEFAULT_SAMPLE_SIZE == 30
        assert DEFAULT_NUM_SAMPLES == 10

    def test_shape_and_domain(self, small_population):
        maxima = block_maxima(small_population, n=30, m=10, rng=1)
        assert maxima.shape == (10,)
        assert (maxima <= small_population.actual_max_power).all()
        assert (maxima >= 0).all()

    def test_maxima_dominate_plain_draws(self, small_population):
        rng = np.random.default_rng(2)
        maxima = block_maxima(small_population, n=50, m=20, rng=rng)
        plain = small_population.sample_powers(20, rng)
        assert maxima.mean() > plain.mean()

    def test_larger_blocks_push_maxima_up(self, small_population):
        rng = np.random.default_rng(3)
        small = block_maxima(small_population, n=5, m=200, rng=rng)
        large = block_maxima(small_population, n=100, m=200, rng=rng)
        assert large.mean() > small.mean()

    def test_reproducible_by_seed(self, small_population):
        a = block_maxima(small_population, rng=7)
        b = block_maxima(small_population, rng=7)
        assert np.array_equal(a, b)

    def test_parameter_validation(self, small_population):
        with pytest.raises(EstimationError):
            block_maxima(small_population, n=0)
        with pytest.raises(EstimationError):
            block_maxima(small_population, m=0)

    def test_delegates_to_batched_population_path(self, small_population):
        # block_maxima and the population fast path are the same stream.
        via_helper = block_maxima(small_population, n=12, m=6, rng=19)
        via_population = small_population.sample_block_maxima(12, 6, rng=19)
        assert np.array_equal(via_helper, via_population)

    def test_matches_manual_reshape_of_sample_powers(self, small_population):
        maxima = block_maxima(small_population, n=15, m=8, rng=23)
        draws = small_population.sample_powers(120, rng=23)
        assert np.array_equal(maxima, draws.reshape(8, 15).max(axis=1))


class TestFromValues:
    def test_partition_and_max(self):
        values = np.array([1.0, 5.0, 2.0, 8.0, 3.0, 4.0, 9.0])
        maxima = block_maxima_from_values(values, n=2)
        # blocks: (1,5), (2,8), (3,4); trailing 9 dropped
        assert list(maxima) == [5.0, 8.0, 4.0]

    def test_exact_multiple(self):
        values = np.arange(12.0)
        maxima = block_maxima_from_values(values, n=4)
        assert list(maxima) == [3.0, 7.0, 11.0]

    def test_errors(self):
        with pytest.raises(EstimationError):
            block_maxima_from_values(np.arange(3.0), n=5)
        with pytest.raises(EstimationError):
            block_maxima_from_values(np.arange(6.0).reshape(2, 3), n=2)
        with pytest.raises(EstimationError):
            block_maxima_from_values(np.arange(6.0), n=0)

    def test_exhaustive_consumption_count(self, small_population):
        # n*m draws per call — the unit accounting the tables rely on.
        class CountingPopulation(FinitePopulation):
            def __init__(self, base):
                super().__init__(base.powers, name="counting")
                self.drawn = 0

            def sample_powers(self, n, rng=None):
                self.drawn += n
                return super().sample_powers(n, rng)

        counting = CountingPopulation(small_population)
        block_maxima(counting, n=30, m=10, rng=1)
        assert counting.drawn == 300

"""Order-statistics background utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.evt.order_stats import (
    empirical_cdf,
    empirical_quantile,
    order_statistic_cdf,
    quantile_confidence_interval,
    sample_maximum_cdf,
)


class TestEmpiricalCdf:
    def test_sorted_with_midpoint_positions(self):
        x, p = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert list(x) == [1.0, 2.0, 3.0]
        assert p == pytest.approx([1 / 6, 3 / 6, 5 / 6])

    def test_rejects_empty(self):
        with pytest.raises(EstimationError):
            empirical_cdf(np.array([]))


class TestEmpiricalQuantile:
    def test_definition_smallest_q_quantile(self):
        values = np.array([10.0, 20.0, 30.0, 40.0])
        assert empirical_quantile(values, 0.25) == 10.0
        assert empirical_quantile(values, 0.26) == 20.0
        assert empirical_quantile(values, 1.0) == 40.0
        assert empirical_quantile(values, 0.0) == 10.0

    @given(
        q=st.floats(min_value=0.01, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_at_least_q_mass_below(self, q, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=50)
        t = empirical_quantile(values, q)
        frac_leq = (values <= t).mean()
        assert frac_leq >= q - 1e-12

    def test_range_checked(self):
        with pytest.raises(EstimationError):
            empirical_quantile(np.array([1.0]), 1.5)


class TestOrderStatisticCdf:
    def test_maximum_case_equals_power(self):
        for p in (0.2, 0.7, 0.95):
            assert order_statistic_cdf(p, 5, 5) == pytest.approx(p ** 5)
            assert sample_maximum_cdf(p, 5) == pytest.approx(p ** 5)

    def test_minimum_case(self):
        p = 0.3
        assert order_statistic_cdf(p, 1, 4) == pytest.approx(
            1 - (1 - p) ** 4
        )

    def test_monte_carlo_agreement(self):
        # P{X_(3:7) <= median} estimated by simulation.
        rng = np.random.default_rng(2)
        count = 0
        trials = 4000
        t = 0.0  # median of standard normal, F(t) = 0.5
        for _ in range(trials):
            sample = np.sort(rng.normal(size=7))
            if sample[2] <= t:
                count += 1
        expected = order_statistic_cdf(0.5, 3, 7)
        assert count / trials == pytest.approx(expected, abs=0.03)

    def test_argument_validation(self):
        with pytest.raises(EstimationError):
            order_statistic_cdf(1.2, 1, 3)
        with pytest.raises(EstimationError):
            order_statistic_cdf(0.5, 0, 3)
        with pytest.raises(EstimationError):
            sample_maximum_cdf(0.5, 0)


class TestQuantileCI:
    def test_interval_brackets_point(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=500)
        point, lo, hi = quantile_confidence_interval(values, 0.9, 0.95)
        assert lo <= point <= hi

    def test_coverage_of_true_quantile(self):
        # Repeated sampling: the CI should contain the true 0.8-quantile
        # of U(0,1) (=0.8) in about 90% of trials.
        rng = np.random.default_rng(7)
        hits = 0
        trials = 300
        for _ in range(trials):
            values = rng.random(200)
            _, lo, hi = quantile_confidence_interval(values, 0.8, 0.9)
            if lo <= 0.8 <= hi:
                hits += 1
        assert hits / trials > 0.8  # conservative lower check

    def test_validation(self):
        with pytest.raises(EstimationError):
            quantile_confidence_interval(np.array([1.0, 2.0]), 0.0, 0.9)
        with pytest.raises(EstimationError):
            quantile_confidence_interval(np.array([1.0, 2.0]), 0.5, 1.0)
        with pytest.raises(EstimationError):
            quantile_confidence_interval(np.array([1.0]), 0.5, 0.9)

"""Extreme-value distributions: analytics, sampling, scipy agreement."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import integrate, stats

from repro.errors import EstimationError
from repro.evt.distributions import Frechet, GeneralizedWeibull, Gumbel

WEIBULLS = [
    GeneralizedWeibull(alpha=1.0, beta=1.0, mu=0.0),
    GeneralizedWeibull(alpha=3.0, beta=2.0, mu=10.0),
    GeneralizedWeibull(alpha=8.0, beta=0.5, mu=-2.0),
]


class TestGeneralizedWeibull:
    def test_parameter_validation(self):
        with pytest.raises(EstimationError):
            GeneralizedWeibull(alpha=0, beta=1, mu=0)
        with pytest.raises(EstimationError):
            GeneralizedWeibull(alpha=1, beta=-1, mu=0)
        with pytest.raises(EstimationError):
            GeneralizedWeibull(alpha=1, beta=1, mu=math.inf)

    @pytest.mark.parametrize("dist", WEIBULLS)
    def test_cdf_properties(self, dist):
        assert dist.cdf(dist.mu) == 1.0
        assert dist.cdf(dist.mu + 5) == 1.0
        assert dist.cdf(dist.mu - 100) < 1e-6
        xs = np.linspace(dist.mu - 5, dist.mu, 50)
        cdf = dist.cdf(xs)
        assert (np.diff(cdf) >= -1e-12).all()  # non-decreasing

    @pytest.mark.parametrize("dist", WEIBULLS)
    def test_pdf_integrates_to_one(self, dist):
        total, _ = integrate.quad(
            lambda x: dist.pdf(x), dist.mu - 60, dist.mu, limit=200
        )
        assert total == pytest.approx(1.0, abs=1e-5)

    @pytest.mark.parametrize("dist", WEIBULLS)
    def test_ppf_inverts_cdf(self, dist):
        qs = np.array([0.01, 0.1, 0.5, 0.9, 0.999])
        xs = dist.ppf(qs)
        assert dist.cdf(xs) == pytest.approx(qs, abs=1e-10)

    @given(
        alpha=st.floats(min_value=0.5, max_value=20),
        q=st.floats(min_value=1e-6, max_value=1 - 1e-6),
    )
    @settings(max_examples=60, deadline=None)
    def test_ppf_cdf_roundtrip_property(self, alpha, q):
        dist = GeneralizedWeibull(alpha=alpha, beta=1.3, mu=4.2)
        x = dist.ppf(q)
        assert dist.cdf(x) == pytest.approx(q, rel=1e-8, abs=1e-10)

    def test_ppf_endpoint_levels(self):
        dist = WEIBULLS[1]
        assert dist.ppf(1.0) == dist.mu
        assert dist.ppf(0.0) == -np.inf
        with pytest.raises(EstimationError):
            dist.ppf(1.5)

    @pytest.mark.parametrize("dist", WEIBULLS)
    def test_rvs_within_support_and_moments(self, dist):
        draws = dist.rvs(40000, rng=7)
        assert (draws <= dist.mu).all()
        assert draws.mean() == pytest.approx(dist.mean(), abs=4 * dist.std() / 200)
        assert draws.std() == pytest.approx(dist.std(), rel=0.05)

    @pytest.mark.parametrize("dist", WEIBULLS)
    def test_matches_scipy_weibull_max(self, dist):
        ref = dist.scipy_frozen()
        xs = np.linspace(dist.mu - 4, dist.mu + 1, 40)
        assert dist.cdf(xs) == pytest.approx(ref.cdf(xs), abs=1e-12)
        interior = xs[xs < dist.mu]
        assert dist.pdf(interior) == pytest.approx(
            ref.pdf(interior), rel=1e-9
        )

    def test_scale_conversion_roundtrip(self):
        d = GeneralizedWeibull.from_scale(alpha=3.0, scale=0.5, mu=1.0)
        assert d.scale == pytest.approx(0.5)
        assert d.beta == pytest.approx(0.5 ** -3.0)

    def test_loglikelihood_is_mean_logpdf(self):
        dist = WEIBULLS[1]
        x = dist.rvs(100, rng=1)
        assert dist.loglikelihood(x) == pytest.approx(
            float(np.mean(dist.logpdf(x)))
        )


class TestGumbel:
    def test_validation(self):
        with pytest.raises(EstimationError):
            Gumbel(sigma=0)

    def test_cdf_known_value(self):
        g = Gumbel(mu=0.0, sigma=1.0)
        assert g.cdf(0.0) == pytest.approx(math.exp(-1.0))

    def test_ppf_inverts_cdf(self):
        g = Gumbel(mu=2.0, sigma=0.7)
        qs = np.array([0.05, 0.5, 0.95])
        assert g.cdf(g.ppf(qs)) == pytest.approx(qs)

    def test_moments_vs_samples(self):
        g = Gumbel(mu=1.0, sigma=2.0)
        draws = g.rvs(60000, rng=5)
        assert draws.mean() == pytest.approx(g.mean(), abs=0.05)
        assert draws.var() == pytest.approx(g.var(), rel=0.05)

    def test_matches_scipy(self):
        g = Gumbel(mu=-1.0, sigma=1.5)
        xs = np.linspace(-6, 8, 30)
        ref = stats.gumbel_r(loc=-1.0, scale=1.5)
        assert g.cdf(xs) == pytest.approx(ref.cdf(xs), abs=1e-12)
        assert g.pdf(xs) == pytest.approx(ref.pdf(xs), rel=1e-9)


class TestFrechet:
    def test_validation(self):
        with pytest.raises(EstimationError):
            Frechet(alpha=-1)
        with pytest.raises(EstimationError):
            Frechet(alpha=1, scale=0)

    def test_support(self):
        f = Frechet(alpha=2.0, scale=1.0, loc=3.0)
        assert f.cdf(3.0) == 0.0
        assert f.cdf(2.0) == 0.0
        assert f.cdf(1e9) == pytest.approx(1.0)

    def test_ppf_inverts_cdf(self):
        f = Frechet(alpha=3.0, scale=2.0, loc=1.0)
        qs = np.array([0.1, 0.6, 0.99])
        assert f.cdf(f.ppf(qs)) == pytest.approx(qs)

    def test_matches_scipy_invweibull(self):
        f = Frechet(alpha=2.5, scale=1.2, loc=0.0)
        xs = np.linspace(0.1, 10, 25)
        ref = stats.invweibull(c=2.5, scale=1.2)
        assert f.cdf(xs) == pytest.approx(ref.cdf(xs), abs=1e-12)

    def test_mean_infinite_for_small_alpha(self):
        assert Frechet(alpha=0.8).mean() == math.inf
        assert Frechet(alpha=2.0).mean() == pytest.approx(
            math.gamma(0.5), rel=1e-12
        )

    def test_rvs_above_loc(self):
        f = Frechet(alpha=2.0, scale=1.0, loc=5.0)
        draws = f.rvs(1000, rng=3)
        assert (draws > 5.0).all()

"""Alternative fitters (LSQ, moments), normal fits, KS distance."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import FitError
from repro.evt.distributions import GeneralizedWeibull
from repro.evt.fitting import (
    fit_normal,
    fit_normal_lsq,
    fit_weibull_lsq,
    fit_weibull_moments,
    ks_statistic,
)


class TestLsqFit:
    def test_recovers_on_clean_large_sample(self):
        true = GeneralizedWeibull.from_scale(alpha=3.0, scale=1.0, mu=4.0)
        x = true.rvs(2000, rng=1)
        fit = fit_weibull_lsq(x)
        assert fit.method == "lsq"
        assert fit.mu == pytest.approx(4.0, abs=0.4)
        assert fit.alpha == pytest.approx(3.0, rel=0.4)

    def test_mu_stays_above_sample_max(self):
        true = GeneralizedWeibull(alpha=5.0, beta=1.0, mu=1.0)
        rng = np.random.default_rng(3)
        for _ in range(10):
            x = true.rvs(15, rng)
            fit = fit_weibull_lsq(x)
            assert fit.mu > x.max()

    def test_small_sample_runs(self):
        true = GeneralizedWeibull(alpha=3.0, beta=1.0, mu=0.0)
        fit = fit_weibull_lsq(true.rvs(10, rng=7))
        assert np.isfinite(fit.loglik) or fit.loglik == -np.inf

    def test_degenerate_rejected(self):
        with pytest.raises(FitError):
            fit_weibull_lsq(np.full(8, 1.0))


class TestMomentsFit:
    def test_recovers_on_clean_large_sample(self):
        true = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.5, mu=2.0)
        x = true.rvs(5000, rng=2)
        fit = fit_weibull_moments(x)
        assert fit.method == "moments"
        assert fit.mu == pytest.approx(2.0, abs=0.1)
        assert fit.alpha == pytest.approx(4.0, rel=0.3)

    def test_endpoint_spacing_estimator(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        fit = fit_weibull_moments(x)
        # mu = max + (max - second max) = 6.0
        assert fit.mu == pytest.approx(6.0)

    def test_degenerate_rejected(self):
        with pytest.raises(FitError):
            fit_weibull_moments(np.full(6, 2.0))


class TestNormalFits:
    def test_moment_fit(self):
        rng = np.random.default_rng(4)
        x = rng.normal(3.0, 2.0, size=5000)
        fit = fit_normal(x)
        assert fit.mean == pytest.approx(3.0, abs=0.1)
        assert fit.std == pytest.approx(2.0, abs=0.1)

    def test_lsq_fit_close_to_moment_fit(self):
        rng = np.random.default_rng(5)
        x = rng.normal(-1.0, 0.5, size=800)
        moment = fit_normal(x)
        lsq = fit_normal_lsq(x)
        assert lsq.mean == pytest.approx(moment.mean, abs=0.05)
        assert lsq.std == pytest.approx(moment.std, abs=0.05)
        assert lsq.method == "lsq"

    def test_pdf_cdf_shapes(self):
        fit = fit_normal(np.array([0.0, 1.0, 2.0]))
        xs = np.linspace(-1, 3, 7)
        assert fit.cdf(xs).shape == (7,)
        assert fit.pdf(xs).shape == (7,)

    def test_degenerate_rejected(self):
        with pytest.raises(FitError):
            fit_normal(np.full(5, 1.0))
        with pytest.raises(FitError):
            fit_normal(np.array([1.0]))


class TestKsStatistic:
    def test_matches_scipy_kstest(self):
        rng = np.random.default_rng(6)
        x = np.sort(rng.normal(size=200))
        ours = ks_statistic(stats.norm.cdf(x))
        ref = stats.kstest(x, "norm").statistic
        assert ours == pytest.approx(ref, abs=1e-12)

    def test_perfect_fit_small_distance(self):
        n = 1000
        # Exact quantiles of the fitted distribution: KS ~ 1/(2n).
        x = stats.norm.ppf((np.arange(1, n + 1) - 0.5) / n)
        assert ks_statistic(stats.norm.cdf(x)) <= 0.5 / n + 1e-9

    def test_empty_rejected(self):
        with pytest.raises(FitError):
            ks_statistic(np.array([]))

"""Profile-likelihood MLE for the generalized Weibull."""

import numpy as np
import pytest

from repro.errors import FitError
from repro.evt.distributions import GeneralizedWeibull
from repro.evt.mle import (
    fisher_covariance,
    fit_weibull_mle,
    fit_weibull_mle_scipy,
)


class TestRecovery:
    @pytest.mark.parametrize("alpha", [2.5, 4.0, 8.0])
    def test_large_sample_parameter_recovery(self, alpha):
        true = GeneralizedWeibull.from_scale(alpha=alpha, scale=1.0, mu=5.0)
        x = true.rvs(4000, rng=11)
        fit = fit_weibull_mle(x)
        assert fit.alpha == pytest.approx(alpha, rel=0.15)
        assert fit.mu == pytest.approx(5.0, abs=0.15)
        assert fit.method == "profile-mle"
        assert fit.shape_gt2

    def test_agrees_with_scipy_on_large_sample(self):
        true = GeneralizedWeibull(alpha=3.0, beta=2.0, mu=10.0)
        x = true.rvs(3000, rng=42)
        ours = fit_weibull_mle(x)
        ref = fit_weibull_mle_scipy(x)
        assert ours.mu == pytest.approx(ref.mu, abs=0.02)
        assert ours.alpha == pytest.approx(ref.alpha, rel=0.02)
        assert ours.loglik == pytest.approx(ref.loglik, abs=0.5)

    def test_loglik_at_optimum_beats_neighbours(self):
        true = GeneralizedWeibull(alpha=4.0, beta=1.0, mu=2.0)
        x = true.rvs(300, rng=3)
        fit = fit_weibull_mle(x)
        for factor in (0.7, 1.3):
            worse = GeneralizedWeibull(
                alpha=fit.alpha * factor, beta=fit.beta, mu=fit.mu
            )
            assert float(np.sum(worse.logpdf(x))) <= fit.loglik + 1e-6

    def test_mu_always_above_sample_max(self):
        true = GeneralizedWeibull(alpha=5.0, beta=1.0, mu=1.0)
        rng = np.random.default_rng(8)
        for _ in range(25):
            x = true.rvs(10, rng)
            fit = fit_weibull_mle(x)
            assert fit.mu > x.max()

    def test_quantile_helper(self):
        true = GeneralizedWeibull(alpha=3.0, beta=1.0, mu=0.0)
        x = true.rvs(500, rng=2)
        fit = fit_weibull_mle(x)
        q = fit.quantile(0.999)
        assert q < fit.mu
        assert fit.distribution.cdf(q) == pytest.approx(0.999, abs=1e-6)


class TestSmallSampleRobustness:
    def test_never_crashes_at_m10(self):
        true = GeneralizedWeibull(alpha=3.0, beta=1.0, mu=0.0)
        rng = np.random.default_rng(17)
        for _ in range(100):
            x = true.rvs(10, rng)
            fit = fit_weibull_mle(x)
            assert np.isfinite(fit.mu)
            assert fit.alpha > 0 and fit.beta > 0

    def test_translation_equivariance(self):
        true = GeneralizedWeibull(alpha=4.0, beta=1.0, mu=0.0)
        x = true.rvs(200, rng=5)
        f0 = fit_weibull_mle(x)
        f1 = fit_weibull_mle(x + 100.0)
        assert f1.mu == pytest.approx(f0.mu + 100.0, abs=1e-3)
        assert f1.alpha == pytest.approx(f0.alpha, rel=1e-3)

    def test_scale_equivariance(self):
        true = GeneralizedWeibull(alpha=4.0, beta=1.0, mu=0.0)
        x = true.rvs(200, rng=6)
        f0 = fit_weibull_mle(x)
        f1 = fit_weibull_mle(x * 1e-3)  # watt-scale values
        assert f1.mu == pytest.approx(f0.mu * 1e-3, rel=1e-3, abs=1e-9)
        assert f1.alpha == pytest.approx(f0.alpha, rel=1e-2)


class TestValidation:
    def test_degenerate_sample_rejected(self):
        with pytest.raises(FitError, match="degenerate"):
            fit_weibull_mle(np.full(10, 3.3))

    def test_too_few_values_rejected(self):
        with pytest.raises(FitError, match="at least 3"):
            fit_weibull_mle(np.array([1.0, 2.0]))

    def test_non_finite_rejected(self):
        with pytest.raises(FitError, match="non-finite"):
            fit_weibull_mle(np.array([1.0, 2.0, np.nan]))

    def test_2d_rejected(self):
        with pytest.raises(FitError, match="1-D"):
            fit_weibull_mle(np.ones((3, 3)))


class TestFisherCovariance:
    def test_positive_definite_on_good_fit(self):
        true = GeneralizedWeibull(alpha=4.0, beta=1.0, mu=2.0)
        x = true.rvs(2000, rng=9)
        fit = fit_weibull_mle(x)
        cov = fisher_covariance(fit, x)
        assert cov is not None
        assert cov.shape == (3, 3)
        assert (np.diag(cov) > 0).all()
        eigvals = np.linalg.eigvalsh(cov)
        assert (eigvals > 0).all()

    def test_variance_shrinks_with_sample_size(self):
        true = GeneralizedWeibull(alpha=4.0, beta=1.0, mu=2.0)
        var_mu = []
        for m in (200, 2000):
            x = true.rvs(m, rng=10)
            fit = fit_weibull_mle(x)
            cov = fisher_covariance(fit, x)
            assert cov is not None
            var_mu.append(cov[2, 2])
        assert var_mu[1] < var_mu[0]

"""Domain-of-attraction diagnostics."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.evt.distributions import Frechet, GeneralizedWeibull, Gumbel
from repro.evt.domain import (
    classify_domain,
    dekkers_moment_estimator,
    endpoint_estimate,
    pickands_estimator,
)


class TestClassification:
    def test_weibull_data_classified_weibull(self):
        true = GeneralizedWeibull.from_scale(alpha=2.0, scale=1.0, mu=10.0)
        x = true.rvs(20000, rng=1)
        verdict = classify_domain(x)
        assert verdict.domain == "weibull"
        assert verdict.gamma < 0
        # alpha = -1/gamma should be in the right ballpark
        assert verdict.alpha == pytest.approx(2.0, rel=0.8)

    def test_frechet_data_classified_frechet(self):
        x = Frechet(alpha=1.5, scale=1.0).rvs(20000, rng=2)
        verdict = classify_domain(x)
        assert verdict.domain == "frechet"
        assert verdict.gamma > 0

    def test_gumbel_data_near_zero_gamma(self):
        x = Gumbel(mu=0.0, sigma=1.0).rvs(20000, rng=3)
        verdict = classify_domain(x, gumbel_band=0.25)
        assert abs(verdict.gamma) < 0.3

    def test_verdict_str(self):
        x = GeneralizedWeibull(alpha=3.0, beta=1.0, mu=1.0).rvs(5000, rng=4)
        verdict = classify_domain(x)
        assert "domain" in str(verdict)

    def test_too_small_sample_rejected(self):
        with pytest.raises(EstimationError):
            classify_domain(np.arange(10.0))


class TestEstimators:
    def test_pickands_negative_for_bounded_tail(self):
        x = GeneralizedWeibull(alpha=1.0, beta=1.0, mu=5.0).rvs(40000, rng=5)
        gamma = pickands_estimator(x, k=400)
        assert gamma < 0.1  # near -1 for alpha=1; noisy but clearly small

    def test_pickands_validation(self):
        with pytest.raises(EstimationError):
            pickands_estimator(np.arange(10.0), k=5)  # 4k > n

    def test_dekkers_positive_for_heavy_tail(self):
        x = Frechet(alpha=1.0, scale=1.0).rvs(20000, rng=6)
        gamma = dekkers_moment_estimator(x, k=300)
        assert gamma > 0.5

    def test_dekkers_handles_negative_support(self):
        rng = np.random.default_rng(7)
        x = rng.normal(loc=-50.0, scale=1.0, size=5000)
        gamma = dekkers_moment_estimator(x, k=70)
        assert np.isfinite(gamma)

    def test_dekkers_validation(self):
        with pytest.raises(EstimationError):
            dekkers_moment_estimator(np.arange(5.0), k=1)

    def test_endpoint_estimate_close_for_weibull(self):
        true = GeneralizedWeibull.from_scale(alpha=2.0, scale=1.0, mu=3.0)
        x = true.rvs(50000, rng=8)
        endpoint = endpoint_estimate(x, k=500)
        assert endpoint is not None
        assert endpoint == pytest.approx(3.0, abs=0.5)
        assert endpoint >= x.max() - 1e-9 or endpoint > 2.5

    def test_endpoint_none_for_heavy_tail(self):
        x = Frechet(alpha=1.2, scale=1.0).rvs(20000, rng=9)
        assert endpoint_estimate(x, k=300) is None

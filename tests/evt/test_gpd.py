"""Generalized Pareto distribution and threshold-exceedance fits."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.errors import EstimationError, FitError
from repro.evt.gpd import GPD, fit_gpd_mle, fit_gpd_pwm

GPDS = [
    GPD(xi=-0.3, sigma=1.0),   # bounded tail
    GPD(xi=0.0, sigma=2.0),    # exponential
    GPD(xi=0.4, sigma=0.5),    # heavy tail
]


class TestDistribution:
    def test_validation(self):
        with pytest.raises(EstimationError):
            GPD(xi=0.1, sigma=0)
        with pytest.raises(EstimationError):
            GPD(xi=math.nan)

    @pytest.mark.parametrize("dist", GPDS)
    def test_matches_scipy_genpareto(self, dist):
        ref = stats.genpareto(c=dist.xi, scale=dist.sigma)
        ys = np.linspace(0, 5, 40)
        assert dist.cdf(ys) == pytest.approx(ref.cdf(ys), abs=1e-10)
        assert dist.pdf(ys) == pytest.approx(ref.pdf(ys), abs=1e-10)

    @pytest.mark.parametrize("dist", GPDS)
    def test_ppf_inverts_cdf(self, dist):
        qs = np.array([0.0, 0.3, 0.9, 0.999])
        assert dist.cdf(dist.ppf(qs)) == pytest.approx(qs, abs=1e-9)

    def test_right_endpoint(self):
        assert GPDS[0].right_endpoint() == pytest.approx(1.0 / 0.3)
        assert GPDS[1].right_endpoint() == math.inf
        assert GPDS[2].right_endpoint() == math.inf

    def test_bounded_samples_below_endpoint(self):
        d = GPDS[0]
        draws = d.rvs(5000, rng=1)
        assert (draws >= 0).all()
        assert (draws <= d.right_endpoint()).all()

    def test_mean(self):
        assert GPDS[0].mean() == pytest.approx(1.0 / 1.3)
        assert GPD(xi=1.5, sigma=1.0).mean() == math.inf

    def test_negative_values_have_zero_density(self):
        assert GPDS[0].pdf(-1.0) == 0.0
        assert GPDS[0].cdf(-1.0) == 0.0


class TestFits:
    @pytest.mark.parametrize("xi", [-0.35, -0.1, 0.0, 0.3])
    def test_pwm_recovery(self, xi):
        true = GPD(xi=xi, sigma=1.5)
        y = true.rvs(8000, rng=2)
        fit = fit_gpd_pwm(y)
        assert fit.xi == pytest.approx(xi, abs=0.06)
        assert fit.sigma == pytest.approx(1.5, rel=0.08)

    @pytest.mark.parametrize("xi", [-0.35, 0.0, 0.3])
    def test_mle_recovery(self, xi):
        true = GPD(xi=xi, sigma=1.5)
        y = true.rvs(4000, rng=3)
        fit = fit_gpd_mle(y)
        assert fit.xi == pytest.approx(xi, abs=0.06)
        assert fit.sigma == pytest.approx(1.5, rel=0.08)

    def test_mle_no_worse_than_pwm_in_likelihood(self):
        true = GPD(xi=-0.25, sigma=1.0)
        y = true.rvs(500, rng=4)
        pwm = fit_gpd_pwm(y)
        mle = fit_gpd_mle(y)
        ll_pwm = float(np.sum(pwm.logpdf(y)))
        ll_mle = float(np.sum(mle.logpdf(y)))
        assert ll_mle >= ll_pwm - 1e-9

    def test_endpoint_estimate(self):
        true = GPD(xi=-0.3, sigma=1.0)  # endpoint 10/3
        y = true.rvs(6000, rng=5)
        fit = fit_gpd_mle(y)
        assert fit.right_endpoint() == pytest.approx(10 / 3, rel=0.1)

    def test_validation(self):
        with pytest.raises(FitError):
            fit_gpd_pwm(np.ones(10))
        with pytest.raises(FitError):
            fit_gpd_pwm(np.array([1.0, -2.0, 3.0, 4.0]))
        with pytest.raises(FitError):
            fit_gpd_mle(np.array([1.0, 2.0]))

    def test_small_sample_robustness(self):
        true = GPD(xi=-0.2, sigma=1.0)
        rng = np.random.default_rng(6)
        for _ in range(40):
            fit = fit_gpd_mle(true.rvs(30, rng))
            assert math.isfinite(fit.xi)
            assert fit.sigma > 0


class TestFitDispatcher:
    """``fit_gpd`` — the single front door over the MLE/PWM fitters."""

    def test_default_is_mle(self):
        from repro.evt.gpd import fit_gpd

        rng = np.random.default_rng(2)
        y = GPD(xi=-0.2, sigma=1.0).rvs(500, rng)
        via_front = fit_gpd(y)
        direct = fit_gpd_mle(y)
        assert via_front.xi == direct.xi
        assert via_front.sigma == direct.sigma

    def test_pwm_route(self):
        from repro.evt.gpd import fit_gpd

        rng = np.random.default_rng(2)
        y = GPD(xi=-0.2, sigma=1.0).rvs(500, rng)
        via_front = fit_gpd(y, method="pwm")
        direct = fit_gpd_pwm(y)
        assert via_front.xi == direct.xi
        assert via_front.sigma == direct.sigma

    def test_pwm_rejects_start_point(self):
        from repro.evt.gpd import fit_gpd

        rng = np.random.default_rng(2)
        y = GPD(xi=-0.2, sigma=1.0).rvs(100, rng)
        with pytest.raises(FitError, match="start"):
            fit_gpd(y, method="pwm", start=(-0.1, 1.0))

    def test_unknown_method_rejected(self):
        from repro.evt.gpd import fit_gpd

        with pytest.raises(FitError, match="unknown GPD fit method"):
            fit_gpd(np.ones(50), method="bogus")

"""Kill-and-restart semantics: the acceptance bar of the service.

A job interrupted by a server death must, after restart on the same
state directory, finish with results bit-identical to an uninterrupted
execution — single-run jobs by deterministic re-run, multi-run jobs by
loading their per-run JSONL checkpoint and computing only the rest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EstimatorConfig, build_population, run_many
from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.obs.metrics import get_registry
from repro.service import Client, JobServer
from repro.service.jobs import JobSpec, JobState, JobStore


@pytest.fixture
def restartable(tmp_path):
    """State dir + registry babysitting for start/kill/start tests."""
    registry = get_registry()
    was_enabled = registry.enabled
    yield tmp_path / "state"
    if not was_enabled:
        registry.disable()
        registry.reset()


def start_server(state_dir) -> JobServer:
    return JobServer(port=0, state_dir=state_dir, workers=1).start()


class TestSingleRunRestart:
    def test_queued_job_survives_restart_and_matches_in_process(
        self, restartable, bench_path
    ):
        spec = JobSpec(
            circuit=str(bench_path),
            config=EstimatorConfig(max_hyper_samples=10),
            seed=3,
            population_size=400,
        )
        # A server accepted the job and died before any worker touched it
        # (JobStore alone = the durable half of the server).
        store = JobStore(restartable)
        job = store.submit(spec)
        store.close()

        server = start_server(restartable)
        try:
            client = Client(server.url)
            status = client.wait(job.id, timeout=30)
            assert status["state"] == JobState.COMPLETED
            via_service = client.result(job.id)
        finally:
            server.stop()

        population = build_population(
            spec.circuit, population_size=spec.population_size, seed=spec.seed
        )
        in_process = MaxPowerEstimator.from_config(population, spec.config).run(
            rng=np.random.default_rng(spec.seed + 1)
        )
        assert via_service.to_dict() == in_process.to_dict()

    def test_mid_flight_job_requeues_and_matches(self, restartable, bench_path):
        spec = JobSpec(
            circuit=str(bench_path),
            config=EstimatorConfig(max_hyper_samples=10),
            seed=5,
            population_size=400,
        )
        store = JobStore(restartable)
        job = store.submit(spec)
        claimed = store.claim_next(timeout=0.1)  # marked running, then died
        assert claimed.id == job.id
        store.close()

        server = start_server(restartable)
        try:
            assert job.id in server.store.requeued_ids
            client = Client(server.url)
            assert client.wait(job.id, timeout=30)["state"] == JobState.COMPLETED
            via_service = client.result(job.id)
        finally:
            server.stop()

        population = build_population(
            spec.circuit, population_size=spec.population_size, seed=spec.seed
        )
        in_process = MaxPowerEstimator.from_config(population, spec.config).run(
            rng=np.random.default_rng(spec.seed + 1)
        )
        assert via_service.to_dict() == in_process.to_dict()


class TestMultiRunCheckpointResume:
    NUM_RUNS = 6

    def make_spec(self, bench_path) -> JobSpec:
        return JobSpec(
            circuit=str(bench_path),
            config=EstimatorConfig(max_hyper_samples=8),
            seed=2,
            num_runs=self.NUM_RUNS,
            population_size=400,
        )

    def test_killed_mid_job_resumes_from_checkpoint_bit_identical(
        self, restartable, bench_path
    ):
        spec = self.make_spec(bench_path)
        store = JobStore(restartable)
        job = store.submit(spec)
        store.claim_next(timeout=0.1)  # running when the server dies

        # Reproduce what the dead worker had done: two of six runs
        # finished and checkpointed (the crash interrupts run 3).
        population = build_population(
            spec.circuit, population_size=spec.population_size, seed=spec.seed
        )

        class Killed(RuntimeError):
            pass

        completed = []

        def die_after_two(index, _result):
            completed.append(index)
            if len(completed) == 2:
                raise Killed()

        with pytest.raises(Killed):
            run_many(
                population,
                self.NUM_RUNS,
                spec.config,
                base_seed=spec.seed + 1,
                checkpoint=store.run_checkpoint_path(job.id),
                on_result=die_after_two,
            )
        store.close()
        assert store.run_checkpoint_path(job.id).exists()

        registry = get_registry()
        registry.reset()
        server = start_server(restartable)
        try:
            client = Client(server.url)
            status = client.wait(job.id, timeout=60)
            assert status["state"] == JobState.COMPLETED
            assert status["completed_runs"] == self.NUM_RUNS
            via_service = client.results(job.id)
            metrics_text = client.metrics()
        finally:
            server.stop()

        # The two checkpointed runs were loaded, not recomputed.
        assert (
            'repro_checkpoint_results_total{kind="run",status="loaded"} 2'
            in metrics_text
        )

        uninterrupted = run_many(
            population, self.NUM_RUNS, spec.config, base_seed=spec.seed + 1
        )
        assert [r.to_dict() for r in via_service] == [
            r.to_dict() for r in uninterrupted
        ]

    def test_completed_runs_survive_kill_and_restart(
        self, restartable, bench_path
    ):
        # Regression: a completed job's progress used to replay as
        # completed_runs == 0 after a restart even though its results
        # were restored.
        spec = JobSpec(
            circuit=str(bench_path),
            config=EstimatorConfig(max_hyper_samples=8),
            seed=4,
            num_runs=3,
            population_size=400,
        )
        server = start_server(restartable)
        try:
            client = Client(server.url)
            job = client.submit(spec)
            status = client.wait(job["id"], timeout=60)
            assert status["completed_runs"] == 3
            payload = client.result_payload(job["id"])
        finally:
            server.stop()

        server = start_server(restartable)  # killed and restarted
        try:
            client = Client(server.url)
            status = client.status(job["id"])
            assert status["state"] == JobState.COMPLETED
            assert status["completed_runs"] == 3  # was 0 before the fix
            assert status["total_runs"] == 3
            assert server.store.requeued_ids == []
            assert client.result_payload(job["id"]) == payload
        finally:
            server.stop()

    def test_multi_run_job_reports_run_progress(self, restartable, bench_path):
        spec = self.make_spec(bench_path)
        server = start_server(restartable)
        try:
            client = Client(server.url)
            job = client.submit(spec)
            status = client.wait(job.get("id"), timeout=60)
            assert status["state"] == JobState.COMPLETED
            assert status["completed_runs"] == self.NUM_RUNS
            assert status["total_runs"] == self.NUM_RUNS
            assert len(client.results(job["id"])) == self.NUM_RUNS
        finally:
            server.stop()

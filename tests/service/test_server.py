"""HTTP lifecycle tests: parity, errors, cancellation, metrics."""

from __future__ import annotations

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.api import EstimatorConfig, build_population
from repro.errors import ServiceError
from repro.estimation.mc_estimator import MaxPowerEstimator
from repro.service.jobs import JobSpec, JobState


def long_spec(bench_path) -> JobSpec:
    """A job that cannot converge quickly (cancellation target)."""
    return JobSpec(
        circuit=str(bench_path),
        config=EstimatorConfig(error=1e-9, max_hyper_samples=200_000),
        seed=1,
        population_size=0,  # streaming: never runs out of units
    )


def wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


class TestBasics:
    def test_healthz(self, service):
        _server, client = service
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert set(health["jobs"]) == set(JobState.ALL)

    def test_submit_poll_result_parity_with_in_process_run(
        self, service, quick_spec
    ):
        _server, client = service
        job = client.submit(quick_spec)
        status = client.wait(job["id"], timeout=30)
        assert status["state"] == JobState.COMPLETED

        via_service = client.result(job["id"])
        population = build_population(
            quick_spec.circuit,
            population_size=quick_spec.population_size,
            seed=quick_spec.seed,
        )
        estimator = MaxPowerEstimator.from_config(population, quick_spec.config)
        in_process = estimator.run(
            rng=np.random.default_rng(quick_spec.seed + 1)
        )
        assert via_service.to_dict() == in_process.to_dict()

        # The served trajectory mirrors the run: one entry per k, ending
        # at the converged CI half-width.
        trajectory = status["trajectory"]
        assert len(trajectory) == in_process.k
        assert trajectory[-1]["cumulative_units"] == in_process.units_used
        assert trajectory[-1]["rel_half_width"] == pytest.approx(
            in_process.rel_half_width
        )

    def test_list_and_state_filter(self, service, quick_spec):
        _server, client = service
        job = client.submit(quick_spec)
        client.wait(job["id"], timeout=30)
        listed = client.jobs()
        assert job["id"] in {j["id"] for j in listed}
        completed = client.jobs(state="completed")
        assert job["id"] in {j["id"] for j in completed}
        assert client.jobs(state="failed") == []


class TestErrorMapping:
    def test_unknown_job_404(self, service):
        _server, client = service
        with pytest.raises(ServiceError) as exc:
            client.status("job-999999-dead")
        assert exc.value.status == 404

    def test_unknown_route_404(self, service):
        _server, client = service
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/v2/jobs")
        assert exc.value.status == 404

    def test_malformed_body_400(self, service):
        server, _client = service
        request = urllib.request.Request(
            server.url + "/v1/jobs", method="POST", data=b"not json"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request)
        assert exc.value.code == 400

    def test_spec_without_circuit_400(self, service):
        _server, client = service
        with pytest.raises(ServiceError) as exc:
            client.submit({"seed": 3})
        assert exc.value.status == 400
        assert "circuit" in str(exc.value)

    def test_invalid_spec_field_400(self, service):
        _server, client = service
        with pytest.raises(ServiceError) as exc:
            client.submit({"circuit": "c432", "num_runs": 0})
        assert exc.value.status == 400

    def test_bad_state_filter_400(self, service):
        _server, client = service
        with pytest.raises(ServiceError) as exc:
            client.jobs(state="bogus")
        assert exc.value.status == 400

    def test_result_of_unfinished_job_409(self, service, bench_path):
        _server, client = service
        job = client.submit(long_spec(bench_path))
        try:
            with pytest.raises(ServiceError) as exc:
                client.results(job["id"])
            assert exc.value.status == 409
        finally:
            client.cancel(job["id"])
            client.wait(job["id"], timeout=30)

    def test_cancel_of_finished_job_409(self, service, quick_spec):
        _server, client = service
        job = client.submit(quick_spec)
        client.wait(job["id"], timeout=30)
        with pytest.raises(ServiceError) as exc:
            client.cancel(job["id"])
        assert exc.value.status == 409


class TestCancellation:
    def test_running_job_cancels_mid_convergence(self, service, bench_path):
        _server, client = service
        job = client.submit(long_spec(bench_path))
        # Wait until it is demonstrably running (trajectory advancing).
        wait_for(lambda: len(client.status(job["id"])["trajectory"]) >= 3)
        cancelled = client.cancel(job["id"])
        assert cancelled["cancel_requested"] is True
        status = client.wait(job["id"], timeout=30)
        assert status["state"] == JobState.CANCELLED
        with pytest.raises(ServiceError) as exc:
            client.results(job["id"])
        assert exc.value.status == 409


class TestMetrics:
    def test_job_state_gauges_always_exported(self, service, quick_spec):
        _server, client = service
        job = client.submit(quick_spec)
        client.wait(job["id"], timeout=30)
        text = client.metrics()
        for state in JobState.ALL:
            assert f'repro_service_jobs{{state="{state}"}}' in text
        assert 'repro_service_jobs{state="completed"} 1' in text
        assert "repro_service_jobs_finished_total" in text
        assert "repro_service_job_seconds" in text


class TestMemoization:
    def test_identical_spec_served_from_memo_bit_identical(
        self, service, quick_spec
    ):
        from repro.obs.metrics import get_registry

        _server, client = service
        get_registry().reset()  # count this test's jobs only
        first = client.submit(quick_spec)
        client.wait(first["id"], timeout=30)
        first_payload = client.result_payload(first["id"])

        again = client.submit(quick_spec)
        status = client.wait(again["id"], timeout=30)
        assert status["state"] == JobState.COMPLETED
        assert status["memo_hit"] is True
        again_payload = client.result_payload(again["id"])
        assert again_payload["results"] == first_payload["results"]

        # Memoized-not-recomputed: exactly one job went through the
        # worker pool, and the memo counter recorded the second.
        text = client.metrics()
        assert "repro_service_memo_hits 1" in text
        assert (
            'repro_service_jobs_finished_total{state="completed"} 1' in text
        )
        assert 'repro_service_jobs{state="completed"} 2' in text


class TestConcurrency:
    def test_eight_concurrent_submissions_all_complete_deterministically(
        self, service, bench_path
    ):
        _server, client = service
        config = EstimatorConfig(max_hyper_samples=10)
        jobs = {}
        for seed in range(8):
            spec = JobSpec(
                circuit=str(bench_path),
                config=config,
                seed=seed,
                population_size=300,
            )
            jobs[seed] = client.submit(spec)["id"]
        for seed, job_id in jobs.items():
            status = client.wait(job_id, timeout=60)
            assert status["state"] == JobState.COMPLETED, status["error"]
        # Spot-check parity on two of them.
        for seed in (0, 7):
            population = build_population(
                str(bench_path), population_size=300, seed=seed
            )
            expected = MaxPowerEstimator.from_config(population, config).run(
                rng=np.random.default_rng(seed + 1)
            )
            served = client.result(jobs[seed])
            assert served.to_dict() == expected.to_dict()

    def test_ids_remain_unique_under_concurrent_submission(
        self, service, quick_spec
    ):
        import threading

        _server, client = service
        ids = []
        lock = threading.Lock()

        def submit():
            job = client.submit(quick_spec)
            with lock:
                ids.append(job["id"])

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(ids)) == 8
        for job_id in ids:
            assert client.wait(job_id, timeout=60)["state"] == JobState.COMPLETED

"""Admission control, the SSE event stream, and client resilience.

Queue-depth tests stop the server's worker pool first, so submitted
jobs stay queued and the bound is exercised deterministically instead
of racing worker claims.  SSE payloads are distinguishable from polled
ones by their ``event``/``schema`` keys, which is how these tests prove
which transport :meth:`Client.stream` actually used.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.schemas import SERVICE_EVENTS_SCHEMA
from repro.service import Client, JobServer
from repro.service.client import _TERMINAL


def spec_dict(quick_spec, **overrides):
    payload = quick_spec.to_dict()
    payload.update(overrides)
    return payload


class TestAdmissionControl:
    def test_queue_full_rejected_with_retry_after(self, fabric, quick_spec):
        server = fabric(workers=1, max_queue_depth=1, memo=False)
        server.pool.stop()  # nothing claims: submits stay queued
        client = Client(server.url, timeout=10.0)
        client.submit(spec_dict(quick_spec, seed=1))
        with pytest.raises(ServiceError, match="queue full") as exc_info:
            client.submit(spec_dict(quick_spec, seed=2))
        assert exc_info.value.status == 429
        assert exc_info.value.retry_after >= 1
        assert 'reason="queue_full"' in client.metrics()
        assert "service_queue_limit 1" in client.metrics()
        assert client.health()["queue_limit"] == 1

    def test_rate_limit_rejects_burst(self, fabric, quick_spec):
        server = fabric(workers=1, rate_limit=0.001, rate_burst=1)
        client = Client(server.url, timeout=10.0)
        client.submit(spec_dict(quick_spec, seed=1))  # spends the token
        with pytest.raises(ServiceError, match="rate limit") as exc_info:
            client.submit(spec_dict(quick_spec, seed=2))
        assert exc_info.value.status == 429
        # The bucket refills at 0.001/s: the hint reflects the real wait.
        assert exc_info.value.retry_after >= 100
        assert 'reason="rate_limited"' in client.metrics()

    def test_tenant_quota_isolates_tenants(self, fabric, quick_spec):
        server = fabric(workers=1, tenant_quota=1, memo=False)
        server.pool.stop()
        alice = Client(server.url, timeout=10.0, api_key="alice")
        bob = Client(server.url, timeout=10.0, api_key="bob")
        anon = Client(server.url, timeout=10.0)
        alice.submit(spec_dict(quick_spec, seed=1))
        with pytest.raises(ServiceError, match="quota") as exc_info:
            alice.submit(spec_dict(quick_spec, seed=2))
        assert exc_info.value.status == 429
        # Other tenants (and anonymous) are unaffected by alice's quota.
        bob.submit(spec_dict(quick_spec, seed=3))
        anon.submit(spec_dict(quick_spec, seed=4))

    def test_healthz_surfaces_fabric_config(self, fabric):
        server = fabric(
            workers=1, max_queue_depth=7, rate_limit=2.0,
            tenant_quota=3, lease_ttl=12.0, replica_id="edge-1",
        )
        health = Client(server.url, timeout=10.0).health()
        assert health["queue_limit"] == 7
        assert health["rate_limit_per_second"] == 2.0
        assert health["tenant_quota"] == 3
        assert health["lease_ttl_seconds"] == 12.0
        assert health["replica_id"] == "edge-1"

    def test_job_payloads_never_echo_api_key(self, fabric, quick_spec):
        # The tenant is a credential (the raw X-API-Key header) and the
        # status endpoints are unauthenticated: no job payload may ever
        # carry it back out.
        server = fabric(workers=1, memo=False)
        server.pool.stop()  # keep the job queued and inspectable
        client = Client(server.url, timeout=10.0, api_key="sk-secret")
        submitted = client.submit(spec_dict(quick_spec, seed=1))
        status = client.status(submitted["id"])
        for payload in (submitted, status):
            assert "tenant" not in payload
            assert "sk-secret" not in json.dumps(payload)

    def test_rate_buckets_stay_bounded_under_key_cycling(
        self, fabric, monkeypatch
    ):
        # The bucket map is keyed by the raw X-API-Key header: a client
        # cycling random keys must not grow server memory without bound.
        import repro.service.server as server_mod

        monkeypatch.setattr(server_mod, "MAX_RATE_BUCKETS", 8)
        server = fabric(workers=1, rate_limit=1000.0, rate_burst=1000)
        for i in range(50):
            server.admit(f"attacker-key-{i}")
        assert len(server._buckets) <= 8
        # The hottest key survives the prune with its spend intact.
        assert "attacker-key-49" in server._buckets

    def test_rate_bucket_prune_drops_refilled_entries_first(self, fabric):
        server = fabric(workers=1, rate_limit=10.0, rate_burst=5)
        server.admit("old-tenant")
        # Rewind the idle bucket past its refill horizon (burst/rate =
        # 0.5 s): it is indistinguishable from a fresh one, so pruning
        # it is semantically free.
        tokens, last = server._buckets["old-tenant"]
        server._buckets["old-tenant"] = (tokens, last - 1.0)
        with server._admission_lock:
            server._prune_buckets_locked(time.monotonic())
        assert "old-tenant" not in server._buckets

    def test_unlimited_by_default(self, fabric, quick_spec):
        server = fabric(workers=1, memo=False)
        server.pool.stop()
        client = Client(server.url, timeout=10.0)
        for seed in range(5):
            client.submit(spec_dict(quick_spec, seed=seed))
        assert client.health()["queue_depth"] == 5
        assert client.health()["queue_limit"] is None


class TestEventStream:
    def test_stream_uses_sse_and_ends_terminal(self, service, quick_spec):
        _, client = service
        job = client.submit(quick_spec)
        statuses = list(client.stream(job["id"], timeout=30))
        assert statuses, "stream yielded nothing"
        assert statuses[-1]["state"] == "completed"
        # Every payload came off the SSE wire (polled dicts have no
        # event/schema keys) and is schema-stamped.
        assert all(s["schema"] == SERVICE_EVENTS_SCHEMA for s in statuses)
        assert all(s["event"] in ("state", "progress", "run") for s in statuses)
        # Progress is monotone: the trajectory only ever grows.
        lengths = [len(s["trajectory"]) for s in statuses]
        assert lengths == sorted(lengths)
        assert lengths[-1] > 0

    def test_stream_falls_back_to_polling(
        self, service, quick_spec, monkeypatch
    ):
        _, client = service
        # An older server: no /events endpoint at all.
        monkeypatch.setattr(Client, "_open_events", lambda self, path: None)
        job = client.submit(quick_spec)
        statuses = list(client.stream(job["id"], timeout=30))
        assert statuses[-1]["state"] == "completed"
        assert all("event" not in s for s in statuses)

    def test_stream_unknown_job_raises_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as exc_info:
            list(client.stream("job-does-not-exist", timeout=10))
        assert exc_info.value.status == 404

    def test_events_endpoint_speaks_sse(self, service, quick_spec):
        _, client = service
        job = client.submit(quick_spec)
        response = client._open_events(f"/v1/jobs/{job['id']}/events")
        try:
            assert response.headers.get_content_type() == "text/event-stream"
            payloads = []
            for payload in client._parse_sse(response):
                payloads.append(payload)
                if payload["state"] in _TERMINAL:
                    break
        finally:
            response.close()
        assert payloads[0]["id"] == job["id"]
        assert payloads[-1]["state"] == "completed"


class TestClientResilience:
    def test_status_retries_through_replica_restart(self, fabric, quick_spec):
        server = fabric("state", workers=1)
        client = Client(server.url, timeout=10.0)
        job = client.submit(quick_spec)
        client.wait(job["id"], timeout=30)  # durable in jobs.db
        port = server.port
        server.stop()

        def relaunch():
            time.sleep(0.6)
            fabric("state", workers=1, port=port)

        restarter = threading.Thread(target=relaunch)
        restarter.start()
        try:
            # First attempts hit a dead port; the retry/backoff window
            # spans the restart, and the new replica serves the answer.
            status = client.status(job["id"])
        finally:
            restarter.join()
        assert status["state"] == "completed"

    def test_retries_exhausted_raise_service_error(self):
        client = Client(
            "http://127.0.0.1:9", timeout=0.5, retries=1, retry_backoff=0.01
        )
        with pytest.raises(ServiceError, match="is the service running"):
            client.status("whatever")

    def test_submit_is_never_retried(self, quick_spec):
        attempts = []

        class CountingClient(Client):
            def _urlopen(self, request, retryable):
                attempts.append(retryable)
                return super()._urlopen(request, retryable)

        client = CountingClient(
            "http://127.0.0.1:9", timeout=0.5, retries=3, retry_backoff=0.01
        )
        with pytest.raises(ServiceError):
            client.submit(quick_spec)
        assert attempts == [False]  # one transport call, not retried

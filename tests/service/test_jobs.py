"""Job model and durable store: lifecycle, queue, event-log replay."""

from __future__ import annotations

import json

import pytest

from repro.api import EstimatorConfig
from repro.errors import ConfigError
from repro.estimation.result import EstimationResult
from repro.service.jobs import JobSpec, JobState, JobStore


def make_spec(**overrides) -> JobSpec:
    base = dict(circuit="c432", config=EstimatorConfig(), population_size=500)
    base.update(overrides)
    return JobSpec(**base)


def fake_result(estimate: float = 1.0) -> EstimationResult:
    return EstimationResult(
        estimate=estimate,
        interval=None,
        converged=True,
        error_bound=0.05,
        confidence=0.9,
        population_name="fake",
    )


class TestJobSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"circuit": "  "},
            {"num_runs": 0},
            {"population_size": -5},
            {"sim_mode": "bogus"},
            {"frequency_mhz": 0.0},
            {"activity": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            make_spec(**kwargs)


class TestJobStore:
    def test_submit_assigns_unique_queued_ids(self, tmp_path):
        store = JobStore(tmp_path)
        jobs = [store.submit(make_spec()) for _ in range(5)]
        assert len({job.id for job in jobs}) == 5
        assert all(job.state == JobState.QUEUED for job in jobs)
        assert store.counts()[JobState.QUEUED] == 5

    def test_claim_is_fifo_and_marks_running(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.submit(make_spec(seed=1))
        store.submit(make_spec(seed=2))
        claimed = store.claim_next(timeout=0.01)
        assert claimed.id == first.id
        assert claimed.state == JobState.RUNNING
        assert claimed.started_at is not None

    def test_claim_times_out_empty(self, tmp_path):
        assert JobStore(tmp_path).claim_next(timeout=0.01) is None

    def test_cancel_queued_job_settles_immediately(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(make_spec())
        store.request_cancel(job.id)
        assert job.state == JobState.CANCELLED
        assert store.claim_next(timeout=0.01) is None

    def test_cancel_terminal_job_conflicts(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(make_spec())
        store.claim_next(timeout=0.01)
        store.mark_completed(job, [fake_result()])
        with pytest.raises(ConfigError, match="already"):
            store.request_cancel(job.id)

    def test_unknown_job_raises_key_error(self, tmp_path):
        with pytest.raises(KeyError):
            JobStore(tmp_path).request_cancel("job-999999-dead")

    def test_list_filters_by_state(self, tmp_path):
        store = JobStore(tmp_path)
        done = store.submit(make_spec(seed=1))
        store.submit(make_spec(seed=2))
        store.claim_next(timeout=0.01)
        store.mark_completed(done, [fake_result()])
        assert [j.id for j in store.list(state=JobState.COMPLETED)] == [done.id]
        assert len(store.list()) == 2

    def test_status_dict_is_versioned_and_json_able(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(make_spec())
        payload = json.loads(json.dumps(job.status_dict()))
        assert payload["schema_version"]
        assert payload["spec"]["circuit"] == "c432"
        assert payload["state"] == JobState.QUEUED

    def test_status_dict_never_echoes_tenant_credential(self, tmp_path):
        # The tenant is the raw X-API-Key header, and status/list/SSE
        # are unauthenticated: the credential must never appear in any
        # serialized job payload.
        store = JobStore(tmp_path)
        job = store.submit(make_spec(), tenant="sk-super-secret")
        assert job.tenant == "sk-super-secret"  # kept for quota checks
        payload = json.dumps(job.status_dict())
        assert "tenant" not in json.loads(payload)
        assert "sk-super-secret" not in payload


class TestReplay:
    def test_completed_jobs_survive_restart_with_results(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(make_spec())
        store.claim_next(timeout=0.01)
        store.mark_completed(job, [fake_result(2.5)])
        store.close()

        reborn = JobStore(tmp_path)
        again = reborn.get(job.id)
        assert again.state == JobState.COMPLETED
        assert again.results[0].estimate == 2.5
        assert reborn.requeued_ids == []

    def test_unfinished_jobs_requeue_in_submission_order(self, tmp_path):
        store = JobStore(tmp_path)
        queued = store.submit(make_spec(seed=1))
        running = store.submit(make_spec(seed=2))
        failed = store.submit(make_spec(seed=3))
        # Make the *second* job the running one, the third failed.
        claimed = store.claim_next(timeout=0.01)
        assert claimed.id == queued.id
        store.mark_completed(claimed, [fake_result()])
        store.claim_next(timeout=0.01)  # running
        claimed3 = store.claim_next(timeout=0.01)
        store.mark_failed(claimed3, "boom")
        store.close()

        reborn = JobStore(tmp_path)
        assert set(reborn.requeued_ids) == {running.id}
        assert reborn.get(running.id).state == JobState.QUEUED
        assert reborn.get(failed.id).state == JobState.FAILED
        assert reborn.get(failed.id).error == "boom"

    def test_cancel_requested_midflight_settles_as_cancelled(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(make_spec())
        store.claim_next(timeout=0.01)
        job.cancel_event.set()
        store._append(  # what request_cancel writes for a running job
            {"event": "cancel_requested", "id": job.id, "t": 1.0}
        )
        store.close()

        reborn = JobStore(tmp_path)
        assert reborn.get(job.id).state == JobState.CANCELLED
        assert reborn.requeued_ids == []

    def test_torn_tail_is_skipped_and_repaired(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(make_spec())
        store.close()
        log = tmp_path / "jobs.jsonl"
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"event": "state", "id": "' + job.id)  # torn

        reborn = JobStore(tmp_path)
        assert reborn.get(job.id).state == JobState.QUEUED
        second = reborn.submit(make_spec(seed=9))
        reborn.close()
        # Every line after the repair parses cleanly except the torn one.
        bad = 0
        for line in log.read_text().splitlines():
            if not line.strip():
                continue
            try:
                json.loads(line)
            except json.JSONDecodeError:
                bad += 1
        assert bad == 1
        third = JobStore(tmp_path)
        assert third.get(second.id) is not None

    def test_id_counter_continues_after_restart(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.submit(make_spec())
        store.close()
        reborn = JobStore(tmp_path)
        second = reborn.submit(make_spec())
        assert int(second.id.split("-")[1]) == int(first.id.split("-")[1]) + 1


class TestReplayRegressions:
    """Regression tests for the replay bugs the JSONL log papered over."""

    def test_replay_restores_completed_runs(self, tmp_path):
        # completed_runs used to replay as 0 even with results restored,
        # so GET /v1/jobs/{id} after a restart reported no progress.
        store = JobStore(tmp_path)
        job = store.submit(make_spec(num_runs=3))
        store.claim_next(timeout=0.01)
        store.mark_completed(job, [fake_result(v) for v in (1.0, 2.0, 3.0)])
        store.close()

        reborn = JobStore(tmp_path)
        again = reborn.get(job.id)
        assert again.completed_runs == 3
        assert again.status_dict()["completed_runs"] == 3

    def test_crash_between_result_and_state_events_stays_completed(
        self, tmp_path
    ):
        # mark_completed appends a result event then a state event; a
        # crash between the two used to replay as "has results but not
        # terminal" -> requeued -> the finished work re-ran and its
        # results were overwritten.
        store = JobStore(tmp_path)
        job = store.submit(make_spec())
        store.claim_next(timeout=0.01)
        store.mark_completed(job, [fake_result(2.5)])
        store.close()
        log = tmp_path / "jobs.jsonl"
        lines = log.read_text().splitlines(keepends=True)
        last = json.loads(lines[-1])
        assert last["event"] == "state" and last["state"] == JobState.COMPLETED
        log.write_text("".join(lines[:-1]))  # the state event never landed

        reborn = JobStore(tmp_path)
        again = reborn.get(job.id)
        assert again.state == JobState.COMPLETED
        assert again.results[0].estimate == 2.5
        assert again.completed_runs == 1
        assert reborn.requeued_ids == []
        assert reborn.claim_next(timeout=0.01) is None

    def test_claim_skips_cancelled_head_and_claims_next_in_one_call(
        self, tmp_path
    ):
        # A cancelled head-of-queue job used to make claim_next return
        # None, idling the worker slot for a full poll interval.
        store = JobStore(tmp_path)
        first = store.submit(make_spec(seed=1))
        second = store.submit(make_spec(seed=2))
        first.cancel_event.set()  # cancelled while queued, unacknowledged
        claimed = store.claim_next(timeout=0.01)
        assert claimed is not None and claimed.id == second.id
        assert claimed.state == JobState.RUNNING
        assert first.state == JobState.CANCELLED

    def test_counter_counts_jobs_dropped_for_unreadable_specs(self, tmp_path):
        # A job whose spec no longer loads is dropped from replay, but
        # its id must still advance the counter or fresh ids collide.
        store = JobStore(tmp_path)
        job = store.submit(make_spec())
        store.close()
        log = tmp_path / "jobs.jsonl"
        lines = []
        for line in log.read_text().splitlines():
            event = json.loads(line)
            if event.get("event") == "submitted":
                event["spec"] = {"schema_version": "1.0"}  # circuit lost
            lines.append(json.dumps(event))
        log.write_text("\n".join(lines) + "\n")

        reborn = JobStore(tmp_path)
        assert reborn.get(job.id) is None  # dropped, as before
        fresh = reborn.submit(make_spec())
        assert int(fresh.id.split("-")[1]) == int(job.id.split("-")[1]) + 1

    def test_counts_tolerates_unknown_state_strings(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(make_spec())
        job.state = "zombie"  # e.g. a corrupt log line replayed into memory
        counts = store.counts()  # KeyError before the fix
        assert counts["zombie"] == 1
        assert counts[JobState.QUEUED] == 0

"""SQLite job store: lifecycle, memoization, atomic claims, migration.

The store must behave exactly like the legacy JSONL
:class:`~repro.service.jobs.JobStore` for every lifecycle operation
(the migration tests assert ``status_dict()`` parity replaying the same
log through both), then go beyond it: content-keyed result memoization,
tear-free terminal transitions, and compare-and-swap work claiming.
"""

from __future__ import annotations

import json
import shutil
import sqlite3

import pytest

from repro.api import EstimatorConfig
from repro.errors import ConfigError
from repro.obs.metrics import get_registry
from repro.schemas import fingerprint_job_spec
from repro.service.jobs import JobSpec, JobState, JobStore
from repro.service.store import SQLiteJobStore

from .test_jobs import fake_result, make_spec


@pytest.fixture
def metrics():
    """Enabled (and afterwards restored) global metrics registry."""
    registry = get_registry()
    was_enabled = registry.enabled
    registry.enable()
    registry.reset()
    yield registry
    if not was_enabled:
        registry.disable()
    registry.reset()


class TestLifecycle:
    def test_submit_claim_complete_roundtrip(self, tmp_path):
        store = SQLiteJobStore(tmp_path)
        job = store.submit(make_spec())
        assert job.state == JobState.QUEUED
        claimed = store.claim_next(timeout=0.01, owner="worker-0")
        assert claimed.id == job.id
        assert claimed.state == JobState.RUNNING
        assert claimed.lease_owner == "worker-0"
        store.mark_completed(job, [fake_result(2.5)])
        assert job.state == JobState.COMPLETED
        assert job.completed_runs == 1
        assert store.counts()[JobState.COMPLETED] == 1

    def test_claim_is_fifo(self, tmp_path):
        store = SQLiteJobStore(tmp_path)
        first = store.submit(make_spec(seed=1))
        store.submit(make_spec(seed=2))
        assert store.claim_next(timeout=0.01).id == first.id

    def test_claim_times_out_empty(self, tmp_path):
        assert SQLiteJobStore(tmp_path).claim_next(timeout=0.01) is None

    def test_claim_skips_cancelled_head_in_one_call(self, tmp_path):
        store = SQLiteJobStore(tmp_path)
        first = store.submit(make_spec(seed=1))
        second = store.submit(make_spec(seed=2))
        first.cancel_event.set()  # cancelled while queued, unacknowledged
        claimed = store.claim_next(timeout=0.01)
        assert claimed is not None and claimed.id == second.id
        assert first.state == JobState.CANCELLED

    def test_cancel_queued_job_settles_immediately(self, tmp_path):
        store = SQLiteJobStore(tmp_path)
        job = store.submit(make_spec())
        store.request_cancel(job.id)
        assert job.state == JobState.CANCELLED
        assert store.claim_next(timeout=0.01) is None
        with pytest.raises(ConfigError, match="already"):
            store.request_cancel(job.id)
        with pytest.raises(KeyError):
            store.request_cancel("job-999999-dead")

    def test_status_dict_matches_legacy_fields(self, tmp_path):
        job = SQLiteJobStore(tmp_path / "a").submit(make_spec())
        legacy = JobStore(tmp_path / "b").submit(make_spec())
        assert set(job.status_dict()) == set(legacy.status_dict())

    def test_terminal_transition_is_one_transaction(self, tmp_path):
        # The result row and the terminal state land atomically: at no
        # commit point can the database hold results beside a
        # non-terminal state (the JSONL log's torn-tail failure mode).
        store = SQLiteJobStore(tmp_path)
        job = store.submit(make_spec())
        store.claim_next(timeout=0.01)
        store.mark_completed(job, [fake_result(1.5)])
        with sqlite3.connect(tmp_path / "jobs.db") as probe:
            state, payload = probe.execute(
                "SELECT j.state, r.payload FROM jobs j "
                "JOIN results r ON r.job_id = j.id WHERE j.id = ?",
                (job.id,),
            ).fetchone()
        assert state == JobState.COMPLETED
        assert json.loads(payload)[0]["estimate"] == 1.5


class TestRestart:
    def test_completed_job_survives_restart_with_progress(self, tmp_path):
        store = SQLiteJobStore(tmp_path)
        job = store.submit(make_spec(num_runs=3))
        store.claim_next(timeout=0.01)
        store.mark_completed(job, [fake_result(v) for v in (1.0, 2.0, 3.0)])
        store.close()

        reborn = SQLiteJobStore(tmp_path)
        again = reborn.get(job.id)
        assert again.state == JobState.COMPLETED
        assert [r.estimate for r in again.results] == [1.0, 2.0, 3.0]
        assert again.completed_runs == 3
        assert reborn.requeued_ids == []

    def test_unfinished_jobs_requeue_with_lease_cleared(self, tmp_path):
        # Stable replica id = crash-restart of the same replica: its own
        # leases are reclaimed immediately.  (A *different* replica's
        # live lease is left alone — see test_fabric.py.)
        store = SQLiteJobStore(tmp_path, replica_id="r1")
        queued = store.submit(make_spec(seed=1))
        store.claim_next(timeout=0.01, owner="worker-0")  # dies mid-run
        store.close()

        reborn = SQLiteJobStore(tmp_path, replica_id="r1")
        job = reborn.get(queued.id)
        assert job.state == JobState.QUEUED
        assert job.started_at is None and job.lease_owner is None
        assert reborn.requeued_ids == [queued.id]

    def test_cancel_requested_midflight_settles_as_cancelled(self, tmp_path):
        store = SQLiteJobStore(tmp_path)
        job = store.submit(make_spec())
        store.claim_next(timeout=0.01)
        store.request_cancel(job.id)  # worker never acknowledged
        store.close()

        reborn = SQLiteJobStore(tmp_path)
        assert reborn.get(job.id).state == JobState.CANCELLED
        assert reborn.requeued_ids == []

    def test_id_counter_continues_after_restart(self, tmp_path):
        store = SQLiteJobStore(tmp_path)
        first = store.submit(make_spec())
        store.close()
        second = SQLiteJobStore(tmp_path).submit(make_spec())
        assert int(second.id.split("-")[1]) == int(first.id.split("-")[1]) + 1


class TestMemoization:
    def complete_one(self, store, spec):
        job = store.submit(spec)
        store.claim_next(timeout=0.01)
        store.mark_completed(job, [fake_result(3.25)])
        return job

    def test_identical_spec_settles_from_memo(self, tmp_path, metrics):
        store = SQLiteJobStore(tmp_path)
        first = self.complete_one(store, make_spec())
        again = store.submit(make_spec())
        assert again.state == JobState.COMPLETED
        assert again.memo_hit is True
        assert again.completed_runs == 1
        # Bit-identical payload, and the queue never saw the job.
        assert [r.to_dict() for r in again.results] == [
            r.to_dict() for r in first.results
        ]
        assert store.claim_next(timeout=0.01) is None
        assert metrics.counter("service_memo_hits").value == 1

    def test_memo_hits_survive_restart(self, tmp_path, metrics):
        store = SQLiteJobStore(tmp_path)
        first = self.complete_one(store, make_spec())
        store.close()
        reborn = SQLiteJobStore(tmp_path)
        again = reborn.submit(make_spec())
        assert again.memo_hit is True
        assert [r.to_dict() for r in again.results] == [
            r.to_dict() for r in first.results
        ]

    def test_different_seed_misses(self, tmp_path, metrics):
        store = SQLiteJobStore(tmp_path)
        self.complete_one(store, make_spec(seed=1))
        assert store.submit(make_spec(seed=2)).state == JobState.QUEUED
        assert metrics.counter("service_memo_hits").value == 0

    def test_non_semantic_config_knobs_do_not_key(self, tmp_path, metrics):
        # workers/retries/task_timeout change how a result is computed,
        # never what it is — exactly the --resume config-key exclusions.
        semantic = make_spec(config=EstimatorConfig(max_hyper_samples=10))
        tuned = make_spec(
            config=EstimatorConfig(
                max_hyper_samples=10, workers=4, retries=2, task_timeout=30.0
            )
        )
        assert fingerprint_job_spec(semantic) == fingerprint_job_spec(tuned)
        store = SQLiteJobStore(tmp_path)
        self.complete_one(store, semantic)
        assert store.submit(tuned).memo_hit is True

    def test_no_memo_store_always_runs(self, tmp_path, metrics):
        store = SQLiteJobStore(tmp_path, memo=False)
        self.complete_one(store, make_spec())
        again = store.submit(make_spec())
        assert again.state == JobState.QUEUED
        assert again.memo_hit is False
        assert metrics.counter("service_memo_hits").value == 0

    def test_failed_and_cancelled_jobs_never_memoize(self, tmp_path, metrics):
        store = SQLiteJobStore(tmp_path)
        failed = store.submit(make_spec())
        store.claim_next(timeout=0.01)
        store.mark_failed(failed, "boom")
        assert store.submit(make_spec()).state == JobState.QUEUED


def build_legacy_log(state_dir, torn_tail=False, cancelled_queued=False):
    """A legacy jobs.jsonl with one completed, one mid-flight job (plus
    optional torn tail / cancelled-while-queued variants)."""
    store = JobStore(state_dir)
    done = store.submit(make_spec(seed=1))
    store.claim_next(timeout=0.01)
    store.mark_completed(done, [fake_result(4.5)])
    interrupted = store.submit(make_spec(seed=2))
    store.claim_next(timeout=0.01)  # running when the process dies
    if cancelled_queued:
        third = store.submit(make_spec(seed=3))
        third.cancel_event.set()
        store._append(
            {"event": "cancel_requested", "id": third.id, "t": 9.0}
        )
    store.close()
    if torn_tail:
        with open(state_dir / "jobs.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"event": "state", "id": "' + interrupted.id)
    return state_dir / "jobs.jsonl"


class TestMigration:
    @pytest.mark.parametrize(
        "variant",
        ["plain", "torn_tail", "cancelled_queued"],
        ids=["legacy-v1-header", "torn-tail", "cancelled-while-queued"],
    )
    def test_migrated_status_is_identical_to_legacy_replay(
        self, tmp_path, variant
    ):
        legacy_dir = tmp_path / "legacy"
        sqlite_dir = tmp_path / "sqlite"
        legacy_dir.mkdir()
        sqlite_dir.mkdir()
        log = build_legacy_log(
            legacy_dir,
            torn_tail=variant == "torn_tail",
            cancelled_queued=variant == "cancelled_queued",
        )
        shutil.copy(log, sqlite_dir / "jobs.jsonl")

        replayed = JobStore(legacy_dir)
        migrated = SQLiteJobStore(sqlite_dir)
        legacy_status = {
            j.id: j.status_dict() for j in replayed.list()
        }
        sqlite_status = {
            j.id: j.status_dict() for j in migrated.list()
        }
        assert sqlite_status == legacy_status
        assert migrated.requeued_ids == replayed.requeued_ids
        assert migrated.migrated_jobs == len(legacy_status)

    def test_log_is_retired_and_never_replayed_twice(self, tmp_path):
        build_legacy_log(tmp_path)
        store = SQLiteJobStore(tmp_path)
        jobs = {j.id for j in store.list()}
        store.close()
        assert not (tmp_path / "jobs.jsonl").exists()
        assert (tmp_path / "jobs.jsonl.migrated").exists()

        reborn = SQLiteJobStore(tmp_path)
        assert reborn.migrated_jobs == 0
        assert {j.id for j in reborn.list()} == jobs

    def test_migrated_results_and_counter_carry_over(self, tmp_path):
        build_legacy_log(tmp_path)
        store = SQLiteJobStore(tmp_path)
        completed = store.list(state=JobState.COMPLETED)
        assert len(completed) == 1
        assert completed[0].results[0].estimate == 4.5
        assert completed[0].completed_runs == 1
        fresh = store.submit(make_spec(seed=9))
        taken = {int(j.id.split("-")[1]) for j in store.list()} - {
            int(fresh.id.split("-")[1])
        }
        assert int(fresh.id.split("-")[1]) == max(taken) + 1

    def test_migrated_completed_job_memoizes(self, tmp_path, metrics):
        # The memo key works across backends: a result computed before
        # the migration serves an identical spec submitted after it.
        build_legacy_log(tmp_path)
        store = SQLiteJobStore(tmp_path)
        again = store.submit(make_spec(seed=1))
        assert again.memo_hit is True
        assert again.results[0].estimate == 4.5
        assert metrics.counter("service_memo_hits").value == 1

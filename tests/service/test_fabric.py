"""Multi-replica job fabric: leases, heartbeats, work stealing.

Two layers of test:

* **Store-level** — two :class:`SQLiteJobStore` instances sharing one
  database play the two replicas, so expiry/steal/commit races are
  driven deterministically (no sleeps racing real worker threads beyond
  the sub-second lease TTLs under test).
* **Service-level** — real :class:`JobServer` replicas sharing a state
  dir: a job claimed by a "killed" replica (its lease left dangling in
  the database) is stolen by the survivor's lease keeper and completes
  with results bit-identical to an in-process run, exactly once.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time

import pytest

from repro.api import estimate
from repro.obs.metrics import get_registry
from repro.service import Client
from repro.service.jobs import JobState
from repro.service.store import SQLiteJobStore
from repro.service.worker import WorkerPool

from .test_jobs import fake_result, make_spec


@pytest.fixture
def metrics():
    """Enabled (and afterwards restored) global metrics registry."""
    registry = get_registry()
    was_enabled = registry.enabled
    registry.enable()
    registry.reset()
    yield registry
    if not was_enabled:
        registry.disable()
    registry.reset()


def committed_results(state_dir, job_id):
    """The job's durable results payload, straight off the database."""
    with sqlite3.connect(state_dir / "jobs.db") as conn:
        row = conn.execute(
            "SELECT payload FROM results WHERE job_id = ?", (job_id,)
        ).fetchone()
    return json.loads(row[0]) if row is not None else None


class TestLeaseLifecycle:
    def test_claim_stamps_lease(self, tmp_path):
        store = SQLiteJobStore(tmp_path, replica_id="r1", lease_ttl=30.0)
        store.submit(make_spec())
        before = time.time()
        job = store.claim_next(timeout=0.01, owner="w0")
        assert job.lease_replica == "r1"
        assert job.lease_expires_at == pytest.approx(before + 30.0, abs=2.0)
        assert store.heartbeat_interval == pytest.approx(10.0)

    def test_renew_extends_expiry_and_prevents_reap(self, tmp_path):
        store = SQLiteJobStore(tmp_path, replica_id="r1", lease_ttl=0.4)
        store.submit(make_spec())
        job = store.claim_next(timeout=0.01, owner="w0")
        first = job.lease_expires_at
        time.sleep(0.25)
        assert store.renew_lease(job) is True
        assert job.lease_expires_at > first
        time.sleep(0.25)  # past the original expiry, not the renewed one
        assert store.reap_expired() == []
        assert job.state == JobState.RUNNING
        assert not job.lease_lost

    def test_two_replicas_never_double_claim(self, tmp_path):
        a = SQLiteJobStore(tmp_path, replica_id="a", lease_ttl=30.0)
        b = SQLiteJobStore(tmp_path, replica_id="b", lease_ttl=30.0)
        a.submit(make_spec())
        assert a.claim_next(timeout=0.01, owner="wa") is not None
        assert b.claim_next(timeout=0.01, owner="wb") is None

    def test_expired_lease_stolen_and_loser_commit_rejected(
        self, tmp_path, metrics
    ):
        dead = SQLiteJobStore(tmp_path, replica_id="dead", lease_ttl=0.15)
        live = SQLiteJobStore(tmp_path, replica_id="live", lease_ttl=30.0)
        submitted = dead.submit(make_spec())
        stale = dead.claim_next(timeout=0.01, owner="wd")
        time.sleep(0.2)  # the dead replica misses every heartbeat

        reclaimed = live.reap_expired()
        assert reclaimed == [submitted.id]
        assert metrics.counter("service_lease_reclaims").value == 1
        stolen = live.claim_next(timeout=0.01, owner="wl")
        assert stolen is not None and stolen.id == submitted.id
        live.mark_completed(stolen, [fake_result(2.0)])

        # The original claimant comes back from the dead: its heartbeat
        # fails, and its own commit attempt must not clobber the winner.
        assert dead.renew_lease(stale) is False
        assert stale.lease_lost
        dead.mark_completed(stale, [fake_result(99.0)])
        payload = committed_results(tmp_path, submitted.id)
        assert len(payload) == 1  # exactly one committed execution
        assert payload[0]["estimate"] == 2.0  # ...and it is the winner's

        fresh = SQLiteJobStore(tmp_path, replica_id="reader", lease_ttl=None)
        final = fresh.get(submitted.id)
        assert final.state == JobState.COMPLETED
        assert final.results[0].estimate == 2.0

    def test_lease_lost_failure_commit_is_noop(self, tmp_path, metrics):
        dead = SQLiteJobStore(tmp_path, replica_id="dead", lease_ttl=0.15)
        live = SQLiteJobStore(tmp_path, replica_id="live", lease_ttl=30.0)
        submitted = dead.submit(make_spec())
        stale = dead.claim_next(timeout=0.01, owner="wd")
        time.sleep(0.2)
        assert live.reap_expired() == [submitted.id]
        dead.mark_failed(stale, "boom from beyond the grave")
        assert stale.lease_lost
        assert live.get(submitted.id).state == JobState.QUEUED
        assert live.get(submitted.id).error is None

    def test_startup_recovery_preserves_live_foreign_lease(self, tmp_path):
        a = SQLiteJobStore(tmp_path, replica_id="r1", lease_ttl=30.0)
        job = a.submit(make_spec())
        a.claim_next(timeout=0.01, owner="wa")

        # A *different* replica booting must not requeue r1's live lease
        # (the bug this PR fixes: recovery used to clobber every running
        # job, re-running work a healthy replica still owned).
        b = SQLiteJobStore(tmp_path, replica_id="r2", lease_ttl=30.0)
        assert b.requeued_ids == []
        assert b.get(job.id).state == JobState.RUNNING

        # The *same* replica restarting reclaims its own leases at once.
        a2 = SQLiteJobStore(tmp_path, replica_id="r1", lease_ttl=30.0)
        assert a2.requeued_ids == [job.id]
        assert a2.get(job.id).state == JobState.QUEUED

    def test_startup_recovery_requeues_expired_foreign_lease(self, tmp_path):
        a = SQLiteJobStore(tmp_path, replica_id="r1", lease_ttl=0.1)
        job = a.submit(make_spec())
        a.claim_next(timeout=0.01, owner="wa")
        time.sleep(0.15)
        b = SQLiteJobStore(tmp_path, replica_id="r2", lease_ttl=30.0)
        assert b.requeued_ids == [job.id]
        assert b.get(job.id).state == JobState.QUEUED

    def test_lease_info_age_clamped_on_clock_step(self, tmp_path):
        store = SQLiteJobStore(tmp_path, replica_id="r1", lease_ttl=30.0)
        store.submit(make_spec())
        store.claim_next(timeout=0.01, owner="w0")
        # Simulate a forward wall-clock step on the claiming host: the
        # job's started_at lands in this host's future.
        with store._tx():
            store._conn.execute(
                "UPDATE jobs SET started_at = ?", (time.time() + 3600,)
            )
        info = store.lease_info()
        assert info["active_leases"] == 1
        assert info["oldest_lease_age_seconds"] == 0.0

    def test_same_process_steal_back_cannot_double_commit(
        self, tmp_path, metrics
    ):
        # The intra-replica race: one store, one shared Job object.  The
        # job's lease expires mid-run, the reaper reclaims it, and the
        # SAME store re-claims it while the old attempt is still
        # unwinding.  The old attempt must stay poisoned (the re-claim
        # used to reset job.lease_lost) and its commit must lose the
        # token CAS (it used to compare against the live lease fields
        # the re-claim had just overwritten).
        store = SQLiteJobStore(tmp_path, replica_id="r1", lease_ttl=0.15)
        submitted = store.submit(make_spec())
        job = store.claim_next(timeout=0.01, owner="w0")
        lease_a = job.lease
        time.sleep(0.2)
        assert store.reap_expired() == [submitted.id]
        assert lease_a.lost  # the reap poisons the expired attempt

        rejob = store.claim_next(timeout=0.01, owner="w1")
        assert rejob is job  # same shared object, by construction
        lease_b = job.lease
        assert lease_b is not lease_a
        assert lease_a.lost  # re-claiming must not un-poison attempt A
        assert not job.lease_lost  # ...while the live attempt is clean

        # Old attempt finishes its orphaned run and tries to commit:
        # the token CAS rejects it even though job.lease_owner and
        # job.lease_replica now describe attempt B on this replica.
        store.mark_completed(job, [fake_result(99.0)], lease=lease_a)
        assert committed_results(tmp_path, submitted.id) is None
        assert store.renew_lease(job, lease_a) is False
        assert store.renew_lease(job, lease_b) is True

        store.mark_completed(job, [fake_result(2.0)], lease=lease_b)
        payload = committed_results(tmp_path, submitted.id)
        assert len(payload) == 1  # exactly one committed execution
        assert payload[0]["estimate"] == 2.0  # ...the live attempt's

    def test_steal_back_resets_progress_counters(self, tmp_path, metrics):
        # A re-claim swaps in a fresh trajectory AND a zeroed run count:
        # status/SSE must report the re-run's progress from scratch, not
        # inherit the orphaned attempt's.
        store = SQLiteJobStore(tmp_path, replica_id="r1", lease_ttl=0.15)
        store.submit(make_spec(num_runs=3))
        job = store.claim_next(timeout=0.01, owner="w0")
        job.completed_runs = 2  # the doomed attempt made progress
        old_trajectory = job.trajectory
        old_trajectory.append({"k": 1})
        time.sleep(0.2)
        store.reap_expired()
        rejob = store.claim_next(timeout=0.01, owner="w1")
        assert rejob is job
        assert job.completed_runs == 0
        assert job.trajectory == [] and job.trajectory is not old_trajectory

    def test_stale_attempt_unwind_keeps_live_attempt_registered(
        self, tmp_path, metrics, monkeypatch
    ):
        # WorkerPool._active bookkeeping: a reaped job re-claimed by
        # another thread of the same pool gets its own registry entry,
        # and the old attempt's cleanup pops only its own — keyed by
        # job id alone, the old unwind used to evict the live entry and
        # starve the re-run of heartbeats.
        store = SQLiteJobStore(tmp_path, replica_id="r1", lease_ttl=0.2)
        pool = WorkerPool(store, num_workers=2)  # not started: driven by hand
        store.submit(make_spec())

        gates = [threading.Event(), threading.Event()]
        started = [threading.Event(), threading.Event()]
        attempt = {"n": 0}

        def fake_run(self, job, lease):
            index = attempt["n"]
            attempt["n"] += 1
            started[index].set()
            assert gates[index].wait(10)
            return [fake_result(float(index))]

        monkeypatch.setattr(WorkerPool, "_run", fake_run)

        def drive(owner):
            job = store.claim_next(timeout=0.5, owner=owner)
            assert job is not None
            pool._execute(job)

        first = threading.Thread(target=drive, args=("w0",), daemon=True)
        first.start()
        assert started[0].wait(10)
        lease_a = next(iter(pool._active.values()))[1]
        time.sleep(0.3)  # the first attempt misses its lease
        store.reap_expired()

        second = threading.Thread(target=drive, args=("w1",), daemon=True)
        second.start()
        assert started[1].wait(10)
        assert len(pool._active) == 2  # both attempts registered

        gates[0].set()  # old attempt unwinds while the re-run is live
        first.join(10)
        leases = [lease for _job, lease in pool._active.values()]
        assert len(leases) == 1 and leases[0] is not lease_a
        assert not leases[0].lost  # the live lease keeps its heartbeats

        gates[1].set()
        second.join(10)
        assert pool._active == {}
        job_id = store.list()[0].id
        payload = committed_results(tmp_path, job_id)
        assert len(payload) == 1
        assert payload[0]["estimate"] == 1.0  # the re-run's commit won
        finished = metrics.counter(
            "service_jobs_finished_total", state="lease_lost"
        )
        assert finished.value == 1

    def test_cross_replica_cancel_via_heartbeat(self, tmp_path):
        a = SQLiteJobStore(tmp_path, replica_id="a", lease_ttl=30.0)
        b = SQLiteJobStore(tmp_path, replica_id="b", lease_ttl=30.0)
        submitted = a.submit(make_spec())
        job = a.claim_next(timeout=0.01, owner="wa")
        b.request_cancel(submitted.id)  # other replica takes the DELETE
        assert not job.cancel_event.is_set()
        assert a.renew_lease(job) is True  # heartbeat folds the flag in
        assert job.cancel_event.is_set()


class TestTwoReplicaService:
    def test_submit_on_one_replica_completes_on_other(
        self, fabric, quick_spec
    ):
        frontend = fabric("shared", workers=1, lease_ttl=30.0)
        frontend.pool.stop()  # frontend-only: accepts jobs, runs nothing
        backend = fabric("shared", workers=1, lease_ttl=30.0)
        assert frontend.replica_id != backend.replica_id

        job = Client(frontend.url, timeout=10.0).submit(quick_spec)
        status = Client(backend.url, timeout=10.0).wait(job["id"], timeout=30)
        assert status["state"] == "completed"

    def test_killed_replica_job_stolen_bit_identical(
        self, fabric, tmp_path, quick_spec
    ):
        # A replica claims the job then dies (kill -9): nothing unwinds,
        # its lease just stops being renewed.  The raw store stands in
        # for the corpse — same database rows a real crash leaves.
        dead = SQLiteJobStore(
            tmp_path / "shared", replica_id="dead", lease_ttl=0.3
        )
        submitted = dead.submit(quick_spec)
        assert dead.claim_next(timeout=0.01, owner="wd") is not None
        dead.close()

        survivor = fabric("shared", workers=1, lease_ttl=0.3)
        client = Client(survivor.url, timeout=10.0)
        status = client.wait(submitted.id, timeout=30)
        assert status["state"] == "completed"

        # Exactly one execution committed results, and the reclaim is
        # visible in the survivor's metrics.
        assert len(committed_results(tmp_path / "shared", submitted.id)) == 1
        assert "service_lease_reclaims 1" in client.metrics()

        # Bit-identical to an in-process run of the same spec: stealing
        # re-runs from scratch under the same seed contract.
        expected = estimate(
            quick_spec.circuit,
            quick_spec.config,
            seed=quick_spec.seed,
            population_size=quick_spec.population_size,
        )
        got = client.result(submitted.id)
        assert got.estimate == expected.estimate
        assert got.to_dict() == expected.to_dict()


class TestAdaptiveOnFabric:
    """``method="auto"`` under the replica-safety contract: the adaptive
    controller's pilot/CV draws live on the same seeded stream as the
    production run, so a steal-and-re-run lands on identical bits."""

    def test_stolen_auto_job_bit_identical(self, fabric, tmp_path, bench_path):
        from repro.api import EstimatorConfig
        from repro.service.jobs import JobSpec

        spec = JobSpec(
            circuit=str(bench_path),
            config=EstimatorConfig(method="auto", max_hyper_samples=10),
            seed=3,
            population_size=400,
        )
        dead = SQLiteJobStore(
            tmp_path / "shared", replica_id="dead", lease_ttl=0.3
        )
        submitted = dead.submit(spec)
        assert dead.claim_next(timeout=0.01, owner="wd") is not None
        dead.close()

        survivor = fabric("shared", workers=1, lease_ttl=0.3)
        client = Client(survivor.url, timeout=10.0)
        status = client.wait(submitted.id, timeout=60)
        assert status["state"] == "completed"
        assert len(committed_results(tmp_path / "shared", submitted.id)) == 1

        expected = estimate(
            spec.circuit,
            spec.config,
            seed=spec.seed,
            population_size=spec.population_size,
        )
        got = client.result(submitted.id)
        assert got.method == "auto"
        assert got.decision is not None
        assert got.to_dict() == expected.to_dict()

"""Service-side batched simulation: invisibly fused, faithfully reported.

The worker pool routes every unit-mode job through the process-wide
:class:`~repro.sim.batch.SimBatcher`.  These tests prove the service
contract around it: results are bit-identical to unbatched in-process
runs — with concurrent jobs racing into shared kernel invocations, and
across a replica steal-back re-run — and the resolved simulation
kernel tier is surfaced on ``/healthz`` and in the shutdown summary.
"""

from __future__ import annotations

import sqlite3
import json

import pytest

from repro.api import EstimatorConfig, estimate
from repro.service import Client
from repro.service.jobs import JobSpec
from repro.service.store import SQLiteJobStore
from repro.sim.compiled import KERNELS


def unit_spec(bench_path, seed=3, **overrides):
    base = dict(
        circuit=str(bench_path),
        config=EstimatorConfig(max_hyper_samples=10),
        seed=seed,
        population_size=400,
        sim_mode="unit",
    )
    base.update(overrides)
    return JobSpec(**base)


def committed_results(state_dir, job_id):
    with sqlite3.connect(state_dir / "jobs.db") as conn:
        row = conn.execute(
            "SELECT payload FROM results WHERE job_id = ?", (job_id,)
        ).fetchone()
    return json.loads(row[0]) if row is not None else None


class TestBatchedServiceBitIdentity:
    def test_concurrent_unit_jobs_bit_identical(self, fabric, bench_path):
        """Eight seeds race through two worker threads; every result
        must equal its solo in-process run exactly (per-job seed
        streams and accounting are untouched by fusion)."""
        server = fabric("state", workers=2, lease_ttl=None)
        client = Client(server.url, timeout=10.0)
        seeds = list(range(8))
        jobs = [client.submit(unit_spec(bench_path, seed=s)) for s in seeds]
        for seed, job in zip(seeds, jobs):
            status = client.wait(job["id"], timeout=60)
            assert status["state"] == "completed"
            expected = estimate(
                str(bench_path),
                EstimatorConfig(max_hyper_samples=10),
                seed=seed,
                population_size=400,
                sim_mode="unit",
            )
            got = client.result(job["id"])
            assert got.estimate == expected.estimate
            assert got.to_dict() == expected.to_dict()

    def test_stolen_unit_job_batched_bit_identical(
        self, fabric, tmp_path, bench_path
    ):
        """Replica steal-back under batching: the survivor re-runs the
        job through its batcher and still lands on identical bits."""
        spec = unit_spec(bench_path)
        dead = SQLiteJobStore(
            tmp_path / "shared", replica_id="dead", lease_ttl=0.3
        )
        submitted = dead.submit(spec)
        assert dead.claim_next(timeout=0.01, owner="wd") is not None
        dead.close()

        survivor = fabric("shared", workers=2, lease_ttl=0.3)
        client = Client(survivor.url, timeout=10.0)
        status = client.wait(submitted.id, timeout=60)
        assert status["state"] == "completed"
        assert len(committed_results(tmp_path / "shared", submitted.id)) == 1

        expected = estimate(
            spec.circuit,
            spec.config,
            seed=spec.seed,
            population_size=spec.population_size,
            sim_mode="unit",
        )
        got = client.result(submitted.id)
        assert got.estimate == expected.estimate
        assert got.to_dict() == expected.to_dict()

    def test_batch_metrics_exported(self, fabric, bench_path):
        server = fabric("state", workers=2, lease_ttl=None)
        client = Client(server.url, timeout=10.0)
        job = client.submit(unit_spec(bench_path))
        client.wait(job["id"], timeout=60)
        text = client.metrics()
        assert "sim_kernel_invocations_total" in text
        assert "sim_batch_jobs" in text
        assert "sim_batch_lanes" in text


class TestKernelSurfacing:
    def test_healthz_reports_sim_kernel(self, service):
        server, client = service
        health = client.health()
        info = health["sim_kernel"]
        assert info["requested"] in KERNELS
        assert info["active"] in ("compiled", "interp", "native")
        assert isinstance(info["fallback"], bool)

    def test_shutdown_summary_names_kernel(self, service):
        server, _ = service
        summary = server.telemetry_summary()
        assert "sim kernel" in summary
        assert any(tier in summary for tier in KERNELS)

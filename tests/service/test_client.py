"""Client-side behaviors: payload forms, wait/stream, failure modes."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.schemas import SCHEMA_VERSION
from repro.service import Client
from repro.service.jobs import JobState

from .test_server import long_spec, wait_for


class TestSubmitForms:
    def test_submit_raw_dict(self, service, bench_path):
        _server, client = service
        job = client.submit(
            {
                "circuit": str(bench_path),
                "seed": 3,
                "population_size": 300,
                "config": {"max_hyper_samples": 10},
            }
        )
        status = client.wait(job["id"], timeout=30)
        assert status["state"] == JobState.COMPLETED

    def test_submit_kwargs_build_a_spec(self, service, bench_path):
        from repro.api import EstimatorConfig

        _server, client = service
        job = client.submit(
            str(bench_path),
            EstimatorConfig(max_hyper_samples=10),
            seed=3,
            population_size=300,
        )
        assert client.wait(job["id"], timeout=30)["state"] == JobState.COMPLETED

    def test_submit_method_shorthand(self, service, bench_path):
        # method= (and POT knobs) as bare keywords build the config.
        _server, client = service
        job = client.submit(
            str(bench_path),
            method="pot",
            pot_threshold_quantile=0.9,
            seed=3,
            population_size=300,
        )
        assert client.wait(job["id"], timeout=30)["state"] == JobState.COMPLETED
        result = client.result(job["id"])
        assert result.method == "pot"

    def test_submit_method_shorthand_conflicts_with_config(
        self, service, bench_path
    ):
        from repro.api import EstimatorConfig

        _server, client = service
        with pytest.raises(ValueError, match="not both"):
            client.submit(
                str(bench_path),
                EstimatorConfig(max_hyper_samples=10),
                method="auto",
            )

    def test_result_payload_is_versioned(self, service, quick_spec):
        _server, client = service
        job = client.submit(quick_spec)
        client.wait(job["id"], timeout=30)
        payload = client.result_payload(job["id"])
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["id"] == job["id"]
        assert len(payload["results"]) == 1
        assert payload["results"][0]["schema_version"] == SCHEMA_VERSION


class TestWaitAndStream:
    def test_wait_timeout_raises_and_job_keeps_running(
        self, service, bench_path
    ):
        _server, client = service
        job = client.submit(long_spec(bench_path))
        try:
            with pytest.raises(ServiceError, match="still"):
                client.wait(job["id"], timeout=0.3, poll_interval=0.05)
            assert client.status(job["id"])["state"] in (
                JobState.QUEUED,
                JobState.RUNNING,
            )
        finally:
            client.cancel(job["id"])
            client.wait(job["id"], timeout=30)

    def test_stream_yields_progress_then_terminal(self, service, bench_path):
        _server, client = service
        job = client.submit(long_spec(bench_path))
        wait_for(lambda: len(client.status(job["id"])["trajectory"]) >= 2)
        seen = []
        cancelled = False
        for status in client.stream(job["id"], poll_interval=0.02):
            seen.append(status)
            if len(status["trajectory"]) >= 3 and not cancelled:
                client.cancel(job["id"])
                cancelled = True
        assert seen[-1]["state"] == JobState.CANCELLED
        lengths = [len(s["trajectory"]) for s in seen]
        assert lengths == sorted(lengths)  # monotone progress

    def test_stream_of_quick_job_ends_completed(self, service, quick_spec):
        _server, client = service
        job = client.submit(quick_spec)
        statuses = list(client.stream(job["id"], poll_interval=0.02))
        assert statuses[-1]["state"] == JobState.COMPLETED


class TestTransportFailures:
    def test_unreachable_service_raises_service_error(self):
        client = Client("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="is the service running"):
            client.health()

    def test_http_error_carries_status_and_server_message(self, service):
        _server, client = service
        with pytest.raises(ServiceError) as exc:
            client.status("job-000000-none")
        assert exc.value.status == 404
        assert "no such job" in str(exc.value)

"""Shared fixtures for the service tests.

Servers bind port 0 (ephemeral) and run real worker threads; jobs use
the 6-gate c17 written to a ``.bench`` file with tiny populations, so a
full submit→estimate→result round trip is milliseconds.
"""

from __future__ import annotations

import pytest

from repro.api import EstimatorConfig
from repro.netlist.bench import dump_bench
from repro.obs.metrics import get_registry
from repro.obs.spans import get_span_recorder
from repro.service import Client, JobServer
from repro.service.jobs import JobSpec


@pytest.fixture
def bench_path(c17, tmp_path):
    """c17 as an on-disk .bench file (job specs carry circuit paths)."""
    path = tmp_path / "c17.bench"
    dump_bench(c17, path)
    return path


@pytest.fixture
def quick_spec(bench_path):
    """A job that completes in well under a second."""
    return JobSpec(
        circuit=str(bench_path),
        config=EstimatorConfig(max_hyper_samples=10),
        seed=3,
        population_size=400,
    )


@pytest.fixture
def service(tmp_path):
    """A running JobServer + bound Client; obs state restored after."""
    registry = get_registry()
    spans = get_span_recorder()
    was_enabled = registry.enabled
    spans_enabled = spans.enabled
    server = JobServer(port=0, state_dir=tmp_path / "state", workers=2)
    server.start()
    try:
        yield server, Client(server.url, timeout=10.0)
    finally:
        server.stop()
        if not was_enabled:
            registry.disable()
            registry.reset()
        if not spans_enabled:
            spans.disable()
            spans.reset()


@pytest.fixture
def fabric(tmp_path):
    """Factory for started JobServers (fabric/admission tests build
    replicas with custom lease/limit knobs, often sharing a state dir);
    every server made here is stopped and obs state restored after."""
    registry = get_registry()
    spans = get_span_recorder()
    was_enabled = registry.enabled
    spans_enabled = spans.enabled
    servers = []

    def make(subdir="state", **kwargs):
        kwargs.setdefault("port", 0)
        server = JobServer(state_dir=tmp_path / subdir, **kwargs)
        server.start()
        servers.append(server)
        return server

    try:
        yield make
    finally:
        for server in servers:
            server.stop()
        if not was_enabled:
            registry.disable()
            registry.reset()
        if not spans_enabled:
            spans.disable()
            spans.reset()

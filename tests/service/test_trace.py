"""End-to-end trace propagation through the service.

One submitted job must yield a single connected span tree reachable via
``GET /v1/jobs/{id}/trace``: HTTP accept -> queue wait -> claim -> run
-> population build -> per-k hyper-samples -> fit -> commit.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import build_span_tree
from repro.obs.spans import get_span_recorder
from repro.errors import ServiceError

#: Phases the acceptance criteria require in a completed job's tree.
REQUIRED_PHASES = {
    "http.request",
    "job.queue_wait",
    "job.claim",
    "job.run",
    "population.build",
    "estimator.run",
    "estimator.hyper_sample",
    "mle.fit",
    "job.commit",
}


@pytest.fixture
def completed_trace(service, quick_spec):
    server, client = service
    job = client.submit(quick_spec)
    client.wait(job["id"], timeout=30)
    return server, client, job, client.trace(job["id"])


class TestTraceEndpoint:
    def test_status_carries_trace_id(self, service, quick_spec):
        _, client = service
        job = client.submit(quick_spec)
        assert job["trace_id"]
        client.wait(job["id"], timeout=30)

    def test_payload_shape(self, completed_trace):
        _, _, job, payload = completed_trace
        assert payload["schema"] == "repro.service_trace/v1"
        assert payload["id"] == job["id"]
        assert payload["trace_id"] == job["trace_id"]
        assert payload["state"] == "completed"
        json.dumps(payload)

    def test_single_connected_tree_with_all_phases(self, completed_trace):
        _, _, _, payload = completed_trace
        spans = payload["spans"]
        assert {s["trace_id"] for s in spans} == {payload["trace_id"]}
        assert REQUIRED_PHASES <= {s["name"] for s in spans}
        roots = build_span_tree(spans)
        assert len(roots) == 1  # client.submit is the single root

        def count(node):
            return 1 + sum(count(c) for c in node["children"])

        assert count(roots[0]) == len(spans)

    def test_one_hyper_sample_span_per_k(self, completed_trace):
        _, client, job, payload = completed_trace
        status = client.status(job["id"])
        ks = sorted(
            s["attributes"]["k"]
            for s in payload["spans"]
            if s["name"] == "estimator.hyper_sample"
        )
        assert ks == [e["k"] for e in status["trajectory"]]

    def test_spans_persisted_durably(self, completed_trace):
        server, _, job, payload = completed_trace
        stored = server.store.stored_spans(job["id"])
        assert stored
        stored_ids = {s["span_id"] for s in stored}
        live_ids = {s["span_id"] for s in payload["spans"]}
        # the worker persisted the whole trace it saw at settle time
        assert stored_ids <= live_ids

    def test_unknown_job_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.trace("job-nope")
        assert err.value.status == 404

    def test_memo_hit_still_yields_trace(self, service, quick_spec):
        _, client = service
        first = client.submit(quick_spec)
        client.wait(first["id"], timeout=30)
        second = client.submit(quick_spec)
        assert second["memo_hit"]
        payload = client.trace(second["id"])
        names = {s["name"] for s in payload["spans"]}
        assert "job.memo_settle" in names

    def test_external_traceparent_joins_trace(self, service, quick_spec):
        _, client = service
        trace_id, span_id = "ab" * 16, "cd" * 8
        status = client._request(
            "POST",
            "/v1/jobs",
            body=quick_spec.to_dict(),
            headers={"traceparent": f"00-{trace_id}-{span_id}-01"},
        )
        assert status["trace_id"] == trace_id
        client.wait(status["id"], timeout=30)
        payload = client.trace(status["id"])
        assert payload["trace_id"] == trace_id
        assert all(s["trace_id"] == trace_id for s in payload["spans"])


class TestServiceTelemetry:
    def test_health_enriched(self, completed_trace):
        _, client, _, _ = completed_trace
        health = client.health()
        assert health["queue_depth"] == 0
        assert health["active_leases"] == 0
        assert health["oldest_lease_age_seconds"] == 0.0
        assert 0.0 <= health["memo_hit_ratio"] <= 1.0
        assert health["store_backend"] == "sqlite"
        assert health["busy_workers"] == 0

    def test_metrics_expose_http_histogram_and_gauges(self, completed_trace):
        _, client, _, _ = completed_trace
        text = client.metrics()
        assert "# TYPE repro_service_http_request_seconds histogram" in text
        assert 'endpoint="/v1/jobs"' in text
        assert 'method="POST"' in text
        assert "repro_service_http_request_seconds_bucket" in text
        for gauge in (
            "repro_service_queue_depth",
            "repro_service_active_leases",
            "repro_service_oldest_lease_age_seconds",
            "repro_service_busy_workers",
            "repro_service_worker_saturation",
        ):
            assert f"{gauge} " in text

    def test_responses_counter_labels_status(self, completed_trace):
        _, client, _, _ = completed_trace
        text = client.metrics()
        assert 'repro_service_http_responses_total{endpoint="/v1/jobs",status="201"}' in text

    def test_telemetry_summary_line(self, completed_trace):
        server, _, _, _ = completed_trace
        line = server.telemetry_summary()
        assert "1 completed" in line
        assert "memo hit ratio" in line


class TestTraceCli:
    def test_trace_command_waterfall_and_export(
        self, completed_trace, tmp_path, capsys
    ):
        from repro.cli import main

        _, client, job, _ = completed_trace
        export = tmp_path / "trace.json"
        rc = main(
            [
                "trace",
                job["id"],
                "--url",
                client.base_url,
                "--export",
                str(export),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "estimator.hyper_sample" in out
        assert job["id"] in out
        chrome = json.loads(export.read_text())
        assert chrome["traceEvents"]
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_trace_command_json(self, completed_trace, capsys):
        from repro.cli import main

        _, client, job, _ = completed_trace
        rc = main(["trace", job["id"], "--url", client.base_url, "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["id"] == job["id"]

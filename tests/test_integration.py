"""Cross-module integration: the full user journey end to end."""

import numpy as np
import pytest

from repro import (
    EventDrivenSimulator,
    FinitePopulation,
    MaxPowerEstimator,
    PowerAnalyzer,
    SimpleRandomSampling,
    UnitDelay,
    build_circuit,
    high_activity_vector_pairs,
    load_bench,
    write_bench,
)
from repro.sim.bitsim import BitParallelSimulator, pack_vectors


class TestFullPipeline:
    def test_generate_save_load_estimate(self, tmp_path):
        # Build -> serialize -> reload -> simulate -> estimate.
        circuit = build_circuit("c432")
        path = tmp_path / "c432.bench"
        path.write_text(write_bench(circuit))
        reloaded = load_bench(path)
        assert reloaded.num_gates == circuit.num_gates

        analyzer = PowerAnalyzer(reloaded, mode="zero")
        pop = FinitePopulation.build(
            lambda n, rng: high_activity_vector_pairs(
                n, reloaded.num_inputs, rng=rng
            ),
            analyzer.powers_for_pairs,
            num_pairs=4000,
            seed=2,
            name="roundtrip",
        )
        result = MaxPowerEstimator(pop).run(rng=1)
        assert result.interval is not None
        assert abs(result.relative_error(pop.actual_max_power)) < 0.30
        assert result.units_used >= 600

    def test_estimator_beats_srs_at_same_budget_on_average(self):
        circuit = build_circuit("c432")
        analyzer = PowerAnalyzer(circuit, mode="zero")
        pop = FinitePopulation.build(
            lambda n, rng: high_activity_vector_pairs(
                n, circuit.num_inputs, rng=rng
            ),
            analyzer.powers_for_pairs,
            num_pairs=20000,
            seed=4,
            name="c432",
        )
        actual = pop.actual_max_power
        rng = np.random.default_rng(6)
        ours, srs_errs = [], []
        srs = SimpleRandomSampling(pop)
        for _ in range(8):
            result = MaxPowerEstimator(pop).run(rng=rng)
            ours.append(abs(result.relative_error(actual)))
            srs_est = srs.estimate_max(result.units_used, rng=rng)
            srs_errs.append(abs(srs_est - actual) / actual)
        assert np.mean(ours) <= np.mean(srs_errs) + 0.02

    def test_estimation_independent_of_frequency_scaling(self):
        # Relative errors and unit counts must be invariant to the
        # energy->power conversion (pure scaling of the metric).
        circuit = build_circuit("c880")
        rng_pairs = lambda n, rng: high_activity_vector_pairs(
            n, circuit.num_inputs, rng=rng
        )
        results = []
        for freq in (10e6, 200e6):
            analyzer = PowerAnalyzer(circuit, mode="zero", frequency_hz=freq)
            pop = FinitePopulation.build(
                rng_pairs, analyzer.powers_for_pairs,
                num_pairs=3000, seed=3, name=f"f{freq}",
            )
            results.append(MaxPowerEstimator(pop).run(rng=11))
        r10, r200 = results
        assert r10.units_used == r200.units_used
        assert r10.estimate * 20 == pytest.approx(r200.estimate, rel=1e-9)


class TestSimulatorCrossValidation:
    @pytest.mark.parametrize("name", ["c432", "c1355"])
    def test_three_simulators_agree_on_final_state(self, name, rng):
        circuit = build_circuit(name)
        bsim = BitParallelSimulator(circuit)
        esim = EventDrivenSimulator(circuit, UnitDelay())
        bits = rng.integers(0, 2, size=(8, circuit.num_inputs)).astype(
            np.uint8
        )
        words, lanes = pack_vectors(bits)
        state = bsim.steady_state(words, lanes)
        from repro.sim.bitsim import unpack_vectors

        values = unpack_vectors(state, lanes)
        for k in range(8):
            ref = circuit.evaluate_vector(list(bits[k]))
            ev = esim.simulate_pair(list(bits[k]), list(bits[k]))
            for i, net in enumerate(bsim.net_order):
                assert values[k][i] == ref[net]
                assert ev.final_values[net] == ref[net]

    def test_unit_delay_power_at_least_zero_delay(self, rng):
        circuit = build_circuit("c1355")
        pz = PowerAnalyzer(circuit, mode="zero")
        pu = PowerAnalyzer(circuit, mode="unit")
        v1 = rng.integers(0, 2, size=(100, circuit.num_inputs)).astype(np.uint8)
        v2 = rng.integers(0, 2, size=(100, circuit.num_inputs)).astype(np.uint8)
        powers_z = pz.powers_for_pairs(v1, v2)
        powers_u = pu.powers_for_pairs(v1, v2)
        # Glitching can only add transitions on top of the functional ones.
        assert (powers_u >= powers_z - 1e-15).all()

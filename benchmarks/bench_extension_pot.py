"""Extension — block-maxima vs peaks-over-threshold shoot-out."""

import numpy as np
from conftest import run_and_report

from repro.experiments.extension_pot import run_extension_pot


def bench_extension_pot(benchmark, config, results_dir):
    table = run_and_report(benchmark, run_extension_pot, config, results_dir)
    for circuit, data in table.data.items():
        # Both statistical routes must produce finite, plausible errors.
        assert np.isfinite(data["bm_errors"]).all()
        assert np.isfinite(data["pot_errors"]).all()
        assert data["bm_units"].min() >= 2 * config.n * config.m
        assert data["pot_units"].min() >= 2 * config.n * config.m


def test_extension_pot(benchmark, config, results_dir):
    bench_extension_pot(benchmark, config, results_dir)

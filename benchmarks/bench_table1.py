"""Table 1 — efficiency comparison, unconstrained input sequences.

Regenerates the paper's Table 1: per circuit, the qualified-unit
portion Y, our approach's unit cost (MAX/MIN/AVE over repeated runs),
the theoretical SRS cost at the same (5 %, 90 %) target, and our error
band.
"""

from conftest import run_and_report

from repro.experiments.table1 import run_table1


def bench_table1(benchmark, config, results_dir):
    table = run_and_report(benchmark, run_table1, config, results_dir)
    for row in table.data["rows"]:
        # Shape of the paper's claim: both cost columns are meaningful
        # and our minimum cost is the 2-hyper-sample floor of 600 units.
        assert row.units_min >= 2 * config.n * config.m
        assert row.units_avg <= row.units_max
        assert 0 < row.qualified_portion < 0.2
        assert row.srs_avg > 0


def test_table1(benchmark, config, results_dir):
    bench_table1(benchmark, config, results_dir)

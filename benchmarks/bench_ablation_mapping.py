"""Ablation D — maximum power across equivalent technology mappings."""

from conftest import run_and_report

from repro.experiments.ablations import run_ablation_mapping


def bench_ablation_mapping(benchmark, config, results_dir):
    table = run_and_report(
        benchmark, run_ablation_mapping, config, results_dir
    )
    raw = table.data
    native_gates, native_max, _ = raw["native XOR tree"]
    nand_gates, nand_max, _ = raw["NAND-expanded (C1355 style)"]
    # The NAND mapping has ~4x the gates and strictly more switched
    # capacitance available — its maximum power must exceed the native
    # tree's.
    assert nand_gates > native_gates
    assert nand_max > native_max
    # The estimator tracks each implementation within a broad band.
    for _, (gates, actual, result) in raw.items():
        assert abs(result.relative_error(actual)) < 0.30


def test_ablation_mapping(benchmark, config, results_dir):
    bench_ablation_mapping(benchmark, config, results_dir)

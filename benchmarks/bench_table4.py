"""Table 4 — efficiency under the low-activity constraint (t = 0.3).

Regenerates the paper's Table 4.  The paper's observation — lower
activity thins the qualified tail, so estimation needs more units than
the high-activity Table 3 — is asserted as the cross-table shape.
"""

import numpy as np
from conftest import run_and_report

from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4


def bench_table4(benchmark, config, results_dir):
    table = run_and_report(benchmark, run_table4, config, results_dir)
    t3 = run_table3(config)  # cached populations make this cheap
    y_low = np.mean([r.qualified_portion for r in table.data["rows"]])
    y_high = np.mean([r.qualified_portion for r in t3.data["rows"]])
    # Table 4's populations have (on average) rarer qualified units.
    assert y_low <= y_high * 1.5


def test_table4(benchmark, config, results_dir):
    bench_table4(benchmark, config, results_dir)

"""Observability overhead — instrumented-but-disabled must be free.

PR 2 threads metrics and tracing through the estimation hot path
(`hyper_sample` → `fit_weibull_mle` → per-k interval).  The design
contract is a no-op fast path: with the registry disabled every record
call is one attribute load plus one branch, and the tracer's ``emit``
is never reached (call sites check ``tracer.enabled`` first).  This
benchmark pins that contract down three ways:

* **identity** — estimates are bit-for-bit identical with observability
  off, on, or on-with-trace (instrumentation never touches a random
  stream);
* **micro** — the disabled-path primitives (counter inc, timer context,
  histogram observe) cost well under a microsecond each, so the ~10
  instrumentation touches per hyper-sample are < 0.1 % of its ~10 ms
  budget (i.e. within noise of the PR 1 throughput);
* **macro** — enabling metrics (the *slow* path: locks and real
  timing) still keeps the 100-run experiment within 1.5x of the
  disabled run, so leaving metrics on in production is viable.
"""

import json
import time

import numpy as np
import pytest

from repro.estimation import MaxPowerEstimator, run_many
from repro.evt.distributions import GeneralizedWeibull
from repro.obs import get_registry, get_span_recorder, get_tracer
from repro.vectors.population import FinitePopulation

NUM_RUNS = 40
BASE_SEED = 1998
POOL_SIZE = 20_000

#: Instrumentation touches per hyper-sample (counters, timers,
#: histogram) — generous over-count of the actual call sites.
TOUCHES_PER_HYPER_SAMPLE = 16

#: Span call sites per estimator run (run + per-k hyper_sample +
#: per-k mle.fit, k <= 25) — generous over-count.
SPAN_SITES_PER_RUN = 80


@pytest.fixture(scope="module")
def estimator():
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(POOL_SIZE, rng=0), 0.0, None)
    pop = FinitePopulation(powers, name="synthetic-weibull")
    return MaxPowerEstimator(pop, error=0.05, confidence=0.90)


@pytest.fixture()
def clean_registry():
    registry = get_registry()
    was_enabled = registry.enabled
    registry.disable()
    registry.reset()
    yield registry
    registry.reset()
    if was_enabled:
        registry.enable()
    else:
        registry.disable()


def _timed_runs(estimator, num_runs=NUM_RUNS):
    start = time.perf_counter()
    results = run_many(estimator, num_runs, base_seed=BASE_SEED, workers=1)
    return time.perf_counter() - start, [r.estimate for r in results]


@pytest.fixture()
def clean_spans():
    spans = get_span_recorder()
    spans.disable()
    spans.reset()
    yield spans
    spans.disable()
    spans.reset()


def test_disabled_observability_is_bit_identical(
    estimator, clean_registry, clean_spans, tmp_path
):
    _, baseline = _timed_runs(estimator, num_runs=10)

    clean_registry.enable()
    _, with_metrics = _timed_runs(estimator, num_runs=10)

    tracer = get_tracer()
    tracer.open(tmp_path / "bench.jsonl")
    _, with_trace = _timed_runs(estimator, num_runs=10)
    tracer.close()

    clean_spans.enable()
    _, with_spans = _timed_runs(estimator, num_runs=10)
    clean_spans.disable()
    clean_registry.disable()

    assert baseline == with_metrics == with_trace == with_spans


def test_disabled_primitives_are_sub_microsecond(clean_registry):
    """The no-op fast path must be negligible at hot-path call rates."""
    counter = clean_registry.counter("bench_noop_counter")
    timer = clean_registry.timer("bench_noop_timer")
    hist = clean_registry.histogram("bench_noop_hist", buckets=(1.0, 2.0))
    n = 100_000
    start = time.perf_counter()
    for _ in range(n):
        counter.inc()
        with timer.time():
            pass
        hist.observe(1.5)
    per_touch = (time.perf_counter() - start) / (3 * n)
    # Interpreted-python branch+return; observed ~0.1 us.  2 us is a
    # very loose ceiling that still proves the point below.
    assert per_touch < 2e-6, f"no-op metric call costs {per_touch * 1e6:.2f} us"

    # Relate the primitive cost to the actual hot path: the estimator
    # touches instrumentation O(10) times per hyper-sample, and one
    # hyper-sample costs milliseconds (300 simulated units + an MLE).
    overhead_per_hyper_sample = per_touch * TOUCHES_PER_HYPER_SAMPLE
    assert overhead_per_hyper_sample < 100e-6  # < 0.1 ms, i.e. noise


def test_enabled_metrics_overhead_is_bounded(estimator, clean_registry):
    """Even the slow path (metrics ON) stays near disabled throughput."""
    # Warm-up to stabilize caches/JIT-free interpreter state.
    _timed_runs(estimator, num_runs=5)
    disabled_time, disabled = _timed_runs(estimator)
    clean_registry.enable()
    enabled_time, enabled = _timed_runs(estimator)
    clean_registry.disable()
    assert disabled == enabled
    ratio = enabled_time / disabled_time
    print(
        f"\n{NUM_RUNS}-run experiment: disabled {disabled_time:.2f}s, "
        f"metrics enabled {enabled_time:.2f}s -> {ratio:.3f}x"
    )
    # Generous bound for noisy CI machines; locally this is ~1.0x.
    assert ratio < 1.5


def test_spans_overhead_and_artifact(
    estimator, clean_registry, clean_spans, results_dir
):
    """Spans column: disabled spans cost one flag check (<= 2% of a
    run); enabled spans stay bit-identical and near disabled
    throughput.  The whole A/B lands in ``BENCH_7.json``."""
    # Warm-up to stabilize caches.
    _timed_runs(estimator, num_runs=5)
    disabled_time, disabled = _timed_runs(estimator)
    clean_registry.enable()
    metrics_time, with_metrics = _timed_runs(estimator)
    clean_spans.enable()
    spans_time, with_spans = _timed_runs(estimator)
    clean_spans.disable()
    clean_registry.disable()

    bit_identical = disabled == with_metrics == with_spans
    assert bit_identical

    # The disabled fast path: `span()` returns the shared null object
    # after a single flag test.
    n = 200_000
    start = time.perf_counter()
    for _ in range(n):
        with clean_spans.span("bench_noop"):
            pass
    per_call = (time.perf_counter() - start) / n
    per_run_disabled = disabled_time / NUM_RUNS
    overhead_pct = 100.0 * (per_call * SPAN_SITES_PER_RUN) / per_run_disabled

    payload = {
        "benchmark": "obs_overhead",
        "num_runs": NUM_RUNS,
        "pool_size": POOL_SIZE,
        "bit_identical": bit_identical,
        "modes": {
            "disabled": {"wall_time_s": disabled_time},
            "metrics": {
                "wall_time_s": metrics_time,
                "ratio_vs_disabled": metrics_time / disabled_time,
            },
            "spans": {
                "wall_time_s": spans_time,
                "ratio_vs_disabled": spans_time / disabled_time,
            },
        },
        "null_span_call_us": per_call * 1e6,
        "spans_disabled_overhead_pct": overhead_pct,
    }
    (results_dir / "BENCH_7.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(
        f"\nspans column: disabled {disabled_time:.2f}s, metrics "
        f"{metrics_time:.2f}s, spans {spans_time:.2f}s; null span "
        f"{per_call * 1e6:.2f}us -> {overhead_pct:.3f}% of a run"
    )
    assert per_call < 2e-6
    assert overhead_pct <= 2.0
    assert spans_time / disabled_time < 1.5

"""Table 2 — estimation quality comparison, unconstrained sequences.

Regenerates the paper's Table 2: actual maximum power per circuit,
largest signed error of our approach vs SRS at fixed budgets, and the
fraction of runs exceeding the 5 % error bound.
"""

import numpy as np
from conftest import run_and_report

from repro.experiments.table2 import run_table2


def bench_table2(benchmark, config, results_dir):
    table = run_and_report(benchmark, run_table2, config, results_dir)
    rows = table.data["rows"]
    # SRS always under-estimates; its error magnitude must shrink with
    # budget on average (the paper's 2500 -> 20K trend).
    first = np.mean([abs(r.srs_largest_errors[0]) for r in rows])
    last = np.mean([abs(r.srs_largest_errors[-1]) for r in rows])
    assert last <= first + 0.02
    for r in rows:
        assert r.actual_max_mw > 0
        assert all(e <= 0 for e in r.srs_largest_errors)


def test_table2(benchmark, config, results_dir):
    bench_table2(benchmark, config, results_dir)

"""Ablation A — fitting-method stability (paper §3.1's MLE motivation)."""

from conftest import run_and_report

from repro.experiments.ablations import run_ablation_fitting


def bench_ablation_fitting(benchmark, config, results_dir):
    table = run_and_report(
        benchmark, run_ablation_fitting, config, results_dir
    )
    mle_bias, mle_std, mle_fail = table.data["profile MLE"]
    lsq_bias, lsq_std, lsq_fail = table.data["LSQ curve fit"]
    # The paper's claim: curve fitting is less stable than the MLE at
    # small m — larger spread and/or more failures.
    assert lsq_std + lsq_fail >= mle_std * 0.9
    assert mle_fail <= 0.05


def test_ablation_fitting(benchmark, config, results_dir):
    bench_ablation_fitting(benchmark, config, results_dir)

"""Benchmark harness configuration.

Each benchmark regenerates one paper artifact (table/figure) or ablation
and prints the resulting table, so running::

    pytest benchmarks/ --benchmark-only -s

reproduces every row/series the paper reports.  Scale is controlled by
``REPRO_SCALE``:

* unset / ``smoke`` — seconds per artifact (3 circuits, tiny pools);
* ``ci``            — minutes (9 circuits, 20k/10k pools, 20 runs);
* ``paper``         — the full published setup (160k/80k pools, 100
  runs) — expect a long run on the first (uncached) invocation.

Populations are cached under ``REPRO_CACHE`` (default ``.repro_cache``)
so repeated benchmark runs only pay the estimation cost.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig, default_config
from repro.obs import get_registry, phase_timings


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """Experiment configuration for the benchmark session."""
    if "REPRO_SCALE" not in os.environ:
        os.environ["REPRO_SCALE"] = "smoke"
    return default_config()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    out = Path(os.environ.get("REPRO_RESULTS", "benchmarks/results"))
    out.mkdir(parents=True, exist_ok=True)
    return out


def run_and_report(benchmark, runner, config, results_dir, **kwargs):
    """Run one experiment under pytest-benchmark and save its table.

    Each run also records pipeline metrics (simulation, fitting,
    estimation phase timings) and writes them next to the table as
    ``BENCH_<id>.json``, so benchmark artifacts carry a wall-clock
    breakdown, not just the end-to-end number.
    """
    registry = get_registry()
    was_enabled = registry.enabled
    registry.enable()
    registry.snapshot(reset=True)  # scope metrics to this benchmark
    start = time.perf_counter()
    table = benchmark.pedantic(
        lambda: runner(config, **kwargs), iterations=1, rounds=1
    )
    elapsed = time.perf_counter() - start
    snapshot = registry.snapshot(reset=True)
    if not was_enabled:
        registry.disable()
    payload = {
        "experiment": table.experiment_id,
        "scale": config.scale,
        "wall_time_s": elapsed,
        "phases": phase_timings(snapshot),
        "metrics": snapshot,
    }
    (results_dir / f"BENCH_{table.experiment_id}.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    table.save(results_dir)
    print()
    print(table.render())
    return table

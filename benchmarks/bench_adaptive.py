"""Adaptive-controller ablation — the artifact behind ``BENCH_9.json``.

Head-to-head at the paper's convergence target: for each suite circuit,
``method="auto"`` (pilot-tuned n/m + Weibull-vs-POT cross-validation)
against ``method="fixed"`` at the paper's n = 30, m = 10 schedule.  The
cost axis is *units simulated to ε* — the paper's "# of units" columns —
with the controller's pilot/CV overhead charged to its own total, so the
comparison is end-to-end honest.

Pass criteria: every run converges at equal ε/confidence, every auto run
records its :class:`~repro.estimation.result.AdaptiveDecision`, both
methods land within the same accuracy envelope of the pool's true
maximum, and the controller's overhead stays a bounded multiple of the
fixed schedule's spend.
"""

from __future__ import annotations

import json
import time

from repro.api import EstimatorConfig, run_many
from repro.experiments.populations import build_population

#: Convergence target shared by both arms (the paper's defaults).
ERROR, CONFIDENCE = 0.05, 0.90
#: Runs per (circuit, method) arm; seeds are the run indices.
NUM_RUNS = 5
#: Suite circuits under test (>= 2 per the ablation contract).
NUM_CIRCUITS = 2

FIXED = EstimatorConfig(error=ERROR, confidence=CONFIDENCE)
AUTO = EstimatorConfig(method="auto", error=ERROR, confidence=CONFIDENCE)


def _arm(population, config):
    results = run_many(population, NUM_RUNS, config, base_seed=0)
    truth = population.actual_max_power
    return results, {
        "runs": NUM_RUNS,
        "converged": sum(r.converged for r in results),
        "mean_units_to_eps": sum(r.units_used for r in results) / NUM_RUNS,
        "mean_abs_rel_error": sum(
            abs(r.relative_error(truth)) for r in results
        ) / NUM_RUNS,
    }


def test_adaptive_vs_fixed_units_to_eps(config, results_dir):
    start = time.perf_counter()
    circuits = config.circuits[:NUM_CIRCUITS]
    per_circuit = {}
    for name in circuits:
        population = build_population(config, name, "unconstrained")
        fixed_results, fixed = _arm(population, FIXED)
        auto_results, auto = _arm(population, AUTO)
        decisions = [r.decision for r in auto_results]
        assert all(d is not None for d in decisions)
        auto["decisions"] = [d.to_dict() for d in decisions]
        auto["families"] = sorted(
            {d.family for d in decisions}
        )
        auto["mean_pilot_units"] = sum(
            d.pilot_units for d in decisions
        ) / NUM_RUNS
        per_circuit[name] = {"fixed_n30_m10": fixed, "auto": auto}
    elapsed = time.perf_counter() - start

    payload = {
        "benchmark": "adaptive_ablation",
        "scale": config.scale,
        "error": ERROR,
        "confidence": CONFIDENCE,
        "runs_per_arm": NUM_RUNS,
        "circuits": per_circuit,
        "wall_time_s": elapsed,
    }
    (results_dir / "BENCH_9.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    for name, arms in per_circuit.items():
        print(
            f"\n{name}: fixed {arms['fixed_n30_m10']['mean_units_to_eps']:.0f} "
            f"units/run vs auto {arms['auto']['mean_units_to_eps']:.0f} "
            f"(families {arms['auto']['families']}, "
            f"pilot {arms['auto']['mean_pilot_units']:.0f})"
        )

    for name, arms in per_circuit.items():
        fixed, auto = arms["fixed_n30_m10"], arms["auto"]
        # Both arms meet the stopping rule on every run...
        assert fixed["converged"] == NUM_RUNS, name
        assert auto["converged"] == NUM_RUNS, name
        # ...and land in the same accuracy envelope of the true max.
        assert fixed["mean_abs_rel_error"] < 0.15, name
        assert auto["mean_abs_rel_error"] < 0.15, name
        # The controller's overhead is bounded: its end-to-end spend
        # stays within 3x the fixed schedule's (usually well under).
        assert auto["mean_units_to_eps"] < 3 * fixed["mean_units_to_eps"], name

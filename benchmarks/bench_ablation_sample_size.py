"""Ablation B — block-size sensitivity (why the paper fixes n = 30)."""

from conftest import run_and_report

from repro.experiments.ablations import run_ablation_sample_size


def bench_ablation_sample_size(benchmark, config, results_dir):
    table = run_and_report(
        benchmark, run_ablation_sample_size, config, results_dir
    )
    data = table.data
    # Estimator spread must not grow with block size; tiny blocks are
    # the worst (the Weibull limit has not kicked in at n = 2).
    smallest_n = min(data)
    largest_n = max(data)
    assert data[largest_n][1] <= data[smallest_n][1] + 0.05


def test_ablation_sample_size(benchmark, config, results_dir):
    bench_ablation_sample_size(benchmark, config, results_dir)

"""Extension (paper §V) — statistical maximum dynamic delay."""

from conftest import run_and_report

from repro.experiments.extension_delay import run_extension_delay


def bench_extension_delay(benchmark, config, results_dir):
    table = run_and_report(
        benchmark, run_extension_delay, config, results_dir, probe_pairs=60
    )
    for label, (result, sta, probe_best) in table.data.items():
        # Certificate ordering: probe <= statistical estimate <= STA.
        assert probe_best <= sta + 1e-9
        assert result.estimate <= sta + 1e-9
        assert result.estimate >= probe_best * 0.75
    # The carry-lookahead adder is faster than the ripple adder.
    assert table.data["cla8"][1] < table.data["rca8"][1]


def test_extension_delay(benchmark, config, results_dir):
    bench_extension_delay(benchmark, config, results_dir)

"""Figure 1 — block-maxima distributions vs fitted Weibull.

Regenerates the paper's Figure 1 study (n = 2/20/30/50, 1000 block
maxima, least-squares Weibull fit) and reports the KS distance per n —
the quantitative form of the figure's visual convergence.
"""

from conftest import run_and_report

from repro.experiments.figure1 import run_figure1


def bench_figure1(benchmark, config, results_dir):
    table = run_and_report(benchmark, run_figure1, config, results_dir)
    series = table.data["series"]
    # The paper's conclusion: the Weibull approximation is adequate for
    # n >= 30 — the fitted CDF must hug the empirical one.
    for s in series:
        if s.n >= 30 and s.fit is not None:
            assert s.ks < 0.15


def test_figure1(benchmark, config, results_dir):
    bench_figure1(benchmark, config, results_dir)

"""Multi-replica fabric load test — the artifact behind ``BENCH_8.json``.

Drives the job service the way an unlucky deployment would:

* **replica death mid-run** — a "victim" replica claims a batch of jobs
  and vanishes without unwinding (exactly the database state a
  ``kill -9`` leaves: running rows with a lease nobody renews).  The
  surviving replica's lease keeper must reap the expired leases and
  re-run the jobs.
* **saturation** — the survivor runs with a one-slot admission queue
  while a client submits a burst as fast as it can, so most submits
  bounce off 429 + ``Retry-After`` and are retried gracefully.

The pass criteria are the fabric's safety contract: every job completes
(zero lost), every job commits exactly one results payload (zero
duplicated executions), the reclaim counter accounts for every stolen
lease, and the saturation phase actually produced rejections.  The
whole run's numbers land in ``BENCH_8.json``.
"""

from __future__ import annotations

import json
import sqlite3
import time

from repro.api import EstimatorConfig
from repro.errors import ServiceError
from repro.service import Client, JobServer
from repro.service.jobs import JobSpec
from repro.service.store import SQLiteJobStore

#: Jobs the victim replica takes to its grave (stolen by the survivor).
KILLED_JOBS = 3
#: Jobs submitted over HTTP against the saturated admission queue.
BURST_JOBS = 9
#: Long enough that the victim's leases are still live when the
#: survivor boots (so its *lease keeper* — not startup recovery — does
#: the stealing, and every steal shows up in ``service_lease_reclaims``),
#: short enough that stealing costs ~one TTL of wall clock.
LEASE_TTL = 2.0
#: Give up on the whole run after this long (CI safety valve).
DEADLINE_S = 120.0


def _spec(seed: int) -> JobSpec:
    # Distinct seeds defeat both memoization and the worker population
    # cache, so every job pays a real build + estimate (queue pressure).
    return JobSpec(
        circuit="c432",
        config=EstimatorConfig(max_hyper_samples=40),
        seed=seed,
        population_size=4_000,
    )


def _submit_with_backoff(client: Client, spec: JobSpec, deadline: float):
    """Submit honoring 429 ``Retry-After`` (capped: the server's 1 s
    hint is sized for humans; the bench queue drains in tens of ms)."""
    rejections = 0
    while True:
        try:
            return client.submit(spec), rejections
        except ServiceError as exc:
            if exc.status != 429 or time.monotonic() > deadline:
                raise
            rejections += 1
            time.sleep(min(exc.retry_after or 1.0, 0.05))


def _committed_payloads(state_dir, job_ids):
    with sqlite3.connect(state_dir / "jobs.db") as conn:
        return {
            job_id: row[0]
            for job_id in job_ids
            for row in conn.execute(
                "SELECT payload FROM results WHERE job_id = ?", (job_id,)
            )
        }


def test_fabric_steal_and_saturation(tmp_path, results_dir):
    state_dir = tmp_path / "fabric"
    start = time.perf_counter()
    deadline = time.monotonic() + DEADLINE_S

    # Phase 1 — the victim claims KILLED_JOBS and dies mid-run.
    victim = SQLiteJobStore(state_dir, replica_id="victim", lease_ttl=LEASE_TTL)
    killed_ids = []
    for seed in range(KILLED_JOBS):
        job = victim.submit(_spec(seed))
        killed_ids.append(job.id)
        assert victim.claim_next(timeout=0.1, owner="victim-w0") is not None
    victim.close()

    # Phase 2 — the survivor boots against the same state dir and a
    # client floods its one-slot queue.
    survivor = JobServer(
        port=0, state_dir=state_dir, workers=1,
        lease_ttl=LEASE_TTL, max_queue_depth=1, memo=False,
    )
    survivor.start()
    try:
        client = Client(survivor.url, timeout=10.0)
        burst_ids = []
        rejections = 0
        submit_start = time.perf_counter()
        for seed in range(KILLED_JOBS, KILLED_JOBS + BURST_JOBS):
            job, bounced = _submit_with_backoff(client, _spec(seed), deadline)
            burst_ids.append(job["id"])
            rejections += bounced
        submit_time = time.perf_counter() - submit_start

        all_ids = killed_ids + burst_ids
        states = {
            job_id: client.wait(
                job_id, timeout=max(1.0, deadline - time.monotonic())
            )["state"]
            for job_id in all_ids
        }
        health = client.health()
        metrics = client.metrics()
    finally:
        survivor.stop()

    elapsed = time.perf_counter() - start
    payloads = _committed_payloads(state_dir, all_ids)
    duplicates = {
        job_id: len(json.loads(payload))
        for job_id, payload in payloads.items()
        if len(json.loads(payload)) != 1
    }
    lost = [job_id for job_id in all_ids if states[job_id] != "completed"]
    reclaims = 0
    for line in metrics.splitlines():
        # Exported as repro_service_lease_reclaims (registry prefix).
        if "service_lease_reclaims " in line and not line.startswith("#"):
            reclaims = int(float(line.split()[-1]))

    result = {
        "benchmark": "service_fabric",
        "replicas": 2,
        "lease_ttl_s": LEASE_TTL,
        "max_queue_depth": 1,
        "jobs": {
            "killed_replica": KILLED_JOBS,
            "burst": BURST_JOBS,
            "total": len(all_ids),
            "completed": sum(s == "completed" for s in states.values()),
            "lost": len(lost),
            "duplicated": len(duplicates),
        },
        "lease_reclaims": reclaims,
        "admission_rejections_429": rejections,
        "submit_phase_s": submit_time,
        "wall_time_s": elapsed,
        "jobs_per_second": len(all_ids) / elapsed,
        "survivor_queue_depth_after": health["queue_depth"],
    }
    (results_dir / "BENCH_8.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    print(
        f"\nfabric: {len(all_ids)} jobs ({KILLED_JOBS} stolen from a dead "
        f"replica), {reclaims} lease reclaims, {rejections} graceful 429s, "
        f"{elapsed:.2f}s wall"
    )

    # Safety contract: nothing lost, nothing run twice, every stolen
    # lease accounted for, and the queue bound actually pushed back.
    assert not lost, f"jobs never completed: {lost}"
    assert not duplicates, f"duplicate result commits: {duplicates}"
    assert len(payloads) == len(all_ids)
    assert reclaims >= KILLED_JOBS
    assert rejections >= 1

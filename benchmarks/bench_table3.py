"""Table 3 — efficiency under the high-activity constraint (t = 0.7).

Regenerates the paper's Table 3: the same efficiency columns as Table 1
on populations whose input lines each toggle with probability 0.7
(category I.2).
"""

from conftest import run_and_report

from repro.experiments.table3 import run_table3


def bench_table3(benchmark, config, results_dir):
    table = run_and_report(benchmark, run_table3, config, results_dir)
    for row in table.data["rows"]:
        assert row.units_min >= 2 * config.n * config.m
        assert row.qualified_portion > 0


def test_table3(benchmark, config, results_dir):
    bench_table3(benchmark, config, results_dir)

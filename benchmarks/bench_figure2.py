"""Figure 2 — normality of the MLE maximum-power estimate.

Regenerates the paper's Figure 2 study: the distribution of the
hyper-sample estimate over 100 repetitions for m = 10 and m = 50, with
its least-squares normal fit.
"""

from conftest import run_and_report

from repro.experiments.figure2 import run_figure2


def bench_figure2(benchmark, config, results_dir):
    table = run_and_report(benchmark, run_figure2, config, results_dir)
    series = table.data["series"]
    by_m = {s.m: s for s in series}
    # Theorem 3 shape: spread shrinks as m grows; estimates center near
    # the true maximum.
    assert by_m[50].estimates.std() < by_m[10].estimates.std()
    actual = table.data["actual_max"]
    assert abs(by_m[10].estimates.mean() / actual - 1.0) < 0.25


def test_figure2(benchmark, config, results_dir):
    bench_figure2(benchmark, config, results_dir)

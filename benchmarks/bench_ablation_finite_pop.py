"""Ablation C — the §3.4 finite-population correction."""

import numpy as np
from conftest import run_and_report

from repro.experiments.ablations import run_ablation_finite_population


def bench_ablation_finite_pop(benchmark, config, results_dir):
    table = run_and_report(
        benchmark, run_ablation_finite_population, config, results_dir
    )
    mu = table.data["mu"]
    corrected = table.data["corrected"]
    actual = table.data["actual"]
    # Paper: without the correction "the mean of the estimated value
    # will always be larger than the actual maximum"; with it, the
    # estimator is (approximately) unbiased.
    assert mu.mean() > actual
    assert abs(np.mean(corrected) - actual) < abs(np.mean(mu) - actual)


def test_ablation_finite_pop(benchmark, config, results_dir):
    bench_ablation_finite_pop(benchmark, config, results_dir)

"""Simulator throughput — what makes 2500-unit estimation cheap.

Measures pairs/second of the three power-simulation paths on one suite
circuit.  The bit-parallel paths are what let the experiment harness
simulate 10^5-pair populations in seconds; the event-driven path is the
reference semantics.
"""

import numpy as np
import pytest

from repro.netlist.generators import build_circuit
from repro.sim.power import PowerAnalyzer

CIRCUIT = "c880"
PAIRS_FAST = 4096
PAIRS_EVENT = 32


@pytest.fixture(scope="module")
def workload():
    circuit = build_circuit(CIRCUIT)
    rng = np.random.default_rng(7)
    v1 = rng.integers(0, 2, size=(PAIRS_FAST, circuit.num_inputs), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(PAIRS_FAST, circuit.num_inputs), dtype=np.uint8)
    return circuit, v1, v2


def test_throughput_zero_delay(benchmark, workload):
    circuit, v1, v2 = workload
    analyzer = PowerAnalyzer(circuit, mode="zero")
    powers = benchmark(analyzer.powers_for_pairs, v1, v2)
    assert powers.shape == (PAIRS_FAST,)
    assert (powers > 0).any()


def test_throughput_unit_delay(benchmark, workload):
    circuit, v1, v2 = workload
    analyzer = PowerAnalyzer(circuit, mode="unit")
    powers = benchmark(analyzer.powers_for_pairs, v1, v2)
    assert powers.shape == (PAIRS_FAST,)


def test_throughput_event_driven(benchmark, workload):
    circuit, v1, v2 = workload
    analyzer = PowerAnalyzer(circuit, mode="event")
    powers = benchmark(
        analyzer.powers_for_pairs, v1[:PAIRS_EVENT], v2[:PAIRS_EVENT]
    )
    assert powers.shape == (PAIRS_EVENT,)

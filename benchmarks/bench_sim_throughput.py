"""Simulator throughput — what makes 2500-unit estimation cheap.

Measures pairs/second of the three power-simulation paths on one suite
circuit, plus the compiled-vs-interpreted kernel A/B on unit-delay
population builds (the artifact behind ``BENCH_5.json``) and the
three-tier kernel A/B with the cross-job batch sweep (the artifact
behind ``BENCH_10.json``).  The bit-parallel paths are what let the
experiment harness simulate 10^5-pair populations in seconds; the
event-driven path is the reference semantics.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.netlist.generators import build_circuit
from repro.sim.batch import SimBatcher
from repro.sim.native import backend_name, native_available
from repro.sim.power import PowerAnalyzer
from repro.vectors.generators import random_vector_pairs
from repro.vectors.population import FinitePopulation

CIRCUIT = "c880"
PAIRS_FAST = 4096
PAIRS_EVENT = 32

# Kernel A/B workload per scale tier: (circuit, num_pairs).  The smoke
# tier keeps the interpreter's share of the run in CI seconds; ci/paper
# use the largest suite circuit (c7552, 3512 gates), where the active
# wavefront is a small fraction of the gate count and the compiled
# kernel's scheduling pays off most.
AB_WORKLOADS = {
    "smoke": ("c880", 2048),
    "ci": ("c7552", 8192),
    "paper": ("c7552", 16384),
}


@pytest.fixture(scope="module")
def workload():
    circuit = build_circuit(CIRCUIT)
    rng = np.random.default_rng(7)
    v1 = rng.integers(0, 2, size=(PAIRS_FAST, circuit.num_inputs), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(PAIRS_FAST, circuit.num_inputs), dtype=np.uint8)
    return circuit, v1, v2


def test_throughput_zero_delay(benchmark, workload):
    circuit, v1, v2 = workload
    analyzer = PowerAnalyzer(circuit, mode="zero")
    powers = benchmark(analyzer.powers_for_pairs, v1, v2)
    assert powers.shape == (PAIRS_FAST,)
    assert (powers > 0).any()


def test_throughput_unit_delay(benchmark, workload):
    circuit, v1, v2 = workload
    analyzer = PowerAnalyzer(circuit, mode="unit")
    powers = benchmark(analyzer.powers_for_pairs, v1, v2)
    assert powers.shape == (PAIRS_FAST,)


def test_throughput_event_driven(benchmark, workload):
    circuit, v1, v2 = workload
    analyzer = PowerAnalyzer(circuit, mode="event")
    powers = benchmark(
        analyzer.powers_for_pairs, v1[:PAIRS_EVENT], v2[:PAIRS_EVENT]
    )
    assert powers.shape == (PAIRS_EVENT,)


def test_kernel_ab_population_build(results_dir):
    """Compiled vs interpreted kernel on a unit-delay population build.

    Builds the same pool twice through :meth:`FinitePopulation.build`
    (the production path: chunked pair generation + PowerAnalyzer), once
    per kernel.  Asserts the pools are bit-identical — the compiled
    kernel must be a pure speedup, not an approximation — and records
    the A/B as ``BENCH_5.json``.  The compiled timing includes plan
    compilation (amortized over the whole build, as in production).
    """
    scale = os.environ.get("REPRO_SCALE", "smoke").lower()
    circuit_name, num_pairs = AB_WORKLOADS.get(scale, AB_WORKLOADS["smoke"])
    circuit = build_circuit(circuit_name)

    def build(kernel):
        analyzer = PowerAnalyzer(circuit, mode="unit", kernel=kernel)
        start = time.perf_counter()
        pop = FinitePopulation.build(
            lambda n, rng: random_vector_pairs(n, circuit.num_inputs, rng),
            analyzer.powers_for_pairs,
            num_pairs=num_pairs,
            seed=5,
            name=f"{circuit_name}-{kernel}",
        )
        return pop, time.perf_counter() - start

    pop_interp, interp_s = build("interp")
    pop_compiled, compiled_s = build("compiled")

    assert np.array_equal(pop_compiled.powers, pop_interp.powers), (
        "compiled kernel changed population powers"
    )
    speedup = interp_s / compiled_s
    payload = {
        "benchmark": "sim_kernel_ab",
        "circuit": circuit_name,
        "scale": scale,
        "num_pairs": num_pairs,
        "mode": "unit",
        "interp_seconds": interp_s,
        "compiled_seconds": compiled_s,
        "interp_pairs_per_s": num_pairs / interp_s,
        "compiled_pairs_per_s": num_pairs / compiled_s,
        "speedup": speedup,
        "powers_bit_identical": True,
    }
    (results_dir / "BENCH_5.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(
        f"\n{circuit_name} unit-delay build, {num_pairs} pairs: "
        f"interp {interp_s:.2f}s, compiled {compiled_s:.2f}s "
        f"({speedup:.1f}x)"
    )
    # Guard against regressions without being flaky on shared CI boxes;
    # the committed BENCH_5.json records the measured ratio.
    assert speedup >= 1.0, f"compiled kernel slower than interp ({speedup:.2f}x)"


# Three-tier workload per scale: (circuit, num_pairs, timed trials).
# Timings take the min over trials — the boxes this runs on are noisy
# and the minimum is the least-contended estimate of the true cost.
TIER_WORKLOADS = {
    "smoke": ("c880", 4096, 3),
    "ci": ("c7552", 8192, 8),
    "paper": ("c7552", 16384, 8),
}

# Batch sweep: fixed aggregate work split across N concurrent jobs.
BATCH_JOB_COUNTS = (1, 2, 4, 8)
BATCH_PAIRS_PER_JOB = 512


def _min_time(fn, trials):
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_tier_ab_and_batch_sweep(results_dir):
    """Interp vs compiled vs native, plus the cross-job batch sweep.

    Part one times ``powers_for_pairs`` on the same packed workload
    (same seed) per kernel tier and asserts all tiers produce
    float-identical powers — the native tier must be a pure speedup.
    Part two runs a fixed aggregate workload split across 1..8
    concurrent jobs twice: per-job dispatch (each thread calls the
    simulator directly) vs batched dispatch (all threads share one
    :class:`SimBatcher`), recording aggregate pairs/s for each point.
    Everything lands in ``BENCH_10.json``.
    """
    scale = os.environ.get("REPRO_SCALE", "smoke").lower()
    circuit_name, num_pairs, trials = TIER_WORKLOADS.get(
        scale, TIER_WORKLOADS["smoke"]
    )
    circuit = build_circuit(circuit_name)
    rng = np.random.default_rng(11)
    v1 = rng.integers(0, 2, size=(num_pairs, circuit.num_inputs), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(num_pairs, circuit.num_inputs), dtype=np.uint8)

    have_native = native_available()
    tiers = ["interp", "compiled"] + (["native"] if have_native else [])
    tier_results = {}
    reference = None
    for tier in tiers:
        analyzer = PowerAnalyzer(circuit, mode="unit", kernel=tier)
        powers = analyzer.powers_for_pairs(v1, v2)  # warm-up + identity
        if reference is None:
            reference = powers
        else:
            assert np.array_equal(reference, powers), (
                f"{tier} kernel changed powers"
            )
        # The interpreter is ~50x slower; one timed trial is plenty for
        # a tier that only provides the reference point.
        n = 1 if tier == "interp" else trials
        seconds = _min_time(lambda: analyzer.powers_for_pairs(v1, v2), n)
        tier_results[tier] = {
            "seconds": seconds,
            "pairs_per_s": num_pairs / seconds,
        }

    native_speedup = None
    if have_native:
        native_speedup = (
            tier_results["compiled"]["seconds"]
            / tier_results["native"]["seconds"]
        )

    # ------------------------------------------------------------------
    # Cross-job batch sweep (the service scenario: many small jobs).
    batch_kernel = "native" if have_native else "compiled"
    sweep = []
    for num_jobs in BATCH_JOB_COUNTS:
        pairs = [
            (
                rng.integers(0, 2, size=(BATCH_PAIRS_PER_JOB, circuit.num_inputs), dtype=np.uint8),
                rng.integers(0, 2, size=(BATCH_PAIRS_PER_JOB, circuit.num_inputs), dtype=np.uint8),
            )
            for _ in range(num_jobs)
        ]

        def run_jobs(analyzers):
            threads = [
                threading.Thread(
                    target=analyzers[i].powers_for_pairs, args=pairs[i]
                )
                for i in range(num_jobs)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        solo = [
            PowerAnalyzer(circuit, mode="unit", kernel=batch_kernel)
            for _ in range(num_jobs)
        ]
        batcher = SimBatcher()
        fused = [
            PowerAnalyzer(
                circuit, mode="unit", kernel=batch_kernel, batcher=batcher
            )
            for _ in range(num_jobs)
        ]
        run_jobs(solo)  # warm-up (plan/backend/buffers)
        run_jobs(fused)
        total = num_jobs * BATCH_PAIRS_PER_JOB
        solo_s = _min_time(lambda: run_jobs(solo), trials)
        fused_s = _min_time(lambda: run_jobs(fused), trials)
        sweep.append(
            {
                "jobs": num_jobs,
                "pairs_per_job": BATCH_PAIRS_PER_JOB,
                "per_job_seconds": solo_s,
                "batched_seconds": fused_s,
                "per_job_pairs_per_s": total / solo_s,
                "batched_pairs_per_s": total / fused_s,
                "batched_speedup": solo_s / fused_s,
            }
        )

    payload = {
        "benchmark": "sim_kernel_tiers",
        "circuit": circuit_name,
        "scale": scale,
        "num_pairs": num_pairs,
        "mode": "unit",
        "seed": 11,
        "native_backend": backend_name() if have_native else None,
        "tiers": tier_results,
        "native_vs_compiled_speedup": native_speedup,
        "powers_bit_identical": True,
        "batch_sweep": {
            "kernel": batch_kernel,
            "points": sweep,
        },
    }
    (results_dir / "BENCH_10.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    lines = ", ".join(
        f"{tier} {res['pairs_per_s']:.0f} pairs/s"
        for tier, res in tier_results.items()
    )
    print(f"\n{circuit_name} unit-delay, {num_pairs} pairs: {lines}")
    at_eight = next(p for p in sweep if p["jobs"] == 8)
    print(
        f"batch sweep @8 jobs: per-job {at_eight['per_job_pairs_per_s']:.0f}"
        f" vs batched {at_eight['batched_pairs_per_s']:.0f} pairs/s"
        f" ({at_eight['batched_speedup']:.2f}x)"
    )
    # Loose floors so shared CI boxes don't flake; the committed
    # BENCH_10.json records the measured ratios.
    if have_native:
        assert native_speedup >= 1.0, (
            f"native slower than compiled ({native_speedup:.2f}x)"
        )
    assert at_eight["batched_speedup"] >= 1.0, (
        "batched dispatch slower than per-job at 8 concurrent jobs "
        f"({at_eight['batched_speedup']:.2f}x)"
    )

"""Simulator throughput — what makes 2500-unit estimation cheap.

Measures pairs/second of the three power-simulation paths on one suite
circuit, plus the compiled-vs-interpreted kernel A/B on unit-delay
population builds (the artifact behind ``BENCH_5.json``).  The
bit-parallel paths are what let the experiment harness simulate
10^5-pair populations in seconds; the event-driven path is the
reference semantics.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.netlist.generators import build_circuit
from repro.sim.power import PowerAnalyzer
from repro.vectors.generators import random_vector_pairs
from repro.vectors.population import FinitePopulation

CIRCUIT = "c880"
PAIRS_FAST = 4096
PAIRS_EVENT = 32

# Kernel A/B workload per scale tier: (circuit, num_pairs).  The smoke
# tier keeps the interpreter's share of the run in CI seconds; ci/paper
# use the largest suite circuit (c7552, 3512 gates), where the active
# wavefront is a small fraction of the gate count and the compiled
# kernel's scheduling pays off most.
AB_WORKLOADS = {
    "smoke": ("c880", 2048),
    "ci": ("c7552", 8192),
    "paper": ("c7552", 16384),
}


@pytest.fixture(scope="module")
def workload():
    circuit = build_circuit(CIRCUIT)
    rng = np.random.default_rng(7)
    v1 = rng.integers(0, 2, size=(PAIRS_FAST, circuit.num_inputs), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(PAIRS_FAST, circuit.num_inputs), dtype=np.uint8)
    return circuit, v1, v2


def test_throughput_zero_delay(benchmark, workload):
    circuit, v1, v2 = workload
    analyzer = PowerAnalyzer(circuit, mode="zero")
    powers = benchmark(analyzer.powers_for_pairs, v1, v2)
    assert powers.shape == (PAIRS_FAST,)
    assert (powers > 0).any()


def test_throughput_unit_delay(benchmark, workload):
    circuit, v1, v2 = workload
    analyzer = PowerAnalyzer(circuit, mode="unit")
    powers = benchmark(analyzer.powers_for_pairs, v1, v2)
    assert powers.shape == (PAIRS_FAST,)


def test_throughput_event_driven(benchmark, workload):
    circuit, v1, v2 = workload
    analyzer = PowerAnalyzer(circuit, mode="event")
    powers = benchmark(
        analyzer.powers_for_pairs, v1[:PAIRS_EVENT], v2[:PAIRS_EVENT]
    )
    assert powers.shape == (PAIRS_EVENT,)


def test_kernel_ab_population_build(results_dir):
    """Compiled vs interpreted kernel on a unit-delay population build.

    Builds the same pool twice through :meth:`FinitePopulation.build`
    (the production path: chunked pair generation + PowerAnalyzer), once
    per kernel.  Asserts the pools are bit-identical — the compiled
    kernel must be a pure speedup, not an approximation — and records
    the A/B as ``BENCH_5.json``.  The compiled timing includes plan
    compilation (amortized over the whole build, as in production).
    """
    scale = os.environ.get("REPRO_SCALE", "smoke").lower()
    circuit_name, num_pairs = AB_WORKLOADS.get(scale, AB_WORKLOADS["smoke"])
    circuit = build_circuit(circuit_name)

    def build(kernel):
        analyzer = PowerAnalyzer(circuit, mode="unit", kernel=kernel)
        start = time.perf_counter()
        pop = FinitePopulation.build(
            lambda n, rng: random_vector_pairs(n, circuit.num_inputs, rng),
            analyzer.powers_for_pairs,
            num_pairs=num_pairs,
            seed=5,
            name=f"{circuit_name}-{kernel}",
        )
        return pop, time.perf_counter() - start

    pop_interp, interp_s = build("interp")
    pop_compiled, compiled_s = build("compiled")

    assert np.array_equal(pop_compiled.powers, pop_interp.powers), (
        "compiled kernel changed population powers"
    )
    speedup = interp_s / compiled_s
    payload = {
        "benchmark": "sim_kernel_ab",
        "circuit": circuit_name,
        "scale": scale,
        "num_pairs": num_pairs,
        "mode": "unit",
        "interp_seconds": interp_s,
        "compiled_seconds": compiled_s,
        "interp_pairs_per_s": num_pairs / interp_s,
        "compiled_pairs_per_s": num_pairs / compiled_s,
        "speedup": speedup,
        "powers_bit_identical": True,
    }
    (results_dir / "BENCH_5.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(
        f"\n{circuit_name} unit-delay build, {num_pairs} pairs: "
        f"interp {interp_s:.2f}s, compiled {compiled_s:.2f}s "
        f"({speedup:.1f}x)"
    )
    # Guard against regressions without being flaky on shared CI boxes;
    # the committed BENCH_5.json records the measured ratio.
    assert speedup >= 1.0, f"compiled kernel slower than interp ({speedup:.2f}x)"

"""Estimation-loop throughput — the Table 1-4 / Figure 2 hot path.

A Table-1-style experiment repeats the full iterative estimator 100
times per circuit.  The repetitions are independent, so
:func:`repro.estimation.run_many` shards them over worker processes
while keeping results bit-for-bit identical to a serial run (per-run
streams are spawned from the base seed independently of the worker
count).

Two checks here:

* **identity** — serial and parallel runs with the same base seed
  produce exactly the same estimates and unit counts (always asserted);
* **speedup** — with >= 2 CPUs, ``workers = cpu_count`` completes the
  100-run experiment >= 2x faster than serial (skipped on single-core
  machines, where process-pool overhead can only lose).

The population is a synthetic Weibull pool, so the benchmark times the
estimation loop itself rather than circuit simulation (covered by
``bench_sim_throughput.py``).
"""

import os
import time

import numpy as np
import pytest

from repro.estimation import MaxPowerEstimator, run_many
from repro.evt.distributions import GeneralizedWeibull
from repro.vectors.population import FinitePopulation

NUM_RUNS = 100
BASE_SEED = 1998
POOL_SIZE = 20_000


@pytest.fixture(scope="module")
def estimator():
    dist = GeneralizedWeibull.from_scale(alpha=4.0, scale=0.3, mu=1.0)
    powers = np.clip(dist.rvs(POOL_SIZE, rng=0), 0.0, None)
    pop = FinitePopulation(powers, name="synthetic-weibull")
    return MaxPowerEstimator(pop, error=0.05, confidence=0.90)


def _timed(estimator, workers):
    start = time.perf_counter()
    results = run_many(
        estimator, NUM_RUNS, base_seed=BASE_SEED, workers=workers
    )
    return time.perf_counter() - start, results


def test_serial_and_parallel_runs_identical(estimator):
    _, serial = _timed(estimator, workers=1)
    _, parallel = _timed(estimator, workers=2)
    assert [r.estimate for r in serial] == [r.estimate for r in parallel]
    assert [r.units_used for r in serial] == [r.units_used for r in parallel]
    assert [r.converged for r in serial] == [r.converged for r in parallel]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup needs >= 2 CPUs",
)
def test_parallel_speedup(estimator):
    workers = os.cpu_count()
    serial_time, serial = _timed(estimator, workers=1)
    parallel_time, parallel = _timed(estimator, workers=workers)
    speedup = serial_time / parallel_time
    print(
        f"\n{NUM_RUNS}-run experiment: serial {serial_time:.2f}s, "
        f"{workers} workers {parallel_time:.2f}s -> {speedup:.2f}x"
    )
    assert [r.estimate for r in serial] == [r.estimate for r in parallel]
    # 2x is the theoretical ceiling on a 2-core machine, so the full
    # >= 2x bar applies from 3 cores up.
    assert speedup >= (2.0 if workers >= 3 else 1.4)


def test_serial_loop_throughput(benchmark, estimator):
    """Reference number: serial runs/second of the full estimator."""
    results = benchmark.pedantic(
        lambda: run_many(estimator, 10, base_seed=BASE_SEED, workers=1),
        iterations=1,
        rounds=3,
    )
    assert len(results) == 10

"""Shoot-out: the EVT estimator vs every implemented baseline.

On one population this compares, at comparable unit budgets:

* the paper's extreme-order-statistics estimator (confidence-guided);
* simple random sampling (SRS) at the same budget;
* high-quantile estimation ([9][10]-style order statistics);
* genetic vector search ([8]-style, K2);
* continuous-relaxation gradient search ([7]-style, COSMOS);
* the structural uncertainty upper bound ([1]-style).

Only the EVT estimator both brackets the true maximum and certifies its
own accuracy; search techniques return uncertified lower bounds and the
structural bound a loose upper bound.

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro import (
    FinitePopulation,
    GeneticMaxPowerSearch,
    HighQuantileEstimator,
    MaxPowerEstimator,
    PowerAnalyzer,
    SimpleRandomSampling,
    UncertaintyBound,
    build_circuit,
    high_activity_vector_pairs,
)
from repro.estimation import ContinuousMaxPowerSearch


def main() -> None:
    circuit = build_circuit("c1355")
    analyzer = PowerAnalyzer(circuit, mode="zero")
    population = FinitePopulation.build(
        lambda n, rng: high_activity_vector_pairs(
            n, circuit.num_inputs, rng=rng
        ),
        analyzer.powers_for_pairs,
        num_pairs=20_000,
        seed=5,
        name="c1355-unconstrained",
    )
    actual = population.actual_max_power
    print(f"circuit: {circuit.stats()}")
    print(f"true maximum power: {actual * 1e3:.3f} mW\n")
    print(f"{'method':34}{'estimate':>12}{'err':>9}{'units':>8}  guarantees")

    def report(name, estimate, units, guarantee):
        err = (estimate - actual) / actual
        print(
            f"{name:34}{estimate * 1e3:9.3f} mW{err:+8.1%}{units:>8}  "
            f"{guarantee}"
        )

    # 1. EVT estimator (this paper).
    result = MaxPowerEstimator(population).run(rng=1)
    report(
        "EVT + MLE (this paper)",
        result.estimate,
        result.units_used,
        f"CI at 90%: [{result.interval.low*1e3:.3f}, "
        f"{result.interval.high*1e3:.3f}] mW",
    )

    budget = result.units_used

    # 2. Peaks-over-threshold — the modern EVT alternative.
    from repro.estimation import PeaksOverThresholdEstimator

    pot = PeaksOverThresholdEstimator(population).run(rng=10)
    report(
        "peaks-over-threshold (GPD)",
        pot.estimate,
        pot.units_used,
        f"CI at 90%: [{pot.interval.low*1e3:.3f}, "
        f"{pot.interval.high*1e3:.3f}] mW",
    )

    # 3. SRS at the same budget.
    srs_est = SimpleRandomSampling(population).estimate_max(budget, rng=2)
    report("simple random sampling", srs_est, budget, "none (lower bound)")

    # 3. High-quantile estimation at the same budget.
    q_est = HighQuantileEstimator(population).estimate(budget, rng=3)
    report(
        f"quantile estimation (q={q_est.q:.5f})",
        q_est.point,
        budget,
        f"quantile CI: [{q_est.low*1e3:.3f}, {q_est.high*1e3:.3f}] mW",
    )

    # 4. Genetic search with a similar simulation budget.
    generations = max(1, budget // 64 - 1)
    ga = GeneticMaxPowerSearch(
        analyzer.powers_for_pairs,
        circuit.num_inputs,
        population_size=64,
        generations=generations,
    )
    ga_result = ga.run(rng=4)
    report(
        "genetic search (K2-style)",
        ga_result.best_power,
        ga_result.units_used,
        "none (lower bound)",
    )

    # 5. Continuous-relaxation gradient search (COSMOS-style).
    cosmos = ContinuousMaxPowerSearch(
        circuit, analyzer.powers_for_pairs, iterations=10, samples=512
    )
    cosmos_result = cosmos.run(rng=5)
    report(
        "continuous optimization",
        cosmos_result.best_power,
        cosmos_result.units_used,
        "none (lower bound)",
    )

    # 6. Structural upper bound (no simulation at all).
    bound = UncertaintyBound(circuit).power_bound()
    report(
        "uncertainty propagation bound",
        bound,
        0,
        f"upper bound ({bound / actual:.1f}x the actual max)",
    )


if __name__ == "__main__":
    main()

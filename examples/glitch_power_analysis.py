"""Delay models, glitches, and the max-delay extension (paper §V).

The paper's method is simulation-based precisely so it is not limited to
simple delay models.  This example makes that concrete on an 8x8 array
multiplier (the famously glitchy C6288 topology):

1. one vector pair simulated under zero-delay, unit-delay and
   library-delay (event-driven) models — the glitch power gap;
2. population-level comparison of zero- vs unit-delay maximum power;
3. the §V extension: statistical estimation of the maximum *dynamic
   delay*, compared with the static-timing upper bound.

Run:  python examples/glitch_power_analysis.py
"""

import numpy as np

from repro import (
    EventDrivenSimulator,
    FinitePopulation,
    LibraryDelay,
    MaxDelayEstimator,
    MaxPowerEstimator,
    PowerAnalyzer,
    UnitDelay,
    random_vector_pairs,
)
from repro.netlist.generators import array_multiplier


def main() -> None:
    circuit = array_multiplier(8)
    print(f"circuit: {circuit.stats()}\n")

    rng = np.random.default_rng(9)
    v1, v2 = random_vector_pairs(1, circuit.num_inputs, rng)
    v1, v2 = v1[0], v2[0]

    print("one vector pair under three delay models:")
    for mode, label in (("zero", "zero-delay (no glitches)"),
                        ("unit", "unit-delay (vectorized)")):
        analyzer = PowerAnalyzer(circuit, mode=mode)
        bd = analyzer.pair_power(v1, v2)
        print(f"  {label:28}: {bd.power_mw:7.3f} mW")
    analyzer_ev = PowerAnalyzer(circuit, mode="event")
    bd_ev = analyzer_ev.pair_power(v1, v2)
    print(
        f"  {'library-delay event-driven':28}: {bd_ev.power_mw:7.3f} mW "
        f"(settles at {bd_ev.settle_time:.0f} ps)"
    )
    sim = EventDrivenSimulator(circuit, UnitDelay())
    res = sim.simulate_pair(v1, v2)
    print(
        f"  unit-delay transitions: {res.total_toggles()} "
        f"({res.glitch_count(circuit)} are hazard/glitch activity)\n"
    )

    print("population maxima, zero- vs unit-delay (4000 pairs):")
    for mode in ("zero", "unit"):
        analyzer = PowerAnalyzer(circuit, mode=mode)
        pop = FinitePopulation.build(
            lambda n, g: random_vector_pairs(n, circuit.num_inputs, g),
            analyzer.powers_for_pairs,
            num_pairs=4_000,
            seed=17,
            name=f"mult8-{mode}",
        )
        result = MaxPowerEstimator(pop).run(rng=3)
        print(
            f"  {mode:5}: true max {pop.actual_max_power*1e3:7.3f} mW, "
            f"estimated {result.estimate*1e3:7.3f} mW "
            f"({result.units_used} units)"
        )
    print("  -> glitching raises both the maximum and the estimate;")
    print("     the estimator is oblivious to the delay model, as claimed.\n")

    print("max dynamic delay (paper §V extension), library delay model:")
    estimator = MaxDelayEstimator(
        circuit, LibraryDelay(), n=20, m=5, max_hyper_samples=8
    )
    delay_result = estimator.run(rng=23)
    static = estimator.static_bound()
    print(f"  statistical estimate: {delay_result.estimate:8.0f} ps "
          f"(units={delay_result.units_used})")
    print(f"  static timing bound : {static:8.0f} ps")
    print("  -> STA is a hard upper bound (the estimator clips to it); the")
    print("     statistical estimate tracks the input-reachable (dynamic)")
    print("     critical delay from below.")


if __name__ == "__main__":
    main()

"""Quickstart: estimate a circuit's maximum power with error/confidence.

Builds the c432-like benchmark circuit, simulates a finite population of
high-activity vector pairs (the paper's category I.1 setup), and runs
the extreme-order-statistics estimator for a 5 % error bound at 90 %
confidence.  Because the pool is fully simulated, the true maximum is
known and the estimate can be checked against it.

Run:  python examples/quickstart.py
"""

from repro import (
    FinitePopulation,
    MaxPowerEstimator,
    PowerAnalyzer,
    build_circuit,
    high_activity_vector_pairs,
)


def main() -> None:
    circuit = build_circuit("c432")
    print(f"circuit: {circuit.stats()}")

    # Cycle-power simulator (zero-delay switched capacitance @ 50 MHz).
    analyzer = PowerAnalyzer(circuit, mode="zero")

    # Population: 20k random vector pairs with input activity > 0.3.
    population = FinitePopulation.build(
        lambda count, rng: high_activity_vector_pairs(
            count, circuit.num_inputs, min_activity=0.3, rng=rng
        ),
        analyzer.powers_for_pairs,
        num_pairs=20_000,
        seed=1,
        name="c432-unconstrained",
    )
    print(
        f"population: |V|={population.size}, "
        f"mean={population.mean_power * 1e3:.3f} mW, "
        f"true max={population.actual_max_power * 1e3:.3f} mW, "
        f"qualified portion Y={population.qualified_portion():.2e}"
    )

    # The paper's estimator: n=30, m=10, iterate hyper-samples until the
    # t-interval half-width is within 5% at 90% confidence.
    estimator = MaxPowerEstimator(population, error=0.05, confidence=0.90)
    result = estimator.run(rng=2024)

    print(result.summary())
    print(
        f"estimate {result.estimate * 1e3:.3f} mW in "
        f"[{result.interval.low * 1e3:.3f}, {result.interval.high * 1e3:.3f}] mW"
    )
    print(
        f"true relative error: "
        f"{result.relative_error(population.actual_max_power):+.2%} "
        f"using {result.units_used} simulated vector pairs "
        f"(vs {population.size} for exhaustive simulation)"
    )


if __name__ == "__main__":
    main()

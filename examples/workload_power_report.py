"""Workload-driven power analysis: traces, reports, max/avg ratio.

A realistic flow around the estimator: drive the c880-like ALU with a
temporally correlated input *stream* (not isolated pairs), look at the
cycle-by-cycle power trace, generate the per-net power report a designer
reads, estimate average power with a CLT stopping rule, and finally put
the maximum-power estimate in context as the max/avg ratio — the number
used to size power grids.

Run:  python examples/workload_power_report.py
"""

import numpy as np

from repro import (
    FinitePopulation,
    MaxPowerEstimator,
    PowerAnalyzer,
    build_circuit,
)
from repro.analysis import power_report
from repro.estimation import AveragePowerEstimator
from repro.vectors import markov_vector_sequence, sequence_to_pairs


def main() -> None:
    circuit = build_circuit("c880")
    analyzer = PowerAnalyzer(circuit, mode="zero")
    print(f"circuit: {circuit.stats()}\n")

    # A 20k-cycle stream where each input line toggles with prob 0.4.
    stream = markov_vector_sequence(
        20_001, circuit.num_inputs, transition_probs=0.4, rng=3
    )
    v1, v2 = sequence_to_pairs(stream)
    trace = analyzer.powers_for_pairs(v1, v2)
    print(
        f"power trace over {trace.size} cycles: "
        f"mean={trace.mean() * 1e3:.3f} mW, "
        f"p99={np.quantile(trace, 0.99) * 1e3:.3f} mW, "
        f"max seen={trace.max() * 1e3:.3f} mW\n"
    )

    # Designer-facing report: who burns the power?
    report = power_report(circuit, v1[:5000], v2[:5000])
    print(report.render(top_count=8))
    print()

    # Treat the stream-induced pairs as the population (category I.2 with
    # a temporal-correlation flavour) and estimate both statistics.
    population = FinitePopulation(
        trace, v1, v2, name="c880-stream(t=0.4)"
    )
    avg = AveragePowerEstimator(population, error=0.02).run(rng=5)
    mx = MaxPowerEstimator(population, error=0.05, confidence=0.90).run(rng=7)
    print(avg.summary())
    print(mx.summary())
    ratio = mx.estimate / avg.estimate
    print(
        f"\nmax/avg power ratio ≈ {ratio:.2f} — "
        f"estimated from {avg.units_used + mx.units_used} sampled cycles "
        f"instead of exhaustive simulation"
    )
    print(
        f"(ground truth: max/avg = "
        f"{population.actual_max_power / population.mean_power:.2f})"
    )


if __name__ == "__main__":
    main()

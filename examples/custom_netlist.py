"""Bring your own netlist: ISCAS85 .bench and structural Verilog I/O.

Shows the interchange path a real user takes: author (or drop in) an
ISCAS85-format ``.bench`` netlist, load it, analyze it, estimate its
maximum power, and export it as structural Verilog for other tools.
If you have the authentic ISCAS85 benchmark files, point ``load_bench``
at them and every experiment in this package runs on the real circuits.

Run:  python examples/custom_netlist.py
"""

import tempfile
from pathlib import Path

from repro import (
    FinitePopulation,
    MaxPowerEstimator,
    PowerAnalyzer,
    load_bench,
    random_vector_pairs,
    write_verilog,
)
from repro.analysis import expected_power

# The classic c17 netlist, verbatim in ISCAS85 .bench format.
C17_BENCH = """
# c17 — smallest ISCAS85 benchmark
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        bench_path = Path(tmp) / "c17.bench"
        bench_path.write_text(C17_BENCH)

        circuit = load_bench(bench_path)
        print(f"loaded: {circuit.stats()}")

        # Exhaustive truth check is feasible at 5 inputs: enumerate all
        # 1024 vector pairs — the "population" is literally complete.
        analyzer = PowerAnalyzer(circuit, mode="unit")
        import itertools

        import numpy as np

        vectors = np.array(
            list(itertools.product([0, 1], repeat=circuit.num_inputs)),
            dtype=np.uint8,
        )
        pairs = np.array(
            list(itertools.product(range(len(vectors)), repeat=2))
        )
        v1, v2 = vectors[pairs[:, 0]], vectors[pairs[:, 1]]
        powers = analyzer.powers_for_pairs(v1, v2)
        true_max = powers.max()
        print(
            f"exhaustive: {len(powers)} vector pairs, "
            f"true max power = {true_max * 1e6:.2f} uW"
        )

        pop = FinitePopulation(
            powers, v1, v2, name="c17-exhaustive"
        )
        result = MaxPowerEstimator(pop, n=16, m=5).run(rng=4)
        print(result.summary())
        print(
            f"estimate vs exhaustive truth: "
            f"{result.relative_error(true_max):+.2%}"
        )

        # Analytical average power via probability propagation.
        p_avg = expected_power(
            circuit,
            {net: 0.5 for net in circuit.inputs},
            {net: 0.5 for net in circuit.inputs},
        )
        print(
            f"analytical expected power @ p=0.5/t=0.5: {p_avg * 1e6:.2f} uW "
            f"(simulated mean {powers.mean() * 1e6:.2f} uW)"
        )

        # Export for other flows.
        verilog = write_verilog(circuit)
        print("\nstructural Verilog export:\n")
        print(verilog)


if __name__ == "__main__":
    main()

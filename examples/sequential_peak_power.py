"""Sequential peak power: the paper's machinery on a state machine.

The DAC-1998 method targets combinational circuits, but its reference
[4] (Manne et al.) asks the sequential question: what is the maximum
power of any *cycle* — any (state, input) transition — of a state
machine?  With the sequential substrate in this package the same
statistical estimator answers it:

1. build a sequential circuit (an 8-bit loadable counter/accumulator);
2. sample cycles by running many random input streams from random
   states on the vectorized multi-cycle simulator;
3. feed the per-cycle switched-capacitance values to the
   extreme-order-statistics estimator;
4. cross-check via time-frame unrolling: a k-cycle window of the
   machine is just a combinational circuit, so the combinational
   pipeline applies verbatim.

Run:  python examples/sequential_peak_power.py
"""

import numpy as np

from repro import FinitePopulation, MaxPowerEstimator, default_library
from repro.netlist.gates import GateType
from repro.netlist.sequential import SequentialCircuit


def build_accumulator(width: int = 8) -> SequentialCircuit:
    """Accumulator: state += input when en, else hold."""
    s = SequentialCircuit(f"acc{width}")
    for i in range(width):
        s.add_input(f"in{i}")
    s.add_input("en")
    for i in range(width):
        s.add_flop(f"q{i}", d=f"d{i}")
    carry = None
    for i in range(width):
        a, b = f"q{i}", f"in{i}"
        s.add_gate(f"x{i}", GateType.XOR, [a, b])
        if carry is None:
            s.add_gate(f"sum{i}", GateType.BUF, [f"x{i}"])
            s.add_gate(f"c{i}", GateType.AND, [a, b])
        else:
            s.add_gate(f"sum{i}", GateType.XOR, [f"x{i}", carry])
            s.add_gate(f"ab{i}", GateType.AND, [a, b])
            s.add_gate(f"xc{i}", GateType.AND, [f"x{i}", carry])
            s.add_gate(f"c{i}", GateType.OR, [f"ab{i}", f"xc{i}"])
        carry = f"c{i}"
        # d = en ? sum : q
        s.add_gate(f"d{i}", GateType.MUX, ["en", f"q{i}", f"sum{i}"])
    s.set_outputs([f"q{i}" for i in range(width)])
    s.finalize()
    return s


def main() -> None:
    acc = build_accumulator(8)
    print(f"machine: {acc}")

    lib = default_library()
    caps_ff = lib.all_net_capacitances(acc.core)
    from repro.sim.bitsim import BitParallelSimulator

    order = BitParallelSimulator(acc.core).net_order
    caps_f = np.array([caps_ff[n] * 1e-15 for n in order])
    freq = 50e6
    scale = 0.5 * lib.vdd ** 2 * freq

    # Sample the cycle space: 256 lanes x 80 cycles of random inputs
    # from random initial states = ~20k cycle transitions.
    rng = np.random.default_rng(7)
    lanes, cycles = 256, 81
    stream = rng.integers(0, 2, size=(cycles, lanes, 9)).astype(np.uint8)
    init = rng.integers(0, 2, size=(lanes, 8)).astype(np.uint8)
    _, _, energies = acc.simulate(stream, initial_state=init, net_caps=caps_f)
    cycle_powers = (energies[1:] * scale).ravel()  # skip the warm-up frame
    print(
        f"sampled {cycle_powers.size} cycles: mean "
        f"{cycle_powers.mean() * 1e3:.3f} mW, observed max "
        f"{cycle_powers.max() * 1e3:.3f} mW"
    )

    pop = FinitePopulation(cycle_powers, name="acc8-cycles")
    result = MaxPowerEstimator(pop, error=0.05, confidence=0.90).run(rng=3)
    print(result.summary())
    print(
        f"estimate vs pool max: "
        f"{result.relative_error(pop.actual_max_power):+.2%}\n"
    )

    # Cross-check: a 3-cycle window as pure combinational logic.
    window = acc.unroll(3)
    print(
        f"3-cycle unrolled window: {window.num_inputs} inputs, "
        f"{window.num_gates} gates — any combinational tool applies:"
    )
    from repro import PowerAnalyzer, high_activity_vector_pairs

    analyzer = PowerAnalyzer(window, mode="zero")
    wpop = FinitePopulation.build(
        lambda n, g: high_activity_vector_pairs(n, window.num_inputs, rng=g),
        analyzer.powers_for_pairs,
        num_pairs=8000,
        seed=11,
        name="acc8-window3",
    )
    wresult = MaxPowerEstimator(wpop).run(rng=13)
    print(wresult.summary())


if __name__ == "__main__":
    main()

"""Constrained maximum power (category I.2): transition-probability specs.

The paper's second problem class: the input space is restricted by a
per-line transition-probability specification.  This example estimates
the maximum power of the c880-like ALU under three input environments —
a hot bus (t = 0.7), a quiet bus (t = 0.3), and a spatially correlated
bus (neighbouring lines toggle together) — and shows how the attainable
maximum and the estimation cost change with the constraint.

Run:  python examples/constrained_estimation.py
"""

import numpy as np

from repro import (
    FinitePopulation,
    MaxPowerEstimator,
    PowerAnalyzer,
    build_circuit,
    markov_transition_vector_pairs,
    transition_prob_vector_pairs,
)
from repro.vectors import mean_activity


def build_pool(circuit, analyzer, name, generator, size=10_000, seed=7):
    pop = FinitePopulation.build(
        generator, analyzer.powers_for_pairs, num_pairs=size, seed=seed,
        name=name,
    )
    activity = mean_activity(pop.v1, pop.v2)
    print(
        f"{name:22} |V|={pop.size}  avg input activity={activity:.2f}  "
        f"true max={pop.actual_max_power * 1e3:7.3f} mW  "
        f"Y={pop.qualified_portion():.2e}"
    )
    return pop


def main() -> None:
    circuit = build_circuit("c880")
    analyzer = PowerAnalyzer(circuit, mode="zero")
    ni = circuit.num_inputs
    print(f"circuit: {circuit.stats()}\n")

    pools = {
        "high activity (0.7)": build_pool(
            circuit, analyzer, "high activity (0.7)",
            lambda n, rng: transition_prob_vector_pairs(n, ni, 0.7, rng=rng),
        ),
        "low activity (0.3)": build_pool(
            circuit, analyzer, "low activity (0.3)",
            lambda n, rng: transition_prob_vector_pairs(n, ni, 0.3, rng=rng),
        ),
        "correlated (0.5/0.9)": build_pool(
            circuit, analyzer, "correlated (0.5/0.9)",
            lambda n, rng: markov_transition_vector_pairs(
                n, ni, base_prob=0.5, correlation=0.9, rng=rng
            ),
        ),
    }

    print("\nestimating maximum power per environment (eps=5%, l=90%):")
    rng = np.random.default_rng(11)
    for name, pop in pools.items():
        result = MaxPowerEstimator(pop).run(rng=rng)
        err = result.relative_error(pop.actual_max_power)
        print(
            f"{name:22} est={result.estimate * 1e3:7.3f} mW  "
            f"units={result.units_used:5d}  true err={err:+.2%}  "
            f"{'converged' if result.converged else 'NOT converged'}"
        )

    print(
        "\nnote: lower-activity constraints thin the qualified tail (smaller"
        " Y), which is exactly why the paper's Table 4 needs more units than"
        " Table 3."
    )


if __name__ == "__main__":
    main()

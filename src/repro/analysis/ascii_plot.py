"""Dependency-free ASCII line plots.

The figure experiments reproduce the paper's *curves* (empirical vs
fitted CDFs), not just their summary numbers; this module renders those
series directly in a terminal so ``repro-power experiment figure1``
shows an actual figure without any plotting dependency.  The exported
CSV series remain the way to make publication plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = ["line_plot"]

_MARKERS = "*+ox#@%&"


def line_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one shared-axis character grid.

    Parameters
    ----------
    series:
        Mapping label -> (x values, y values); each series gets its own
        marker, later series overwrite earlier ones on collisions.
    width, height:
        Plot area size in characters (axes add a margin).
    x_label, y_label:
        Optional axis captions.

    Returns
    -------
    str
        The plot plus a legend, ready to print.
    """
    if not series:
        raise ConfigError("need at least one series")
    if width < 8 or height < 4:
        raise ConfigError("width must be >= 8 and height >= 4")
    if len(series) > len(_MARKERS):
        raise ConfigError(f"at most {len(_MARKERS)} series supported")

    all_x: List[float] = []
    all_y: List[float] = []
    cleaned: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for label, (xs, ys) in series.items():
        xa = np.asarray(xs, dtype=np.float64)
        ya = np.asarray(ys, dtype=np.float64)
        if xa.shape != ya.shape or xa.ndim != 1 or xa.size == 0:
            raise ConfigError(f"series {label!r} must be equal 1-D arrays")
        keep = np.isfinite(xa) & np.isfinite(ya)
        xa, ya = xa[keep], ya[keep]
        if xa.size == 0:
            raise ConfigError(f"series {label!r} has no finite points")
        cleaned[label] = (xa, ya)
        all_x.extend(xa)
        all_y.extend(ya)

    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, (xa, ya)) in zip(_MARKERS, cleaned.items()):
        cols = np.clip(
            ((xa - x_lo) / x_span * (width - 1)).round().astype(int),
            0,
            width - 1,
        )
        rows = np.clip(
            ((ya - y_lo) / y_span * (height - 1)).round().astype(int),
            0,
            height - 1,
        )
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    y_hi_txt = f"{y_hi:.3g}"
    y_lo_txt = f"{y_lo:.3g}"
    margin = max(len(y_hi_txt), len(y_lo_txt)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_hi_txt.rjust(margin)
        elif i == height - 1:
            prefix = y_lo_txt.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}".rjust(8)
    lines.append(" " * (margin + 1) + x_axis)
    if x_label or y_label:
        lines.append(
            " " * (margin + 1)
            + (f"x: {x_label}  " if x_label else "")
            + (f"y: {y_label}" if y_label else "")
        )
    legend = "   ".join(
        f"{marker} {label}"
        for marker, label in zip(_MARKERS, cleaned)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)

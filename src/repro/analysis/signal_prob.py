"""Probabilistic signal and transition analysis.

Classic probabilistic power analysis substrate (Najm-style): propagate
per-net probabilities through the gate DAG under the spatial
independence assumption.

Two propagation modes:

* :func:`signal_probabilities` — static ``P(net = 1)``.
* :func:`pair_probabilities` — joint probabilities of a net's value in
  the two half-cycles of a vector pair, ``(P00, P01, P10, P11)``.  A
  gate's output joint distribution is computed *exactly* from its input
  joints (given independence), so per-net transition probabilities
  ``P01 + P10`` — and from them the expected switched capacitance — come
  out in one topological pass.

This is the analytical engine behind the continuous-optimization
baseline (paper reference [7], COSMOS) in
:mod:`repro.estimation.gradient`, and a useful average-power estimator
in its own right.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..netlist.circuit import Circuit
from ..netlist.gates import GateType
from ..netlist.library import CellLibrary, default_library

__all__ = [
    "signal_probabilities",
    "pair_probabilities",
    "transition_probabilities",
    "expected_switched_capacitance",
    "expected_power",
    "PairProb",
]

#: Joint distribution of one net over the two half-cycles:
#: ``(P00, P01, P10, P11)`` with P01 = P(val1=0, val2=1) etc.
PairProb = Tuple[float, float, float, float]


def _check_prob(p: float, what: str) -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ConfigError(f"{what} must be in [0, 1], got {p}")
    return p


# ----------------------------------------------------------------------
# static signal probability
# ----------------------------------------------------------------------
def _combine_static(gtype: GateType, probs: Sequence[float]) -> float:
    if gtype is GateType.AND:
        return float(np.prod(probs))
    if gtype is GateType.NAND:
        return 1.0 - float(np.prod(probs))
    if gtype is GateType.OR:
        return 1.0 - float(np.prod([1.0 - p for p in probs]))
    if gtype is GateType.NOR:
        return float(np.prod([1.0 - p for p in probs]))
    if gtype in (GateType.XOR, GateType.XNOR):
        acc = probs[0]
        for p in probs[1:]:
            acc = acc * (1.0 - p) + p * (1.0 - acc)
        return acc if gtype is GateType.XOR else 1.0 - acc
    if gtype is GateType.NOT:
        return 1.0 - probs[0]
    if gtype is GateType.BUF:
        return probs[0]
    if gtype is GateType.MUX:
        ps, p0, p1 = probs
        return (1.0 - ps) * p0 + ps * p1
    if gtype is GateType.CONST0:
        return 0.0
    if gtype is GateType.CONST1:
        return 1.0
    raise ConfigError(f"cannot propagate through {gtype}")


def signal_probabilities(
    circuit: Circuit, input_probs: Mapping[str, float]
) -> Dict[str, float]:
    """``P(net = 1)`` for every net under input independence.

    ``input_probs`` maps every primary input to its 1-probability.
    Accuracy degrades with reconvergent fanout (the classical
    limitation); exactness on trees is tested.
    """
    probs: Dict[str, float] = {}
    for net in circuit.inputs:
        if net not in input_probs:
            raise ConfigError(f"missing probability for input {net!r}")
        probs[net] = _check_prob(input_probs[net], f"P({net})")
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        probs[name] = _combine_static(
            gate.gtype, [probs[f] for f in gate.fanin]
        )
    return probs


# ----------------------------------------------------------------------
# vector-pair joint probability
# ----------------------------------------------------------------------
def _pair_from_static(p1: float, toggle: float) -> PairProb:
    """Input-line joint from P(v1=1) and the toggle probability."""
    p1 = _check_prob(p1, "p1")
    toggle = _check_prob(toggle, "toggle")
    p0 = 1.0 - p1
    return (
        p0 * (1.0 - toggle),  # 0 -> 0
        p0 * toggle,          # 0 -> 1
        p1 * toggle,          # 1 -> 0
        p1 * (1.0 - toggle),  # 1 -> 1
    )


def _apply_boolean(
    gtype: GateType, bits: Sequence[Tuple[int, int]]
) -> Tuple[int, int]:
    """Evaluate the gate on each half-cycle of concrete bit pairs."""
    from ..netlist.gates import eval_gate

    v1 = eval_gate(gtype, [b[0] for b in bits])
    v2 = eval_gate(gtype, [b[1] for b in bits])
    return v1, v2


def _combine_pair(gtype: GateType, joints: Sequence[PairProb]) -> PairProb:
    """Exact output joint from independent input joints.

    Folds inputs pairwise for the associative n-ary gates, enumerating
    the 4x4 combinations; MUX is handled with a single 4x4x4
    enumeration.
    """
    if gtype is GateType.CONST0:
        return (1.0, 0.0, 0.0, 0.0)
    if gtype is GateType.CONST1:
        return (0.0, 0.0, 0.0, 1.0)
    if gtype is GateType.BUF:
        return joints[0]
    if gtype is GateType.NOT:
        p00, p01, p10, p11 = joints[0]
        return (p11, p10, p01, p00)

    _PAIRS = ((0, 0), (0, 1), (1, 0), (1, 1))

    if gtype is GateType.MUX:
        out = [0.0, 0.0, 0.0, 0.0]
        for i, sel in enumerate(_PAIRS):
            for j, d0 in enumerate(_PAIRS):
                for k, d1 in enumerate(_PAIRS):
                    w = joints[0][i] * joints[1][j] * joints[2][k]
                    if w == 0.0:
                        continue
                    v1, v2 = _apply_boolean(gtype, [sel, d0, d1])
                    out[2 * v1 + v2] += w
        return tuple(out)  # type: ignore[return-value]

    if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR):
        base = {
            GateType.NAND: GateType.AND,
            GateType.NOR: GateType.OR,
            GateType.XNOR: GateType.XOR,
        }[gtype]
        p00, p01, p10, p11 = _combine_pair(base, joints)
        return (p11, p10, p01, p00)

    # Associative fold for AND / OR / XOR.
    acc = joints[0]
    for nxt in joints[1:]:
        out = [0.0, 0.0, 0.0, 0.0]
        for i, a in enumerate(_PAIRS):
            if acc[i] == 0.0:
                continue
            for j, b in enumerate(_PAIRS):
                w = acc[i] * nxt[j]
                if w == 0.0:
                    continue
                v1, v2 = _apply_boolean(gtype, [a, b])
                out[2 * v1 + v2] += w
        acc = tuple(out)  # type: ignore[assignment]
    return acc


def pair_probabilities(
    circuit: Circuit,
    input_p1: Mapping[str, float],
    input_toggle: Mapping[str, float],
) -> Dict[str, PairProb]:
    """Joint (v1, v2) distribution of every net.

    Parameters
    ----------
    input_p1:
        P(v1 = 1) per primary input.
    input_toggle:
        Per-input transition probability (category I.2 specification).
    """
    joints: Dict[str, PairProb] = {}
    for net in circuit.inputs:
        if net not in input_p1 or net not in input_toggle:
            raise ConfigError(f"missing pair spec for input {net!r}")
        joints[net] = _pair_from_static(input_p1[net], input_toggle[net])
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        joints[name] = _combine_pair(
            gate.gtype, [joints[f] for f in gate.fanin]
        )
    return joints


def transition_probabilities(
    circuit: Circuit,
    input_p1: Mapping[str, float],
    input_toggle: Mapping[str, float],
) -> Dict[str, float]:
    """Per-net toggle probability ``P01 + P10`` (zero-delay)."""
    joints = pair_probabilities(circuit, input_p1, input_toggle)
    return {net: j[1] + j[2] for net, j in joints.items()}


def expected_switched_capacitance(
    circuit: Circuit,
    input_p1: Mapping[str, float],
    input_toggle: Mapping[str, float],
    library: Optional[CellLibrary] = None,
) -> float:
    """Expected switched capacitance (farads) of one vector pair."""
    library = library if library is not None else default_library()
    toggles = transition_probabilities(circuit, input_p1, input_toggle)
    caps = library.all_net_capacitances(circuit)
    return sum(
        caps[net] * 1e-15 * toggles[net] for net in circuit.nets
    )


def expected_power(
    circuit: Circuit,
    input_p1: Mapping[str, float],
    input_toggle: Mapping[str, float],
    library: Optional[CellLibrary] = None,
    frequency_hz: float = 50e6,
) -> float:
    """Analytical expected cycle power (watts), zero-delay model."""
    library = library if library is not None else default_library()
    cap = expected_switched_capacitance(
        circuit, input_p1, input_toggle, library
    )
    return 0.5 * library.vdd ** 2 * cap * frequency_hz

"""Circuit power reports: where the watts go.

Aggregates per-net switching statistics over a simulated workload into
the report a designer actually reads — top power consumers, contribution
by gate type, and the activity histogram.  Built on the bit-parallel
simulator, so a multi-thousand-pair workload is a single call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..netlist.circuit import Circuit
from ..netlist.library import CellLibrary, default_library
from ..sim.bitsim import BitParallelSimulator, pack_vectors

__all__ = ["NetPowerRecord", "PowerReport", "power_report"]

_FF_TO_F = 1e-15


@dataclass(frozen=True)
class NetPowerRecord:
    """Per-net aggregate over a workload."""

    net: str
    gate_type: str
    capacitance_ff: float
    toggle_rate: float  # expected toggles per cycle
    power_w: float

    def __str__(self) -> str:
        return (
            f"{self.net:24} {self.gate_type:6} {self.capacitance_ff:8.1f} fF"
            f" {self.toggle_rate:7.3f} t/cyc {self.power_w * 1e6:10.3f} uW"
        )


@dataclass
class PowerReport:
    """Workload power report for one circuit."""

    circuit_name: str
    total_power_w: float
    num_pairs: int
    records: List[NetPowerRecord]
    by_gate_type: Dict[str, float]

    def top(self, count: int = 10) -> List[NetPowerRecord]:
        """The ``count`` highest-power nets."""
        return sorted(self.records, key=lambda r: -r.power_w)[:count]

    def activity_histogram(
        self, bins: int = 10
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of per-net toggle rates: ``(counts, bin_edges)``."""
        rates = np.array([r.toggle_rate for r in self.records])
        return np.histogram(rates, bins=bins)

    def render(self, top_count: int = 10) -> str:
        lines = [
            f"power report — {self.circuit_name} "
            f"({self.num_pairs} vector pairs)",
            f"total average power: {self.total_power_w * 1e3:.4f} mW",
            "",
            "by gate type:",
        ]
        for gtype, power in sorted(
            self.by_gate_type.items(), key=lambda kv: -kv[1]
        ):
            share = power / self.total_power_w if self.total_power_w else 0.0
            lines.append(
                f"  {gtype:8} {power * 1e3:9.4f} mW  ({share:5.1%})"
            )
        lines.append("")
        lines.append(f"top {top_count} nets:")
        for record in self.top(top_count):
            lines.append(f"  {record}")
        return "\n".join(lines)


def power_report(
    circuit: Circuit,
    v1_bits: np.ndarray,
    v2_bits: np.ndarray,
    library: Optional[CellLibrary] = None,
    frequency_hz: float = 50e6,
) -> PowerReport:
    """Aggregate per-net zero-delay switching power over a workload.

    Parameters
    ----------
    circuit:
        Circuit to analyze.
    v1_bits, v2_bits:
        The workload as ``(N, num_inputs)`` pair matrices.
    library, frequency_hz:
        Electrical model for the energy conversion.
    """
    library = library if library is not None else default_library()
    v1_bits = np.asarray(v1_bits, dtype=np.uint8)
    v2_bits = np.asarray(v2_bits, dtype=np.uint8)
    if v1_bits.shape != v2_bits.shape or v1_bits.ndim != 2:
        raise SimulationError("expected matching (N, num_inputs) matrices")
    sim = BitParallelSimulator(circuit)
    w1, lanes = pack_vectors(v1_bits)
    w2, _ = pack_vectors(v2_bits)
    counts = sim.toggle_counts_zero_delay(w1, w2, lanes)
    caps = library.all_net_capacitances(circuit)
    scale = 0.5 * library.vdd ** 2 * frequency_hz

    records: List[NetPowerRecord] = []
    by_type: Dict[str, float] = {}
    total = 0.0
    for idx, net in enumerate(sim.net_order):
        gate_type = (
            "input" if circuit.is_input(net) else circuit.gate(net).gtype.value
        )
        rate = counts[idx] / lanes
        power = scale * caps[net] * _FF_TO_F * rate
        total += power
        by_type[gate_type] = by_type.get(gate_type, 0.0) + power
        records.append(
            NetPowerRecord(
                net=net,
                gate_type=gate_type,
                capacitance_ff=caps[net],
                toggle_rate=rate,
                power_w=power,
            )
        )
    return PowerReport(
        circuit_name=circuit.name,
        total_power_w=total,
        num_pairs=lanes,
        records=records,
        by_gate_type=by_type,
    )

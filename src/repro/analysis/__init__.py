"""Analytical (non-simulation) power analysis."""

from .report import NetPowerRecord, PowerReport, power_report
from .signal_prob import (
    expected_power,
    expected_switched_capacitance,
    pair_probabilities,
    signal_probabilities,
    transition_probabilities,
)

__all__ = [
    "signal_probabilities",
    "pair_probabilities",
    "transition_probabilities",
    "expected_switched_capacitance",
    "expected_power",
    "power_report",
    "PowerReport",
    "NetPowerRecord",
]

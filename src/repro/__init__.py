"""repro — statistical maximum power estimation for VLSI circuits.

Reproduction of Qiu, Wu & Pedram, *"Maximum Power Estimation Using the
Limiting Distributions of Extreme Order Statistics"* (DAC 1998), as a
full library: gate-level netlists and simulators, cycle power models,
vector-pair populations, the extreme-value estimation core, baselines,
and the paper's complete experiment suite.

Quick start::

    from repro import (
        build_circuit, PowerAnalyzer, FinitePopulation,
        high_activity_vector_pairs, MaxPowerEstimator,
    )

    circuit = build_circuit("c432")
    analyzer = PowerAnalyzer(circuit)          # unit-delay glitch power
    pop = FinitePopulation.build(
        lambda n, rng: high_activity_vector_pairs(n, circuit.num_inputs, rng=rng),
        analyzer.powers_for_pairs,
        num_pairs=20_000, seed=1, name="c432-unconstrained",
    )
    result = MaxPowerEstimator(pop, error=0.05, confidence=0.90).run(rng=0)
    print(result.summary())
"""

from .errors import (
    ConfigError,
    EstimationError,
    FitError,
    NetlistError,
    ParseError,
    PopulationError,
    ReproError,
    SimulationError,
)
from .estimation import (
    EstimationResult,
    GeneticMaxPowerSearch,
    HighQuantileEstimator,
    MaxDelayEstimator,
    MaxPowerEstimator,
    SimpleRandomSampling,
    UncertaintyBound,
    srs_required_units,
)
from .evt import (
    Frechet,
    GeneralizedWeibull,
    Gumbel,
    WeibullFit,
    block_maxima,
    classify_domain,
    fit_weibull_lsq,
    fit_weibull_mle,
    fit_weibull_moments,
    t_mean_interval,
)
from .netlist import (
    CellLibrary,
    Circuit,
    GateType,
    default_library,
    load_bench,
    load_verilog,
    parse_bench,
    parse_verilog,
    write_bench,
    write_verilog,
)
from .netlist.generators import available_circuits, build_circuit
from .sim import (
    BitParallelSimulator,
    EventDrivenSimulator,
    LibraryDelay,
    PowerAnalyzer,
    StaticTimingAnalyzer,
    UnitDelay,
    ZeroDelay,
)
from .vectors import (
    FinitePopulation,
    PowerPopulation,
    StreamingPopulation,
    high_activity_vector_pairs,
    markov_transition_vector_pairs,
    random_vector_pairs,
    transition_prob_vector_pairs,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "NetlistError",
    "ParseError",
    "SimulationError",
    "PopulationError",
    "EstimationError",
    "FitError",
    "ConfigError",
    # netlist
    "Circuit",
    "GateType",
    "CellLibrary",
    "default_library",
    "parse_bench",
    "load_bench",
    "write_bench",
    "parse_verilog",
    "load_verilog",
    "write_verilog",
    "build_circuit",
    "available_circuits",
    # sim
    "BitParallelSimulator",
    "EventDrivenSimulator",
    "PowerAnalyzer",
    "StaticTimingAnalyzer",
    "ZeroDelay",
    "UnitDelay",
    "LibraryDelay",
    # vectors
    "PowerPopulation",
    "FinitePopulation",
    "StreamingPopulation",
    "random_vector_pairs",
    "high_activity_vector_pairs",
    "transition_prob_vector_pairs",
    "markov_transition_vector_pairs",
    # evt
    "GeneralizedWeibull",
    "Gumbel",
    "Frechet",
    "WeibullFit",
    "fit_weibull_mle",
    "fit_weibull_lsq",
    "fit_weibull_moments",
    "block_maxima",
    "classify_domain",
    "t_mean_interval",
    # estimation
    "MaxPowerEstimator",
    "EstimationResult",
    "SimpleRandomSampling",
    "srs_required_units",
    "HighQuantileEstimator",
    "GeneticMaxPowerSearch",
    "UncertaintyBound",
    "MaxDelayEstimator",
]

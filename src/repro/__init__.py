"""repro — statistical maximum power estimation for VLSI circuits.

Reproduction of Qiu, Wu & Pedram, *"Maximum Power Estimation Using the
Limiting Distributions of Extreme Order Statistics"* (DAC 1998), as a
full library: gate-level netlists and simulators, cycle power models,
vector-pair populations, the extreme-value estimation core, baselines,
and the paper's complete experiment suite.

Quick start (the one-call facade; see ``docs/api.md``)::

    from repro import EstimatorConfig, estimate

    result = estimate("c432", EstimatorConfig(error=0.05), seed=1)
    print(result.summary())

Or assembled from the building blocks::

    from repro import (
        build_circuit, PowerAnalyzer, FinitePopulation,
        high_activity_vector_pairs, MaxPowerEstimator,
    )

    circuit = build_circuit("c432")
    analyzer = PowerAnalyzer(circuit)          # unit-delay glitch power
    pop = FinitePopulation.build(
        lambda n, rng: high_activity_vector_pairs(n, circuit.num_inputs, rng=rng),
        analyzer.powers_for_pairs,
        num_pairs=20_000, seed=1, name="c432-unconstrained",
    )
    result = MaxPowerEstimator(pop, error=0.05, confidence=0.90).run(rng=0)
    print(result.summary())

As a service (``repro serve`` on the other end)::

    from repro import Client

    client = Client("http://127.0.0.1:8000")
    job = client.submit("c432", seed=1)
    result = client.result(client.wait(job["id"])["id"])
"""

from .errors import (
    ConfigError,
    EstimationError,
    FitError,
    JobCancelledError,
    NetlistError,
    ParseError,
    PopulationError,
    ReproError,
    SchemaError,
    ServiceError,
    SimulationError,
)
from .estimation import (
    EstimationResult,
    GeneticMaxPowerSearch,
    HighQuantileEstimator,
    MaxDelayEstimator,
    MaxPowerEstimator,
    SimpleRandomSampling,
    UncertaintyBound,
    srs_required_units,
)
from .evt import (
    Frechet,
    GeneralizedWeibull,
    Gumbel,
    WeibullFit,
    block_maxima,
    classify_domain,
    fit_weibull_lsq,
    fit_weibull_mle,
    fit_weibull_moments,
    t_mean_interval,
)
from .netlist import (
    CellLibrary,
    Circuit,
    GateType,
    default_library,
    load_bench,
    load_verilog,
    parse_bench,
    parse_verilog,
    write_bench,
    write_verilog,
)
from .netlist.generators import available_circuits, build_circuit
from .sim import (
    BitParallelSimulator,
    CompiledPlan,
    compile_plan,
    EventDrivenSimulator,
    LibraryDelay,
    PowerAnalyzer,
    StaticTimingAnalyzer,
    UnitDelay,
    ZeroDelay,
)
from .vectors import (
    FinitePopulation,
    PowerPopulation,
    StreamingPopulation,
    high_activity_vector_pairs,
    markov_transition_vector_pairs,
    random_vector_pairs,
    transition_prob_vector_pairs,
)
from .api import (
    EstimatorConfig,
    build_population,
    estimate,
    hyper_sample_many,
    run_many,
)
from .schemas import SCHEMA_VERSION

__version__ = "1.0.0"

# The service layer (HTTP server/client) is exported lazily: importing
# ``repro`` must stay cheap, and most sessions never touch the service.
_SERVICE_EXPORTS = ("Client", "JobServer", "JobSpec", "JobState", "serve")


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "NetlistError",
    "ParseError",
    "SimulationError",
    "PopulationError",
    "EstimationError",
    "FitError",
    "ConfigError",
    "SchemaError",
    "ServiceError",
    "JobCancelledError",
    # unified API (repro.api)
    "EstimatorConfig",
    "estimate",
    "build_population",
    "run_many",
    "hyper_sample_many",
    "SCHEMA_VERSION",
    # service (lazy — repro.service)
    "Client",
    "JobServer",
    "JobSpec",
    "JobState",
    "serve",
    # netlist
    "Circuit",
    "GateType",
    "CellLibrary",
    "default_library",
    "parse_bench",
    "load_bench",
    "write_bench",
    "parse_verilog",
    "load_verilog",
    "write_verilog",
    "build_circuit",
    "available_circuits",
    # sim
    "BitParallelSimulator",
    "CompiledPlan",
    "compile_plan",
    "EventDrivenSimulator",
    "PowerAnalyzer",
    "StaticTimingAnalyzer",
    "ZeroDelay",
    "UnitDelay",
    "LibraryDelay",
    # vectors
    "PowerPopulation",
    "FinitePopulation",
    "StreamingPopulation",
    "random_vector_pairs",
    "high_activity_vector_pairs",
    "transition_prob_vector_pairs",
    "markov_transition_vector_pairs",
    # evt
    "GeneralizedWeibull",
    "Gumbel",
    "Frechet",
    "WeibullFit",
    "fit_weibull_mle",
    "fit_weibull_lsq",
    "fit_weibull_moments",
    "block_maxima",
    "classify_domain",
    "t_mean_interval",
    # estimation
    "MaxPowerEstimator",
    "EstimationResult",
    "SimpleRandomSampling",
    "srs_required_units",
    "HighQuantileEstimator",
    "GeneticMaxPowerSearch",
    "UncertaintyBound",
    "MaxDelayEstimator",
]

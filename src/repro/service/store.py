"""SQLite-backed durable job + result store (the service's default).

Replaces the append-only ``jobs.jsonl`` event log with a WAL-mode
SQLite database (stdlib :mod:`sqlite3`) behind the exact
:class:`~repro.service.jobs.JobStore` interface, fixing the failure
modes an event log can only paper over:

* **No event tearing.**  Every lifecycle transition — including
  "results arrived *and* the job is completed" — is one transaction, so
  a crash can never leave results on disk with a non-terminal state.
* **Atomic claiming.**  Workers claim work with a compare-and-swap
  ``UPDATE ... WHERE state = 'queued'`` lease keyed by owner, so the
  store is ready to sit under N server replicas without double-running
  a job.
* **Result memoization.**  Every job row carries a
  ``spec_fingerprint`` — the content hash of its canonical
  :func:`~repro.schemas.dump_job_spec` payload
  (:func:`~repro.schemas.fingerprint_job_spec`, non-semantic config
  knobs excluded).  The estimator is deterministic given
  ``(circuit, config, seed)``, so a submitted spec whose fingerprint
  already has completed results transitions straight to ``completed``
  with those results, without ever touching the worker pool; each such
  settle increments the ``service_memo_hits`` counter.  ``memo=False``
  (CLI ``--no-memo``) disables the lookup, never the fingerprinting.
* **One-shot migration.**  Opening a state directory that still holds a
  legacy ``jobs.jsonl`` replays it through
  :func:`~repro.service.jobs.replay_log` (torn tails skipped, result
  events terminal, dropped ids counted), imports every job and result
  into the database, and renames the log to ``jobs.jsonl.migrated`` so
  it is never replayed twice.

Schema (``jobs.db``)::

    meta(key TEXT PRIMARY KEY, value TEXT)       -- schema tag + version
    jobs(id TEXT PRIMARY KEY, seq INTEGER, spec TEXT,
         spec_fingerprint TEXT, state TEXT, created_at REAL,
         started_at REAL, finished_at REAL, error TEXT,
         cancel_requested INTEGER, completed_runs INTEGER,
         memo_hit INTEGER, lease_owner TEXT,
         trace_id TEXT, parent_span_id TEXT)
    results(job_id TEXT PRIMARY KEY, payload TEXT)  -- JSON result list
    spans(job_id TEXT PRIMARY KEY, payload TEXT)    -- JSON span records

The two trace columns carry each job's span context (captured from the
submitting request) across the queue; databases created before they
existed are migrated in place with guarded ``ALTER TABLE``\\ s.

Per-run checkpoints of multi-run jobs stay in their JSONL files
(``<job id>.runs.jsonl``) — they are the resume unit of the
fault-tolerant scheduler, not service state.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ConfigError
from ..obs.metrics import get_registry
from ..obs.spans import get_span_recorder, new_trace_id
from ..schemas import (
    SCHEMA_VERSION,
    SERVICE_DB_SCHEMA,
    SERVICE_TRACE_SCHEMA,
    check_schema_version,
    dump_estimation_result,
    dump_job_spec,
    fingerprint_job_spec,
    load_estimation_result,
    load_job_spec,
)
from .jobs import Job, JobSpec, JobState, replay_log

__all__ = ["SQLiteJobStore"]

_METRICS = get_registry()

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    seq              INTEGER NOT NULL,
    spec             TEXT NOT NULL,
    spec_fingerprint TEXT NOT NULL,
    state            TEXT NOT NULL,
    created_at       REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    error            TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    completed_runs   INTEGER NOT NULL DEFAULT 0,
    memo_hit         INTEGER NOT NULL DEFAULT 0,
    lease_owner      TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, created_at, seq);
CREATE INDEX IF NOT EXISTS jobs_by_fingerprint
    ON jobs (spec_fingerprint, state);
CREATE TABLE IF NOT EXISTS results (
    job_id  TEXT PRIMARY KEY REFERENCES jobs (id),
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS spans (
    job_id  TEXT PRIMARY KEY REFERENCES jobs (id),
    payload TEXT NOT NULL
);
"""

#: Columns added after the first released database schema; applied with
#: guarded ``ALTER TABLE`` so existing stores upgrade in place.
_JOBS_COLUMN_MIGRATIONS = (
    ("trace_id", "TEXT"),
    ("parent_span_id", "TEXT"),
)


class SQLiteJobStore:
    """Thread-safe, durable job registry on SQLite (WAL mode).

    Drop-in for :class:`~repro.service.jobs.JobStore`: same constructor
    shape, same lifecycle methods, same in-memory :class:`Job` objects
    (``cancel_event`` and the live ``trajectory`` are process-local by
    nature).  The database is the source of truth for everything
    durable.
    """

    def __init__(self, state_dir: Union[str, Path], memo: bool = True):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.db_path = self.state_dir / "jobs.db"
        self.legacy_log_path = self.state_dir / "jobs.jsonl"
        self.memo = memo
        self._lock = threading.RLock()
        self._queue_ready = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self._requeued: List[str] = []
        self._migrated_jobs = 0
        self._closed = False
        self._conn = sqlite3.connect(
            str(self.db_path), check_same_thread=False, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        self._init_db()
        self._migrate_legacy_log()
        self._load()

    # -- database plumbing ----------------------------------------------
    def _init_db(self) -> None:
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=5000")
        # executescript issues an implicit COMMIT, so it must run outside
        # _tx; the DDL is idempotent (IF NOT EXISTS throughout).
        self._conn.executescript(_SCHEMA_SQL)
        existing = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(jobs)")
        }
        for column, ddl_type in _JOBS_COLUMN_MIGRATIONS:
            if column not in existing:
                self._conn.execute(
                    f"ALTER TABLE jobs ADD COLUMN {column} {ddl_type}"
                )
        with self._tx():
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    [
                        ("schema", SERVICE_DB_SCHEMA),
                        ("schema_version", SCHEMA_VERSION),
                        ("counter", "0"),
                    ],
                )
            else:
                check_schema_version(
                    {"schema_version": row["value"]},
                    f"service database {self.db_path}",
                )

    @contextmanager
    def _tx(self):
        """One ``BEGIN IMMEDIATE`` transaction (the connection runs in
        autocommit otherwise, so every lifecycle write is explicit)."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield self._conn
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")

    def _persist_counter(self) -> None:
        self._conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'counter'",
            (str(self._counter),),
        )

    # -- legacy-log migration -------------------------------------------
    def _migrate_legacy_log(self) -> None:
        """Import an existing ``jobs.jsonl`` once, then retire it."""
        if not self.legacy_log_path.exists():
            return
        jobs, counter = replay_log(self.legacy_log_path)
        with self._tx():
            for seq, job in enumerate(
                sorted(jobs.values(), key=lambda j: (j.created_at, j.id)),
                start=1,
            ):
                parts = job.id.split("-")
                numbered = len(parts) > 1 and parts[1].isdigit()
                job_seq = int(parts[1]) if numbered else seq
                self._conn.execute(
                    "INSERT OR IGNORE INTO jobs (id, seq, spec, "
                    "spec_fingerprint, state, created_at, started_at, "
                    "finished_at, error, cancel_requested, completed_runs, "
                    "memo_hit, lease_owner) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0, NULL)",
                    (
                        job.id,
                        job_seq,
                        json.dumps(dump_job_spec(job.spec), sort_keys=True),
                        fingerprint_job_spec(job.spec),
                        job.state,
                        job.created_at,
                        job.started_at,
                        job.finished_at,
                        job.error,
                        1 if job.cancel_event.is_set() else 0,
                        job.completed_runs,
                    ),
                )
                if job.results is not None:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO results (job_id, payload) "
                        "VALUES (?, ?)",
                        (
                            job.id,
                            json.dumps(
                                [dump_estimation_result(r) for r in job.results]
                            ),
                        ),
                    )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'counter'"
            ).fetchone()
            self._counter = max(counter, int(row["value"]) if row else 0)
            self._persist_counter()
        self._migrated_jobs = len(jobs)
        self.legacy_log_path.rename(
            self.legacy_log_path.with_suffix(".jsonl.migrated")
        )

    # -- startup load ----------------------------------------------------
    def _load(self) -> None:
        """Hydrate jobs from the database; requeue unfinished ones."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'counter'"
            ).fetchone()
            self._counter = max(
                self._counter, int(row["value"]) if row else 0
            )
            rows = self._conn.execute(
                "SELECT j.*, r.payload AS results_payload "
                "FROM jobs j LEFT JOIN results r ON r.job_id = j.id "
                "ORDER BY j.created_at, j.seq"
            ).fetchall()
            with self._tx():
                for row in rows:
                    job = self._hydrate(row)
                    if job is None:
                        continue
                    self._jobs[job.id] = job
                    self._counter = max(self._counter, int(row["seq"]))
                    if job.terminal:
                        continue
                    now = time.time()
                    if job.results is not None:
                        # Defense in depth: results without a terminal
                        # state cannot happen through this store's
                        # transactions, but must never re-run work.
                        job.state = JobState.COMPLETED
                        job.completed_runs = len(job.results)
                        job.finished_at = job.finished_at or now
                        self._conn.execute(
                            "UPDATE jobs SET state = ?, completed_runs = ?, "
                            "finished_at = ? WHERE id = ?",
                            (job.state, job.completed_runs, job.finished_at,
                             job.id),
                        )
                    elif job.cancel_event.is_set():
                        # Cancellation requested of a dead server:
                        # finish the job off, never re-run it.
                        job.state = JobState.CANCELLED
                        job.finished_at = job.finished_at or now
                        self._conn.execute(
                            "UPDATE jobs SET state = ?, finished_at = ? "
                            "WHERE id = ?",
                            (job.state, job.finished_at, job.id),
                        )
                    else:
                        job.state = JobState.QUEUED
                        job.started_at = None
                        job.lease_owner = None
                        self._conn.execute(
                            "UPDATE jobs SET state = ?, started_at = NULL, "
                            "lease_owner = NULL WHERE id = ?",
                            (job.state, job.id),
                        )
                        self._requeued.append(job.id)
                self._persist_counter()

    def _hydrate(self, row: sqlite3.Row) -> Optional[Job]:
        try:
            spec = load_job_spec(json.loads(row["spec"]))
        except Exception:
            return None  # unreadable spec: leave the row, serve the rest
        job = Job(row["id"], spec, float(row["created_at"]))
        job.state = row["state"]
        job.started_at = row["started_at"]
        job.finished_at = row["finished_at"]
        job.error = row["error"]
        job.completed_runs = int(row["completed_runs"])
        job.memo_hit = bool(row["memo_hit"])
        job.lease_owner = row["lease_owner"]
        job.trace_id = row["trace_id"]
        job.parent_span_id = row["parent_span_id"]
        if row["cancel_requested"]:
            job.cancel_event.set()
        if row["results_payload"] is not None:
            job.results = [
                load_estimation_result(r)
                for r in json.loads(row["results_payload"])
            ]
        return job

    # -- migration / replay diagnostics ----------------------------------
    @property
    def requeued_ids(self) -> List[str]:
        """Jobs re-queued by startup recovery (restart diagnostics)."""
        return list(self._requeued)

    @property
    def migrated_jobs(self) -> int:
        """Jobs imported from a legacy ``jobs.jsonl`` at startup."""
        return self._migrated_jobs

    # -- job lifecycle ---------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        with self._lock:
            fingerprint = fingerprint_job_spec(spec)
            self._counter += 1
            job_id = f"job-{self._counter:06d}-{uuid.uuid4().hex[:4]}"
            job = Job(job_id, spec, time.time())
            spans = get_span_recorder()
            if spans.enabled:
                # The job row carries the submitting request's trace
                # context through the queue so the worker that claims it
                # can graft its spans onto the same tree.
                context = spans.current_context()
                job.trace_id = context.trace_id if context else new_trace_id()
                job.parent_span_id = context.span_id if context else None
            memo_payload = None
            if self.memo:
                memo_row = self._conn.execute(
                    "SELECT r.payload FROM jobs j "
                    "JOIN results r ON r.job_id = j.id "
                    "WHERE j.spec_fingerprint = ? AND j.state = ? "
                    "ORDER BY j.finished_at, j.seq LIMIT 1",
                    (fingerprint, JobState.COMPLETED),
                ).fetchone()
                if memo_row is not None:
                    memo_payload = memo_row["payload"]
            spec_json = json.dumps(dump_job_spec(spec), sort_keys=True)
            if memo_payload is not None:
                # Deterministic estimator + identical fingerprint: the
                # earlier job's results ARE this job's results.  Settle
                # as completed without ever entering the queue.
                job.results = [
                    load_estimation_result(r)
                    for r in json.loads(memo_payload)
                ]
                job.state = JobState.COMPLETED
                job.completed_runs = len(job.results)
                job.finished_at = job.created_at
                job.memo_hit = True
                with self._tx():
                    self._insert_job(job, spec_json, fingerprint)
                    self._conn.execute(
                        "INSERT INTO results (job_id, payload) VALUES (?, ?)",
                        (job.id, memo_payload),
                    )
                    self._persist_counter()
                _METRICS.counter("service_memo_hits").inc()
                if spans.enabled:
                    memo_span = spans.emit(
                        "job.memo_settle",
                        parent=job.trace_context,
                        start_ts=job.created_at,
                        job_id=job.id,
                    )
                    if memo_span is not None:
                        self.save_spans(job.id, [memo_span])
            else:
                with self._tx():
                    self._insert_job(job, spec_json, fingerprint)
                    self._persist_counter()
            self._jobs[job_id] = job
            if not job.terminal:
                self._queue_ready.notify()
            return job

    def _insert_job(self, job: Job, spec_json: str, fingerprint: str) -> None:
        self._conn.execute(
            "INSERT INTO jobs (id, seq, spec, spec_fingerprint, state, "
            "created_at, started_at, finished_at, error, cancel_requested, "
            "completed_runs, memo_hit, lease_owner, trace_id, "
            "parent_span_id) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, NULL, ?, ?)",
            (
                job.id,
                self._counter,
                spec_json,
                fingerprint,
                job.state,
                job.created_at,
                job.started_at,
                job.finished_at,
                job.error,
                1 if job.cancel_event.is_set() else 0,
                job.completed_runs,
                1 if job.memo_hit else 0,
                job.trace_id,
                job.parent_span_id,
            ),
        )

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self, state: Optional[str] = None) -> List[Job]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.created_at)
        if state is not None:
            jobs = [j for j in jobs if j.state == state]
        return jobs

    def counts(self) -> Dict[str, int]:
        """Jobs per state — all known states present, zeros included."""
        counts = {state: 0 for state in JobState.ALL}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def claim_next(
        self, timeout: float = 0.5, owner: Optional[str] = None
    ) -> Optional[Job]:
        """Atomically lease the oldest queued job and mark it running.

        The claim is a compare-and-swap ``UPDATE ... WHERE state =
        'queued'``: under N replicas sharing the database, exactly one
        claimant wins each job.  Jobs cancelled while queued are settled
        and skipped in the same call — a cancellation never idles the
        worker slot for a poll interval.
        """
        with self._lock:
            if self._next_queued_id() is None:
                self._queue_ready.wait(timeout)
            while True:
                job_id = self._next_queued_id()
                if job_id is None:
                    return None
                job = self._jobs.get(job_id)
                if job is None:
                    # Submitted by another replica sharing the database.
                    row = self._conn.execute(
                        "SELECT j.*, r.payload AS results_payload "
                        "FROM jobs j LEFT JOIN results r ON r.job_id = j.id "
                        "WHERE j.id = ?",
                        (job_id,),
                    ).fetchone()
                    job = self._hydrate(row) if row is not None else None
                    if job is None:
                        return None
                    self._jobs[job_id] = job
                if job.cancel_event.is_set():
                    self._settle(job, JobState.CANCELLED)
                    continue
                now = time.time()
                with self._tx():
                    cursor = self._conn.execute(
                        "UPDATE jobs SET state = ?, started_at = ?, "
                        "lease_owner = ? WHERE id = ? AND state = ?",
                        (JobState.RUNNING, now, owner, job_id,
                         JobState.QUEUED),
                    )
                if cursor.rowcount != 1:
                    continue  # lost the lease race to another claimant
                job.state = JobState.RUNNING
                job.started_at = now
                job.lease_owner = owner
                return job

    def _next_queued_id(self) -> Optional[str]:
        row = self._conn.execute(
            "SELECT id FROM jobs WHERE state = ? "
            "ORDER BY created_at, seq LIMIT 1",
            (JobState.QUEUED,),
        ).fetchone()
        return row["id"] if row is not None else None

    def _settle(
        self,
        job: Job,
        state: str,
        error: Optional[str] = None,
        results: Optional[List[object]] = None,
    ) -> None:
        """Move a job to a terminal state in one transaction (with its
        results, when completing) — the write that must never tear."""
        now = time.time()
        with self._tx():
            if results is not None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO results (job_id, payload) "
                    "VALUES (?, ?)",
                    (
                        job.id,
                        json.dumps(
                            [dump_estimation_result(r) for r in results]
                        ),
                    ),
                )
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, error = ?, "
                "completed_runs = ? WHERE id = ?",
                (
                    state,
                    now,
                    error,
                    len(results) if results is not None else job.completed_runs,
                    job.id,
                ),
            )
        if results is not None:
            job.results = list(results)
            job.completed_runs = len(job.results)
        job.state = state
        job.finished_at = now
        job.error = error

    def mark_completed(self, job: Job, results: List[object]) -> None:
        with self._lock:
            self._settle(job, JobState.COMPLETED, results=list(results))

    def mark_failed(self, job: Job, error: str) -> None:
        with self._lock:
            self._settle(job, JobState.FAILED, error=error)

    def mark_cancelled(self, job: Job) -> None:
        with self._lock:
            self._settle(job, JobState.CANCELLED)

    def request_cancel(self, job_id: str) -> Job:
        """Flag a job for cancellation (raises ``KeyError`` if unknown,
        :class:`~repro.errors.ConfigError` if already terminal)."""
        with self._lock:
            job = self._jobs[job_id]
            if job.terminal:
                raise ConfigError(
                    f"job {job_id} is already {job.state}; nothing to cancel"
                )
            job.cancel_event.set()
            if job.state == JobState.QUEUED:
                # Not yet leased by any worker: settle it immediately
                # (the same transaction records the request).
                now = time.time()
                with self._tx():
                    self._conn.execute(
                        "UPDATE jobs SET cancel_requested = 1, state = ?, "
                        "finished_at = ? WHERE id = ?",
                        (JobState.CANCELLED, now, job_id),
                    )
                job.state = JobState.CANCELLED
                job.finished_at = now
            else:
                with self._tx():
                    self._conn.execute(
                        "UPDATE jobs SET cancel_requested = 1 WHERE id = ?",
                        (job_id,),
                    )
            return job

    # -- span persistence -------------------------------------------------
    def save_spans(self, job_id: str, spans: List[dict]) -> None:
        """Durably attach a job's finished span records (idempotent —
        the last write wins, which is what retried jobs want)."""
        payload = json.dumps(
            {
                "schema": SERVICE_TRACE_SCHEMA,
                "schema_version": SCHEMA_VERSION,
                "spans": list(spans),
            }
        )
        with self._lock:
            with self._tx():
                self._conn.execute(
                    "INSERT OR REPLACE INTO spans (job_id, payload) "
                    "VALUES (?, ?)",
                    (job_id, payload),
                )

    def stored_spans(self, job_id: str) -> List[dict]:
        """A job's persisted span records (empty when none were saved)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM spans WHERE job_id = ?", (job_id,)
            ).fetchone()
        if row is None:
            return []
        payload = json.loads(row["payload"])
        check_schema_version(payload, f"span payload for {job_id}")
        return payload["spans"]

    # -- telemetry introspection ------------------------------------------
    @property
    def backend(self) -> str:
        return "sqlite"

    def lease_info(self) -> Dict[str, object]:
        """Active-lease telemetry for ``/healthz`` and the gauges."""
        now = time.time()
        with self._lock:
            ages = [
                now - job.started_at
                for job in self._jobs.values()
                if job.state == JobState.RUNNING and job.started_at is not None
            ]
        return {
            "active_leases": len(ages),
            "oldest_lease_age_seconds": max(ages) if ages else 0.0,
        }

    def memo_stats(self) -> Dict[str, object]:
        """Memo effectiveness over every job this store knows about."""
        with self._lock:
            total = len(self._jobs)
            hits = sum(1 for job in self._jobs.values() if job.memo_hit)
        return {
            "hits": hits,
            "jobs": total,
            "ratio": (hits / total) if total else 0.0,
        }

    def run_checkpoint_path(self, job_id: str) -> Path:
        """Per-run JSONL checkpoint for a multi-run job (resume unit)."""
        return self.state_dir / f"{job_id}.runs.jsonl"

    def wake_all(self) -> None:
        """Wake every worker blocked in :meth:`claim_next` (shutdown)."""
        with self._lock:
            self._queue_ready.notify_all()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

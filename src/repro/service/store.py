"""SQLite-backed durable job + result store (the service's default).

Replaces the append-only ``jobs.jsonl`` event log with a WAL-mode
SQLite database (stdlib :mod:`sqlite3`) behind the exact
:class:`~repro.service.jobs.JobStore` interface, fixing the failure
modes an event log can only paper over:

* **No event tearing.**  Every lifecycle transition — including
  "results arrived *and* the job is completed" — is one transaction, so
  a crash can never leave results on disk with a non-terminal state.
* **Atomic claiming.**  Workers claim work with a compare-and-swap
  ``UPDATE ... WHERE state = 'queued'`` lease keyed by owner, so the
  store is ready to sit under N server replicas without double-running
  a job.
* **Lease expiry + work stealing.**  Every claim mints a globally
  unique ``lease_token`` (one per claim *attempt*), stamps
  ``lease_expires_at = now + lease_ttl``, and records the claiming
  replica (``lease_replica``).  Workers renew the lease by heartbeat
  (:meth:`SQLiteJobStore.renew_lease`, every ``lease_ttl / 3``); a
  replica that dies mid-job simply stops renewing, and any replica's
  reaper (:meth:`SQLiteJobStore.reap_expired` — also run
  opportunistically on every claim poll) atomically flips the expired
  lease back to ``queued`` so a surviving replica re-runs the job.
  Re-runs are bit-identical by the estimator's seed contract, and
  terminal commits are compare-and-swapped on the attempt's own
  ``lease_token`` — not on mutable fields of the shared job object —
  so a stale attempt can never double-commit, even when the *same*
  process re-claims the job while the old attempt is still unwinding.
  Each reclaim increments the ``service_lease_reclaims`` counter.
  Startup recovery requeues only leases owned by this replica or
  already expired — never a live lease held by another replica sharing
  the database.
* **Result memoization.**  Every job row carries a
  ``spec_fingerprint`` — the content hash of its canonical
  :func:`~repro.schemas.dump_job_spec` payload
  (:func:`~repro.schemas.fingerprint_job_spec`, non-semantic config
  knobs excluded).  The estimator is deterministic given
  ``(circuit, config, seed)``, so a submitted spec whose fingerprint
  already has completed results transitions straight to ``completed``
  with those results, without ever touching the worker pool; each such
  settle increments the ``service_memo_hits`` counter.  ``memo=False``
  (CLI ``--no-memo``) disables the lookup, never the fingerprinting.
* **One-shot migration.**  Opening a state directory that still holds a
  legacy ``jobs.jsonl`` replays it through
  :func:`~repro.service.jobs.replay_log` (torn tails skipped, result
  events terminal, dropped ids counted), imports every job and result
  into the database, and renames the log to ``jobs.jsonl.migrated`` so
  it is never replayed twice.

Schema (``jobs.db``)::

    meta(key TEXT PRIMARY KEY, value TEXT)       -- schema tag + version
    jobs(id TEXT PRIMARY KEY, seq INTEGER, spec TEXT,
         spec_fingerprint TEXT, state TEXT, created_at REAL,
         started_at REAL, finished_at REAL, error TEXT,
         cancel_requested INTEGER, completed_runs INTEGER,
         memo_hit INTEGER, lease_owner TEXT,
         trace_id TEXT, parent_span_id TEXT,
         lease_replica TEXT, lease_expires_at REAL, tenant TEXT,
         lease_token TEXT)
    results(job_id TEXT PRIMARY KEY, payload TEXT)  -- JSON result list
    spans(job_id TEXT PRIMARY KEY, payload TEXT)    -- JSON span records

The two trace columns carry each job's span context (captured from the
submitting request) across the queue; databases created before they
existed are migrated in place with guarded ``ALTER TABLE``\\ s.

Per-run checkpoints of multi-run jobs stay in their JSONL files
(``<job id>.runs.jsonl``) — they are the resume unit of the
fault-tolerant scheduler, not service state.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ConfigError
from ..obs.metrics import get_registry
from ..obs.spans import get_span_recorder, new_trace_id
from ..schemas import (
    SCHEMA_VERSION,
    SERVICE_DB_SCHEMA,
    SERVICE_TRACE_SCHEMA,
    check_schema_version,
    dump_estimation_result,
    dump_job_spec,
    fingerprint_job_spec,
    load_estimation_result,
    load_job_spec,
)
from .jobs import Job, JobLease, JobSpec, JobState, replay_log

__all__ = ["SQLiteJobStore"]

_METRICS = get_registry()

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    seq              INTEGER NOT NULL,
    spec             TEXT NOT NULL,
    spec_fingerprint TEXT NOT NULL,
    state            TEXT NOT NULL,
    created_at       REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    error            TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    completed_runs   INTEGER NOT NULL DEFAULT 0,
    memo_hit         INTEGER NOT NULL DEFAULT 0,
    lease_owner      TEXT,
    lease_replica    TEXT,
    lease_expires_at REAL,
    tenant           TEXT,
    lease_token      TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, created_at, seq);
CREATE INDEX IF NOT EXISTS jobs_by_fingerprint
    ON jobs (spec_fingerprint, state);
CREATE TABLE IF NOT EXISTS results (
    job_id  TEXT PRIMARY KEY REFERENCES jobs (id),
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS spans (
    job_id  TEXT PRIMARY KEY REFERENCES jobs (id),
    payload TEXT NOT NULL
);
"""

#: Columns added after the first released database schema; applied with
#: guarded ``ALTER TABLE`` so existing stores upgrade in place.
_JOBS_COLUMN_MIGRATIONS = (
    ("trace_id", "TEXT"),
    ("parent_span_id", "TEXT"),
    ("lease_replica", "TEXT"),
    ("lease_expires_at", "REAL"),
    ("tenant", "TEXT"),
    ("lease_token", "TEXT"),
)

#: Default seconds a claimed job may go without a heartbeat before any
#: replica may steal its lease.  Three heartbeats fit in one TTL, so a
#: single delayed renewal never loses a live job.
DEFAULT_LEASE_TTL = 30.0


class SQLiteJobStore:
    """Thread-safe, durable job registry on SQLite (WAL mode).

    Drop-in for :class:`~repro.service.jobs.JobStore`: same constructor
    shape, same lifecycle methods, same in-memory :class:`Job` objects
    (``cancel_event`` and the live ``trajectory`` are process-local by
    nature).  The database is the source of truth for everything
    durable.
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        memo: bool = True,
        replica_id: Optional[str] = None,
        lease_ttl: Optional[float] = DEFAULT_LEASE_TTL,
    ):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.db_path = self.state_dir / "jobs.db"
        self.legacy_log_path = self.state_dir / "jobs.jsonl"
        self.memo = memo
        #: Identity of this store instance among replicas sharing the
        #: database.  Pass a stable id to reclaim your own leases
        #: immediately after a crash-restart; the random default means
        #: a restarted process waits for lease expiry instead.
        self.replica_id = replica_id or f"replica-{uuid.uuid4().hex[:8]}"
        if lease_ttl is not None and lease_ttl <= 0:
            raise ConfigError("lease_ttl must be positive (or None)")
        #: Seconds a claim lives without renewal; ``None`` disables
        #: expiry (single-replica deployments that prefer startup
        #: recovery semantics only).
        self.lease_ttl = lease_ttl
        self._lock = threading.RLock()
        self._queue_ready = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self._requeued: List[str] = []
        self._migrated_jobs = 0
        self._closed = False
        self._conn = sqlite3.connect(
            str(self.db_path), check_same_thread=False, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        self._init_db()
        self._migrate_legacy_log()
        self._load()

    # -- database plumbing ----------------------------------------------
    def _init_db(self) -> None:
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=5000")
        # executescript issues an implicit COMMIT, so it must run outside
        # _tx; the DDL is idempotent (IF NOT EXISTS throughout).
        self._conn.executescript(_SCHEMA_SQL)
        existing = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(jobs)")
        }
        for column, ddl_type in _JOBS_COLUMN_MIGRATIONS:
            if column not in existing:
                self._conn.execute(
                    f"ALTER TABLE jobs ADD COLUMN {column} {ddl_type}"
                )
        with self._tx():
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    [
                        ("schema", SERVICE_DB_SCHEMA),
                        ("schema_version", SCHEMA_VERSION),
                        ("counter", "0"),
                    ],
                )
            else:
                check_schema_version(
                    {"schema_version": row["value"]},
                    f"service database {self.db_path}",
                )

    @contextmanager
    def _tx(self):
        """One ``BEGIN IMMEDIATE`` transaction (the connection runs in
        autocommit otherwise, so every lifecycle write is explicit)."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield self._conn
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        else:
            self._conn.execute("COMMIT")

    def _persist_counter(self) -> None:
        self._conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'counter'",
            (str(self._counter),),
        )

    # -- legacy-log migration -------------------------------------------
    def _migrate_legacy_log(self) -> None:
        """Import an existing ``jobs.jsonl`` once, then retire it."""
        if not self.legacy_log_path.exists():
            return
        jobs, counter = replay_log(self.legacy_log_path)
        with self._tx():
            for seq, job in enumerate(
                sorted(jobs.values(), key=lambda j: (j.created_at, j.id)),
                start=1,
            ):
                parts = job.id.split("-")
                numbered = len(parts) > 1 and parts[1].isdigit()
                job_seq = int(parts[1]) if numbered else seq
                self._conn.execute(
                    "INSERT OR IGNORE INTO jobs (id, seq, spec, "
                    "spec_fingerprint, state, created_at, started_at, "
                    "finished_at, error, cancel_requested, completed_runs, "
                    "memo_hit, lease_owner) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0, NULL)",
                    (
                        job.id,
                        job_seq,
                        json.dumps(dump_job_spec(job.spec), sort_keys=True),
                        fingerprint_job_spec(job.spec),
                        job.state,
                        job.created_at,
                        job.started_at,
                        job.finished_at,
                        job.error,
                        1 if job.cancel_event.is_set() else 0,
                        job.completed_runs,
                    ),
                )
                if job.results is not None:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO results (job_id, payload) "
                        "VALUES (?, ?)",
                        (
                            job.id,
                            json.dumps(
                                [dump_estimation_result(r) for r in job.results]
                            ),
                        ),
                    )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'counter'"
            ).fetchone()
            self._counter = max(counter, int(row["value"]) if row else 0)
            self._persist_counter()
        self._migrated_jobs = len(jobs)
        self.legacy_log_path.rename(
            self.legacy_log_path.with_suffix(".jsonl.migrated")
        )

    # -- startup load ----------------------------------------------------
    def _load(self) -> None:
        """Hydrate jobs from the database; requeue unfinished ones."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'counter'"
            ).fetchone()
            self._counter = max(
                self._counter, int(row["value"]) if row else 0
            )
            rows = self._conn.execute(
                "SELECT j.*, r.payload AS results_payload "
                "FROM jobs j LEFT JOIN results r ON r.job_id = j.id "
                "ORDER BY j.created_at, j.seq"
            ).fetchall()
            with self._tx():
                for row in rows:
                    job = self._hydrate(row)
                    if job is None:
                        continue
                    self._jobs[job.id] = job
                    self._counter = max(self._counter, int(row["seq"]))
                    if job.terminal:
                        continue
                    now = time.time()
                    if job.results is not None:
                        # Defense in depth: results without a terminal
                        # state cannot happen through this store's
                        # transactions, but must never re-run work.
                        job.state = JobState.COMPLETED
                        job.completed_runs = len(job.results)
                        job.finished_at = job.finished_at or now
                        self._conn.execute(
                            "UPDATE jobs SET state = ?, completed_runs = ?, "
                            "finished_at = ? WHERE id = ?",
                            (job.state, job.completed_runs, job.finished_at,
                             job.id),
                        )
                    elif job.cancel_event.is_set():
                        # Cancellation requested of a dead server:
                        # finish the job off, never re-run it.
                        job.state = JobState.CANCELLED
                        job.finished_at = job.finished_at or now
                        self._conn.execute(
                            "UPDATE jobs SET state = ?, finished_at = ? "
                            "WHERE id = ?",
                            (job.state, job.finished_at, job.id),
                        )
                    else:
                        if job.state == JobState.RUNNING and not (
                            job.lease_replica == self.replica_id
                            or job.lease_expires_at is None
                            or job.lease_expires_at <= now
                        ):
                            # Live lease held by another replica sharing
                            # the database: requeueing it here would
                            # double-run the job.  Leave it running; the
                            # reaper reclaims it if its owner dies.
                            continue
                        job.state = JobState.QUEUED
                        job.started_at = None
                        job.lease_owner = None
                        job.lease_replica = None
                        job.lease_expires_at = None
                        self._conn.execute(
                            "UPDATE jobs SET state = ?, started_at = NULL, "
                            "lease_owner = NULL, lease_replica = NULL, "
                            "lease_expires_at = NULL, lease_token = NULL "
                            "WHERE id = ?",
                            (job.state, job.id),
                        )
                        self._requeued.append(job.id)
                self._persist_counter()

    def _hydrate(self, row: sqlite3.Row) -> Optional[Job]:
        try:
            spec = load_job_spec(json.loads(row["spec"]))
        except Exception:
            return None  # unreadable spec: leave the row, serve the rest
        job = Job(row["id"], spec, float(row["created_at"]))
        job.state = row["state"]
        job.started_at = row["started_at"]
        job.finished_at = row["finished_at"]
        job.error = row["error"]
        job.completed_runs = int(row["completed_runs"])
        job.memo_hit = bool(row["memo_hit"])
        job.lease_owner = row["lease_owner"]
        job.lease_replica = row["lease_replica"]
        job.lease_expires_at = row["lease_expires_at"]
        job.tenant = row["tenant"]
        job.trace_id = row["trace_id"]
        job.parent_span_id = row["parent_span_id"]
        if row["cancel_requested"]:
            job.cancel_event.set()
        if row["results_payload"] is not None:
            job.results = [
                load_estimation_result(r)
                for r in json.loads(row["results_payload"])
            ]
        return job

    # -- migration / replay diagnostics ----------------------------------
    @property
    def requeued_ids(self) -> List[str]:
        """Jobs re-queued by startup recovery (restart diagnostics)."""
        return list(self._requeued)

    @property
    def migrated_jobs(self) -> int:
        """Jobs imported from a legacy ``jobs.jsonl`` at startup."""
        return self._migrated_jobs

    # -- job lifecycle ---------------------------------------------------
    def submit(self, spec: JobSpec, tenant: Optional[str] = None) -> Job:
        with self._lock:
            fingerprint = fingerprint_job_spec(spec)
            self._counter += 1
            job_id = f"job-{self._counter:06d}-{uuid.uuid4().hex[:4]}"
            job = Job(job_id, spec, time.time())
            job.tenant = tenant
            spans = get_span_recorder()
            if spans.enabled:
                # The job row carries the submitting request's trace
                # context through the queue so the worker that claims it
                # can graft its spans onto the same tree.
                context = spans.current_context()
                job.trace_id = context.trace_id if context else new_trace_id()
                job.parent_span_id = context.span_id if context else None
            memo_payload = None
            if self.memo:
                memo_row = self._conn.execute(
                    "SELECT r.payload FROM jobs j "
                    "JOIN results r ON r.job_id = j.id "
                    "WHERE j.spec_fingerprint = ? AND j.state = ? "
                    "ORDER BY j.finished_at, j.seq LIMIT 1",
                    (fingerprint, JobState.COMPLETED),
                ).fetchone()
                if memo_row is not None:
                    memo_payload = memo_row["payload"]
            spec_json = json.dumps(dump_job_spec(spec), sort_keys=True)
            if memo_payload is not None:
                # Deterministic estimator + identical fingerprint: the
                # earlier job's results ARE this job's results.  Settle
                # as completed without ever entering the queue.
                job.results = [
                    load_estimation_result(r)
                    for r in json.loads(memo_payload)
                ]
                job.state = JobState.COMPLETED
                job.completed_runs = len(job.results)
                job.finished_at = job.created_at
                job.memo_hit = True
                with self._tx():
                    self._insert_job(job, spec_json, fingerprint)
                    self._conn.execute(
                        "INSERT INTO results (job_id, payload) VALUES (?, ?)",
                        (job.id, memo_payload),
                    )
                    self._persist_counter()
                _METRICS.counter("service_memo_hits").inc()
                if spans.enabled:
                    memo_span = spans.emit(
                        "job.memo_settle",
                        parent=job.trace_context,
                        start_ts=job.created_at,
                        job_id=job.id,
                    )
                    if memo_span is not None:
                        self.save_spans(job.id, [memo_span])
            else:
                with self._tx():
                    self._insert_job(job, spec_json, fingerprint)
                    self._persist_counter()
            self._jobs[job_id] = job
            if not job.terminal:
                self._queue_ready.notify()
            return job

    def _insert_job(self, job: Job, spec_json: str, fingerprint: str) -> None:
        self._conn.execute(
            "INSERT INTO jobs (id, seq, spec, spec_fingerprint, state, "
            "created_at, started_at, finished_at, error, cancel_requested, "
            "completed_runs, memo_hit, lease_owner, trace_id, "
            "parent_span_id, tenant) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, NULL, ?, ?, ?)",
            (
                job.id,
                self._counter,
                spec_json,
                fingerprint,
                job.state,
                job.created_at,
                job.started_at,
                job.finished_at,
                job.error,
                1 if job.cancel_event.is_set() else 0,
                job.completed_runs,
                1 if job.memo_hit else 0,
                job.trace_id,
                job.parent_span_id,
                job.tenant,
            ),
        )

    def get(self, job_id: str) -> Optional[Job]:
        """Look a job up — across replicas.

        A job submitted through another replica sharing the database is
        hydrated on demand, and a non-terminal in-memory job is
        refreshed from the database (unless this replica holds its
        running lease, in which case local state is fresher), so any
        replica can serve status and results for any job.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                job = self._fetch(job_id)
                if job is not None:
                    self._jobs[job_id] = job
            elif not job.terminal:
                self._refresh_locked(job)
            return job

    def _fetch(self, job_id: str) -> Optional[Job]:
        row = self._conn.execute(
            "SELECT j.*, r.payload AS results_payload "
            "FROM jobs j LEFT JOIN results r ON r.job_id = j.id "
            "WHERE j.id = ?",
            (job_id,),
        ).fetchone()
        return self._hydrate(row) if row is not None else None

    def _refresh_locked(self, job: Job) -> None:
        """Fold the database row's view of ``job`` into the in-memory
        object (another replica may have claimed or settled it)."""
        row = self._conn.execute(
            "SELECT j.*, r.payload AS results_payload "
            "FROM jobs j LEFT JOIN results r ON r.job_id = j.id "
            "WHERE j.id = ?",
            (job.id,),
        ).fetchone()
        if row is None:
            return
        if (
            row["state"] == JobState.RUNNING
            and row["lease_replica"] == self.replica_id
        ):
            # We are executing it: the live trajectory/completed_runs in
            # memory are ahead of the database.  Nothing to fold in.
            return
        job.state = row["state"]
        job.started_at = row["started_at"]
        job.finished_at = row["finished_at"]
        job.error = row["error"]
        job.completed_runs = int(row["completed_runs"])
        job.memo_hit = bool(row["memo_hit"])
        job.lease_owner = row["lease_owner"]
        job.lease_replica = row["lease_replica"]
        job.lease_expires_at = row["lease_expires_at"]
        if row["cancel_requested"]:
            job.cancel_event.set()
        if row["results_payload"] is not None and job.results is None:
            job.results = [
                load_estimation_result(r)
                for r in json.loads(row["results_payload"])
            ]

    def list(self, state: Optional[str] = None) -> List[Job]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.created_at)
        if state is not None:
            jobs = [j for j in jobs if j.state == state]
        return jobs

    def counts(self) -> Dict[str, int]:
        """Jobs per state — all known states present, zeros included."""
        counts = {state: 0 for state in JobState.ALL}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def claim_next(
        self, timeout: float = 0.5, owner: Optional[str] = None
    ) -> Optional[Job]:
        """Atomically lease the oldest queued job and mark it running.

        The claim is a compare-and-swap ``UPDATE ... WHERE state =
        'queued'``: under N replicas sharing the database, exactly one
        claimant wins each job.  Each claim stamps ``lease_expires_at``
        (``now + lease_ttl``) and this store's ``replica_id``; expired
        leases of dead replicas are reaped opportunistically before
        looking for queued work, so work stealing needs no separate
        scheduler.  Jobs cancelled while queued are settled and skipped
        in the same call — a cancellation never idles the worker slot
        for a poll interval.
        """
        with self._lock:
            self._reap_expired_locked()
            if self._next_queued_id() is None:
                self._queue_ready.wait(timeout)
            while True:
                job_id = self._next_queued_id()
                if job_id is None:
                    return None
                job = self._jobs.get(job_id)
                if job is None:
                    # Submitted by another replica sharing the database.
                    job = self._fetch(job_id)
                    if job is None:
                        return None
                    self._jobs[job_id] = job
                if job.cancel_event.is_set():
                    self._settle(job, JobState.CANCELLED)
                    continue
                now = time.time()
                expires = (
                    now + self.lease_ttl if self.lease_ttl is not None else None
                )
                token = uuid.uuid4().hex
                with self._tx():
                    cursor = self._conn.execute(
                        "UPDATE jobs SET state = ?, started_at = ?, "
                        "lease_owner = ?, lease_replica = ?, "
                        "lease_expires_at = ?, lease_token = ? "
                        "WHERE id = ? AND state = ?",
                        (JobState.RUNNING, now, owner, self.replica_id,
                         expires, token, job_id, JobState.QUEUED),
                    )
                if cursor.rowcount != 1:
                    continue  # lost the lease race to another claimant
                job.state = JobState.RUNNING
                job.started_at = now
                job.lease_owner = owner
                job.lease_replica = self.replica_id
                job.lease_expires_at = expires
                # Fresh per-attempt state throughout (never reset shared
                # fields in place): a steal-back re-run of a job whose
                # previous attempt is still unwinding in another thread
                # must not share its lease, trajectory buffer, or
                # progress count — and the old attempt's poisoned
                # JobLease must stay poisoned.
                job.lease = JobLease(token, owner)
                job.trajectory = []
                job.completed_runs = 0
                return job

    def _next_queued_id(self) -> Optional[str]:
        row = self._conn.execute(
            "SELECT id FROM jobs WHERE state = ? "
            "ORDER BY created_at, seq LIMIT 1",
            (JobState.QUEUED,),
        ).fetchone()
        return row["id"] if row is not None else None

    # -- lease lifecycle --------------------------------------------------
    @property
    def heartbeat_interval(self) -> Optional[float]:
        """How often workers should renew their leases (``lease_ttl / 3``
        — three missed beats, not one, lose a live job)."""
        return None if self.lease_ttl is None else self.lease_ttl / 3.0

    def renew_lease(self, job: Job, lease: Optional[JobLease] = None) -> bool:
        """Heartbeat: push the job's lease expiry out by ``lease_ttl``.

        The renewal is a compare-and-swap on the claim attempt's own
        ``lease_token`` (``lease`` — captured by the worker at claim
        time; defaults to the job's current attempt): it succeeds only
        while that exact attempt still holds the running lease.  A
        failed renewal means the lease expired and was reclaimed — the
        *attempt's* ``lost`` flag is set so the in-flight run's progress
        hooks unwind promptly *without committing anything* (the
        terminal commit is CAS-guarded on the same token).  Comparing
        the captured token instead of mutable fields on the shared job
        object means a same-process steal-back re-claim can never make
        a stale attempt's renewal (or commit) pass.  ``cancel_event``
        is deliberately left alone: it is shared with the re-run, which
        must not inherit a poisoned signal.

        A successful renewal also folds in a ``cancel_requested`` flag
        written by another replica, so cross-replica cancellation
        propagates at heartbeat granularity.
        """
        with self._lock:
            if lease is None:
                lease = job.lease
            if lease is None or lease.lost:
                return False
            if job.terminal or job.state != JobState.RUNNING:
                # Settled locally (this attempt committed): nothing to
                # renew, nothing lost.
                return True
            if self.lease_ttl is None:
                return True
            expires = time.time() + self.lease_ttl
            with self._tx():
                cursor = self._conn.execute(
                    "UPDATE jobs SET lease_expires_at = ? "
                    "WHERE id = ? AND state = ? AND lease_token IS ?",
                    (expires, job.id, JobState.RUNNING, lease.token),
                )
            if cursor.rowcount != 1:
                lease.lost = True
                return False
            if job.lease is lease:
                job.lease_expires_at = expires
            row = self._conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job.id,)
            ).fetchone()
            if row is not None and row["cancel_requested"]:
                job.cancel_event.set()
            return True

    def reap_expired(self) -> List[str]:
        """Reclaim every expired lease back to ``queued`` (work stealing).

        Safe to run on any replica at any time: each reclaim is a
        compare-and-swap conditioned on the lease still being expired, so
        a concurrent renewal or terminal commit wins cleanly.  Returns
        the reclaimed job ids; each one increments the
        ``service_lease_reclaims`` counter.
        """
        with self._lock:
            return self._reap_expired_locked()

    def _reap_expired_locked(self) -> List[str]:
        now = time.time()
        rows = self._conn.execute(
            "SELECT id FROM jobs WHERE state = ? "
            "AND lease_expires_at IS NOT NULL AND lease_expires_at <= ?",
            (JobState.RUNNING, now),
        ).fetchall()
        reclaimed: List[str] = []
        for row in rows:
            with self._tx():
                cursor = self._conn.execute(
                    "UPDATE jobs SET state = ?, started_at = NULL, "
                    "lease_owner = NULL, lease_replica = NULL, "
                    "lease_expires_at = NULL, lease_token = NULL "
                    "WHERE id = ? AND state = ? "
                    "AND lease_expires_at IS NOT NULL "
                    "AND lease_expires_at <= ?",
                    (JobState.QUEUED, row["id"], JobState.RUNNING, now),
                )
            if cursor.rowcount != 1:
                continue  # renewed or settled between select and swap
            reclaimed.append(row["id"])
            job = self._jobs.get(row["id"])
            if job is not None:
                if job.lease is not None:
                    # This process held the expired lease: poison the
                    # attempt so its progress hooks unwind, and detach
                    # it — a re-claim mints a fresh JobLease.
                    job.lease.lost = True
                    job.lease = None
                job.state = JobState.QUEUED
                job.started_at = None
                job.lease_owner = None
                job.lease_replica = None
                job.lease_expires_at = None
            _METRICS.counter("service_lease_reclaims").inc()
        if reclaimed:
            self._queue_ready.notify_all()
        return reclaimed

    def _settle(
        self,
        job: Job,
        state: str,
        error: Optional[str] = None,
        results: Optional[List[object]] = None,
        require_lease: bool = False,
        lease: Optional[JobLease] = None,
    ) -> bool:
        """Move a job to a terminal state in one transaction (with its
        results, when completing) — the write that must never tear.

        With ``require_lease`` the transition is a compare-and-swap on
        the committing attempt's own ``lease_token`` (``lease`` —
        captured by the worker at claim time; defaults to the job's
        current attempt): a worker whose lease expired and was stolen —
        by another replica *or* by a re-claim in this very process —
        can never double-commit.  Returns whether the commit happened;
        on a lost lease the attempt is poisoned and the in-memory job
        refreshed to the database's (the winner's) view instead.
        """
        if lease is None:
            lease = job.lease
        now = time.time()
        with self._tx():
            sql = (
                "UPDATE jobs SET state = ?, finished_at = ?, error = ?, "
                "completed_runs = ?, lease_expires_at = NULL, "
                "lease_token = NULL WHERE id = ?"
            )
            params: List[object] = [
                state,
                now,
                error,
                len(results) if results is not None else job.completed_runs,
                job.id,
            ]
            if require_lease:
                sql += " AND state = ? AND lease_token IS ?"
                params += [
                    JobState.RUNNING,
                    lease.token if lease is not None else None,
                ]
            cursor = self._conn.execute(sql, params)
            committed = cursor.rowcount == 1
            if committed and results is not None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO results (job_id, payload) "
                    "VALUES (?, ?)",
                    (
                        job.id,
                        json.dumps(
                            [dump_estimation_result(r) for r in results]
                        ),
                    ),
                )
        if not committed:
            if lease is not None:
                lease.lost = True
            self._refresh_locked(job)
            return False
        if results is not None:
            job.results = list(results)
            job.completed_runs = len(job.results)
        job.state = state
        job.finished_at = now
        job.error = error
        if job.lease is lease:
            job.lease = None  # the attempt settled the job; lease is done
        return True

    def mark_completed(
        self, job: Job, results: List[object], lease: Optional[JobLease] = None
    ) -> None:
        with self._lock:
            self._settle(
                job, JobState.COMPLETED, results=list(results),
                require_lease=True, lease=lease,
            )

    def mark_failed(
        self, job: Job, error: str, lease: Optional[JobLease] = None
    ) -> None:
        with self._lock:
            self._settle(
                job, JobState.FAILED, error=error, require_lease=True,
                lease=lease,
            )

    def mark_cancelled(self, job: Job, lease: Optional[JobLease] = None) -> None:
        with self._lock:
            if lease is None:
                lease = job.lease
            if lease is not None and lease.lost:
                # The reaper already flipped the local job back to queued
                # (or another replica re-claimed it): this worker's
                # cancel must not clobber the stolen job's lifecycle.
                self._refresh_locked(job)
                return
            require = job.state == JobState.RUNNING and lease is not None
            self._settle(
                job, JobState.CANCELLED, require_lease=require, lease=lease
            )

    def request_cancel(self, job_id: str) -> Job:
        """Flag a job for cancellation (raises ``KeyError`` if unknown,
        :class:`~repro.errors.ConfigError` if already terminal).

        Works across replicas: a job running elsewhere gets its
        ``cancel_requested`` flag set in the shared database, which the
        owning replica folds into its live ``cancel_event`` at the next
        heartbeat renewal.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                job = self._fetch(job_id)
                if job is None:
                    raise KeyError(job_id)
                self._jobs[job_id] = job
            elif not job.terminal:
                self._refresh_locked(job)
            if job.terminal:
                raise ConfigError(
                    f"job {job_id} is already {job.state}; nothing to cancel"
                )
            job.cancel_event.set()
            if job.state == JobState.QUEUED:
                # Not yet leased by any worker: settle it immediately
                # (the same transaction records the request).  The settle
                # is CAS-guarded on 'queued' — if another replica claims
                # the job in between, only the request flag is recorded
                # and the owner aborts at its next heartbeat.
                now = time.time()
                with self._tx():
                    cursor = self._conn.execute(
                        "UPDATE jobs SET cancel_requested = 1, state = ?, "
                        "finished_at = ? WHERE id = ? AND state = ?",
                        (JobState.CANCELLED, now, job_id, JobState.QUEUED),
                    )
                    if cursor.rowcount != 1:
                        self._conn.execute(
                            "UPDATE jobs SET cancel_requested = 1 "
                            "WHERE id = ?",
                            (job_id,),
                        )
                if cursor.rowcount == 1:
                    job.state = JobState.CANCELLED
                    job.finished_at = now
            else:
                with self._tx():
                    self._conn.execute(
                        "UPDATE jobs SET cancel_requested = 1 WHERE id = ?",
                        (job_id,),
                    )
            return job

    # -- span persistence -------------------------------------------------
    def save_spans(self, job_id: str, spans: List[dict]) -> None:
        """Durably attach a job's finished span records (idempotent —
        the last write wins, which is what retried jobs want)."""
        payload = json.dumps(
            {
                "schema": SERVICE_TRACE_SCHEMA,
                "schema_version": SCHEMA_VERSION,
                "spans": list(spans),
            }
        )
        with self._lock:
            with self._tx():
                self._conn.execute(
                    "INSERT OR REPLACE INTO spans (job_id, payload) "
                    "VALUES (?, ?)",
                    (job_id, payload),
                )

    def stored_spans(self, job_id: str) -> List[dict]:
        """A job's persisted span records (empty when none were saved)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM spans WHERE job_id = ?", (job_id,)
            ).fetchone()
        if row is None:
            return []
        payload = json.loads(row["payload"])
        check_schema_version(payload, f"span payload for {job_id}")
        return payload["spans"]

    # -- telemetry introspection ------------------------------------------
    @property
    def backend(self) -> str:
        return "sqlite"

    def lease_info(self) -> Dict[str, object]:
        """Active-lease telemetry for ``/healthz`` and the gauges.

        Counts leases database-wide (every replica's, not just this
        process's).  Ages are clamped to >= 0: ``started_at`` is wall
        clock, so a backwards clock step must never surface a negative
        age in ``/healthz`` or the ``service_oldest_lease_age_seconds``
        gauge.
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT started_at FROM jobs WHERE state = ?",
                (JobState.RUNNING,),
            ).fetchall()
        ages = [
            max(0.0, now - row["started_at"])
            for row in rows
            if row["started_at"] is not None
        ]
        return {
            "active_leases": len(rows),
            "oldest_lease_age_seconds": max(ages) if ages else 0.0,
        }

    def queue_depth(self) -> int:
        """Jobs currently queued, database-wide (the admission-control
        signal — includes jobs submitted through other replicas)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE state = ?",
                (JobState.QUEUED,),
            ).fetchone()
        return int(row["n"])

    def tenant_active_jobs(self, tenant: Optional[str]) -> int:
        """Non-terminal jobs submitted by ``tenant``, database-wide
        (the per-tenant quota signal; ``None`` = anonymous)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs "
                "WHERE tenant IS ? AND state IN (?, ?)",
                (tenant, JobState.QUEUED, JobState.RUNNING),
            ).fetchone()
        return int(row["n"])

    def memo_stats(self) -> Dict[str, object]:
        """Memo effectiveness over every job this store knows about."""
        with self._lock:
            total = len(self._jobs)
            hits = sum(1 for job in self._jobs.values() if job.memo_hit)
        return {
            "hits": hits,
            "jobs": total,
            "ratio": (hits / total) if total else 0.0,
        }

    def run_checkpoint_path(self, job_id: str) -> Path:
        """Per-run JSONL checkpoint for a multi-run job (resume unit)."""
        return self.state_dir / f"{job_id}.runs.jsonl"

    def wake_all(self) -> None:
        """Wake every worker blocked in :meth:`claim_next` (shutdown)."""
        with self._lock:
            self._queue_ready.notify_all()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

"""The HTTP surface: a threaded job server on the versioned v1 API.

Endpoints (JSON in, JSON out; see ``docs/api.md`` for curl examples)::

    POST   /v1/jobs              submit a job spec           -> 201 status
    GET    /v1/jobs              list jobs (?state= filter)  -> 200 list
    GET    /v1/jobs/{id}         status + per-k trajectory   -> 200 status
    GET    /v1/jobs/{id}/result  completed results           -> 200 results
    DELETE /v1/jobs/{id}         request cancellation        -> 202 status
    GET    /healthz              liveness + job counts       -> 200
    GET    /metrics              Prometheus text exposition  -> 200

Error envelope: ``{"error": {"status": <int>, "message": <str>}}`` with
400 for malformed specs/payloads, 404 for unknown jobs and paths, and
409 for state conflicts (result of an unfinished job, cancelling a
finished one).

Built on ``http.server.ThreadingHTTPServer`` — one thread per request,
stdlib only — with the actual estimation work done by the
:class:`~repro.service.worker.WorkerPool`, so slow jobs never block
status polls.  ``port=0`` binds an ephemeral port (tests); the bound
port is ``JobServer.port`` after :meth:`~JobServer.start`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, urlparse

from ..errors import ConfigError, ReproError, SchemaError
from ..obs.export import render_prometheus
from ..obs.metrics import get_registry
from .jobs import JobSpec, JobState
from .store import SQLiteJobStore
from .worker import WorkerPool

__all__ = ["JobServer", "serve"]

#: Largest accepted request body (a job spec is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20


class _ApiError(Exception):
    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests against ``self.server.app`` (the JobServer)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _ApiError(400, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _ApiError(400, "request body must be a JSON object")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _ApiError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return data

    def _dispatch(self, method: str) -> None:
        app = self.server.app  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        segments = [s for s in parsed.path.split("/") if s]
        try:
            self._route(app, method, segments, parse_qs(parsed.query))
        except _ApiError as exc:
            self._send_json(
                exc.status,
                {"error": {"status": exc.status, "message": exc.message}},
            )
        except (SchemaError, ConfigError) as exc:
            self._send_json(400, {"error": {"status": 400, "message": str(exc)}})
        except ReproError as exc:
            self._send_json(500, {"error": {"status": 500, "message": str(exc)}})
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 — last-resort envelope
            self._send_json(
                500,
                {
                    "error": {
                        "status": 500,
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                },
            )

    # -- routing --------------------------------------------------------
    def _route(self, app: "JobServer", method: str, segments, query) -> None:
        if segments == ["healthz"] and method == "GET":
            return self._send_json(200, app.health())
        if segments == ["metrics"] and method == "GET":
            return self._send_text(
                200, app.metrics_text(), "text/plain; version=0.0.4"
            )
        if len(segments) >= 2 and segments[0] == "v1" and segments[1] == "jobs":
            rest = segments[2:]
            if not rest:
                if method == "POST":
                    job = app.store.submit(JobSpec.from_dict(self._read_body()))
                    return self._send_json(201, job.status_dict())
                if method == "GET":
                    state = (query.get("state") or [None])[0]
                    if state is not None and state not in JobState.ALL:
                        raise _ApiError(400, f"unknown state filter {state!r}")
                    jobs = app.store.list(state=state)
                    return self._send_json(
                        200, {"jobs": [j.status_dict() for j in jobs]}
                    )
                raise _ApiError(405, f"{method} not allowed on /v1/jobs")
            job = app.store.get(rest[0])
            if job is None:
                raise _ApiError(404, f"no such job {rest[0]!r}")
            if len(rest) == 1:
                if method == "GET":
                    return self._send_json(200, job.status_dict())
                if method == "DELETE":
                    try:
                        app.store.request_cancel(job.id)
                    except ConfigError as exc:
                        raise _ApiError(409, str(exc))
                    return self._send_json(202, job.status_dict())
                raise _ApiError(405, f"{method} not allowed on /v1/jobs/{{id}}")
            if rest[1:] == ["result"] and method == "GET":
                if job.state != JobState.COMPLETED:
                    raise _ApiError(
                        409,
                        f"job {job.id} is {job.state}, not completed"
                        + (f": {job.error}" if job.error else ""),
                    )
                return self._send_json(200, job.result_dict())
        raise _ApiError(404, f"no route for {method} /{'/'.join(segments)}")

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class JobServer:
    """The estimation service: HTTP front end + worker pool + job store.

    ``start()``/``stop()`` give tests and embedders full lifecycle
    control; :func:`serve` wraps them for the CLI.  Starting the server
    enables the global metrics registry (the service is an observability
    consumer by design — ``/metrics`` is part of its API).

    Durable state lives in a WAL-mode SQLite database
    (:class:`~repro.service.store.SQLiteJobStore`); a legacy
    ``jobs.jsonl`` found in ``state_dir`` is migrated into it once at
    startup.  ``memo=False`` disables content-keyed result memoization
    (every submission runs, even when an identical spec already
    completed).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        state_dir: Union[str, Path] = ".repro_service",
        workers: int = 2,
        verbose: bool = False,
        memo: bool = True,
    ):
        self.host = host
        self.state_dir = Path(state_dir)
        self.store = SQLiteJobStore(self.state_dir, memo=memo)
        self.pool = WorkerPool(self.store, num_workers=workers)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.app = self  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- payload builders (also used by the handler) --------------------
    def health(self) -> dict:
        return {
            "status": "ok",
            "jobs": self.store.counts(),
            "workers": self.pool.num_workers,
            "uptime_seconds": (
                time.time() - self._started_at if self._started_at else 0.0
            ),
        }

    def metrics_text(self) -> str:
        registry = get_registry()
        snapshot = registry.snapshot()
        # The job-state gauges are computed from the store per scrape
        # (not registry-resident), so all states are always present —
        # a dashboard sees queued=0, not a missing series.
        gauges = [
            g for g in snapshot.get("gauges", [])
            if g.get("name") != "service_jobs"
        ]
        for state, count in self.store.counts().items():
            gauges.append(
                {
                    "name": "service_jobs",
                    "labels": {"state": state},
                    "value": float(count),
                }
            )
        snapshot["gauges"] = gauges
        return render_prometheus(snapshot)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "JobServer":
        get_registry().enable()
        self._started_at = time.time()
        self.pool.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.pool.stop()
        self.store.close()

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    state_dir: Union[str, Path] = ".repro_service",
    workers: int = 2,
    verbose: bool = False,
    memo: bool = True,
) -> None:
    """Run the job server until interrupted (the ``repro serve`` entry)."""
    server = JobServer(
        host=host, port=port, state_dir=state_dir, workers=workers,
        verbose=verbose, memo=memo,
    )
    requeued = server.store.requeued_ids
    migrated = server.store.migrated_jobs
    server.start()
    print(f"repro service listening on {server.url}")
    print(f"state dir: {server.state_dir.resolve()}")
    if migrated:
        print(
            f"migrated {migrated} job(s) from jobs.jsonl into jobs.db "
            "(log renamed to jobs.jsonl.migrated)"
        )
    if not memo:
        print("result memoization disabled (--no-memo)")
    if requeued:
        print(f"resumed {len(requeued)} unfinished job(s): {', '.join(requeued)}")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()

"""The HTTP surface: a threaded job server on the versioned v1 API.

Endpoints (JSON in, JSON out; see ``docs/api.md`` for curl examples)::

    POST   /v1/jobs              submit a job spec           -> 201 status
    GET    /v1/jobs              list jobs (?state= filter)  -> 200 list
    GET    /v1/jobs/{id}         status + per-k trajectory   -> 200 status
    GET    /v1/jobs/{id}/result  completed results           -> 200 results
    DELETE /v1/jobs/{id}         request cancellation        -> 202 status
    GET    /healthz              liveness + job counts       -> 200
    GET    /metrics              Prometheus text exposition  -> 200

Error envelope: ``{"error": {"status": <int>, "message": <str>}}`` with
400 for malformed specs/payloads, 404 for unknown jobs and paths, and
409 for state conflicts (result of an unfinished job, cancelling a
finished one).

Built on ``http.server.ThreadingHTTPServer`` — one thread per request,
stdlib only — with the actual estimation work done by the
:class:`~repro.service.worker.WorkerPool`, so slow jobs never block
status polls.  ``port=0`` binds an ephemeral port (tests); the bound
port is ``JobServer.port`` after :meth:`~JobServer.start`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, urlparse

from ..errors import ConfigError, ReproError, SchemaError
from ..obs.export import render_prometheus
from ..obs.metrics import get_registry
from ..obs.spans import get_span_recorder, parse_traceparent
from ..schemas import SCHEMA_VERSION, SERVICE_TRACE_SCHEMA
from .jobs import Job, JobSpec, JobState
from .store import SQLiteJobStore
from .worker import WorkerPool

__all__ = ["JobServer", "serve"]

#: Largest accepted request body (a job spec is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

#: Latency buckets for ``service_http_request_seconds`` — sub-ms static
#: endpoints up through multi-second synchronous submits.
_HTTP_BUCKETS = (0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0, 30.0)

#: Gauges recomputed from live server state on every ``/metrics`` scrape
#: (any stale registry-resident series with these names is dropped first).
_SCRAPE_GAUGES = frozenset(
    {
        "service_jobs",
        "service_queue_depth",
        "service_active_leases",
        "service_oldest_lease_age_seconds",
        "service_busy_workers",
        "service_worker_saturation",
    }
)


def _endpoint_label(segments) -> str:
    """Collapse a request path to its route template so the per-endpoint
    histogram has bounded label cardinality (job ids never become labels)."""
    if segments == ["healthz"]:
        return "/healthz"
    if segments == ["metrics"]:
        return "/metrics"
    if len(segments) >= 2 and segments[0] == "v1" and segments[1] == "jobs":
        rest = segments[2:]
        if not rest:
            return "/v1/jobs"
        if len(rest) == 1:
            return "/v1/jobs/{id}"
        if rest[1:] == ["result"]:
            return "/v1/jobs/{id}/result"
        if rest[1:] == ["trace"]:
            return "/v1/jobs/{id}/trace"
    return "other"


class _ApiError(Exception):
    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests against ``self.server.app`` (the JobServer)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _ApiError(400, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _ApiError(400, "request body must be a JSON object")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _ApiError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return data

    def _dispatch(self, method: str) -> None:
        app = self.server.app  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        segments = [s for s in parsed.path.split("/") if s]
        endpoint = _endpoint_label(segments)
        spans = get_span_recorder()
        request_span = None
        if spans.enabled:
            # W3C trace-context: a traceparent header joins the caller's
            # trace; its absence (or a malformed value) starts a new one.
            context = parse_traceparent(self.headers.get("traceparent"))
            request_span = spans.start(
                "http.request",
                parent=context,
                method=method,
                path=parsed.path,
                endpoint=endpoint,
            )
        self._status = 0
        started = time.perf_counter()
        try:
            try:
                self._route(app, method, segments, parse_qs(parsed.query))
            except _ApiError as exc:
                self._send_json(
                    exc.status,
                    {"error": {"status": exc.status, "message": exc.message}},
                )
            except (SchemaError, ConfigError) as exc:
                self._send_json(
                    400, {"error": {"status": 400, "message": str(exc)}}
                )
            except ReproError as exc:
                self._send_json(
                    500, {"error": {"status": 500, "message": str(exc)}}
                )
            except BrokenPipeError:
                pass  # client went away mid-response
            except Exception as exc:  # noqa: BLE001 — last-resort envelope
                self._send_json(
                    500,
                    {
                        "error": {
                            "status": 500,
                            "message": f"{type(exc).__name__}: {exc}",
                        }
                    },
                )
        finally:
            elapsed = time.perf_counter() - started
            registry = get_registry()
            registry.histogram(
                "service_http_request_seconds",
                _HTTP_BUCKETS,
                endpoint=endpoint,
                method=method,
            ).observe(elapsed)
            registry.counter(
                "service_http_responses_total",
                endpoint=endpoint,
                status=str(self._status),
            ).inc()
            if request_span is not None:
                spans.finish(
                    request_span,
                    status="error" if self._status >= 500 else "ok",
                    http_status=self._status,
                )

    # -- routing --------------------------------------------------------
    def _route(self, app: "JobServer", method: str, segments, query) -> None:
        if segments == ["healthz"] and method == "GET":
            return self._send_json(200, app.health())
        if segments == ["metrics"] and method == "GET":
            return self._send_text(
                200, app.metrics_text(), "text/plain; version=0.0.4"
            )
        if len(segments) >= 2 and segments[0] == "v1" and segments[1] == "jobs":
            rest = segments[2:]
            if not rest:
                if method == "POST":
                    job = app.store.submit(JobSpec.from_dict(self._read_body()))
                    return self._send_json(201, job.status_dict())
                if method == "GET":
                    state = (query.get("state") or [None])[0]
                    if state is not None and state not in JobState.ALL:
                        raise _ApiError(400, f"unknown state filter {state!r}")
                    jobs = app.store.list(state=state)
                    return self._send_json(
                        200, {"jobs": [j.status_dict() for j in jobs]}
                    )
                raise _ApiError(405, f"{method} not allowed on /v1/jobs")
            job = app.store.get(rest[0])
            if job is None:
                raise _ApiError(404, f"no such job {rest[0]!r}")
            if len(rest) == 1:
                if method == "GET":
                    return self._send_json(200, job.status_dict())
                if method == "DELETE":
                    try:
                        app.store.request_cancel(job.id)
                    except ConfigError as exc:
                        raise _ApiError(409, str(exc))
                    return self._send_json(202, job.status_dict())
                raise _ApiError(405, f"{method} not allowed on /v1/jobs/{{id}}")
            if rest[1:] == ["result"] and method == "GET":
                if job.state != JobState.COMPLETED:
                    raise _ApiError(
                        409,
                        f"job {job.id} is {job.state}, not completed"
                        + (f": {job.error}" if job.error else ""),
                    )
                return self._send_json(200, job.result_dict())
            if rest[1:] == ["trace"] and method == "GET":
                return self._send_json(200, app.job_trace(job))
        raise _ApiError(404, f"no route for {method} /{'/'.join(segments)}")

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class JobServer:
    """The estimation service: HTTP front end + worker pool + job store.

    ``start()``/``stop()`` give tests and embedders full lifecycle
    control; :func:`serve` wraps them for the CLI.  Starting the server
    enables the global metrics registry (the service is an observability
    consumer by design — ``/metrics`` is part of its API).

    Durable state lives in a WAL-mode SQLite database
    (:class:`~repro.service.store.SQLiteJobStore`); a legacy
    ``jobs.jsonl`` found in ``state_dir`` is migrated into it once at
    startup.  ``memo=False`` disables content-keyed result memoization
    (every submission runs, even when an identical spec already
    completed).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        state_dir: Union[str, Path] = ".repro_service",
        workers: int = 2,
        verbose: bool = False,
        memo: bool = True,
    ):
        self.host = host
        self.state_dir = Path(state_dir)
        self.store = SQLiteJobStore(self.state_dir, memo=memo)
        self.pool = WorkerPool(self.store, num_workers=workers)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.app = self  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- payload builders (also used by the handler) --------------------
    def health(self) -> dict:
        counts = self.store.counts()
        lease = self.store.lease_info()
        memo = self.store.memo_stats()
        return {
            "status": "ok",
            "jobs": counts,
            "workers": self.pool.num_workers,
            "busy_workers": self.pool.busy_count(),
            "queue_depth": counts.get("queued", 0),
            "active_leases": lease["active_leases"],
            "oldest_lease_age_seconds": lease["oldest_lease_age_seconds"],
            "memo_hit_ratio": memo["ratio"],
            "store_backend": self.store.backend,
            "uptime_seconds": (
                time.time() - self._started_at if self._started_at else 0.0
            ),
        }

    def job_trace(self, job: Job) -> dict:
        """The job's span tree payload: durable spans persisted by the
        worker merged with whatever is still live in the recorder
        (deduplicated by span id, ordered by start time)."""
        merged = {}
        for record in self.store.stored_spans(job.id):
            merged[record["span_id"]] = record
        if job.trace_id is not None:
            for record in get_span_recorder().spans_for_trace(job.trace_id):
                merged[record["span_id"]] = record
        spans = sorted(merged.values(), key=lambda r: r.get("start_ts", 0.0))
        return {
            "schema_version": SCHEMA_VERSION,
            "schema": SERVICE_TRACE_SCHEMA,
            "id": job.id,
            "trace_id": job.trace_id,
            "state": job.state,
            "spans": spans,
        }

    def metrics_text(self) -> str:
        registry = get_registry()
        snapshot = registry.snapshot()
        # The job-state gauges are computed from the store per scrape
        # (not registry-resident), so all states are always present —
        # a dashboard sees queued=0, not a missing series.
        gauges = [
            g for g in snapshot.get("gauges", [])
            if g.get("name") not in _SCRAPE_GAUGES
        ]
        counts = self.store.counts()
        for state, count in counts.items():
            gauges.append(
                {
                    "name": "service_jobs",
                    "labels": {"state": state},
                    "value": float(count),
                }
            )
        lease = self.store.lease_info()
        busy = self.pool.busy_count()
        for name, value in (
            ("service_queue_depth", float(counts.get("queued", 0))),
            ("service_active_leases", float(lease["active_leases"])),
            (
                "service_oldest_lease_age_seconds",
                float(lease["oldest_lease_age_seconds"]),
            ),
            ("service_busy_workers", float(busy)),
            ("service_worker_saturation", busy / self.pool.num_workers),
        ):
            gauges.append({"name": name, "labels": {}, "value": value})
        snapshot["gauges"] = gauges
        return render_prometheus(snapshot)

    def telemetry_summary(self) -> str:
        """One line for the ``repro serve`` shutdown log."""
        counts = self.store.counts()
        memo = self.store.memo_stats()
        uptime = time.time() - self._started_at if self._started_at else 0.0
        finished = sum(
            counts.get(state, 0) for state in ("completed", "failed", "cancelled")
        )
        return (
            f"served {sum(counts.values())} job(s) in {uptime:.1f}s "
            f"({finished} finished: "
            f"{counts.get('completed', 0)} completed, "
            f"{counts.get('failed', 0)} failed, "
            f"{counts.get('cancelled', 0)} cancelled; "
            f"memo hit ratio {memo['ratio']:.2f})"
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "JobServer":
        get_registry().enable()
        get_span_recorder().enable()
        self._started_at = time.time()
        self.pool.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.pool.stop()
        self.store.close()

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    state_dir: Union[str, Path] = ".repro_service",
    workers: int = 2,
    verbose: bool = False,
    memo: bool = True,
) -> None:
    """Run the job server until interrupted (the ``repro serve`` entry)."""
    server = JobServer(
        host=host, port=port, state_dir=state_dir, workers=workers,
        verbose=verbose, memo=memo,
    )
    requeued = server.store.requeued_ids
    migrated = server.store.migrated_jobs
    server.start()
    print(f"repro service listening on {server.url}")
    print(f"state dir: {server.state_dir.resolve()}")
    if migrated:
        print(
            f"migrated {migrated} job(s) from jobs.jsonl into jobs.db "
            "(log renamed to jobs.jsonl.migrated)"
        )
    if not memo:
        print("result memoization disabled (--no-memo)")
    if requeued:
        print(f"resumed {len(requeued)} unfinished job(s): {', '.join(requeued)}")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        summary = server.telemetry_summary()
        server.stop()
        print(summary)

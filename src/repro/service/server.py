"""The HTTP surface: a threaded job server on the versioned v1 API.

Endpoints (JSON in, JSON out; see ``docs/api.md`` for curl examples)::

    POST   /v1/jobs              submit a job spec           -> 201 status
    GET    /v1/jobs              list jobs (?state= filter)  -> 200 list
    GET    /v1/jobs/{id}         status + per-k trajectory   -> 200 status
    GET    /v1/jobs/{id}/result  completed results           -> 200 results
    GET    /v1/jobs/{id}/events  server-sent-events stream   -> 200 SSE
    DELETE /v1/jobs/{id}         request cancellation        -> 202 status
    GET    /healthz              liveness + job counts       -> 200
    GET    /metrics              Prometheus text exposition  -> 200

Error envelope: ``{"error": {"status": <int>, "message": <str>}}`` with
400 for malformed specs/payloads, 404 for unknown jobs and paths, 409
for state conflicts (result of an unfinished job, cancelling a finished
one), and 429 + ``Retry-After`` when admission control rejects a submit
(bounded queue depth, per-tenant token-bucket rate limit, or per-tenant
active-job quota — the tenant is the ``X-API-Key`` request header,
anonymous when absent).

Built on ``http.server.ThreadingHTTPServer`` — one thread per request,
stdlib only — with the actual estimation work done by the
:class:`~repro.service.worker.WorkerPool`, so slow jobs never block
status polls.  ``port=0`` binds an ephemeral port (tests); the bound
port is ``JobServer.port`` after :meth:`~JobServer.start`.
"""

from __future__ import annotations

import json
import threading
import time
from math import ceil
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, urlparse

from ..errors import ConfigError, ReproError, SchemaError
from ..obs.export import render_prometheus
from ..obs.metrics import get_registry
from ..obs.spans import get_span_recorder, parse_traceparent
from ..sim.compiled import kernel_info
from ..schemas import (
    SCHEMA_VERSION,
    SERVICE_EVENTS_SCHEMA,
    SERVICE_TRACE_SCHEMA,
)
from .jobs import Job, JobSpec, JobState
from .store import DEFAULT_LEASE_TTL, SQLiteJobStore
from .worker import WorkerPool

__all__ = ["JobServer", "serve"]

#: Largest accepted request body (a job spec is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

#: Token buckets kept before stale entries are evicted.  Bucket keys are
#: raw ``X-API-Key`` values — attacker-chosen — so the map is bounded:
#: a client cycling random keys must not inflate server memory.
MAX_RATE_BUCKETS = 1024

#: Latency buckets for ``service_http_request_seconds`` — sub-ms static
#: endpoints up through multi-second synchronous submits.
_HTTP_BUCKETS = (0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0, 30.0)

#: Gauges recomputed from live server state on every ``/metrics`` scrape
#: (any stale registry-resident series with these names is dropped first).
_SCRAPE_GAUGES = frozenset(
    {
        "service_jobs",
        "service_queue_depth",
        "service_active_leases",
        "service_oldest_lease_age_seconds",
        "service_busy_workers",
        "service_worker_saturation",
        "service_queue_limit",
    }
)


def _endpoint_label(segments) -> str:
    """Collapse a request path to its route template so the per-endpoint
    histogram has bounded label cardinality (job ids never become labels)."""
    if segments == ["healthz"]:
        return "/healthz"
    if segments == ["metrics"]:
        return "/metrics"
    if len(segments) >= 2 and segments[0] == "v1" and segments[1] == "jobs":
        rest = segments[2:]
        if not rest:
            return "/v1/jobs"
        if len(rest) == 1:
            return "/v1/jobs/{id}"
        if rest[1:] == ["result"]:
            return "/v1/jobs/{id}/result"
        if rest[1:] == ["trace"]:
            return "/v1/jobs/{id}/trace"
        if rest[1:] == ["events"]:
            return "/v1/jobs/{id}/events"
    return "other"


class _ApiError(Exception):
    def __init__(self, status: int, message: str, headers: Optional[dict] = None):
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        super().__init__(message)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests against ``self.server.app`` (the JobServer)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _ApiError(400, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _ApiError(400, "request body must be a JSON object")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _ApiError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return data

    def _dispatch(self, method: str) -> None:
        app = self.server.app  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        segments = [s for s in parsed.path.split("/") if s]
        endpoint = _endpoint_label(segments)
        spans = get_span_recorder()
        request_span = None
        if spans.enabled:
            # W3C trace-context: a traceparent header joins the caller's
            # trace; its absence (or a malformed value) starts a new one.
            context = parse_traceparent(self.headers.get("traceparent"))
            request_span = spans.start(
                "http.request",
                parent=context,
                method=method,
                path=parsed.path,
                endpoint=endpoint,
            )
        self._status = 0
        started = time.perf_counter()
        try:
            try:
                self._route(app, method, segments, parse_qs(parsed.query))
            except _ApiError as exc:
                self._send_json(
                    exc.status,
                    {"error": {"status": exc.status, "message": exc.message}},
                    headers=exc.headers,
                )
            except (SchemaError, ConfigError) as exc:
                self._send_json(
                    400, {"error": {"status": 400, "message": str(exc)}}
                )
            except ReproError as exc:
                self._send_json(
                    500, {"error": {"status": 500, "message": str(exc)}}
                )
            except BrokenPipeError:
                pass  # client went away mid-response
            except Exception as exc:  # noqa: BLE001 — last-resort envelope
                self._send_json(
                    500,
                    {
                        "error": {
                            "status": 500,
                            "message": f"{type(exc).__name__}: {exc}",
                        }
                    },
                )
        finally:
            elapsed = time.perf_counter() - started
            registry = get_registry()
            registry.histogram(
                "service_http_request_seconds",
                _HTTP_BUCKETS,
                endpoint=endpoint,
                method=method,
            ).observe(elapsed)
            registry.counter(
                "service_http_responses_total",
                endpoint=endpoint,
                status=str(self._status),
            ).inc()
            if request_span is not None:
                spans.finish(
                    request_span,
                    status="error" if self._status >= 500 else "ok",
                    http_status=self._status,
                )

    # -- routing --------------------------------------------------------
    def _route(self, app: "JobServer", method: str, segments, query) -> None:
        if segments == ["healthz"] and method == "GET":
            return self._send_json(200, app.health())
        if segments == ["metrics"] and method == "GET":
            return self._send_text(
                200, app.metrics_text(), "text/plain; version=0.0.4"
            )
        if len(segments) >= 2 and segments[0] == "v1" and segments[1] == "jobs":
            rest = segments[2:]
            if not rest:
                if method == "POST":
                    tenant = self.headers.get("X-API-Key") or None
                    app.admit(tenant)
                    job = app.store.submit(
                        JobSpec.from_dict(self._read_body()), tenant=tenant
                    )
                    return self._send_json(201, job.status_dict())
                if method == "GET":
                    state = (query.get("state") or [None])[0]
                    if state is not None and state not in JobState.ALL:
                        raise _ApiError(400, f"unknown state filter {state!r}")
                    jobs = app.store.list(state=state)
                    return self._send_json(
                        200, {"jobs": [j.status_dict() for j in jobs]}
                    )
                raise _ApiError(405, f"{method} not allowed on /v1/jobs")
            job = app.store.get(rest[0])
            if job is None:
                raise _ApiError(404, f"no such job {rest[0]!r}")
            if len(rest) == 1:
                if method == "GET":
                    return self._send_json(200, job.status_dict())
                if method == "DELETE":
                    try:
                        app.store.request_cancel(job.id)
                    except ConfigError as exc:
                        raise _ApiError(409, str(exc))
                    return self._send_json(202, job.status_dict())
                raise _ApiError(405, f"{method} not allowed on /v1/jobs/{{id}}")
            if rest[1:] == ["result"] and method == "GET":
                if job.state != JobState.COMPLETED:
                    raise _ApiError(
                        409,
                        f"job {job.id} is {job.state}, not completed"
                        + (f": {job.error}" if job.error else ""),
                    )
                return self._send_json(200, job.result_dict())
            if rest[1:] == ["trace"] and method == "GET":
                return self._send_json(200, app.job_trace(job))
            if rest[1:] == ["events"] and method == "GET":
                return self._serve_events(app, job)
        raise _ApiError(404, f"no route for {method} /{'/'.join(segments)}")

    # -- server-sent events ----------------------------------------------
    def _serve_events(self, app: "JobServer", job: Job) -> None:
        """Stream the job's progress as SSE until it settles.

        One ``state``/``progress``/``run`` event per visible change (the
        ``data:`` payload is the full schema-stamped status dict, so a
        consumer needs no side requests); the first event is always a
        snapshot and the last carries the terminal state.  Comment
        keepalives flow while nothing changes so idle proxies and client
        read timeouts don't sever a healthy stream.  The response is
        unframed (``Connection: close``) — one server thread per
        subscriber, same as a poll-loop client that never sleeps.
        """
        self._status = 200
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        self.wfile.write(b"retry: 1000\n\n")
        seq = 0
        last_mark = None
        idle = 0.0
        while True:
            current = app.store.get(job.id) or job
            status = current.status_dict()
            mark = (
                status["state"],
                len(status["trajectory"]),
                status["completed_runs"],
            )
            if mark != last_mark:
                if last_mark is None or status["state"] != last_mark[0]:
                    kind = "state"
                elif len(status["trajectory"]) != last_mark[1]:
                    kind = "progress"
                else:
                    kind = "run"
                seq += 1
                payload = dict(status)
                payload["schema"] = SERVICE_EVENTS_SCHEMA
                payload["event"] = kind
                body = json.dumps(payload)
                self.wfile.write(
                    f"id: {seq}\nevent: {kind}\ndata: {body}\n\n".encode("utf-8")
                )
                self.wfile.flush()
                last_mark = mark
                idle = 0.0
            if status["state"] in JobState.TERMINAL:
                return
            if app.closing:
                return  # server shutting down: end the stream cleanly
            time.sleep(app.sse_poll_interval)
            idle += app.sse_poll_interval
            if idle >= app.sse_keepalive_interval:
                self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
                idle = 0.0

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class JobServer:
    """The estimation service: HTTP front end + worker pool + job store.

    ``start()``/``stop()`` give tests and embedders full lifecycle
    control; :func:`serve` wraps them for the CLI.  Starting the server
    enables the global metrics registry (the service is an observability
    consumer by design — ``/metrics`` is part of its API).

    Durable state lives in a WAL-mode SQLite database
    (:class:`~repro.service.store.SQLiteJobStore`); a legacy
    ``jobs.jsonl`` found in ``state_dir`` is migrated into it once at
    startup.  ``memo=False`` disables content-keyed result memoization
    (every submission runs, even when an identical spec already
    completed).

    **Multi-replica.**  N servers may share one ``state_dir``: claims
    are atomic leases, expired leases are stolen by surviving replicas,
    and any replica serves status/results for any job.  ``replica_id``
    defaults to ``host:port`` — stable across restarts (a crash-restart
    reclaims its own leases immediately) and distinct between replicas
    (which must bind different ports).  ``lease_ttl=None`` disables
    lease expiry (single-replica semantics).

    **Admission control.**  ``max_queue_depth`` bounds the shared queue;
    ``rate_limit`` (submits/second, burst ``rate_burst``) and
    ``tenant_quota`` (active jobs) apply per tenant — the ``X-API-Key``
    header, anonymous when absent.  Rejections are 429 with a
    ``Retry-After`` header and are counted in
    ``service_admission_rejections_total{reason=...}``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        state_dir: Union[str, Path] = ".repro_service",
        workers: int = 2,
        verbose: bool = False,
        memo: bool = True,
        replica_id: Optional[str] = None,
        lease_ttl: Optional[float] = DEFAULT_LEASE_TTL,
        max_queue_depth: Optional[int] = None,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[int] = None,
        tenant_quota: Optional[int] = None,
    ):
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ConfigError("max_queue_depth must be >= 0 (or None)")
        if rate_limit is not None and rate_limit <= 0:
            raise ConfigError("rate_limit must be positive (or None)")
        if tenant_quota is not None and tenant_quota < 1:
            raise ConfigError("tenant_quota must be >= 1 (or None)")
        self.host = host
        self.state_dir = Path(state_dir)
        # Bind before building the store: the resolved port is part of
        # the default replica identity (stable across restarts, distinct
        # between replicas sharing a state dir).
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.app = self  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self.replica_id = replica_id or f"{host}:{self.port}"
        self.store = SQLiteJobStore(
            self.state_dir, memo=memo,
            replica_id=self.replica_id, lease_ttl=lease_ttl,
        )
        self.pool = WorkerPool(self.store, num_workers=workers)
        self.max_queue_depth = max_queue_depth
        self.rate_limit = rate_limit
        self.rate_burst = (
            rate_burst
            if rate_burst is not None
            else (max(1, int(rate_limit)) if rate_limit is not None else 1)
        )
        self.tenant_quota = tenant_quota
        #: Seconds a 429 tells the client to back off when the wait is
        #: not rate-limiter-determined (queue full / quota reached).
        self.retry_after_seconds = 1
        #: SSE cadence: job-state poll period and idle keepalive period.
        self.sse_poll_interval = 0.05
        self.sse_keepalive_interval = 10.0
        self._admission_lock = threading.Lock()
        # tenant -> (tokens, last monotonic).  Keys are attacker-chosen
        # (the raw X-API-Key header), so the map is pruned past
        # _MAX_BUCKETS — it must never grow without bound.
        self._buckets: dict = {}
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._closing = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def closing(self) -> bool:
        return self._closing

    # -- admission control ----------------------------------------------
    def admit(self, tenant: Optional[str]) -> None:
        """Gate one ``POST /v1/jobs``; raises a 429 :class:`_ApiError`
        with a ``Retry-After`` header when the submit must back off.

        Checks, cheapest first: per-tenant token bucket (``rate_limit``
        tokens/second, capacity ``rate_burst``), per-tenant active-job
        quota, then the shared bounded queue.
        """
        if self.rate_limit is not None:
            now = time.monotonic()
            with self._admission_lock:
                tokens, last = self._buckets.get(
                    tenant, (float(self.rate_burst), now)
                )
                tokens = min(
                    float(self.rate_burst),
                    tokens + (now - last) * self.rate_limit,
                )
                if tokens < 1.0:
                    self._buckets[tenant] = (tokens, now)
                    retry = max(1, ceil((1.0 - tokens) / self.rate_limit))
                    self._reject("rate_limited", retry, tenant)
                self._buckets[tenant] = (tokens - 1.0, now)
                if len(self._buckets) > MAX_RATE_BUCKETS:
                    self._prune_buckets_locked(now)
        if self.tenant_quota is not None:
            if self.store.tenant_active_jobs(tenant) >= self.tenant_quota:
                self._reject("quota", self.retry_after_seconds, tenant)
        if self.max_queue_depth is not None:
            if self.store.queue_depth() >= self.max_queue_depth:
                self._reject("queue_full", self.retry_after_seconds, tenant)

    def _prune_buckets_locked(self, now: float) -> None:
        """Evict token buckets so the map stays bounded.

        First drops every bucket idle long enough to have refilled to
        full burst — indistinguishable from a fresh one, so eviction is
        semantically free.  If a flood of *recent* distinct keys still
        holds the map over the cap, the oldest are dropped too; those
        tenants restart from a full burst, a bounded over-admission
        that beats unbounded memory growth.
        """
        refill = self.rate_burst / self.rate_limit
        for key in [
            k
            for k, (_tokens, last) in self._buckets.items()
            if now - last >= refill
        ]:
            del self._buckets[key]
        excess = len(self._buckets) - MAX_RATE_BUCKETS
        if excess > 0:
            for key in sorted(
                self._buckets, key=lambda k: self._buckets[k][1]
            )[:excess]:
                del self._buckets[key]

    def _reject(self, reason: str, retry_after: int, tenant: Optional[str]) -> None:
        get_registry().counter(
            "service_admission_rejections_total", reason=reason
        ).inc()
        who = f"tenant {tenant!r}" if tenant else "anonymous"
        detail = {
            "rate_limited": f"rate limit exceeded for {who}",
            "quota": (
                f"active-job quota ({self.tenant_quota}) reached for {who}"
            ),
            "queue_full": (
                f"queue full ({self.max_queue_depth} job(s) queued)"
            ),
        }[reason]
        raise _ApiError(
            429,
            f"{detail}; retry after {retry_after}s",
            headers={"Retry-After": retry_after},
        )

    # -- payload builders (also used by the handler) --------------------
    def health(self) -> dict:
        counts = self.store.counts()
        lease = self.store.lease_info()
        memo = self.store.memo_stats()
        return {
            "status": "ok",
            "jobs": counts,
            "workers": self.pool.num_workers,
            "busy_workers": self.pool.busy_count(),
            "queue_depth": self.store.queue_depth(),
            "queue_limit": self.max_queue_depth,
            "active_leases": lease["active_leases"],
            "oldest_lease_age_seconds": lease["oldest_lease_age_seconds"],
            "replica_id": self.replica_id,
            "lease_ttl_seconds": self.store.lease_ttl,
            "rate_limit_per_second": self.rate_limit,
            "tenant_quota": self.tenant_quota,
            "memo_hit_ratio": memo["ratio"],
            "store_backend": self.store.backend,
            "sim_kernel": kernel_info(),
            "uptime_seconds": (
                time.time() - self._started_at if self._started_at else 0.0
            ),
        }

    def job_trace(self, job: Job) -> dict:
        """The job's span tree payload: durable spans persisted by the
        worker merged with whatever is still live in the recorder
        (deduplicated by span id, ordered by start time)."""
        merged = {}
        for record in self.store.stored_spans(job.id):
            merged[record["span_id"]] = record
        if job.trace_id is not None:
            for record in get_span_recorder().spans_for_trace(job.trace_id):
                merged[record["span_id"]] = record
        spans = sorted(merged.values(), key=lambda r: r.get("start_ts", 0.0))
        return {
            "schema_version": SCHEMA_VERSION,
            "schema": SERVICE_TRACE_SCHEMA,
            "id": job.id,
            "trace_id": job.trace_id,
            "state": job.state,
            "spans": spans,
        }

    def metrics_text(self) -> str:
        registry = get_registry()
        snapshot = registry.snapshot()
        # The job-state gauges are computed from the store per scrape
        # (not registry-resident), so all states are always present —
        # a dashboard sees queued=0, not a missing series.
        gauges = [
            g for g in snapshot.get("gauges", [])
            if g.get("name") not in _SCRAPE_GAUGES
        ]
        counts = self.store.counts()
        for state, count in counts.items():
            gauges.append(
                {
                    "name": "service_jobs",
                    "labels": {"state": state},
                    "value": float(count),
                }
            )
        lease = self.store.lease_info()
        busy = self.pool.busy_count()
        scrape = [
            ("service_queue_depth", float(self.store.queue_depth())),
            ("service_active_leases", float(lease["active_leases"])),
            (
                "service_oldest_lease_age_seconds",
                float(lease["oldest_lease_age_seconds"]),
            ),
            ("service_busy_workers", float(busy)),
            ("service_worker_saturation", busy / self.pool.num_workers),
        ]
        if self.max_queue_depth is not None:
            scrape.append(
                ("service_queue_limit", float(self.max_queue_depth))
            )
        for name, value in scrape:
            gauges.append({"name": name, "labels": {}, "value": value})
        snapshot["gauges"] = gauges
        return render_prometheus(snapshot)

    def telemetry_summary(self) -> str:
        """One line for the ``repro serve`` shutdown log."""
        counts = self.store.counts()
        memo = self.store.memo_stats()
        uptime = time.time() - self._started_at if self._started_at else 0.0
        finished = sum(
            counts.get(state, 0) for state in ("completed", "failed", "cancelled")
        )
        info = kernel_info()
        kernel = info["active"]
        if info["backend"]:
            kernel += f"/{info['backend']}"
        if info["fallback"]:
            kernel += " (native requested, no accelerator)"
        return (
            f"served {sum(counts.values())} job(s) in {uptime:.1f}s "
            f"({finished} finished: "
            f"{counts.get('completed', 0)} completed, "
            f"{counts.get('failed', 0)} failed, "
            f"{counts.get('cancelled', 0)} cancelled; "
            f"memo hit ratio {memo['ratio']:.2f}; "
            f"sim kernel {kernel})"
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "JobServer":
        get_registry().enable()
        get_span_recorder().enable()
        self._started_at = time.time()
        self.pool.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._closing = True  # ends in-flight SSE streams at next poll
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.pool.stop()
        self.store.close()

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    state_dir: Union[str, Path] = ".repro_service",
    workers: int = 2,
    verbose: bool = False,
    memo: bool = True,
    replica_id: Optional[str] = None,
    lease_ttl: Optional[float] = DEFAULT_LEASE_TTL,
    max_queue_depth: Optional[int] = None,
    rate_limit: Optional[float] = None,
    rate_burst: Optional[float] = None,
    tenant_quota: Optional[int] = None,
) -> None:
    """Run the job server until interrupted (the ``repro serve`` entry)."""
    server = JobServer(
        host=host, port=port, state_dir=state_dir, workers=workers,
        verbose=verbose, memo=memo, replica_id=replica_id,
        lease_ttl=lease_ttl, max_queue_depth=max_queue_depth,
        rate_limit=rate_limit, rate_burst=rate_burst,
        tenant_quota=tenant_quota,
    )
    requeued = server.store.requeued_ids
    migrated = server.store.migrated_jobs
    server.start()
    print(f"repro service listening on {server.url}")
    print(f"state dir: {server.state_dir.resolve()}")
    ttl = "off" if lease_ttl is None else f"{lease_ttl:g}s"
    print(f"replica {server.replica_id} (lease ttl {ttl})")
    if migrated:
        print(
            f"migrated {migrated} job(s) from jobs.jsonl into jobs.db "
            "(log renamed to jobs.jsonl.migrated)"
        )
    if not memo:
        print("result memoization disabled (--no-memo)")
    if requeued:
        print(f"resumed {len(requeued)} unfinished job(s): {', '.join(requeued)}")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        summary = server.telemetry_summary()
        server.stop()
        print(summary)

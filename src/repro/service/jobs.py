"""Job model and durable job store for the estimation service.

A job is one estimation request: a circuit/population description plus
an :class:`~repro.api.EstimatorConfig`, repeated ``num_runs`` times.
The :class:`JobStore` keeps every job in memory for serving and appends
every lifecycle event to ``<state_dir>/jobs.jsonl`` — an append-only,
crash-tolerant log replayed on startup, so a restarted server still
knows every submitted job, serves completed results, and re-queues jobs
that were queued or mid-flight when the process died.  In-flight
multi-run jobs additionally checkpoint per-run results through
:mod:`repro.estimation.checkpoint` (one ``<job id>.runs.jsonl`` per
job), so a resume never recomputes completed runs.

Log layout (one JSON object per line)::

    {"schema": "repro.service_jobs/v1", "schema_version": "1.0"}  # header
    {"event": "submitted", "id": "job-000001-3f2a", "t": ..., "spec": {...}}
    {"event": "state", "id": "...", "state": "running", "t": ...}
    {"event": "result", "id": "...", "results": [{...}, ...]}
    {"event": "cancel_requested", "id": "...", "t": ...}

Replay is tolerant exactly like the checkpoint loader: a process killed
mid-append truncates at most the final line, which is skipped; reopening
for append first repairs a missing trailing newline so the next event
can never splice onto a torn one.  A replayed ``result`` event is
terminal — a job whose results made it to disk is ``completed`` even if
the process died before the trailing ``state`` event — and the id
counter is derived from every id seen in the log (including jobs whose
spec no longer loads), so fresh ids never collide with logged ones.

This JSONL store is the legacy backend: new servers run on the
SQLite-backed :class:`~repro.service.store.SQLiteJobStore`, which
migrates an existing ``jobs.jsonl`` through :func:`replay_log` on
startup.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..api import EstimatorConfig
from ..errors import ConfigError
from ..schemas import (
    SCHEMA_VERSION,
    SERVICE_LOG_SCHEMA,
    check_schema_version,
    dump_estimation_result,
    dump_job_spec,
    load_estimation_result,
    load_job_spec,
)

__all__ = ["JobState", "JobSpec", "Job", "JobLease", "JobStore", "replay_log"]


class JobState:
    """Lifecycle states of a job (plain strings on the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job never leaves.
    TERMINAL = frozenset({COMPLETED, FAILED, CANCELLED})

    #: Every state, in lifecycle order (metrics export all of them).
    ALL = (QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED)


class JobLease:
    """One claim attempt's identity: the token minted by the store at
    claim time, plus a process-local ``lost`` flag.

    Every claim — including a steal-back re-claim of a job whose
    previous attempt is still unwinding in another thread of the same
    process — allocates a fresh instance.  Workers capture the instance
    when they pick the job up and hand it back to ``renew_lease`` and
    the ``mark_*`` commits, so a stale attempt compares (and poisons)
    only its *own* token: it can neither pass the new attempt's lease
    CAS nor un-poison itself when the job is re-claimed.
    """

    __slots__ = ("token", "owner", "lost")

    def __init__(self, token: str, owner: Optional[str]):
        self.token = token
        self.owner = owner
        self.lost = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobLease(token={self.token!r}, owner={self.owner!r}, lost={self.lost})"


@dataclass(frozen=True)
class JobSpec:
    """What to estimate: the full, self-contained job description.

    Mirrors the arguments of :func:`repro.api.estimate` /
    :func:`repro.api.run_many` one-to-one.  Seed contract: the
    population is built with ``seed`` and the estimator streams derive
    from ``seed + 1`` — identical to ``repro estimate CIRCUIT --seed s``
    and to ``estimate(circuit, config, seed=s)``, which is what makes
    service results bit-identical to in-process ones.
    """

    circuit: str
    config: EstimatorConfig = field(default_factory=EstimatorConfig)
    seed: int = 0
    num_runs: int = 1
    population_size: int = 20_000
    activity: Optional[float] = None
    sim_mode: str = "zero"
    frequency_mhz: float = 50.0

    def __post_init__(self) -> None:
        if not str(self.circuit).strip():
            raise ConfigError("job spec needs a non-empty circuit")
        if self.num_runs < 1:
            raise ConfigError("num_runs must be >= 1")
        if self.population_size < 0:
            raise ConfigError("population_size must be >= 0 (0 = streaming)")
        if self.sim_mode not in ("zero", "unit"):
            raise ConfigError("sim_mode must be 'zero' or 'unit'")
        if self.frequency_mhz <= 0:
            raise ConfigError("frequency_mhz must be positive")
        if self.activity is not None and not 0.0 < self.activity < 1.0:
            raise ConfigError("activity must be in (0, 1)")

    def to_dict(self) -> dict:
        return dump_job_spec(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return load_job_spec(data)


class Job:
    """One submitted job: spec plus mutable lifecycle state.

    Mutated only under the owning :class:`JobStore`'s lock (workers go
    through the store's ``mark_*`` methods); ``cancel_event`` is the
    cooperative cancellation signal the worker's progress hooks check.
    """

    def __init__(self, job_id: str, spec: JobSpec, created_at: float):
        self.id = job_id
        self.spec = spec
        self.state = JobState.QUEUED
        self.created_at = created_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        self.results: Optional[List[object]] = None  # EstimationResult list
        self.cancel_event = threading.Event()
        #: Per-hyper-sample convergence trajectory of the current run
        #: (single-run jobs): k, α̂/β̂/μ̂, rel CI half-width, cumulative
        #: units — the live view of the paper's Figure 4 loop.
        self.trajectory: List[dict] = []
        #: Completed-run count (multi-run jobs).
        self.completed_runs = 0
        #: True when the job was settled from a memoized result of an
        #: earlier identical spec instead of running (SQLite store).
        self.memo_hit = False
        #: Worker thread that claimed the job.
        self.lease_owner: Optional[str] = None
        #: Replica (store instance) holding the lease, and when the
        #: lease lapses unless the worker heartbeat renews it first.
        self.lease_replica: Optional[str] = None
        self.lease_expires_at: Optional[float] = None
        #: The current claim attempt (fresh :class:`JobLease` per claim,
        #: ``None`` while unclaimed).  Process-local; workers capture it
        #: at claim time so a steal-back re-claim never aliases the
        #: still-unwinding previous attempt's state.
        self.lease: Optional[JobLease] = None
        #: Tenant (API-key header) the job was submitted under, for
        #: per-tenant admission quotas; ``None`` = anonymous.
        self.tenant: Optional[str] = None
        #: Span context captured from the submitting request (None when
        #: tracing was off at submission): which trace the job belongs
        #: to and which span — usually the server's ``http.request`` —
        #: its own spans parent on.
        self.trace_id: Optional[str] = None
        self.parent_span_id: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def lease_lost(self) -> bool:
        """Whether the *current* claim attempt lost its lease (expired
        and reclaimed, probably by another replica).  A fresh claim has
        a fresh lease, so a re-claimed job reads ``False`` here while
        the orphaned previous attempt keeps its own poisoned
        :class:`JobLease`."""
        return self.lease is not None and self.lease.lost

    @property
    def trace_context(self):
        """The job's :class:`~repro.obs.spans.SpanContext` (or ``None``)."""
        if self.trace_id is None:
            return None
        from ..obs.spans import SpanContext  # lazy: keep jobs import-light

        return SpanContext(trace_id=self.trace_id, span_id=self.parent_span_id)

    def status_dict(self) -> dict:
        """JSON-able status payload served by ``GET /v1/jobs/{id}``.

        Deliberately omits ``tenant``: it is the submitter's raw
        ``X-API-Key`` credential, and the status/list/SSE endpoints are
        unauthenticated — echoing it would let any client harvest every
        tenant's key.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "cancel_requested": self.cancel_event.is_set(),
            "completed_runs": self.completed_runs,
            "total_runs": self.spec.num_runs,
            "memo_hit": self.memo_hit,
            "trace_id": self.trace_id,
            "trajectory": list(self.trajectory),
        }

    def result_dict(self) -> dict:
        """JSON-able result payload served by ``GET /v1/jobs/{id}/result``."""
        if self.results is None:
            raise ConfigError(f"job {self.id} has no results (state={self.state})")
        return {
            "schema_version": SCHEMA_VERSION,
            "id": self.id,
            "num_runs": self.spec.num_runs,
            "results": [dump_estimation_result(r) for r in self.results],
        }


class JobStore:
    """Thread-safe job registry + FIFO queue + append-only event log."""

    def __init__(self, state_dir: Union[str, Path]):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.log_path = self.state_dir / "jobs.jsonl"
        self._lock = threading.RLock()
        self._queue_ready = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._queue: List[str] = []  # FIFO of queued job ids
        self._counter = 0
        self._requeued: List[str] = []
        self._spans: Dict[str, List[dict]] = {}
        self._replay()
        self._handle = self._open_log()

    # -- log plumbing ---------------------------------------------------
    def _open_log(self):
        new = not self.log_path.exists() or self.log_path.stat().st_size == 0
        if not new:
            # Repair a torn tail: if a previous process died mid-append,
            # the next event must start on its own line.
            with open(self.log_path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                torn = probe.read(1) != b"\n"
            if torn:
                with open(self.log_path, "a", encoding="utf-8") as fix:
                    fix.write("\n")
        handle = open(self.log_path, "a", encoding="utf-8")
        if new:
            header = {"schema": SERVICE_LOG_SCHEMA, "schema_version": SCHEMA_VERSION}
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
        return handle

    def _append(self, event: dict) -> None:
        self._handle.write(json.dumps(event) + "\n")
        self._handle.flush()

    def _replay(self) -> None:
        """Rebuild jobs from the event log; requeue unfinished ones."""
        jobs, self._counter = replay_log(self.log_path)
        self._jobs.update(jobs)
        for job in jobs.values():
            if job.terminal:
                continue
            job.state = JobState.QUEUED
            job.started_at = None
            self._queue.append(job.id)
            self._requeued.append(job.id)
        self._queue.sort(key=lambda jid: self._jobs[jid].created_at)

    @property
    def requeued_ids(self) -> List[str]:
        """Jobs re-queued by startup replay (restart-resume diagnostics)."""
        return list(self._requeued)

    # -- job lifecycle --------------------------------------------------
    def submit(self, spec: JobSpec, tenant: Optional[str] = None) -> Job:
        from ..obs.spans import get_span_recorder, new_trace_id

        with self._lock:
            self._counter += 1
            job_id = f"job-{self._counter:06d}-{uuid.uuid4().hex[:4]}"
            job = Job(job_id, spec, time.time())
            job.tenant = tenant
            spans = get_span_recorder()
            if spans.enabled:
                context = spans.current_context()
                job.trace_id = context.trace_id if context else new_trace_id()
                job.parent_span_id = context.span_id if context else None
            self._jobs[job_id] = job
            self._queue.append(job_id)
            event = {
                "event": "submitted",
                "id": job_id,
                "t": job.created_at,
                "spec": dump_job_spec(spec),
            }
            if tenant is not None:
                event["tenant"] = tenant
            self._append(event)
            self._queue_ready.notify()
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self, state: Optional[str] = None) -> List[Job]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.created_at)
        if state is not None:
            jobs = [j for j in jobs if j.state == state]
        return jobs

    def counts(self) -> Dict[str, int]:
        """Jobs per state — all states present, zeros included (the
        ``/metrics`` gauges must exist before the first job arrives)."""
        counts = {state: 0 for state in JobState.ALL}
        with self._lock:
            for job in self._jobs.values():
                # .get: a corrupt log can replay an unknown state string;
                # it must surface as its own count, not a KeyError.
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def claim_next(
        self, timeout: float = 0.5, owner: Optional[str] = None
    ) -> Optional[Job]:
        """Pop the oldest queued job and mark it running (worker entry).

        Blocks up to ``timeout`` seconds for work; returns ``None`` on
        timeout so worker threads can poll their shutdown flag.  Jobs
        cancelled while still queued are acknowledged and skipped, not
        allowed to idle the worker slot for a poll interval.
        """
        with self._lock:
            if not self._queue:
                self._queue_ready.wait(timeout)
            while self._queue:
                job = self._jobs[self._queue.pop(0)]
                if job.cancel_event.is_set():
                    # Cancelled while still queued: acknowledge, move on.
                    self._mark_locked(job, JobState.CANCELLED)
                    continue
                job.state = JobState.RUNNING
                job.started_at = time.time()
                job.lease_owner = owner
                job.lease = JobLease(uuid.uuid4().hex, owner)
                self._append(
                    {
                        "event": "state",
                        "id": job.id,
                        "state": JobState.RUNNING,
                        "t": job.started_at,
                    }
                )
                return job
            return None

    def _mark_locked(self, job: Job, state: str, error: Optional[str] = None) -> None:
        job.state = state
        job.finished_at = time.time()
        job.error = error
        event = {"event": "state", "id": job.id, "state": state, "t": job.finished_at}
        if error is not None:
            event["error"] = error
        self._append(event)

    def mark_completed(
        self, job: Job, results: List[object], lease: Optional[JobLease] = None
    ) -> None:
        # Two appends, but no tearing hazard: replay treats the result
        # event itself as terminal, so a crash between them cannot
        # requeue (and re-run) the finished job.  ``lease`` exists for
        # interface parity with SQLiteJobStore; this single-process
        # backend never expires leases, so there is nothing to CAS on.
        with self._lock:
            job.results = list(results)
            job.completed_runs = len(job.results)
            self._append(
                {
                    "event": "result",
                    "id": job.id,
                    "results": [dump_estimation_result(r) for r in job.results],
                }
            )
            self._mark_locked(job, JobState.COMPLETED)

    def mark_failed(
        self, job: Job, error: str, lease: Optional[JobLease] = None
    ) -> None:
        with self._lock:
            self._mark_locked(job, JobState.FAILED, error=error)

    def mark_cancelled(self, job: Job, lease: Optional[JobLease] = None) -> None:
        with self._lock:
            self._mark_locked(job, JobState.CANCELLED)

    def request_cancel(self, job_id: str) -> Job:
        """Flag a job for cancellation (raises ``KeyError`` if unknown,
        :class:`~repro.errors.ConfigError` if already terminal)."""
        with self._lock:
            job = self._jobs[job_id]
            if job.terminal:
                raise ConfigError(
                    f"job {job_id} is already {job.state}; nothing to cancel"
                )
            job.cancel_event.set()
            self._append(
                {"event": "cancel_requested", "id": job_id, "t": time.time()}
            )
            if job.state == JobState.QUEUED:
                # Not yet claimed by any worker: settle it immediately.
                self._queue = [jid for jid in self._queue if jid != job_id]
                self._mark_locked(job, JobState.CANCELLED)
            return job

    def run_checkpoint_path(self, job_id: str) -> Path:
        """Per-run JSONL checkpoint for a multi-run job (resume unit)."""
        return self.state_dir / f"{job_id}.runs.jsonl"

    # -- span persistence (interface parity with SQLiteJobStore; this
    # -- legacy backend keeps spans in memory only) ----------------------
    def save_spans(self, job_id: str, spans: List[dict]) -> None:
        with self._lock:
            self._spans[job_id] = list(spans)

    def stored_spans(self, job_id: str) -> List[dict]:
        with self._lock:
            return list(self._spans.get(job_id, ()))

    # -- telemetry introspection ------------------------------------------
    @property
    def backend(self) -> str:
        return "jsonl"

    def lease_info(self) -> Dict[str, object]:
        """Active-lease telemetry for ``/healthz`` and the gauges.

        Ages are clamped to >= 0: ``started_at`` is wall clock, so a
        backwards clock step must never surface a negative age in
        ``/healthz`` or the ``service_oldest_lease_age_seconds`` gauge.
        """
        now = time.time()
        with self._lock:
            ages = [
                max(0.0, now - job.started_at)
                for job in self._jobs.values()
                if job.state == JobState.RUNNING and job.started_at is not None
            ]
        return {
            "active_leases": len(ages),
            "oldest_lease_age_seconds": max(ages) if ages else 0.0,
        }

    # -- lease lifecycle (interface parity with SQLiteJobStore; this
    # -- single-process backend has no replicas, so leases never expire
    # -- and renewal always succeeds) ------------------------------------
    #: No lease expiry on this backend (one process owns the queue).
    lease_ttl: Optional[float] = None
    heartbeat_interval: Optional[float] = None
    replica_id: Optional[str] = None

    def renew_lease(self, job: Job, lease: Optional[JobLease] = None) -> bool:
        return True

    def reap_expired(self) -> List[str]:
        return []

    def queue_depth(self) -> int:
        """Jobs currently queued (the admission-control signal)."""
        with self._lock:
            return len(self._queue)

    def tenant_active_jobs(self, tenant: Optional[str]) -> int:
        """Non-terminal jobs submitted by ``tenant`` (quota signal)."""
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.tenant == tenant and not job.terminal
            )

    def memo_stats(self) -> Dict[str, object]:
        """Memo effectiveness (always zero hits — this backend does not
        memoize)."""
        with self._lock:
            total = len(self._jobs)
            hits = sum(1 for job in self._jobs.values() if job.memo_hit)
        return {
            "hits": hits,
            "jobs": total,
            "ratio": (hits / total) if total else 0.0,
        }

    def wake_all(self) -> None:
        """Wake every worker blocked in :meth:`claim_next` (shutdown)."""
        with self._lock:
            self._queue_ready.notify_all()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


def _numbered(job_id: str) -> bool:
    parts = job_id.split("-")
    return len(parts) >= 2 and parts[1].isdigit()


def replay_log(log_path: Union[str, Path]) -> Tuple[Dict[str, Job], int]:
    """Parse a ``jobs.jsonl`` event log into settled :class:`Job` objects.

    Returns ``(jobs, counter)`` where ``counter`` is the highest numeric
    id component seen in *any* event — including jobs dropped because
    their spec no longer loads — so ids minted after a replay can never
    collide with ids already in the log.

    Settling rules (shared by :class:`JobStore` replay and the SQLite
    migration):

    * A ``result`` event is terminal: its job is ``completed`` with
      ``completed_runs == len(results)`` even if the process died before
      appending the trailing ``state`` event.
    * A non-terminal job with a pending ``cancel_requested`` is finished
      off as ``cancelled`` rather than re-run.
    * Every other non-terminal job is left in its logged state for the
      caller to requeue.
    """
    log_path = Path(log_path)
    jobs: Dict[str, Job] = {}
    counter = 0
    if not log_path.exists():
        return jobs, counter
    with open(log_path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a mid-append kill
            if not isinstance(event, dict):
                continue
            if line_no == 0 and event.get("schema") == SERVICE_LOG_SCHEMA:
                check_schema_version(event, f"service log {log_path}")
                continue
            kind = event.get("event")
            job_id = event.get("id")
            if isinstance(job_id, str) and _numbered(job_id):
                counter = max(counter, int(job_id.split("-")[1]))
            if kind == "submitted" and job_id:
                try:
                    spec = load_job_spec(event["spec"])
                except Exception:
                    continue  # unreadable spec: drop the job, keep the log
                jobs[job_id] = Job(job_id, spec, float(event.get("t", 0.0)))
                jobs[job_id].tenant = event.get("tenant")
            elif kind == "state" and job_id in jobs:
                job = jobs[job_id]
                job.state = event.get("state", job.state)
                if job.state == JobState.RUNNING:
                    job.started_at = float(event.get("t", 0.0))
                else:
                    job.finished_at = float(event.get("t", 0.0))
                if job.state == JobState.FAILED:
                    job.error = event.get("error")
            elif kind == "result" and job_id in jobs:
                job = jobs[job_id]
                job.results = [
                    load_estimation_result(r) for r in event.get("results", [])
                ]
                # The results made it to disk: the work is done, whether
                # or not the 'completed' state event was ever appended.
                job.state = JobState.COMPLETED
                job.completed_runs = len(job.results)
            elif kind == "cancel_requested" and job_id in jobs:
                jobs[job_id].cancel_event.set()
    for job in jobs.values():
        if job.state == JobState.COMPLETED and job.results is not None:
            job.completed_runs = len(job.results)
        if job.terminal:
            job.finished_at = job.finished_at or job.created_at
            continue
        if job.results is not None:
            # Legacy logs written before result events were terminal can
            # end with results but a stale non-terminal state.
            job.state = JobState.COMPLETED
            job.completed_runs = len(job.results)
            job.finished_at = job.finished_at or job.created_at
        elif job.cancel_event.is_set():
            job.state = JobState.CANCELLED
            job.finished_at = job.finished_at or job.created_at
    return jobs, counter

"""Estimation-as-a-service: a concurrent job server over HTTP.

The paper's estimator as a long-lived service: clients ``POST`` job
specs to ``/v1/jobs``, poll per-k convergence status, and fetch results
that are **bit-identical** to an in-process
:meth:`~repro.estimation.mc_estimator.MaxPowerEstimator.run` with the
same seed and config — including after the server is killed mid-job and
restarted (jobs checkpoint through the fault-tolerant JSONL layer of
:mod:`repro.estimation.parallel` and resume on startup).

Zero dependencies beyond the standard library: the server is a
``http.server.ThreadingHTTPServer``, the client is ``urllib``, and the
durable job/result store is WAL-mode ``sqlite3``
(:class:`~repro.service.store.SQLiteJobStore`) with content-keyed
result memoization — resubmitting an identical ``(circuit, config,
seed, ...)`` spec is served from the stored result without re-running.

Server side::

    repro serve --port 8000 --state-dir .repro_service

Client side::

    from repro.service import Client
    client = Client("http://127.0.0.1:8000")
    job = client.submit("c432", seed=1, population_size=2000)
    status = client.wait(job["id"])
    result = client.result(job["id"])

See ``docs/api.md`` for the endpoint table and payload schemas.
"""

from .client import Client
from .jobs import Job, JobSpec, JobState, JobStore
from .server import JobServer, serve
from .store import SQLiteJobStore
from .worker import WorkerPool

__all__ = [
    "Client",
    "Job",
    "JobSpec",
    "JobState",
    "JobStore",
    "SQLiteJobStore",
    "JobServer",
    "WorkerPool",
    "serve",
]

"""Typed Python client for the estimation service (stdlib ``urllib``).

One class, three idioms::

    client = Client("http://127.0.0.1:8000")

    # Fire and forget
    job = client.submit("c432", seed=1)

    # Block until done, then fetch the deserialized result
    client.wait(job["id"])
    result = client.result(job["id"])          # EstimationResult
    print(result.summary())

    # Watch convergence live (one status dict per new hyper-sample)
    for status in client.stream(job["id"]):
        k = len(status["trajectory"])
        print(k, status["trajectory"][-1]["rel_half_width"] if k else None)

Every HTTP failure raises :class:`~repro.errors.ServiceError` carrying
the server's message and the status code; payload schema versions are
validated on receipt, so a client never silently consumes a payload
from an incompatible future server.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, List, Optional, Union

from ..errors import ServiceError
from ..obs.spans import SpanContext, get_span_recorder, new_span_id, new_trace_id
from ..schemas import check_schema_version, load_estimation_result

__all__ = ["Client"]


class Client:
    """HTTP client bound to one service base URL."""

    def __init__(self, base_url: str = "http://127.0.0.1:8000", timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        raw: bool = False,
        headers: Optional[dict] = None,
    ):
        all_headers = dict(headers or {})
        if body is not None:
            all_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path,
            method=method,
            data=json.dumps(body).encode("utf-8") if body is not None else None,
            headers=all_headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                message = json.loads(detail)["error"]["message"]
            except Exception:
                message = detail or exc.reason
            raise ServiceError(
                f"{method} {path} -> {exc.code}: {message}", status=exc.code
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"{method} {path} failed: {exc.reason} "
                f"(is the service running at {self.base_url}?)"
            ) from None
        if raw:
            return payload.decode("utf-8")
        return json.loads(payload)

    # -- job lifecycle --------------------------------------------------
    def submit(self, circuit_or_spec, config=None, **spec_kwargs) -> dict:
        """Submit a job; returns its status dict (``id``, ``state``, ...).

        Accepts a circuit name/path plus :class:`~repro.service.jobs.JobSpec`
        keyword fields, a ready :class:`~repro.service.jobs.JobSpec`, or a
        raw spec dict (for language-agnostic callers).

        A memoizing server may return the job already ``completed`` with
        ``memo_hit: true`` — the spec matched an earlier completed job,
        so its (bit-identical) results were attached without running.
        :meth:`wait` and :meth:`stream` handle that transparently.
        """
        from .jobs import JobSpec  # lazy: keep client import-light

        if isinstance(circuit_or_spec, JobSpec):
            payload = circuit_or_spec.to_dict()
        elif isinstance(circuit_or_spec, dict):
            payload = dict(circuit_or_spec)
        else:
            if config is not None:
                spec_kwargs["config"] = config
            payload = JobSpec(circuit=str(circuit_or_spec), **spec_kwargs).to_dict()
        # Propagate W3C trace context: if this process records spans, the
        # submit becomes a child of the ambient trace; otherwise a fresh
        # (unrecorded) context still names the trace so the server-side
        # span tree is connected end to end.
        spans = get_span_recorder()
        with spans.span("client.submit", circuit=payload.get("circuit")):
            context = spans.current_context()
            if context is None or context.span_id is None:
                context = SpanContext(
                    trace_id=new_trace_id(), span_id=new_span_id()
                )
            status = self._request(
                "POST",
                "/v1/jobs",
                body=payload,
                headers={"traceparent": context.to_traceparent()},
            )
        check_schema_version(status, "job status payload")
        return status

    def status(self, job_id: str) -> dict:
        status = self._request("GET", f"/v1/jobs/{job_id}")
        check_schema_version(status, "job status payload")
        return status

    def results(self, job_id: str) -> List[object]:
        """All runs of a completed job as ``EstimationResult`` objects."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        check_schema_version(payload, "job result payload")
        return [load_estimation_result(r) for r in payload["results"]]

    def result(self, job_id: str):
        """The single result of a completed one-run job (first run of a
        multi-run job)."""
        return self.results(job_id)[0]

    def result_payload(self, job_id: str) -> dict:
        """The raw result JSON exactly as served (archival/artifacts)."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        check_schema_version(payload, "job result payload")
        return payload

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None) -> List[dict]:
        path = "/v1/jobs" + (f"?state={state}" if state else "")
        return self._request("GET", path)["jobs"]

    # -- waiting --------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.2,
    ) -> dict:
        """Poll until the job reaches a terminal state; return its status.

        Raises :class:`~repro.errors.ServiceError` if ``timeout`` (in
        seconds) elapses first — the job keeps running server-side.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            status = self.status(job_id)
            if status["state"] in ("completed", "failed", "cancelled"):
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def stream(
        self,
        job_id: str,
        poll_interval: float = 0.2,
        timeout: Optional[float] = None,
    ) -> Iterator[dict]:
        """Yield a status dict whenever the job makes visible progress
        (new trajectory entry, completed run, or state change); the
        final yield is the terminal status."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        last = (None, -1, -1)
        while True:
            status = self.status(job_id)
            mark = (
                status["state"],
                len(status["trajectory"]),
                status["completed_runs"],
            )
            if mark != last:
                last = mark
                yield status
            if status["state"] in ("completed", "failed", "cancelled"):
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def trace(self, job_id: str) -> dict:
        """The job's span tree payload (``trace_id`` + flat ``spans``
        list; feed it to :func:`repro.obs.build_span_tree` or
        :func:`repro.obs.to_chrome_trace`)."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/trace")
        check_schema_version(payload, "job trace payload")
        return payload

    # -- service introspection ------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus text exposition."""
        return self._request("GET", "/metrics", raw=True)

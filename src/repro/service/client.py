"""Typed Python client for the estimation service (stdlib ``urllib``).

One class, three idioms::

    client = Client("http://127.0.0.1:8000")

    # Fire and forget
    job = client.submit("c432", seed=1)

    # Block until done, then fetch the deserialized result
    client.wait(job["id"])
    result = client.result(job["id"])          # EstimationResult
    print(result.summary())

    # Watch convergence live (one status dict per new hyper-sample)
    for status in client.stream(job["id"]):
        k = len(status["trajectory"])
        print(k, status["trajectory"][-1]["rel_half_width"] if k else None)

Every HTTP failure raises :class:`~repro.errors.ServiceError` carrying
the server's message and the status code (plus ``retry_after`` on a 429
admission rejection); payload schema versions are validated on receipt,
so a client never silently consumes a payload from an incompatible
future server.

**Replica resilience.**  Idempotent requests (every ``GET``) retry with
exponential backoff through transient connection failures, so a replica
bounce mid-:meth:`Client.wait` or mid-:meth:`Client.stream` is
invisible — the restarted (or surviving) replica picks the job up from
the shared store and the client's poll/stream simply resumes.  Submits
are *not* retried automatically (a retried ``POST`` could double-submit
under memoization-off servers); catch the :class:`ServiceError` and
resubmit if that's what you want.

:meth:`Client.stream` consumes the server's ``/events`` server-sent
-events endpoint (push; one event per state change / new hyper-sample /
completed run) and transparently falls back to status polling against
servers that predate SSE.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, List, Optional, Union

from ..errors import ServiceError
from ..obs.spans import SpanContext, get_span_recorder, new_span_id, new_trace_id
from ..schemas import check_schema_version, load_estimation_result

__all__ = ["Client"]

_TERMINAL = ("completed", "failed", "cancelled")


class Client:
    """HTTP client bound to one service base URL.

    ``api_key`` (sent as ``X-API-Key``) names the tenant for per-tenant
    admission limits; ``retries``/``retry_backoff`` bound how long
    idempotent requests ride out a replica restart (backoff doubles per
    attempt: 0.2, 0.4, 0.8, ... seconds).
    """

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8000",
        timeout: float = 30.0,
        api_key: Optional[str] = None,
        retries: int = 5,
        retry_backoff: float = 0.2,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.api_key = api_key
        self.retries = max(0, int(retries))
        self.retry_backoff = retry_backoff

    # -- transport ------------------------------------------------------
    def _base_headers(self) -> dict:
        return {"X-API-Key": self.api_key} if self.api_key is not None else {}

    def _urlopen(self, request: urllib.request.Request, retryable: bool):
        """``urlopen`` with bounded retry on transient transport faults.

        Retries only connection-level failures (refused, reset, dropped
        mid-restart) — an HTTP error response is a server answer, not a
        transport fault, and propagates immediately.
        """
        attempt = 0
        while True:
            try:
                return urllib.request.urlopen(request, timeout=self.timeout)
            except urllib.error.HTTPError:
                raise
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                attempt += 1
                if not retryable or attempt > self.retries:
                    reason = getattr(exc, "reason", exc)
                    raise ServiceError(
                        f"{request.get_method()} {request.selector} failed: "
                        f"{reason} (is the service running at "
                        f"{self.base_url}?)"
                    ) from None
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    @staticmethod
    def _http_error(method: str, path: str, exc: urllib.error.HTTPError):
        detail = exc.read().decode("utf-8", "replace")
        try:
            message = json.loads(detail)["error"]["message"]
        except Exception:
            message = detail or exc.reason
        retry_after: Optional[float] = None
        header = exc.headers.get("Retry-After") if exc.headers else None
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        return ServiceError(
            f"{method} {path} -> {exc.code}: {message}",
            status=exc.code,
            retry_after=retry_after,
        )

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        raw: bool = False,
        headers: Optional[dict] = None,
    ):
        all_headers = self._base_headers()
        all_headers.update(headers or {})
        if body is not None:
            all_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path,
            method=method,
            data=json.dumps(body).encode("utf-8") if body is not None else None,
            headers=all_headers,
        )
        try:
            with self._urlopen(request, retryable=method == "GET") as response:
                payload = response.read()
        except urllib.error.HTTPError as exc:
            raise self._http_error(method, path, exc) from None
        if raw:
            return payload.decode("utf-8")
        return json.loads(payload)

    # -- job lifecycle --------------------------------------------------
    def submit(self, circuit_or_spec, config=None, **spec_kwargs) -> dict:
        """Submit a job; returns its status dict (``id``, ``state``, ...).

        Accepts a circuit name/path plus :class:`~repro.service.jobs.JobSpec`
        keyword fields, a ready :class:`~repro.service.jobs.JobSpec`, or a
        raw spec dict (for language-agnostic callers).  With a circuit
        argument, the estimator-selection knobs may be passed directly —
        ``submit("c432", method="auto")`` is shorthand for building an
        :class:`~repro.api.EstimatorConfig` with that ``method`` (plus
        ``pot_threshold_quantile``/``pot_batch_size`` if given).

        A memoizing server may return the job already ``completed`` with
        ``memo_hit: true`` — the spec matched an earlier completed job,
        so its (bit-identical) results were attached without running.
        :meth:`wait` and :meth:`stream` handle that transparently.
        """
        from .jobs import JobSpec  # lazy: keep client import-light

        if isinstance(circuit_or_spec, JobSpec):
            payload = circuit_or_spec.to_dict()
        elif isinstance(circuit_or_spec, dict):
            payload = dict(circuit_or_spec)
        else:
            method_kwargs = {
                key: spec_kwargs.pop(key)
                for key in ("method", "pot_threshold_quantile", "pot_batch_size")
                if key in spec_kwargs
            }
            if method_kwargs:
                if config is not None:
                    raise ValueError(
                        "pass estimator-selection knobs either inside config= "
                        "or as bare keywords, not both"
                    )
                from ..api import EstimatorConfig  # lazy: keep client import-light

                config = EstimatorConfig(**method_kwargs)
            if config is not None:
                spec_kwargs["config"] = config
            payload = JobSpec(circuit=str(circuit_or_spec), **spec_kwargs).to_dict()
        # Propagate W3C trace context: if this process records spans, the
        # submit becomes a child of the ambient trace; otherwise a fresh
        # (unrecorded) context still names the trace so the server-side
        # span tree is connected end to end.
        spans = get_span_recorder()
        with spans.span("client.submit", circuit=payload.get("circuit")):
            context = spans.current_context()
            if context is None or context.span_id is None:
                context = SpanContext(
                    trace_id=new_trace_id(), span_id=new_span_id()
                )
            status = self._request(
                "POST",
                "/v1/jobs",
                body=payload,
                headers={"traceparent": context.to_traceparent()},
            )
        check_schema_version(status, "job status payload")
        return status

    def status(self, job_id: str) -> dict:
        status = self._request("GET", f"/v1/jobs/{job_id}")
        check_schema_version(status, "job status payload")
        return status

    def results(self, job_id: str) -> List[object]:
        """All runs of a completed job as ``EstimationResult`` objects."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        check_schema_version(payload, "job result payload")
        return [load_estimation_result(r) for r in payload["results"]]

    def result(self, job_id: str):
        """The single result of a completed one-run job (first run of a
        multi-run job)."""
        return self.results(job_id)[0]

    def result_payload(self, job_id: str) -> dict:
        """The raw result JSON exactly as served (archival/artifacts)."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        check_schema_version(payload, "job result payload")
        return payload

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None) -> List[dict]:
        path = "/v1/jobs" + (f"?state={state}" if state else "")
        return self._request("GET", path)["jobs"]

    # -- waiting --------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.2,
    ) -> dict:
        """Poll until the job reaches a terminal state; return its status.

        Raises :class:`~repro.errors.ServiceError` if ``timeout`` (in
        seconds) elapses first — the job keeps running server-side.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            status = self.status(job_id)
            if status["state"] in ("completed", "failed", "cancelled"):
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def stream(
        self,
        job_id: str,
        poll_interval: float = 0.2,
        timeout: Optional[float] = None,
    ) -> Iterator[dict]:
        """Yield a status dict whenever the job makes visible progress
        (new trajectory entry, completed run, or state change); the
        final yield is the terminal status.

        Prefers the server's ``GET /v1/jobs/{id}/events`` SSE endpoint
        (events are pushed, so latency is one server-side poll tick
        instead of ``poll_interval``) and reconnects through transient
        disconnects; a server without the endpoint gets plain status
        polling.  Either way every yielded dict has the same shape, and
        duplicates replayed across a reconnect are suppressed.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        # Mutable so the SSE leg's progress survives a fallback to polling.
        last = [(None, -1, -1)]
        sse = self._stream_sse(job_id, deadline, timeout, last)
        if sse is not None:
            yield from sse
            return
        yield from self._stream_poll(job_id, poll_interval, deadline, timeout, last)

    def _stream_poll(
        self,
        job_id: str,
        poll_interval: float,
        deadline: Optional[float],
        timeout: Optional[float],
        last: list,
    ) -> Iterator[dict]:
        while True:
            status = self.status(job_id)
            mark = (
                status["state"],
                len(status["trajectory"]),
                status["completed_runs"],
            )
            if mark != last[0]:
                last[0] = mark
                yield status
            if status["state"] in _TERMINAL:
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def _stream_sse(
        self,
        job_id: str,
        deadline: Optional[float],
        timeout: Optional[float],
        last: list,
    ):
        """The SSE leg of :meth:`stream`, or ``None`` when the server
        has no ``/events`` endpoint (fall back to polling).

        Returns a generator rather than being one so the
        capability probe (the first connection attempt) happens eagerly
        — a generator's body wouldn't run until first ``next()``.
        """
        path = f"/v1/jobs/{job_id}/events"
        response = self._open_events(path)
        if response is None:
            return None

        def events() -> Iterator[dict]:
            conn = response
            attempt = 0
            while True:
                disconnected = False
                try:
                    for payload in self._parse_sse(conn):
                        attempt = 0  # healthy stream: reset retry budget
                        mark = (
                            payload["state"],
                            len(payload["trajectory"]),
                            payload["completed_runs"],
                        )
                        if mark != last[0]:
                            last[0] = mark
                            yield payload
                        if payload["state"] in _TERMINAL:
                            return
                        if (
                            deadline is not None
                            and time.monotonic() >= deadline
                        ):
                            raise ServiceError(
                                f"job {job_id} still {payload['state']} "
                                f"after {timeout:g}s"
                            )
                except (OSError, ValueError):
                    # Dropped mid-stream (replica killed, proxy reset) or
                    # a frame truncated by the cut: reconnect and let the
                    # mark dedup swallow the replayed snapshot.
                    disconnected = True
                finally:
                    conn.close()
                if not disconnected:
                    # Clean end without a terminal event: the server shut
                    # down gracefully mid-stream.  Reconnect (retried —
                    # another replica or a restart finishes the job).
                    pass
                attempt += 1
                if attempt > self.retries:
                    raise ServiceError(
                        f"event stream for job {job_id} lost and "
                        f"{self.retries} reconnects failed "
                        f"(is the service running at {self.base_url}?)"
                    )
                if deadline is not None and time.monotonic() >= deadline:
                    raise ServiceError(
                        f"job {job_id} event stream timed out after "
                        f"{timeout:g}s"
                    )
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                conn = self._open_events(path)
                if conn is None:  # downgraded server mid-stream
                    yield from self._stream_poll(
                        job_id, 0.2, deadline, timeout, last
                    )
                    return

        return events()

    def _open_events(self, path: str):
        """One SSE connection attempt; ``None`` means the server has no
        events endpoint (404/405) and the caller should poll instead.

        A 404 is ambiguous (unknown endpoint vs. unknown job) — polling
        resolves it: the status request re-raises a crisp 404 for a
        genuinely missing job.
        """
        headers = self._base_headers()
        headers["Accept"] = "text/event-stream"
        request = urllib.request.Request(self.base_url + path, headers=headers)
        try:
            return self._urlopen(request, retryable=True)
        except urllib.error.HTTPError as exc:
            exc.read()
            if exc.code in (404, 405):
                return None
            raise self._http_error("GET", path, exc) from None

    def _parse_sse(self, response) -> Iterator[dict]:
        """Decode ``data:`` frames off one SSE connection into validated
        status payloads; comments (keepalives) and other fields are
        skipped.  Ends when the server closes the stream."""
        data_lines: List[str] = []
        for raw in response:
            line = raw.decode("utf-8").rstrip("\r\n")
            if not line:  # blank line: dispatch accumulated event
                if data_lines:
                    payload = json.loads("\n".join(data_lines))
                    data_lines = []
                    check_schema_version(payload, "job event payload")
                    yield payload
                continue
            if line.startswith(":"):
                continue  # keepalive comment
            if line.startswith("data:"):
                data_lines.append(line[5:].lstrip(" "))

    def trace(self, job_id: str) -> dict:
        """The job's span tree payload (``trace_id`` + flat ``spans``
        list; feed it to :func:`repro.obs.build_span_tree` or
        :func:`repro.obs.to_chrome_trace`)."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/trace")
        check_schema_version(payload, "job trace payload")
        return payload

    # -- service introspection ------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus text exposition."""
        return self._request("GET", "/metrics", raw=True)

"""Worker pool: drains the job queue through the estimation pipeline.

Each worker is a thread that claims one job at a time from the
:class:`~repro.service.jobs.JobStore` and executes it:

* Single-run jobs call :meth:`MaxPowerEstimator.run` directly with a
  ``progress`` hook, so the job's per-k convergence trajectory updates
  live and a cancel request aborts between hyper-samples.  A restart
  re-runs them from scratch — deterministic, so still bit-identical.
* Multi-run jobs go through the fault-tolerant
  :func:`repro.api.run_many` facade with a per-job JSONL checkpoint and
  ``resume=True``: runs completed before a server kill are loaded back,
  never recomputed, and the scheduler's seed contract keeps the final
  result list bit-identical to an uninterrupted execution.

Under a lease-expiring store (:class:`~repro.service.store.SQLiteJobStore`
with a ``lease_ttl``), the pool also runs one *lease keeper* thread: it
renews the lease of every in-flight job each
``store.heartbeat_interval`` seconds — independent of estimator
progress, so a long fit step can't silently lose a healthy job — and
reaps expired leases of dead replicas back to ``queued`` (work
stealing).  A worker whose own lease was reclaimed observes
``job.lease_lost`` in its progress hooks, unwinds without committing
(the store's terminal commit is CAS-guarded on the lease anyway), and
is counted under ``service_jobs_finished_total{state="lease_lost"}``.

Populations are cached per worker pool (small LRU keyed on the exact
build arguments) so repeated jobs against the same circuit skip the
simulation of tens of thousands of vector pairs.  The cache key includes
the build seed, so it can never alias two different populations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional

import numpy as np

from ..api import build_population, run_many
from ..errors import JobCancelledError
from ..estimation.mc_estimator import MaxPowerEstimator
from ..obs.metrics import get_registry
from ..obs.spans import get_span_recorder
from ..obs.trace import get_tracer
from .jobs import Job, JobStore

__all__ = ["WorkerPool"]

_METRICS = get_registry()
_TRACER = get_tracer()
_SPANS = get_span_recorder()
_JOB_TIMER = _METRICS.timer("service_job_seconds")

#: Populations kept per pool; a handful covers a benchmark sweep.
_POPULATION_CACHE_SIZE = 8


def _trajectory_entry(hs, interval, cumulative_units: int) -> dict:
    """One per-k live status record (field names match the
    ``hyper_sample`` trace events and ``HyperSample.to_dict``)."""
    fit = hs.fit
    return {
        "k": hs.index,
        "estimate": hs.estimate,
        "alpha": fit.alpha if fit is not None else None,
        "beta": fit.beta if fit is not None else None,
        "mu": fit.mu if fit is not None else None,
        "rel_half_width": interval.rel_half_width if interval else None,
        "mean_estimate": interval.mean if interval else None,
        "cumulative_units": cumulative_units,
    }


class WorkerPool:
    """``num_workers`` daemon threads draining one :class:`JobStore`."""

    def __init__(self, store: JobStore, num_workers: int = 2):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.store = store
        self.num_workers = num_workers
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._cache_lock = threading.Lock()
        self._populations: "OrderedDict[tuple, object]" = OrderedDict()
        self._busy_lock = threading.Lock()
        self._busy = 0
        #: In-flight jobs by id — what the lease keeper renews.
        self._active: dict = {}

    def busy_count(self) -> int:
        """Worker threads currently executing a job (saturation gauge)."""
        with self._busy_lock:
            return self._busy

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        for i in range(self.num_workers):
            thread = threading.Thread(
                target=self._loop, name=f"repro-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        if getattr(self.store, "heartbeat_interval", None) is not None:
            keeper = threading.Thread(
                target=self._lease_keeper, name="repro-lease-keeper",
                daemon=True,
            )
            keeper.start()
            self._threads.append(keeper)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self.store.wake_all()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    # -- lease keeper ---------------------------------------------------
    def _lease_keeper(self) -> None:
        """Heartbeat + reaper: renew this pool's in-flight leases and
        reclaim expired ones (any replica's) every heartbeat interval."""
        interval = self.store.heartbeat_interval
        while not self._stop.wait(interval):
            with self._busy_lock:
                active = list(self._active.values())
            for job in active:
                renewed = self.store.renew_lease(job)
                _METRICS.counter(
                    "service_lease_renewals_total",
                    outcome="ok" if renewed else "lost",
                ).inc()
            self.store.reap_expired()

    # -- execution ------------------------------------------------------
    def _loop(self) -> None:
        # The claim is an atomic store-side lease keyed by this thread's
        # name; memo-settled jobs complete at submit time and are never
        # handed out here.
        owner = threading.current_thread().name
        while not self._stop.is_set():
            job = self.store.claim_next(timeout=0.2, owner=owner)
            if job is None:
                continue
            self._execute(job)

    def _population_for(self, job: Job):
        spec = job.spec
        key = (
            spec.circuit,
            spec.population_size,
            spec.activity,
            spec.sim_mode,
            spec.frequency_mhz,
            spec.seed,
        )
        with self._cache_lock:
            if key in self._populations:
                self._populations.move_to_end(key)
                _METRICS.counter("service_population_cache_total", hit="true").inc()
                return self._populations[key]
        # Build outside the lock: population simulation is the slow part
        # and two workers building the same key just race benignly.
        population = build_population(
            spec.circuit,
            population_size=spec.population_size,
            activity=spec.activity,
            sim_mode=spec.sim_mode,
            frequency_mhz=spec.frequency_mhz,
            seed=spec.seed,
            workers=spec.config.workers,
        )
        with self._cache_lock:
            self._populations[key] = population
            while len(self._populations) > _POPULATION_CACHE_SIZE:
                self._populations.popitem(last=False)
            _METRICS.counter("service_population_cache_total", hit="false").inc()
        return population

    def _execute(self, job: Job) -> None:
        if _TRACER.enabled:
            _TRACER.emit("job_start", job_id=job.id, circuit=job.spec.circuit)
        with self._busy_lock:
            self._busy += 1
            self._active[job.id] = job
        # Re-attach the trace context the job carried through the queue so
        # estimator/fit/population spans nest under this job's trace even
        # though a different thread than the HTTP handler runs it.
        tracing = _SPANS.enabled and job.trace_id is not None
        context = job.trace_context if tracing else None
        token = _SPANS.attach(context) if tracing else None
        run_span = None
        if tracing:
            if job.started_at is not None:
                _SPANS.emit(
                    "job.queue_wait",
                    parent=context,
                    start_ts=job.created_at,
                    duration_s=max(0.0, job.started_at - job.created_at),
                    job_id=job.id,
                )
                _SPANS.emit(
                    "job.claim",
                    parent=context,
                    start_ts=job.started_at,
                    job_id=job.id,
                    lease_owner=job.lease_owner,
                )
            run_span = _SPANS.start(
                "job.run",
                job_id=job.id,
                circuit=job.spec.circuit,
                num_runs=job.spec.num_runs,
            )
        try:
            try:
                with _JOB_TIMER.time():
                    results = self._run(job)
            except JobCancelledError:
                self._settle(job, run_span, "cancelled", self.store.mark_cancelled)
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                message = f"{type(exc).__name__}: {exc}"
                self._settle(
                    job,
                    run_span,
                    "failed",
                    lambda j: self.store.mark_failed(j, message),
                    error=message,
                )
            else:
                self._settle(
                    job,
                    run_span,
                    "completed",
                    lambda j: self.store.mark_completed(j, results),
                )
        finally:
            if token is not None:
                _SPANS.detach(token)
            with self._busy_lock:
                self._busy -= 1
                self._active.pop(job.id, None)

    def _settle(self, job: Job, run_span, state: str, commit, error=None) -> None:
        """Finish the job's run span, commit its terminal state, and
        persist the trace so it survives a server restart.

        A job whose lease was lost mid-run (expired and reclaimed by the
        reaper — this replica no longer owns it) is never committed: the
        store's CAS would reject the write anyway, the re-run owns the
        lifecycle now, and the abandoned attempt is counted as
        ``state="lease_lost"``.
        """
        if not job.lease_lost:
            with _SPANS.span("job.commit", job_id=job.id, state=state):
                commit(job)
        if job.lease_lost:
            # Either detected before the commit or discovered by the
            # commit's own lease CAS: nothing was written.
            state = "lease_lost"
            error = None
        if run_span is not None:
            attrs = {"state": state}
            if error is not None:
                attrs["error"] = error
            _SPANS.finish(
                run_span,
                status="error" if state == "failed" else "ok",
                **attrs,
            )
        _METRICS.counter("service_jobs_finished_total", state=state).inc()
        if _TRACER.enabled:
            payload = {"job_id": job.id, "state": state}
            if error is not None:
                payload["error"] = error
            _TRACER.emit("job_end", **payload)
        if _SPANS.enabled and job.trace_id is not None:
            records = _SPANS.spans_for_trace(job.trace_id)
            if records:
                self.store.save_spans(job.id, records)

    def _run(self, job: Job) -> List[object]:
        spec = job.spec
        population = self._population_for(job)
        if spec.num_runs == 1:
            estimator = MaxPowerEstimator.from_config(population, spec.config)
            # Capture this attempt's buffer: a steal-back re-run swaps in
            # a fresh list on job.trajectory, and a still-unwinding old
            # attempt must keep writing to its own orphaned one.
            trajectory = job.trajectory

            def progress(hs, interval, cumulative_units):
                if job.cancel_event.is_set() or job.lease_lost:
                    raise JobCancelledError(f"job {job.id} cancelled")
                trajectory.append(
                    _trajectory_entry(hs, interval, cumulative_units)
                )

            result = estimator.run(
                rng=np.random.default_rng(spec.seed + 1), progress=progress
            )
            job.completed_runs = 1
            return [result]

        def on_result(index: int, result) -> None:
            if job.cancel_event.is_set() or job.lease_lost:
                raise JobCancelledError(f"job {job.id} cancelled")
            job.completed_runs += 1

        return run_many(
            population,
            spec.num_runs,
            spec.config,
            base_seed=spec.seed + 1,
            checkpoint=self.store.run_checkpoint_path(job.id),
            resume=True,
            on_result=on_result,
        )

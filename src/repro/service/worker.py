"""Worker pool: drains the job queue through the estimation pipeline.

Each worker is a thread that claims one job at a time from the
:class:`~repro.service.jobs.JobStore` and executes it:

* Single-run jobs call :meth:`MaxPowerEstimator.run` directly with a
  ``progress`` hook, so the job's per-k convergence trajectory updates
  live and a cancel request aborts between hyper-samples.  A restart
  re-runs them from scratch — deterministic, so still bit-identical.
* Multi-run jobs go through the fault-tolerant
  :func:`repro.api.run_many` facade with a per-job JSONL checkpoint and
  ``resume=True``: runs completed before a server kill are loaded back,
  never recomputed, and the scheduler's seed contract keeps the final
  result list bit-identical to an uninterrupted execution.

Under a lease-expiring store (:class:`~repro.service.store.SQLiteJobStore`
with a ``lease_ttl``), the pool also runs one *lease keeper* thread: it
renews the lease of every in-flight claim attempt each
``store.heartbeat_interval`` seconds — independent of estimator
progress, so a long fit step can't silently lose a healthy job — and
reaps expired leases of dead replicas back to ``queued`` (work
stealing).  Each worker captures its claim attempt's
:class:`~repro.service.jobs.JobLease` when it picks the job up; all
per-attempt bookkeeping (the in-flight registry the keeper renews, the
abort checks in the progress hooks, the terminal commit's CAS token)
goes through that captured lease, never through mutable fields of the
shared job object — so when a reaped job is re-claimed by another
thread of the same pool while the old attempt is still unwinding, the
two attempts cannot interfere.  A worker whose lease was reclaimed
observes ``lease.lost`` in its progress hooks, unwinds without
committing (the store's terminal commit is CAS-guarded on the lease
token anyway), and is counted under
``service_jobs_finished_total{state="lease_lost"}``.

Populations are cached per worker pool (small LRU keyed on the exact
build arguments) so repeated jobs against the same circuit skip the
simulation of tens of thousands of vector pairs.  The cache key includes
the build seed, so it can never alias two different populations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional

import numpy as np

from ..api import build_population, run_many
from ..errors import JobCancelledError
from ..estimation.adaptive import build_estimator
from ..obs.metrics import get_registry
from ..obs.spans import get_span_recorder
from ..obs.trace import get_tracer
from ..sim.batch import batching_enabled, get_batcher
from .jobs import Job, JobStore

__all__ = ["WorkerPool"]

_METRICS = get_registry()
_TRACER = get_tracer()
_SPANS = get_span_recorder()
_JOB_TIMER = _METRICS.timer("service_job_seconds")

#: Populations kept per pool; a handful covers a benchmark sweep.
_POPULATION_CACHE_SIZE = 8


def _trajectory_entry(hs, interval, cumulative_units: int) -> dict:
    """One per-k live status record (field names match the
    ``hyper_sample`` trace events and ``HyperSample.to_dict``)."""
    fit = hs.fit
    return {
        "k": hs.index,
        "estimate": hs.estimate,
        "alpha": fit.alpha if fit is not None else None,
        "beta": fit.beta if fit is not None else None,
        "mu": fit.mu if fit is not None else None,
        "rel_half_width": interval.rel_half_width if interval else None,
        "mean_estimate": interval.mean if interval else None,
        "cumulative_units": cumulative_units,
    }


class WorkerPool:
    """``num_workers`` daemon threads draining one :class:`JobStore`."""

    def __init__(self, store: JobStore, num_workers: int = 2):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.store = store
        self.num_workers = num_workers
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._cache_lock = threading.Lock()
        self._populations: "OrderedDict[tuple, object]" = OrderedDict()
        # One process-wide batcher shared by every worker thread (and
        # every pool of this replica): concurrent jobs on the same
        # circuit fuse their unit-delay simulation into shared kernel
        # invocations.  REPRO_SIM_BATCH=0 opts out.
        self._batcher = get_batcher() if batching_enabled() else None
        self._busy_lock = threading.Lock()
        self._busy = 0
        #: In-flight claim attempts, keyed by (job id, lease token) and
        #: holding (job, lease) — what the lease keeper renews.  Keyed
        #: per *attempt*, not per job: when a reaped job is re-claimed
        #: by another thread of this pool while the old attempt is
        #: still unwinding, the old attempt's cleanup must pop its own
        #: entry, never the live re-run's.
        self._active: dict = {}

    def busy_count(self) -> int:
        """Worker threads currently executing a job (saturation gauge)."""
        with self._busy_lock:
            return self._busy

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        for i in range(self.num_workers):
            thread = threading.Thread(
                target=self._loop, name=f"repro-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        if getattr(self.store, "heartbeat_interval", None) is not None:
            keeper = threading.Thread(
                target=self._lease_keeper, name="repro-lease-keeper",
                daemon=True,
            )
            keeper.start()
            self._threads.append(keeper)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self.store.wake_all()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    # -- lease keeper ---------------------------------------------------
    def _lease_keeper(self) -> None:
        """Heartbeat + reaper: renew this pool's in-flight leases and
        reclaim expired ones (any replica's) every heartbeat interval."""
        interval = self.store.heartbeat_interval
        while not self._stop.wait(interval):
            with self._busy_lock:
                active = list(self._active.values())
            for job, lease in active:
                renewed = self.store.renew_lease(job, lease)
                _METRICS.counter(
                    "service_lease_renewals_total",
                    outcome="ok" if renewed else "lost",
                ).inc()
            self.store.reap_expired()

    # -- execution ------------------------------------------------------
    def _loop(self) -> None:
        # The claim is an atomic store-side lease keyed by this thread's
        # name; memo-settled jobs complete at submit time and are never
        # handed out here.
        owner = threading.current_thread().name
        while not self._stop.is_set():
            job = self.store.claim_next(timeout=0.2, owner=owner)
            if job is None:
                continue
            self._execute(job)

    def _population_for(self, job: Job):
        spec = job.spec
        key = (
            spec.circuit,
            spec.population_size,
            spec.activity,
            spec.sim_mode,
            spec.frequency_mhz,
            spec.seed,
        )
        with self._cache_lock:
            if key in self._populations:
                self._populations.move_to_end(key)
                _METRICS.counter("service_population_cache_total", hit="true").inc()
                return self._populations[key]
        # Build outside the lock: population simulation is the slow part
        # and two workers building the same key just race benignly.
        population = build_population(
            spec.circuit,
            population_size=spec.population_size,
            activity=spec.activity,
            sim_mode=spec.sim_mode,
            frequency_mhz=spec.frequency_mhz,
            seed=spec.seed,
            workers=spec.config.workers,
            batcher=self._batcher,
        )
        with self._cache_lock:
            self._populations[key] = population
            while len(self._populations) > _POPULATION_CACHE_SIZE:
                self._populations.popitem(last=False)
            _METRICS.counter("service_population_cache_total", hit="false").inc()
        return population

    def _execute(self, job: Job) -> None:
        # Capture this attempt's lease before anything else: the shared
        # job object's `lease` is swapped by a steal-back re-claim, and
        # every check/commit below must be against *this* attempt's.
        lease = job.lease
        active_key = (job.id, lease.token if lease is not None else None)
        if _TRACER.enabled:
            _TRACER.emit("job_start", job_id=job.id, circuit=job.spec.circuit)
        with self._busy_lock:
            self._busy += 1
            self._active[active_key] = (job, lease)
        # Re-attach the trace context the job carried through the queue so
        # estimator/fit/population spans nest under this job's trace even
        # though a different thread than the HTTP handler runs it.
        tracing = _SPANS.enabled and job.trace_id is not None
        context = job.trace_context if tracing else None
        token = _SPANS.attach(context) if tracing else None
        run_span = None
        if tracing:
            if job.started_at is not None:
                _SPANS.emit(
                    "job.queue_wait",
                    parent=context,
                    start_ts=job.created_at,
                    duration_s=max(0.0, job.started_at - job.created_at),
                    job_id=job.id,
                )
                _SPANS.emit(
                    "job.claim",
                    parent=context,
                    start_ts=job.started_at,
                    job_id=job.id,
                    lease_owner=job.lease_owner,
                )
            run_span = _SPANS.start(
                "job.run",
                job_id=job.id,
                circuit=job.spec.circuit,
                num_runs=job.spec.num_runs,
            )
        try:
            try:
                with _JOB_TIMER.time():
                    results = self._run(job, lease)
            except JobCancelledError:
                self._settle(
                    job,
                    lease,
                    run_span,
                    "cancelled",
                    lambda j: self.store.mark_cancelled(j, lease=lease),
                )
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                message = f"{type(exc).__name__}: {exc}"
                self._settle(
                    job,
                    lease,
                    run_span,
                    "failed",
                    lambda j: self.store.mark_failed(j, message, lease=lease),
                    error=message,
                )
            else:
                self._settle(
                    job,
                    lease,
                    run_span,
                    "completed",
                    lambda j: self.store.mark_completed(j, results, lease=lease),
                )
        finally:
            if token is not None:
                _SPANS.detach(token)
            with self._busy_lock:
                self._busy -= 1
                self._active.pop(active_key, None)

    def _settle(
        self, job: Job, lease, run_span, state: str, commit, error=None
    ) -> None:
        """Finish the job's run span, commit its terminal state, and
        persist the trace so it survives a server restart.

        An attempt whose lease was lost mid-run (expired and reclaimed
        by the reaper — this attempt no longer owns the job) is never
        committed: the store's token CAS would reject the write anyway,
        the re-run owns the lifecycle now, and the abandoned attempt is
        counted as ``state="lease_lost"``.  All checks are against the
        *captured* lease, never ``job.lease`` — a same-pool re-claim
        swaps the latter.
        """
        lost = lease is not None and lease.lost
        if not lost:
            with _SPANS.span("job.commit", job_id=job.id, state=state):
                commit(job)
            lost = lease is not None and lease.lost
        if lost:
            # Either detected before the commit or discovered by the
            # commit's own lease CAS: nothing was written.
            state = "lease_lost"
            error = None
        if run_span is not None:
            attrs = {"state": state}
            if error is not None:
                attrs["error"] = error
            _SPANS.finish(
                run_span,
                status="error" if state == "failed" else "ok",
                **attrs,
            )
        _METRICS.counter("service_jobs_finished_total", state=state).inc()
        if _TRACER.enabled:
            payload = {"job_id": job.id, "state": state}
            if error is not None:
                payload["error"] = error
            _TRACER.emit("job_end", **payload)
        if _SPANS.enabled and job.trace_id is not None:
            records = _SPANS.spans_for_trace(job.trace_id)
            if records:
                self.store.save_spans(job.id, records)

    def _run(self, job: Job, lease) -> List[object]:
        spec = job.spec
        population = self._population_for(job)
        lost = (lambda: lease.lost) if lease is not None else (lambda: False)
        if spec.num_runs == 1:
            # The config's method field picks the engine (fixed block
            # maxima, POT, or the adaptive controller) — all share the
            # run(rng, progress) contract, so cancellation and the live
            # trajectory work identically.
            estimator = build_estimator(population, spec.config)
            # Capture this attempt's buffer: a steal-back re-run swaps in
            # a fresh list on job.trajectory, and a still-unwinding old
            # attempt must keep writing to its own orphaned one.
            trajectory = job.trajectory

            def progress(hs, interval, cumulative_units):
                if job.cancel_event.is_set() or lost():
                    raise JobCancelledError(f"job {job.id} cancelled")
                trajectory.append(
                    _trajectory_entry(hs, interval, cumulative_units)
                )

            result = estimator.run(
                rng=np.random.default_rng(spec.seed + 1), progress=progress
            )
            if job.lease is lease:
                job.completed_runs = 1
            return [result]

        # Per-attempt run counter, published to the shared job only
        # while this attempt still owns it: an orphaned old attempt
        # bumping job.completed_runs would make status/SSE over-report
        # the live re-run's progress (and emit spurious run events).
        completed = 0

        def on_result(index: int, result) -> None:
            nonlocal completed
            if job.cancel_event.is_set() or lost():
                raise JobCancelledError(f"job {job.id} cancelled")
            completed += 1
            if job.lease is lease:
                job.completed_runs = completed

        return run_many(
            population,
            spec.num_runs,
            spec.config,
            base_seed=spec.seed + 1,
            checkpoint=self.store.run_checkpoint_path(job.id),
            resume=True,
            on_result=on_result,
        )

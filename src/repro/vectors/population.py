"""Vector-pair populations — the sampling universe of the estimators.

The paper defines the *population* V as a set of input vector pairs;
the power values of its units form the distribution F whose right
endpoint is the quantity to estimate.  Two concrete kinds:

* :class:`FinitePopulation` — a pre-simulated pool (the experimental
  setup of the paper: 160k/80k pairs simulated once, then sampled with
  replacement).  Knows its exact maximum, so estimator error can be
  measured, and exposes the qualified-unit portion Y used in the SRS
  efficiency analysis.
* :class:`StreamingPopulation` — an effectively infinite population:
  each sample generates fresh vector pairs from a generator function
  and simulates them on demand (this is "random vector generation" in
  the paper's category I.1 flow).

Both implement the tiny :class:`PowerPopulation` interface the
estimators consume: ``sample_powers(n, rng)`` plus an optional finite
size.  Finite pools can be saved/loaded as ``.npz`` for caching.
"""

from __future__ import annotations

import abc
import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import PopulationError
from ..obs.metrics import get_registry
from ..obs.spans import get_span_recorder
from ..obs.trace import get_tracer
from .generators import RngLike, as_rng

__all__ = [
    "PowerPopulation",
    "FinitePopulation",
    "StreamingPopulation",
    "DEFAULT_BUILD_CHUNK",
]

PairGenerator = Callable[[int, np.random.Generator], Tuple[np.ndarray, np.ndarray]]
PowerFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Pairs simulated per independent chunk in :meth:`FinitePopulation.build`.
#: The chunk decomposition is part of the reproducibility contract, so it
#: must not depend on the worker count.
DEFAULT_BUILD_CHUNK = 4096

_METRICS = get_registry()
_TRACER = get_tracer()
_SPANS = get_span_recorder()
_BUILD_TIMER = _METRICS.timer("population_build_seconds")
_CHUNK_TIMER = _METRICS.timer("population_build_chunk_seconds")
_PAIRS_TOTAL = _METRICS.counter("population_pairs_built_total")
_STREAMED_TOTAL = _METRICS.counter("population_streamed_units_total")


def _as_power_array(values: np.ndarray, expected: int) -> np.ndarray:
    """Cast a power-function output to float64 and validate its shape."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.shape != (expected,):
        raise PopulationError(
            f"power function returned shape {arr.shape}, "
            f"expected ({expected},)"
        )
    return arr


class PowerPopulation(abc.ABC):
    """Sampling interface over per-vector-pair power values."""

    #: Human-readable population name (used in reports).
    name: str = "population"

    @abc.abstractmethod
    def sample_powers(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``n`` unit power values (with replacement)."""

    def sample_block_maxima(
        self, n: int, m: int, rng: RngLike = None
    ) -> np.ndarray:
        """Draw ``m`` block maxima of block size ``n`` in one batch.

        The hot path of the estimator: all ``n * m`` units are drawn in
        a *single* vectorized :meth:`sample_powers` call and reduced to
        per-block maxima, instead of ``m`` tiny per-block draws.

        Stream contract: this consumes the RNG exactly as one
        ``sample_powers(n * m, rng)`` call, so block-maxima draws are
        bit-for-bit reproducible for a given seed regardless of which
        concrete population (or override) serves them.
        """
        if n < 1 or m < 1:
            raise PopulationError("n and m must be >= 1")
        draws = np.asarray(
            self.sample_powers(n * m, rng), dtype=np.float64
        )
        return draws.reshape(m, n).max(axis=1)

    @property
    def size(self) -> Optional[int]:
        """Number of distinct units, or ``None`` when infinite."""
        return None

    @property
    def actual_max_power(self) -> Optional[float]:
        """True maximum power, when known (finite pools only)."""
        return None


class FinitePopulation(PowerPopulation):
    """Pre-simulated finite pool of vector pairs with known powers.

    Parameters
    ----------
    powers:
        Power value (watts) of every unit.
    v1, v2:
        Optional ``(N, num_inputs)`` bit matrices of the underlying
        pairs; kept for provenance and for vector-level baselines.
    name:
        Report label.
    metadata:
        Free-form provenance (circuit, generator settings, seed, ...).
    """

    def __init__(
        self,
        powers: np.ndarray,
        v1: Optional[np.ndarray] = None,
        v2: Optional[np.ndarray] = None,
        name: str = "population",
        metadata: Optional[Dict[str, object]] = None,
    ):
        powers = np.asarray(powers, dtype=np.float64)
        if powers.ndim != 1 or powers.size == 0:
            raise PopulationError("powers must be a non-empty 1-D array")
        if not np.isfinite(powers).all():
            raise PopulationError("powers must be finite")
        if (v1 is None) != (v2 is None):
            raise PopulationError("provide both v1 and v2 or neither")
        if v1 is not None:
            v1 = np.asarray(v1, dtype=np.uint8)
            v2 = np.asarray(v2, dtype=np.uint8)
            if v1.shape != v2.shape or v1.shape[0] != powers.size:
                raise PopulationError("vector matrices disagree with powers")
        self.powers = powers
        self.v1 = v1
        self.v2 = v2
        self.name = name
        self.metadata = dict(metadata or {})

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return int(self.powers.size)

    @property
    def actual_max_power(self) -> float:
        return float(self.powers.max())

    @property
    def mean_power(self) -> float:
        return float(self.powers.mean())

    def qualified_portion(self, epsilon: float = 0.05) -> float:
        """Fraction of units within ``epsilon`` of the true maximum.

        This is the paper's *Y* (Table 1 column 2): units whose power is
        at least ``(1 - epsilon) * actual_max``.
        """
        if not 0 < epsilon < 1:
            raise PopulationError("epsilon must be in (0, 1)")
        threshold = (1.0 - epsilon) * self.actual_max_power
        return float((self.powers >= threshold).mean())

    def sample_powers(self, n: int, rng: RngLike = None) -> np.ndarray:
        if n < 1:
            raise PopulationError("n must be >= 1")
        gen = as_rng(rng)
        idx = gen.integers(0, self.size, size=n)
        return self.powers[idx]

    def sample_block_maxima(
        self, n: int, m: int, rng: RngLike = None
    ) -> np.ndarray:
        """Batched block maxima: one index draw, one gather, one reduce.

        Consumes the RNG identically to ``sample_powers(n * m, rng)``
        (a single ``integers`` call), so it is bit-for-bit equivalent to
        the generic :meth:`PowerPopulation.sample_block_maxima` path.
        Subclasses that override :meth:`sample_powers` (e.g. to count or
        transform draws) keep that behavior: the generic path is used
        for them so every unit still flows through their override.
        """
        if type(self).sample_powers is not FinitePopulation.sample_powers:
            return super().sample_block_maxima(n, m, rng)
        if n < 1 or m < 1:
            raise PopulationError("n and m must be >= 1")
        gen = as_rng(rng)
        idx = gen.integers(0, self.size, size=n * m)
        return self.powers[idx].reshape(m, n).max(axis=1)

    def sample_units(
        self, n: int, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample units returning ``(powers, v1, v2)`` rows.

        Requires the pool to have stored vectors.
        """
        if self.v1 is None:
            raise PopulationError("population stores no vectors")
        gen = as_rng(rng)
        idx = gen.integers(0, self.size, size=n)
        return self.powers[idx], self.v1[idx], self.v2[idx]

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Persist to ``.npz`` (powers, vectors, JSON-encoded metadata).

        ``np.savez_compressed`` silently appends ``.npz`` to suffix-less
        paths, which used to break a ``save(p)`` / ``load(p)`` round
        trip; the suffix is therefore normalized here and the *actual*
        written path returned.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        arrays = {
            "powers": self.powers,
            "meta": np.frombuffer(
                json.dumps({"name": self.name, **self.metadata}).encode(),
                dtype=np.uint8,
            ),
        }
        if self.v1 is not None:
            arrays["v1"] = self.v1
            arrays["v2"] = self.v2
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FinitePopulation":
        """Load a pool previously written by :meth:`save`.

        Accepts the suffix-less path that was handed to :meth:`save`.
        """
        path = Path(path)
        if not path.exists() and path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            name = meta.pop("name", "population")
            v1 = data["v1"] if "v1" in data else None
            v2 = data["v2"] if "v2" in data else None
            return cls(
                powers=data["powers"], v1=v1, v2=v2, name=name, metadata=meta
            )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        pair_generator: PairGenerator,
        power_function: PowerFunction,
        num_pairs: int,
        seed: int,
        name: str = "population",
        metadata: Optional[Dict[str, object]] = None,
        workers: int = 1,
        chunk_size: Optional[int] = None,
    ) -> "FinitePopulation":
        """Generate ``num_pairs`` pairs, simulate them, and wrap the pool.

        ``pair_generator(count, rng)`` must return the two bit matrices;
        ``power_function(v1, v2)`` the per-pair powers (e.g.
        :meth:`repro.sim.power.PowerAnalyzer.powers_for_pairs`).  The
        power output is cast to float64 and shape-validated per chunk,
        so int- or float32-returning power functions produce the same
        pools as the streaming path.

        Stream-splitting contract: the pool is simulated in independent
        chunks of ``chunk_size`` pairs (default
        :data:`DEFAULT_BUILD_CHUNK`); chunk *i* draws from
        ``np.random.default_rng(np.random.SeedSequence(seed).spawn(C)[i])``
        and the chunks are concatenated in order.  The decomposition
        depends only on ``(num_pairs, chunk_size, seed)`` — never on
        ``workers`` — so a serial build and a parallel build of the same
        pool are bit-for-bit identical.

        ``workers > 1`` simulates chunks on a thread pool; the heavy
        lifting (bit-parallel simulation, numpy RNG) releases the GIL,
        and threads keep arbitrary closures usable as generators/power
        functions (no pickling requirement).  When ``power_function`` is
        a :class:`~repro.sim.power.PowerAnalyzer` bound method on the
        default compiled kernel, the circuit's struct-of-arrays plan is
        compiled once and shared by every chunk (and every thread) —
        the per-chunk cost is pure batched evaluation.
        """
        if num_pairs < 1:
            raise PopulationError("num_pairs must be >= 1")
        if workers < 1:
            raise PopulationError("workers must be >= 1")
        if chunk_size is None:
            chunk_size = DEFAULT_BUILD_CHUNK
        if chunk_size < 1:
            raise PopulationError("chunk_size must be >= 1")
        counts = [chunk_size] * (num_pairs // chunk_size)
        if num_pairs % chunk_size:
            counts.append(num_pairs % chunk_size)
        children = np.random.SeedSequence(seed).spawn(len(counts))

        def simulate_chunk(
            count: int, seed_seq: np.random.SeedSequence
        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            # Chunk timings record from pool threads too — the registry
            # lock serializes the (tiny) bookkeeping, not the simulation.
            with _CHUNK_TIMER.time():
                rng = np.random.default_rng(seed_seq)
                v1, v2 = pair_generator(count, rng)
                powers = _as_power_array(power_function(v1, v2), count)
            return v1, v2, powers

        with _SPANS.span(
            "population.build",
            name=name,
            num_pairs=num_pairs,
            chunks=len(counts),
            workers=workers,
        ) as span:
            start = time.perf_counter()
            if workers == 1 or len(counts) == 1:
                parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = [
                    simulate_chunk(c, s) for c, s in zip(counts, children)
                ]
            else:
                with ThreadPoolExecutor(
                    max_workers=min(workers, len(counts))
                ) as pool:
                    parts = list(pool.map(simulate_chunk, counts, children))
            elapsed = time.perf_counter() - start
            v1 = np.concatenate([p[0] for p in parts])
            v2 = np.concatenate([p[1] for p in parts])
            powers = np.concatenate([p[2] for p in parts])
            span.set(seconds=elapsed)
        _BUILD_TIMER.observe(elapsed)
        _PAIRS_TOTAL.inc(num_pairs)
        if _TRACER.enabled:
            _TRACER.emit(
                "population_build",
                name=name,
                num_pairs=num_pairs,
                chunks=len(counts),
                chunk_size=chunk_size,
                workers=workers,
                seconds=elapsed,
            )
        meta = {"seed": seed, "chunk_size": chunk_size, **(metadata or {})}
        return cls(powers=powers, v1=v1, v2=v2, name=name, metadata=meta)


class StreamingPopulation(PowerPopulation):
    """Infinite population: fresh vector pairs simulated per sample.

    This is the paper's category-I.1 production mode — "the sampling
    technique is replaced by the random vector generation" — where no
    pre-simulated pool exists and |V| is treated as infinite.
    """

    def __init__(
        self,
        pair_generator: PairGenerator,
        power_function: PowerFunction,
        name: str = "streaming",
    ):
        self._generate = pair_generator
        self._power = power_function
        self.name = name
        self.units_simulated = 0

    def sample_powers(self, n: int, rng: RngLike = None) -> np.ndarray:
        if n < 1:
            raise PopulationError("n must be >= 1")
        gen = as_rng(rng)
        v1, v2 = self._generate(n, gen)
        powers = _as_power_array(self._power(v1, v2), n)
        # Count the unit budget only after the simulation succeeded; a
        # raising power function must not inflate ``units_simulated``.
        self.units_simulated += n
        _STREAMED_TOTAL.inc(n)
        return powers

    def sample_block_maxima(
        self, n: int, m: int, rng: RngLike = None
    ) -> np.ndarray:
        """Batched block maxima: one generator call simulates all
        ``n * m`` fresh pairs, then blocks are reduced in one pass.

        RNG consumption is identical to ``sample_powers(n * m, rng)``.
        """
        if n < 1 or m < 1:
            raise PopulationError("n and m must be >= 1")
        return self.sample_powers(n * m, rng).reshape(m, n).max(axis=1)

"""Vector-pair populations — the sampling universe of the estimators.

The paper defines the *population* V as a set of input vector pairs;
the power values of its units form the distribution F whose right
endpoint is the quantity to estimate.  Two concrete kinds:

* :class:`FinitePopulation` — a pre-simulated pool (the experimental
  setup of the paper: 160k/80k pairs simulated once, then sampled with
  replacement).  Knows its exact maximum, so estimator error can be
  measured, and exposes the qualified-unit portion Y used in the SRS
  efficiency analysis.
* :class:`StreamingPopulation` — an effectively infinite population:
  each sample generates fresh vector pairs from a generator function
  and simulates them on demand (this is "random vector generation" in
  the paper's category I.1 flow).

Both implement the tiny :class:`PowerPopulation` interface the
estimators consume: ``sample_powers(n, rng)`` plus an optional finite
size.  Finite pools can be saved/loaded as ``.npz`` for caching.
"""

from __future__ import annotations

import abc
import json
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..errors import PopulationError
from .generators import RngLike, as_rng

__all__ = ["PowerPopulation", "FinitePopulation", "StreamingPopulation"]

PairGenerator = Callable[[int, np.random.Generator], Tuple[np.ndarray, np.ndarray]]
PowerFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


class PowerPopulation(abc.ABC):
    """Sampling interface over per-vector-pair power values."""

    #: Human-readable population name (used in reports).
    name: str = "population"

    @abc.abstractmethod
    def sample_powers(self, n: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``n`` unit power values (with replacement)."""

    @property
    def size(self) -> Optional[int]:
        """Number of distinct units, or ``None`` when infinite."""
        return None

    @property
    def actual_max_power(self) -> Optional[float]:
        """True maximum power, when known (finite pools only)."""
        return None


class FinitePopulation(PowerPopulation):
    """Pre-simulated finite pool of vector pairs with known powers.

    Parameters
    ----------
    powers:
        Power value (watts) of every unit.
    v1, v2:
        Optional ``(N, num_inputs)`` bit matrices of the underlying
        pairs; kept for provenance and for vector-level baselines.
    name:
        Report label.
    metadata:
        Free-form provenance (circuit, generator settings, seed, ...).
    """

    def __init__(
        self,
        powers: np.ndarray,
        v1: Optional[np.ndarray] = None,
        v2: Optional[np.ndarray] = None,
        name: str = "population",
        metadata: Optional[Dict[str, object]] = None,
    ):
        powers = np.asarray(powers, dtype=np.float64)
        if powers.ndim != 1 or powers.size == 0:
            raise PopulationError("powers must be a non-empty 1-D array")
        if not np.isfinite(powers).all():
            raise PopulationError("powers must be finite")
        if (v1 is None) != (v2 is None):
            raise PopulationError("provide both v1 and v2 or neither")
        if v1 is not None:
            v1 = np.asarray(v1, dtype=np.uint8)
            v2 = np.asarray(v2, dtype=np.uint8)
            if v1.shape != v2.shape or v1.shape[0] != powers.size:
                raise PopulationError("vector matrices disagree with powers")
        self.powers = powers
        self.v1 = v1
        self.v2 = v2
        self.name = name
        self.metadata = dict(metadata or {})

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return int(self.powers.size)

    @property
    def actual_max_power(self) -> float:
        return float(self.powers.max())

    @property
    def mean_power(self) -> float:
        return float(self.powers.mean())

    def qualified_portion(self, epsilon: float = 0.05) -> float:
        """Fraction of units within ``epsilon`` of the true maximum.

        This is the paper's *Y* (Table 1 column 2): units whose power is
        at least ``(1 - epsilon) * actual_max``.
        """
        if not 0 < epsilon < 1:
            raise PopulationError("epsilon must be in (0, 1)")
        threshold = (1.0 - epsilon) * self.actual_max_power
        return float((self.powers >= threshold).mean())

    def sample_powers(self, n: int, rng: RngLike = None) -> np.ndarray:
        if n < 1:
            raise PopulationError("n must be >= 1")
        gen = as_rng(rng)
        idx = gen.integers(0, self.size, size=n)
        return self.powers[idx]

    def sample_units(
        self, n: int, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample units returning ``(powers, v1, v2)`` rows.

        Requires the pool to have stored vectors.
        """
        if self.v1 is None:
            raise PopulationError("population stores no vectors")
        gen = as_rng(rng)
        idx = gen.integers(0, self.size, size=n)
        return self.powers[idx], self.v1[idx], self.v2[idx]

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist to ``.npz`` (powers, vectors, JSON-encoded metadata)."""
        path = Path(path)
        arrays = {
            "powers": self.powers,
            "meta": np.frombuffer(
                json.dumps({"name": self.name, **self.metadata}).encode(),
                dtype=np.uint8,
            ),
        }
        if self.v1 is not None:
            arrays["v1"] = self.v1
            arrays["v2"] = self.v2
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FinitePopulation":
        """Load a pool previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            name = meta.pop("name", "population")
            v1 = data["v1"] if "v1" in data else None
            v2 = data["v2"] if "v2" in data else None
            return cls(
                powers=data["powers"], v1=v1, v2=v2, name=name, metadata=meta
            )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        pair_generator: PairGenerator,
        power_function: PowerFunction,
        num_pairs: int,
        seed: int,
        name: str = "population",
        metadata: Optional[Dict[str, object]] = None,
    ) -> "FinitePopulation":
        """Generate ``num_pairs`` pairs, simulate them, and wrap the pool.

        ``pair_generator(num_pairs, rng)`` must return the two bit
        matrices; ``power_function(v1, v2)`` the per-pair powers (e.g.
        :meth:`repro.sim.power.PowerAnalyzer.powers_for_pairs`).
        """
        rng = np.random.default_rng(seed)
        v1, v2 = pair_generator(num_pairs, rng)
        powers = power_function(v1, v2)
        meta = {"seed": seed, **(metadata or {})}
        return cls(powers=powers, v1=v1, v2=v2, name=name, metadata=meta)


class StreamingPopulation(PowerPopulation):
    """Infinite population: fresh vector pairs simulated per sample.

    This is the paper's category-I.1 production mode — "the sampling
    technique is replaced by the random vector generation" — where no
    pre-simulated pool exists and |V| is treated as infinite.
    """

    def __init__(
        self,
        pair_generator: PairGenerator,
        power_function: PowerFunction,
        name: str = "streaming",
    ):
        self._generate = pair_generator
        self._power = power_function
        self.name = name
        self.units_simulated = 0

    def sample_powers(self, n: int, rng: RngLike = None) -> np.ndarray:
        if n < 1:
            raise PopulationError("n must be >= 1")
        gen = as_rng(rng)
        v1, v2 = self._generate(n, gen)
        self.units_simulated += n
        return np.asarray(self._power(v1, v2), dtype=np.float64)

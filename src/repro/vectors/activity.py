"""Switching-activity measurement and constraint verification.

Small, pure functions over the ``(num_pairs, num_inputs)`` bit-matrix
pair representation.  Used by tests (to verify generators honour their
constraints), by population metadata, and by the genetic-search baseline
(whose mutation operators target activity).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import PopulationError

__all__ = [
    "pair_activity",
    "mean_activity",
    "per_line_transition_prob",
    "toggle_correlation",
    "hamming_distance",
]


def _check(v1: np.ndarray, v2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    v1 = np.asarray(v1)
    v2 = np.asarray(v2)
    if v1.shape != v2.shape or v1.ndim != 2:
        raise PopulationError("expected two (N, num_inputs) matrices")
    return v1, v2


def pair_activity(v1: np.ndarray, v2: np.ndarray) -> np.ndarray:
    """Per-pair input switching activity: fraction of toggled lines."""
    v1, v2 = _check(v1, v2)
    return (v1 != v2).mean(axis=1)


def mean_activity(v1: np.ndarray, v2: np.ndarray) -> float:
    """Average switching activity over all pairs and lines."""
    v1, v2 = _check(v1, v2)
    return float((v1 != v2).mean())


def per_line_transition_prob(v1: np.ndarray, v2: np.ndarray) -> np.ndarray:
    """Empirical transition probability of each input line."""
    v1, v2 = _check(v1, v2)
    return (v1 != v2).mean(axis=0)


def hamming_distance(v1: np.ndarray, v2: np.ndarray) -> np.ndarray:
    """Per-pair count of toggled lines."""
    v1, v2 = _check(v1, v2)
    return (v1 != v2).sum(axis=1)


def toggle_correlation(v1: np.ndarray, v2: np.ndarray) -> np.ndarray:
    """Lag-1 spatial correlation of toggle indicators between lines.

    Returns the Pearson correlation between the toggle indicator of
    line *i* and line *i+1*, one value per adjacent line pair.  Lines
    with zero toggle variance yield ``nan`` for their pairs.
    """
    v1, v2 = _check(v1, v2)
    togg = (v1 != v2).astype(np.float64)
    if togg.shape[1] < 2:
        return np.empty(0)
    a = togg[:, :-1]
    b = togg[:, 1:]
    am = a - a.mean(axis=0)
    bm = b - b.mean(axis=0)
    denom = a.std(axis=0) * b.std(axis=0) * a.shape[0]
    with np.errstate(invalid="ignore", divide="ignore"):
        return (am * bm).sum(axis=0) / denom

"""Input vector-pair generation.

The paper's two problem categories need different pair sources:

* *Unconstrained* (I.1): all possible vector pairs are admissible.  The
  experimental populations are "randomly generated high activity
  (average switching activity larger than 0.3) vector pairs" —
  :func:`high_activity_vector_pairs` reproduces that with rejection
  sampling.
* *Constrained* (I.2): pairs must honour a transition-probability
  specification per input line —
  :func:`transition_prob_vector_pairs` (independent lines, the paper's
  0.7 / 0.3 setups) and :func:`markov_transition_vector_pairs`
  (joint/correlated toggles between neighbouring lines).

All generators return a pair of ``(num_pairs, num_inputs)`` uint8
matrices ``(v1, v2)`` and draw from a caller-supplied seed or Generator,
so populations are reproducible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import PopulationError

__all__ = [
    "random_vector_pairs",
    "high_activity_vector_pairs",
    "transition_prob_vector_pairs",
    "markov_transition_vector_pairs",
    "as_rng",
]

RngLike = Union[int, np.random.Generator, None]


def as_rng(rng: RngLike) -> np.random.Generator:
    """Normalize an int seed / Generator / None into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _check_dims(num_pairs: int, num_inputs: int) -> None:
    if num_pairs < 1:
        raise PopulationError("num_pairs must be >= 1")
    if num_inputs < 1:
        raise PopulationError("num_inputs must be >= 1")


def random_vector_pairs(
    num_pairs: int, num_inputs: int, rng: RngLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniformly random, independent ``(v1, v2)`` pairs."""
    _check_dims(num_pairs, num_inputs)
    gen = as_rng(rng)
    v1 = gen.integers(0, 2, size=(num_pairs, num_inputs), dtype=np.uint8)
    v2 = gen.integers(0, 2, size=(num_pairs, num_inputs), dtype=np.uint8)
    return v1, v2


def high_activity_vector_pairs(
    num_pairs: int,
    num_inputs: int,
    min_activity: float = 0.3,
    rng: RngLike = None,
    max_batches: int = 10_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random pairs whose per-pair input switching activity exceeds a bound.

    Reproduces the paper's unconstrained population construction:
    uniformly random pairs filtered to average input activity
    ``> min_activity`` (fraction of inputs that toggle between v1 and
    v2).

    Raises
    ------
    PopulationError
        If the acceptance rate is so low the batch budget is exhausted
        (only possible for extreme ``min_activity``).
    """
    _check_dims(num_pairs, num_inputs)
    if not 0.0 <= min_activity < 1.0:
        raise PopulationError("min_activity must be in [0, 1)")
    gen = as_rng(rng)
    keep_v1 = []
    keep_v2 = []
    kept = 0
    for _ in range(max_batches):
        batch = max(1024, num_pairs - kept)
        v1 = gen.integers(0, 2, size=(batch, num_inputs), dtype=np.uint8)
        v2 = gen.integers(0, 2, size=(batch, num_inputs), dtype=np.uint8)
        activity = (v1 != v2).mean(axis=1)
        sel = activity > min_activity
        if sel.any():
            keep_v1.append(v1[sel])
            keep_v2.append(v2[sel])
            kept += int(sel.sum())
        if kept >= num_pairs:
            v1_all = np.concatenate(keep_v1)[:num_pairs]
            v2_all = np.concatenate(keep_v2)[:num_pairs]
            return v1_all, v2_all
    raise PopulationError(
        f"could not collect {num_pairs} pairs with activity > "
        f"{min_activity} in {max_batches} batches"
    )


def transition_prob_vector_pairs(
    num_pairs: int,
    num_inputs: int,
    transition_probs: Union[float, Sequence[float]],
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pairs with a fixed per-line transition probability (category I.2).

    ``v1`` is uniform; line *i* of ``v2`` equals ``v1`` XOR a Bernoulli
    toggle with probability ``transition_probs[i]`` (a scalar applies to
    all lines).  The expected per-pair switching activity equals the
    mean transition probability.
    """
    _check_dims(num_pairs, num_inputs)
    probs = np.broadcast_to(
        np.asarray(transition_probs, dtype=np.float64), (num_inputs,)
    )
    if (probs < 0).any() or (probs > 1).any():
        raise PopulationError("transition probabilities must be in [0, 1]")
    gen = as_rng(rng)
    v1 = gen.integers(0, 2, size=(num_pairs, num_inputs), dtype=np.uint8)
    toggles = (
        gen.random(size=(num_pairs, num_inputs)) < probs[None, :]
    ).astype(np.uint8)
    v2 = v1 ^ toggles
    return v1, v2


def markov_transition_vector_pairs(
    num_pairs: int,
    num_inputs: int,
    base_prob: float,
    correlation: float,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pairs with spatially correlated toggles (joint-transition spec).

    Toggle indicators form a stationary Markov chain across input lines:
    line 0 toggles with ``base_prob``; line *i* copies line *i-1*'s
    toggle state with probability ``correlation`` and otherwise redraws
    from ``base_prob``.  ``correlation = 0`` reduces to independent
    lines; ``correlation -> 1`` makes whole buses toggle together —
    modelling the joint-transition-probability constraint of the paper's
    category I.2.
    """
    _check_dims(num_pairs, num_inputs)
    if not 0.0 <= base_prob <= 1.0:
        raise PopulationError("base_prob must be in [0, 1]")
    if not 0.0 <= correlation <= 1.0:
        raise PopulationError("correlation must be in [0, 1]")
    gen = as_rng(rng)
    v1 = gen.integers(0, 2, size=(num_pairs, num_inputs), dtype=np.uint8)
    toggles = np.empty((num_pairs, num_inputs), dtype=np.uint8)
    toggles[:, 0] = gen.random(num_pairs) < base_prob
    for i in range(1, num_inputs):
        copy_mask = gen.random(num_pairs) < correlation
        fresh = (gen.random(num_pairs) < base_prob).astype(np.uint8)
        toggles[:, i] = np.where(copy_mask, toggles[:, i - 1], fresh)
    v2 = v1 ^ toggles
    return v1, v2

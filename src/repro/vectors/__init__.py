"""Vector-pair generation, activity measures and populations."""

from .activity import (
    hamming_distance,
    mean_activity,
    pair_activity,
    per_line_transition_prob,
    toggle_correlation,
)
from .generators import (
    as_rng,
    high_activity_vector_pairs,
    markov_transition_vector_pairs,
    random_vector_pairs,
    transition_prob_vector_pairs,
)
from .population import FinitePopulation, PowerPopulation, StreamingPopulation
from .sequences import (
    markov_vector_sequence,
    sequence_activity,
    sequence_to_pairs,
)

__all__ = [
    "pair_activity",
    "mean_activity",
    "per_line_transition_prob",
    "toggle_correlation",
    "hamming_distance",
    "random_vector_pairs",
    "high_activity_vector_pairs",
    "transition_prob_vector_pairs",
    "markov_transition_vector_pairs",
    "as_rng",
    "PowerPopulation",
    "FinitePopulation",
    "StreamingPopulation",
    "markov_vector_sequence",
    "sequence_to_pairs",
    "sequence_activity",
]

"""Input vector *sequences* with temporal correlation.

The paper samples isolated vector pairs, but real workloads apply long
correlated streams.  This module generates sequences whose consecutive
vectors honour a per-line transition probability (a lag-1 Markov chain
per input line), turns a sequence into the (v1, v2) pair matrices the
power machinery consumes, and extracts the *sequence-induced population*
— the pairs actually occurring in a stream, which is exactly the paper's
category I.2 space when the stream is specified by transition
probabilities.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from ..errors import PopulationError
from .generators import RngLike, as_rng

__all__ = [
    "markov_vector_sequence",
    "sequence_to_pairs",
    "sequence_activity",
]


def markov_vector_sequence(
    length: int,
    num_inputs: int,
    transition_probs: Union[float, Sequence[float]],
    rng: RngLike = None,
    initial_p1: float = 0.5,
) -> np.ndarray:
    """A ``(length, num_inputs)`` bit stream with Markov temporal toggles.

    Line *i* toggles between consecutive vectors with probability
    ``transition_probs[i]``; the first vector is Bernoulli
    ``initial_p1``.  The marginal of every vector stays Bernoulli(1/2)
    when ``initial_p1 = 0.5`` (symmetric chain), so the induced pair
    population matches
    :func:`repro.vectors.generators.transition_prob_vector_pairs`.
    """
    if length < 2:
        raise PopulationError("length must be >= 2")
    if num_inputs < 1:
        raise PopulationError("num_inputs must be >= 1")
    if not 0.0 <= initial_p1 <= 1.0:
        raise PopulationError("initial_p1 must be in [0, 1]")
    probs = np.broadcast_to(
        np.asarray(transition_probs, dtype=np.float64), (num_inputs,)
    )
    if (probs < 0).any() or (probs > 1).any():
        raise PopulationError("transition probabilities must be in [0, 1]")
    gen = as_rng(rng)
    stream = np.empty((length, num_inputs), dtype=np.uint8)
    stream[0] = gen.random(num_inputs) < initial_p1
    toggles = (
        gen.random(size=(length - 1, num_inputs)) < probs[None, :]
    ).astype(np.uint8)
    for t in range(1, length):
        stream[t] = stream[t - 1] ^ toggles[t - 1]
    return stream


def sequence_to_pairs(
    stream: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Consecutive-vector pairs of a stream: ``(stream[:-1], stream[1:])``.

    The result feeds directly into
    :meth:`repro.sim.power.PowerAnalyzer.powers_for_pairs`, giving the
    cycle-by-cycle power trace of the stream.
    """
    stream = np.asarray(stream, dtype=np.uint8)
    if stream.ndim != 2 or stream.shape[0] < 2:
        raise PopulationError("stream must be (length >= 2, num_inputs)")
    return stream[:-1].copy(), stream[1:].copy()


def sequence_activity(stream: np.ndarray) -> float:
    """Mean per-cycle input switching activity of a stream."""
    v1, v2 = sequence_to_pairs(stream)
    return float((v1 != v2).mean())

"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class at their top level.  Subsystems get
their own subclass to make handler granularity possible without string
matching on messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a circuit netlist (bad arity, cycle, ...)."""


class ParseError(NetlistError):
    """A netlist file could not be parsed.

    Attributes
    ----------
    line_no:
        1-based line number the error was detected on, or ``None`` when the
        error is not tied to a specific line.
    """

    def __init__(self, message: str, line_no: "int | None" = None):
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The logic or timing simulator was driven with inconsistent data."""


class PopulationError(ReproError):
    """A vector-pair population was built or sampled inconsistently."""


class EstimationError(ReproError):
    """A statistical estimator could not produce a result."""


class FitError(EstimationError):
    """A distribution fit (MLE, curve fit, moments) failed to converge.

    Attributes
    ----------
    cause:
        Machine-readable failure class (``"degenerate"``, ``"no-root"``,
        ``"profile-failed"``, ``"param-range"``, ...) used to label the
        ``mle_fit_errors_total`` metric; ``"unknown"`` when the raising
        site did not classify itself.
    """

    def __init__(self, message: str, cause: str = "unknown"):
        self.cause = cause
        super().__init__(message)


class ConfigError(ReproError):
    """Invalid experiment or estimator configuration."""


class SchemaError(ReproError):
    """A serialized payload does not match the schema this build reads.

    Raised by :mod:`repro.schemas` when a payload declares a
    ``schema_version`` with an unknown *major* version (minor bumps are
    backward compatible and accepted; payloads written before versioning
    are treated as major version 1).
    """


class ServiceError(ReproError):
    """A job-service request failed (client- or server-side).

    Attributes
    ----------
    status:
        HTTP status code of the failed request, or ``None`` when the
        error did not come from an HTTP response (connection refused,
        wait timeout, ...).
    retry_after:
        Seconds the server asked the client to back off (the
        ``Retry-After`` header of a 429 admission rejection), or
        ``None`` when the response carried no such hint.
    """

    def __init__(
        self,
        message: str,
        status: "int | None" = None,
        retry_after: "float | None" = None,
    ):
        self.status = status
        self.retry_after = retry_after
        super().__init__(message)


class JobCancelledError(ReproError):
    """An estimation job was cancelled while it was running.

    Raised from inside the job's progress hooks by the
    :mod:`repro.service` worker pool to unwind the estimation loop; it
    never escapes the service (the job transitions to ``cancelled``).
    """


class WorkerError(ReproError):
    """A parallel worker task failed (possibly after exhausting retries).

    Raised by the :mod:`repro.estimation.parallel` scheduler both inside
    worker processes (wrapping the task's original exception so it is
    always picklable across the process boundary) and in the parent when
    a task has no attempts left.

    Attributes
    ----------
    index:
        0-based task index within the ``run_many``/``hyper_sample_many``
        batch, or ``None`` when not tied to one task.
    attempt:
        0-based attempt number that failed, or ``None``.
    cause_type:
        Class name of the original exception (``"FitError"``,
        ``"MemoryError"``, ...), or ``None`` when unknown.
    """

    def __init__(
        self,
        message: str,
        index: "int | None" = None,
        attempt: "int | None" = None,
        cause_type: "str | None" = None,
    ):
        self.index = index
        self.attempt = attempt
        self.cause_type = cause_type
        super().__init__(message)

    def __reduce__(self):
        # Exceptions cross the ProcessPoolExecutor boundary by pickle;
        # the default reduction loses keyword attributes.
        return (
            type(self),
            (self.args[0], self.index, self.attempt, self.cause_type),
        )


class TaskTimeoutError(WorkerError):
    """A parallel worker task exceeded its per-task timeout.

    The scheduler kills and rebuilds the worker pool when a task hangs;
    this error surfaces only once the task has also exhausted its
    retries.  ``cause_type`` is always ``"timeout"``.
    """

"""Adaptive estimation controller: ``method="auto"`` behind the API.

The paper fixes the sampling schedule at n = 30, m = 10 and always fits
the generalized Weibull to block maxima.  Both choices are population-
dependent: block-maxima MLE consistency depends on the block size
resolving the tail, and threshold methods (POT/GPD) use every extreme
observation instead of one per block.  This module adds the per-circuit
controller ROADMAP item 4 calls for:

1. **Pilot** (seed-deterministic): :class:`~repro.estimation.tuner.
   BlockSizeTuner` measures the hyper-sample relative spread at a few
   candidate block sizes and picks the n with the lowest predicted
   total cost; the pilot's Weibull-fit fallback rate at that n decides
   whether m needs growing.
2. **Family cross-validation**: on fresh pilot folds, both families
   predict the *median block maximum* of held-out blocks — the Weibull
   route from an MLE fit of the training block maxima, the POT route
   from a GPD fit of the training exceedances (``F(x)^n = 1/2`` solved
   through the fitted tail) — and the family with the lower mean
   relative prediction error wins.
3. **Handoff**: the chosen engine runs the paper's Figure-4 loop with
   the remaining hyper-sample budget; the pilot's cost is charged to
   the result's ``units_used`` and the whole decision is recorded on
   the result (:class:`~repro.estimation.result.AdaptiveDecision`), in
   trace events, spans, and metrics.

Seed contract
-------------
The controller consumes a single RNG stream: pilot, cross-validation,
and the production engine draw from the same generator in a fixed
order, and nothing else (progress callbacks, tracing, metrics) touches
it.  ``method="auto"`` under a fixed seed is therefore bit-identical
across runs, worker counts, checkpoint-resume, and service replicas —
exactly the guarantee the fixed-method path already made.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigError, FitError
from ..evt.block_maxima import DEFAULT_NUM_SAMPLES
from ..evt.gpd import fit_gpd
from ..evt.mle import fit_weibull_mle
from ..obs.metrics import get_registry
from ..obs.spans import get_span_recorder
from ..obs.trace import get_tracer
from ..vectors.generators import RngLike, as_rng
from ..vectors.population import PowerPopulation
from .mc_estimator import MaxPowerEstimator
from .pot import DEFAULT_POT_THRESHOLD_QUANTILE, PeaksOverThresholdEstimator
from .result import AdaptiveDecision, EstimationResult
from .tuner import BlockSizeTuner

__all__ = ["AdaptiveMaxPowerEstimator", "build_estimator"]

_METRICS = get_registry()
_TRACER = get_tracer()
_SPANS = get_span_recorder()
_PILOT_UNITS = _METRICS.counter("adaptive_pilot_units_total")
_CHOSEN_N_HIST = _METRICS.histogram(
    "adaptive_chosen_n", buckets=(10.0, 30.0, 60.0, 100.0, 200.0)
)

#: Pilot Weibull-fallback fraction above which m is doubled: when a
#: quarter of pilot fits at the chosen n degenerate to the sample
#: maximum, the MLE needs more block maxima per hyper-sample.
_FALLBACK_M_THRESHOLD = 0.25


class AdaptiveMaxPowerEstimator:
    """Per-circuit controller behind ``EstimatorConfig(method="auto")``.

    Parameters
    ----------
    population:
        Power population to estimate over.
    error, confidence, min_hyper_samples, max_hyper_samples,
    finite_correction, upper_bound:
        The production-run targets, exactly as
        :class:`~repro.estimation.mc_estimator.MaxPowerEstimator` takes
        them; ``max_hyper_samples`` is the *total* budget — the pilot's
        unit cost is converted to hyper-sample equivalents and deducted
        from the handoff engine's budget.
    candidates:
        Block sizes the pilot measures (30 is always included).
    pilot_hyper_samples:
        Pilot hyper-samples per candidate block size.
    pilot_m:
        Blocks per pilot hyper-sample (smaller than production m — the
        pilot buys variance estimates, not final estimates).
    cv_folds, cv_holdout_blocks:
        Cross-validation shape: per fold, one training draw (production
        m blocks of the chosen n) plus this many held-out blocks.
    pot_threshold_quantile, pot_batch_size:
        Overrides for the POT engine if it wins the cross-validation
        (defaults: top 10 % exceedances, n·m units per round).
    """

    def __init__(
        self,
        population: PowerPopulation,
        error: float = 0.05,
        confidence: float = 0.90,
        min_hyper_samples: int = 2,
        max_hyper_samples: int = 200,
        finite_correction: Optional[bool] = None,
        upper_bound: Optional[float] = None,
        candidates: Sequence[int] = (10, 30, 60),
        pilot_hyper_samples: int = 4,
        pilot_m: int = 5,
        cv_folds: int = 3,
        cv_holdout_blocks: int = 4,
        pot_threshold_quantile: Optional[float] = None,
        pot_batch_size: Optional[int] = None,
    ):
        if pilot_m < 3:
            raise ConfigError("pilot_m must be >= 3 (the MLE needs maxima)")
        if cv_folds < 1:
            raise ConfigError("cv_folds must be >= 1")
        if cv_holdout_blocks < 2:
            raise ConfigError("cv_holdout_blocks must be >= 2")
        self.population = population
        self.error = error
        self.confidence = confidence
        self.min_hyper_samples = min_hyper_samples
        self.max_hyper_samples = max_hyper_samples
        self.finite_correction = finite_correction
        self.upper_bound = upper_bound
        self.candidates = tuple(candidates)
        self.pilot_hyper_samples = pilot_hyper_samples
        self.pilot_m = pilot_m
        self.cv_folds = cv_folds
        self.cv_holdout_blocks = cv_holdout_blocks
        self.pot_threshold_quantile = pot_threshold_quantile
        self.pot_batch_size = pot_batch_size
        # The tuner validates candidates/pilot size and the remaining
        # statistical knobs at construction, same as the engines do.
        self._tuner = BlockSizeTuner(
            population,
            candidates=self.candidates,
            pilot_hyper_samples=self.pilot_hyper_samples,
            m=self.pilot_m,
            error=error,
            confidence=confidence,
        )

    @classmethod
    def from_config(
        cls, population: PowerPopulation, config
    ) -> "AdaptiveMaxPowerEstimator":
        """Build the controller from a :class:`repro.api.EstimatorConfig`
        (duck-typed, like the other estimators' ``from_config``)."""
        return cls(
            population,
            error=config.error,
            confidence=config.confidence,
            min_hyper_samples=config.min_hyper_samples,
            max_hyper_samples=config.max_hyper_samples,
            finite_correction=config.finite_correction,
            upper_bound=config.upper_bound,
            pot_threshold_quantile=config.pot_threshold_quantile,
            pot_batch_size=config.pot_batch_size,
        )

    # ------------------------------------------------------------------
    # Cross-validation predictors.  Both families predict the *median*
    # of a size-n block maximum from the same training draw, so the
    # comparison is a pure modelling contest at equal data.
    # ------------------------------------------------------------------
    @staticmethod
    def _weibull_predict(train_maxima: np.ndarray) -> float:
        try:
            fit = fit_weibull_mle(train_maxima)
            return float(fit.distribution.ppf(0.5))
        except FitError:
            return float(np.median(train_maxima))

    def _pot_predict(self, raw: np.ndarray, n: int) -> float:
        quantile = (
            self.pot_threshold_quantile
            if self.pot_threshold_quantile is not None
            else DEFAULT_POT_THRESHOLD_QUANTILE
        )
        # Median block maximum: F(x)^n = 1/2, i.e. sf(x) = 1 - 2^(-1/n).
        target_sf = 1.0 - 0.5 ** (1.0 / n)
        tail_frac = 1.0 - quantile
        empirical = float(np.quantile(raw, 0.5 ** (1.0 / n)))
        if target_sf >= tail_frac:
            # The median sits below the threshold: the GPD says nothing
            # about it; use the empirical quantile.
            return empirical
        threshold = float(np.quantile(raw, quantile))
        exceedances = raw[raw > threshold] - threshold
        try:
            gpd = fit_gpd(exceedances)
        except FitError:
            return empirical
        return threshold + float(gpd.ppf(1.0 - target_sf / tail_frac))

    def _cross_validate(
        self, n: int, m: int, gen: np.random.Generator
    ) -> tuple:
        """Score both families on held-out blocks; returns
        ``(score_weibull, score_pot, units_used)``."""
        holdout = self.cv_holdout_blocks
        err_weibull, err_pot, units = 0.0, 0.0, 0
        for _ in range(self.cv_folds):
            raw = self.population.sample_powers(n * m, gen)
            observed = self.population.sample_powers(n * holdout, gen)
            units += n * m + n * holdout
            train_maxima = raw.reshape(m, n).max(axis=1)
            observed_maxima = observed.reshape(holdout, n).max(axis=1)
            center = float(observed_maxima.mean())
            if center <= 0:
                raise ConfigError("population yields non-positive maxima")
            pred_w = self._weibull_predict(train_maxima)
            pred_p = self._pot_predict(raw, n)
            err_weibull += float(
                np.mean(np.abs(pred_w - observed_maxima))
            ) / center
            err_pot += float(np.mean(np.abs(pred_p - observed_maxima))) / center
        folds = float(self.cv_folds)
        return err_weibull / folds, err_pot / folds, units

    # ------------------------------------------------------------------
    def decide(self, rng: RngLike = None) -> tuple:
        """Run pilot + cross-validation; returns
        ``(decision, engine, overhead_units)`` without executing the
        production run (:meth:`run` composes this with the handoff)."""
        gen = as_rng(rng)
        with _SPANS.span(
            "adaptive.pilot", population=self.population.name
        ) as span:
            report = self._tuner.run(gen)
            chosen_n = report.recommended_n
            pilot = next(p for p in report.pilots if p.n == chosen_n)
            chosen_m = (
                2 * DEFAULT_NUM_SAMPLES
                if pilot.fallback_rate > _FALLBACK_M_THRESHOLD
                else DEFAULT_NUM_SAMPLES
            )
            span.set(
                chosen_n=chosen_n,
                chosen_m=chosen_m,
                pilot_units=report.pilot_units_used,
                fallback_rate=pilot.fallback_rate,
            )
        with _SPANS.span("adaptive.cv", n=chosen_n) as span:
            score_weibull, score_pot, cv_units = self._cross_validate(
                chosen_n, chosen_m, gen
            )
            family = "pot" if score_pot < score_weibull else "weibull"
            span.set(
                family=family,
                cv_score_weibull=score_weibull,
                cv_score_pot=score_pot,
                cv_units=cv_units,
            )
        overhead = report.pilot_units_used + cv_units
        decision = AdaptiveDecision(
            chosen_n=chosen_n,
            chosen_m=chosen_m,
            family=family,
            cv_score_weibull=score_weibull,
            cv_score_pot=score_pot,
            pilot_units=overhead,
            candidate_ns=[p.n for p in report.pilots],
            pilot_fallback_rate=pilot.fallback_rate,
        )
        # Charge the pilot against the production budget in
        # hyper-sample equivalents so the *total* unit spend respects
        # max_hyper_samples; never starve the engine below its minimum.
        spent = math.ceil(overhead / (chosen_n * chosen_m))
        remaining = max(self.min_hyper_samples, self.max_hyper_samples - spent)
        if family == "pot":
            engine = PeaksOverThresholdEstimator(
                self.population,
                batch_size=(
                    self.pot_batch_size
                    if self.pot_batch_size is not None
                    else chosen_n * chosen_m
                ),
                threshold_quantile=(
                    self.pot_threshold_quantile
                    if self.pot_threshold_quantile is not None
                    else DEFAULT_POT_THRESHOLD_QUANTILE
                ),
                error=self.error,
                confidence=self.confidence,
                min_hyper_samples=self.min_hyper_samples,
                max_hyper_samples=remaining,
                finite_correction=self.finite_correction,
            )
        else:
            engine = MaxPowerEstimator(
                self.population,
                n=chosen_n,
                m=chosen_m,
                error=self.error,
                confidence=self.confidence,
                min_hyper_samples=self.min_hyper_samples,
                max_hyper_samples=remaining,
                finite_correction=self.finite_correction,
                upper_bound=self.upper_bound,
            )
        return decision, engine, overhead

    # ------------------------------------------------------------------
    def run(self, rng: RngLike = None, progress=None) -> EstimationResult:
        """Pilot, decide, and hand off to the chosen engine.

        Follows the :meth:`MaxPowerEstimator.run` contract: ``progress``
        fires once per production hyper-sample (never during the pilot,
        whose cost is bounded), may cancel by raising, and does not
        participate in the RNG stream.
        """
        gen = as_rng(rng)
        decision, engine, overhead = self.decide(gen)
        _METRICS.counter("adaptive_runs_total", family=decision.family).inc()
        _PILOT_UNITS.inc(overhead)
        _CHOSEN_N_HIST.observe(decision.chosen_n)
        if _TRACER.enabled:
            _TRACER.emit(
                "adaptive_decision",
                population=self.population.name,
                **decision.to_dict(),
            )
        result = engine.run(rng=gen, progress=progress)
        result.method = "auto"
        result.decision = decision
        result.units_used += overhead
        return result


def build_estimator(population: PowerPopulation, config):
    """The estimator factory behind ``EstimatorConfig.method``.

    One switch replaces the four historical entry points (direct
    ``MaxPowerEstimator`` construction, the tuner, the POT estimator,
    ad-hoc experiment code): ``"fixed"`` → the paper's block-maxima
    estimator with the config's n/m, ``"pot"`` → peaks-over-threshold,
    ``"auto"`` → this module's adaptive controller.  Every returned
    engine satisfies the same contract — ``run(rng, progress=None)``
    returning an :class:`~repro.estimation.result.EstimationResult`,
    picklable for the parallel drivers, bit-deterministic in the rng.
    """
    method = getattr(config, "method", "fixed")
    if method == "fixed":
        return MaxPowerEstimator.from_config(population, config)
    if method == "pot":
        return PeaksOverThresholdEstimator.from_config(population, config)
    if method == "auto":
        return AdaptiveMaxPowerEstimator.from_config(population, config)
    raise ConfigError(
        f"unknown method {method!r}: expected 'fixed', 'auto', or 'pot'"
    )

"""Parallel drivers for repeated estimation runs.

The paper's experiments (Tables 1-4, Figure 2) repeat the whole
iterative estimator — or single hyper-samples — 100 times per circuit.
Each repetition is independent, so the loop shards across processes.

Stream-splitting contract
-------------------------
Run *i* of ``num_runs`` always draws from
``np.random.default_rng(np.random.SeedSequence(base_seed).spawn(num_runs)[i])``.
The child seed sequences depend only on ``(base_seed, num_runs)``, never
on the worker count or scheduling order, and results are gathered by
index — so a serial run (``workers=1``) and a parallel run with the same
``base_seed`` produce *bit-for-bit identical* estimates.

Worker processes receive the estimator once via the pool initializer
(not once per task), so the population arrays are pickled exactly once
per worker.  This requires the estimator — in particular its population
— to be picklable: :class:`~repro.vectors.population.FinitePopulation`
always is; a :class:`~repro.vectors.population.StreamingPopulation`
built from module-level callables is, but one closed over local lambdas
is not (use ``workers=1`` there).

Observability contract
----------------------
When the parent's :mod:`repro.obs` metrics registry is enabled, each
worker enables its own registry (reset in the pool initializer so a
forked child never re-counts inherited parent values), every task ships
back a snapshot of exactly its own activity, and the parent merges the
snapshots — counters and histograms recorded inside ``run_many`` /
``hyper_sample_many`` therefore aggregate identically for any worker
count.  Trace recording is parent-process only; the initializer closes
any inherited sink.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Sequence, Union

import numpy as np

from ..errors import ConfigError
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .mc_estimator import MaxPowerEstimator
from .result import EstimationResult, HyperSample

__all__ = ["spawn_run_seeds", "run_many", "hyper_sample_many"]

SeedLike = Union[int, Sequence[int], np.random.SeedSequence]

# Per-process slot for the estimator shipped by the pool initializer.
_WORKER_ESTIMATOR: MaxPowerEstimator = None


def spawn_run_seeds(
    base_seed: SeedLike, num_runs: int
) -> List[np.random.SeedSequence]:
    """Child seed sequences for ``num_runs`` independent repetitions.

    ``base_seed`` may be an int, a sequence of ints, or an existing
    :class:`numpy.random.SeedSequence`.
    """
    if num_runs < 1:
        raise ConfigError("num_runs must be >= 1")
    if isinstance(base_seed, np.random.SeedSequence):
        root = base_seed
    else:
        root = np.random.SeedSequence(base_seed)
    return root.spawn(num_runs)


def _init_worker(estimator: MaxPowerEstimator, obs_enabled: bool = False) -> None:
    global _WORKER_ESTIMATOR
    _WORKER_ESTIMATOR = estimator
    # A forked child inherits the parent's registry *values* and an open
    # trace sink.  Reset the former (so per-task snapshots contain only
    # this worker's activity and merging never double counts) and close
    # the latter (two processes appending to one JSONL would interleave;
    # traces are parent-only, metrics are the cross-process signal).
    registry = get_registry()
    registry.reset()
    if obs_enabled:
        registry.enable()
    else:
        registry.disable()
    get_tracer().close()


def _task_snapshot():
    """Metrics recorded by the task that just ran (None when disabled).

    ``reset=True`` keeps worker-side metrics task-scoped: every snapshot
    shipped back is a disjoint delta, so the parent-side merge is exact
    regardless of how tasks were chunked onto workers.
    """
    registry = get_registry()
    return registry.snapshot(reset=True) if registry.enabled else None


def _run_one(seed_seq: np.random.SeedSequence):
    result = _WORKER_ESTIMATOR.run(np.random.default_rng(seed_seq))
    return result, _task_snapshot()


def _hyper_one(item):
    index, seed_seq = item
    result = _WORKER_ESTIMATOR.hyper_sample(
        index, np.random.default_rng(seed_seq)
    )
    return result, _task_snapshot()


def _gather(pool_output, registry) -> list:
    """Unzip (result, snapshot) task outputs, merging worker metrics."""
    results = []
    for result, snapshot in pool_output:
        if snapshot is not None:
            registry.merge(snapshot)
        results.append(result)
    return results


def _check_workers(workers: int) -> None:
    if workers < 1:
        raise ConfigError("workers must be >= 1")


def run_many(
    estimator: MaxPowerEstimator,
    num_runs: int,
    base_seed: SeedLike = 0,
    workers: int = 1,
) -> List[EstimationResult]:
    """Repeat ``estimator.run`` ``num_runs`` times, optionally sharded
    across ``workers`` processes.

    Results come back ordered by run index and are identical for any
    ``workers`` value (see the module docstring for the seed contract).
    """
    _check_workers(workers)
    seeds = spawn_run_seeds(base_seed, num_runs)
    if workers == 1:
        return [estimator.run(np.random.default_rng(s)) for s in seeds]
    registry = get_registry()
    with ProcessPoolExecutor(
        max_workers=min(workers, num_runs),
        initializer=_init_worker,
        initargs=(estimator, registry.enabled),
    ) as pool:
        chunk = max(1, num_runs // (workers * 4))
        return _gather(pool.map(_run_one, seeds, chunksize=chunk), registry)


def hyper_sample_many(
    estimator: MaxPowerEstimator,
    count: int,
    base_seed: SeedLike = 0,
    workers: int = 1,
) -> List[HyperSample]:
    """Draw ``count`` independent hyper-samples (Figure 2 style),
    optionally sharded across ``workers`` processes.

    Hyper-sample *i* (1-based index) uses the *i*-th spawned child
    stream; results are ordered and workers-independent, exactly as in
    :func:`run_many`.
    """
    _check_workers(workers)
    seeds = spawn_run_seeds(base_seed, count)
    items = list(zip(range(1, count + 1), seeds))
    if workers == 1:
        return [
            estimator.hyper_sample(i, np.random.default_rng(s))
            for i, s in items
        ]
    registry = get_registry()
    with ProcessPoolExecutor(
        max_workers=min(workers, count),
        initializer=_init_worker,
        initargs=(estimator, registry.enabled),
    ) as pool:
        chunk = max(1, count // (workers * 4))
        return _gather(pool.map(_hyper_one, items, chunksize=chunk), registry)

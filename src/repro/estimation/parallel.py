"""Parallel drivers for repeated estimation runs.

The paper's experiments (Tables 1-4, Figure 2) repeat the whole
iterative estimator — or single hyper-samples — 100 times per circuit.
Each repetition is independent, so the loop shards across processes.

Stream-splitting contract
-------------------------
Run *i* of ``num_runs`` always draws from
``np.random.default_rng(np.random.SeedSequence(base_seed).spawn(num_runs)[i])``.
The child seed sequences depend only on ``(base_seed, num_runs)``, never
on the worker count, scheduling order, retries, or resumes: a retried
task re-submits the *same* spawned ``SeedSequence`` and rebuilds its
generator from scratch, so a serial run (``workers=1``), a parallel run,
a run that crashed and retried, and a checkpoint-resumed run all produce
*bit-for-bit identical* estimates for the same ``base_seed``.

Worker processes receive the estimator once via the pool initializer
(not once per task), so the population arrays are pickled exactly once
per worker.  This requires the estimator — in particular its population
— to be picklable: :class:`~repro.vectors.population.FinitePopulation`
always is; a :class:`~repro.vectors.population.StreamingPopulation`
built from module-level callables is, but one closed over local lambdas
is not (use ``workers=1`` there).

Fault tolerance
---------------
Tasks are scheduled one future at a time (a submission window of
``workers`` keeps the per-task timeout clock honest), which makes four
failure modes recoverable:

* **Worker exceptions** — a task that raises is retried up to
  ``retries`` times with exponential backoff
  (``backoff * 2**attempt``, capped at 5 s); exhausted retries raise
  :class:`~repro.errors.WorkerError` with the task index and cause.
* **Hangs** — with ``task_timeout`` set, a task that exceeds it has its
  whole pool killed and rebuilt (a hung worker cannot be cancelled);
  the hung task consumes a retry, innocent in-flight tasks are
  re-submitted at their current attempt.  Exhausted retries raise
  :class:`~repro.errors.TaskTimeoutError`.  Timeouts are not enforced
  on the ``workers=1`` in-process path.
* **Broken pools** — ``BrokenProcessPool`` (a worker died hard) causes
  a pool rebuild with every incomplete task re-submitted, no retry
  consumed (the victim cannot be attributed).
* **Repeated pool failures** — after ``MAX_POOL_REBUILDS`` broken-pool
  recoveries the driver degrades gracefully to in-process serial
  execution of the remaining tasks (retries still honored, timeouts
  unenforceable; the retry budget restarts for the remaining tasks).

Checkpointing (``checkpoint=<path>``) streams every completed result to
a JSONL file the moment it finishes; ``resume=True`` loads completed
task indices back (validated against the seed contract) and only runs
the rest.  See :mod:`repro.estimation.checkpoint` for the file format.

Observability contract
----------------------
When the parent's :mod:`repro.obs` metrics registry is enabled, each
worker enables its own registry (reset in the pool initializer so a
forked child never re-counts inherited parent values), every task ships
back a snapshot of exactly its own activity, and the parent merges the
snapshots.  A failed attempt's partial metrics are discarded — in the
worker before the error crosses the process boundary, and on the
in-process path by attempt-scoped snapshotting — so counters recorded
inside ``run_many`` / ``hyper_sample_many`` aggregate identically for
any worker count *and any retry history*.  The scheduler itself records
``parallel_retries_total``, ``parallel_task_timeouts_total``,
``parallel_pool_rebuilds_total``, ``parallel_serial_degradations_total``
and ``checkpoint_results_total`` (documented in ``docs/robustness.md``).
Trace recording is parent-process only; the initializer closes any
inherited sink.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigError, TaskTimeoutError, WorkerError
from ..obs.metrics import get_registry
from ..obs.spans import get_span_recorder
from ..obs.trace import get_tracer
from .checkpoint import open_checkpoint
from .mc_estimator import MaxPowerEstimator
from .result import EstimationResult, HyperSample

__all__ = [
    "spawn_run_seeds",
    "run_many",
    "hyper_sample_many",
    "current_task",
    "TaskContext",
    "DEFAULT_BACKOFF",
    "MAX_POOL_REBUILDS",
]

SeedLike = Union[int, Sequence[int], np.random.SeedSequence]

#: First-retry backoff delay in seconds (doubles per attempt, capped).
DEFAULT_BACKOFF = 0.05

#: Exponential-backoff ceiling in seconds.
_BACKOFF_CAP_S = 5.0

#: Broken-pool recoveries tolerated before degrading to serial execution.
MAX_POOL_REBUILDS = 3

# Per-process slot for the estimator shipped by the pool initializer.
_WORKER_ESTIMATOR: Optional[MaxPowerEstimator] = None


@dataclass(frozen=True)
class TaskContext:
    """Identity of the task currently executing in this process.

    Exposed via :func:`current_task` so instrumentation (and the test
    suite's fault injectors) can tell *which* repetition and attempt an
    ``estimator.run`` call belongs to, on both the worker and the
    in-process execution paths.
    """

    index: int  #: 0-based task index within the batch.
    attempt: int  #: 0-based attempt number (0 = first try).


_CURRENT_TASK: Optional[TaskContext] = None


def current_task() -> Optional[TaskContext]:
    """The :class:`TaskContext` being executed, or ``None`` outside one."""
    return _CURRENT_TASK


def _set_task(index: int, attempt: int) -> None:
    global _CURRENT_TASK
    _CURRENT_TASK = TaskContext(index=index, attempt=attempt)


def _clear_task() -> None:
    global _CURRENT_TASK
    _CURRENT_TASK = None


def spawn_run_seeds(
    base_seed: SeedLike, num_runs: int
) -> List[np.random.SeedSequence]:
    """Child seed sequences for ``num_runs`` independent repetitions.

    ``base_seed`` may be an int, a sequence of ints, or an existing
    :class:`numpy.random.SeedSequence`.
    """
    if num_runs < 1:
        raise ConfigError("num_runs must be >= 1")
    if isinstance(base_seed, np.random.SeedSequence):
        root = base_seed
    else:
        root = np.random.SeedSequence(base_seed)
    return root.spawn(num_runs)


def _seed_key(base_seed: SeedLike, num_runs: int) -> str:
    """Stable identity of the spawned stream family, for checkpoints."""
    if isinstance(base_seed, np.random.SeedSequence):
        root = base_seed
    else:
        root = np.random.SeedSequence(base_seed)
    return f"entropy={root.entropy};spawn_key={root.spawn_key};n={num_runs}"


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

def _init_worker(
    estimator: MaxPowerEstimator,
    obs_enabled: bool = False,
    spans_enabled: bool = False,
    span_context=None,
) -> None:
    global _WORKER_ESTIMATOR
    # Unpickling the estimator here rebuilds its BitParallelSimulator,
    # which (on the default kernel) compiles the circuit's struct-of-
    # arrays plan exactly once per worker process; every task dispatched
    # to this process then reuses that plan through the circuit's memo
    # cache instead of re-freezing the netlist per task.
    _WORKER_ESTIMATOR = estimator
    # A forked child inherits the parent's registry *values* and an open
    # trace sink.  Reset the former (so per-task snapshots contain only
    # this worker's activity and merging never double counts) and close
    # the latter (two processes appending to one JSONL would interleave;
    # traces are parent-only, metrics are the cross-process signal).
    registry = get_registry()
    registry.reset()
    if obs_enabled:
        registry.enable()
    else:
        registry.disable()
    # Spans follow the same snapshot/merge route as metrics; the parent's
    # ambient span context (e.g. the service's job.run span) is
    # re-attached here so worker-side spans graft onto the same tree.
    spans = get_span_recorder()
    spans.reset()
    if spans_enabled:
        spans.enable()
    else:
        spans.disable()
    spans.attach(span_context)
    get_tracer().close()
    # Simulation-side process state: a forked child inherits the
    # parent's batcher (whose condition variable may belong to a thread
    # that doesn't exist here) and the native tier's loaded backend.
    # The backend (a read-only shared library handle / jitted function)
    # survives fork fine, but the batcher must be rebuilt; its module
    # registers an at-fork hook, and this explicit reset also covers
    # spawn-style pools resuming from a pickled estimator.
    from ..sim.batch import reset_batcher

    reset_batcher()


def _require_estimator() -> MaxPowerEstimator:
    if _WORKER_ESTIMATOR is None:
        raise WorkerError(
            "worker estimator slot was never initialized — the pool "
            "initializer did not run in this process"
        )
    return _WORKER_ESTIMATOR


def _task_snapshot():
    """Observability recorded by the task that just ran (None when off).

    ``reset=True`` keeps worker-side metrics and spans task-scoped:
    every snapshot shipped back is a disjoint delta, so the parent-side
    merge is exact regardless of which worker ran which task.  The
    payload is ``{"metrics": <registry snapshot or None>,
    "spans": <span records or None>}``.
    """
    registry = get_registry()
    spans = get_span_recorder()
    metrics = registry.snapshot(reset=True) if registry.enabled else None
    span_records = spans.snapshot(reset=True) if spans.enabled else None
    if metrics is None and span_records is None:
        return None
    return {"metrics": metrics, "spans": span_records}


def _merge_task_snapshot(registry, snapshot) -> None:
    """Fold one shipped task snapshot into the parent-side registry and
    span recorder (no-op for ``None``)."""
    if not snapshot:
        return
    if snapshot.get("metrics"):
        registry.merge(snapshot["metrics"])
    if snapshot.get("spans"):
        get_span_recorder().merge(snapshot["spans"])


def _guarded(index: int, attempt: int, call: Callable[[], object]):
    """Run one attempt in a worker: scope its metrics, wrap its errors.

    A failed attempt's partial metrics are discarded here (the retry
    will re-record them), and the original exception is re-raised as a
    picklable :class:`~repro.errors.WorkerError` so it always survives
    the trip back through the pool.
    """
    _set_task(index, attempt)
    try:
        result = call()
    except WorkerError:
        _clear_task()
        _task_snapshot()  # discard the failed attempt's partial metrics
        raise
    except Exception as exc:
        _clear_task()
        _task_snapshot()
        raise WorkerError(
            f"task {index} attempt {attempt}: {type(exc).__name__}: {exc}",
            index=index,
            attempt=attempt,
            cause_type=type(exc).__name__,
        ) from None
    _clear_task()
    return result, _task_snapshot()


def _run_task(task):
    index, attempt, seed_seq = task
    return _guarded(
        index,
        attempt,
        lambda: _require_estimator().run(np.random.default_rng(seed_seq)),
    )


def _hyper_task(task):
    index, attempt, payload = task
    hyper_index, seed_seq = payload
    return _guarded(
        index,
        attempt,
        lambda: _require_estimator().hyper_sample(
            hyper_index, np.random.default_rng(seed_seq)
        ),
    )


# ----------------------------------------------------------------------
# Parent-process scheduler
# ----------------------------------------------------------------------

def _backoff_delay(backoff: float, attempt: int) -> float:
    return min(backoff * (2.0 ** attempt), _BACKOFF_CAP_S) if backoff > 0 else 0.0


def _handle_failure(
    kind: str,
    index: int,
    attempt: int,
    retries: int,
    backoff: float,
    registry,
    exc: Optional[BaseException] = None,
    timeout: Optional[float] = None,
) -> None:
    """Account one failed attempt; sleep the backoff; raise if exhausted."""
    timed_out = timeout is not None
    if timed_out:
        registry.counter("parallel_task_timeouts_total", kind=kind).inc()
    if attempt >= retries:
        if timed_out:
            raise TaskTimeoutError(
                f"{kind} task {index} exceeded the {timeout:g}s task timeout "
                f"on every one of its {attempt + 1} attempt(s)",
                index=index,
                attempt=attempt,
                cause_type="timeout",
            )
        raise WorkerError(
            f"{kind} task {index} failed after {attempt + 1} attempt(s): {exc}",
            index=index,
            attempt=attempt,
            cause_type=getattr(exc, "cause_type", None) or type(exc).__name__,
        ) from exc
    cause = "timeout" if timed_out else "error"
    registry.counter("parallel_retries_total", kind=kind, cause=cause).inc()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(
            "task_retry",
            kind=kind,
            index=index,
            attempt=attempt,
            cause=cause,
            detail=f"timeout {timeout:g}s" if timed_out else str(exc),
        )
    delay = _backoff_delay(backoff, attempt)
    if delay:
        time.sleep(delay)


def _scoped_attempt(registry, fn: Callable[[], object]):
    """In-process analogue of the worker-side observability scoping.

    Snapshots the registry around one attempt so that, on failure, only
    the attempt's own partial metrics are discarded — totals stay exact
    across retries on the serial path too.  Spans recorded by a failed
    attempt are dropped by high-water mark instead of snapshot/restore,
    scoped to the ambient trace so concurrent jobs in other service
    worker threads are never disturbed.
    """
    spans = get_span_recorder()
    marker = spans.marker() if spans.enabled else None
    if not registry.enabled and marker is None:
        return fn()
    baseline = registry.snapshot(reset=True) if registry.enabled else None
    try:
        result = fn()
    except Exception:
        if baseline is not None:
            registry.snapshot(reset=True)  # discard the failed attempt
            registry.merge(baseline)
        if marker is not None:
            ctx = spans.current_context()
            spans.discard_after(marker, ctx.trace_id if ctx else None)
        raise
    if baseline is not None:
        delta = registry.snapshot(reset=True)
        registry.merge(baseline)
        registry.merge(delta)
    return result


def _run_serial(
    local_fn: Callable[[object], object],
    items: Sequence[Tuple[int, object]],
    *,
    kind: str,
    retries: int,
    backoff: float,
    registry,
    on_result: Callable[[int, object], None],
) -> None:
    """In-process execution with the same retry semantics as the pool."""
    for index, payload in items:
        attempt = 0
        while True:
            _set_task(index, attempt)
            try:
                result = _scoped_attempt(registry, lambda: local_fn(payload))
                break
            except Exception as exc:
                _handle_failure(
                    kind, index, attempt, retries, backoff, registry, exc=exc
                )
                attempt += 1
            finally:
                _clear_task()
        on_result(index, result)


def _run_pool(
    worker_fn,
    estimator: MaxPowerEstimator,
    items: Sequence[Tuple[int, object]],
    workers: int,
    *,
    kind: str,
    retries: int,
    task_timeout: Optional[float],
    backoff: float,
    registry,
    on_result: Callable[[int, object], None],
) -> List[Tuple[int, object]]:
    """Future-per-task scheduler with retries, timeouts and pool recovery.

    Returns the tasks left unfinished when degrading to serial execution
    (empty on normal completion).
    """
    tracer = get_tracer()
    pending = deque((index, 0, payload) for index, payload in items)
    inflight: Dict[Future, Tuple[int, int, object, Optional[float]]] = {}
    window = min(workers, len(items))
    rebuilds = 0
    pool: Optional[ProcessPoolExecutor] = None

    def build() -> ProcessPoolExecutor:
        # The span recorder's enablement and the ambient context (e.g.
        # the service's job.run span) captured here carry the trace
        # across the process boundary, including every rebuilt pool.
        spans = get_span_recorder()
        return ProcessPoolExecutor(
            max_workers=window,
            initializer=_init_worker,
            initargs=(
                estimator,
                registry.enabled,
                spans.enabled,
                spans.current_context(),
            ),
        )

    def recycle(kill: bool, cause: str) -> None:
        nonlocal pool
        for index, attempt, payload, _deadline in inflight.values():
            pending.appendleft((index, attempt, payload))
        inflight.clear()
        if pool is not None:
            if kill:
                # A hung worker never returns; terminate the processes
                # before shutdown so the rebuild does not wait on them.
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None
        registry.counter(
            "parallel_pool_rebuilds_total", kind=kind, cause=cause
        ).inc()
        if tracer.enabled:
            tracer.emit("pool_rebuild", kind=kind, cause=cause)

    try:
        pool = build()
        while pending or inflight:
            if pool is None:
                pool = build()
            broken = False
            while pending and len(inflight) < window:
                index, attempt, payload = pending.popleft()
                try:
                    future = pool.submit(worker_fn, (index, attempt, payload))
                except BrokenProcessPool:
                    pending.appendleft((index, attempt, payload))
                    broken = True
                    break
                deadline = (
                    time.monotonic() + task_timeout
                    if task_timeout is not None
                    else None
                )
                inflight[future] = (index, attempt, payload, deadline)
            if not broken and inflight:
                wait_timeout = None
                if task_timeout is not None:
                    now = time.monotonic()
                    wait_timeout = max(
                        0.0,
                        min(d for *_rest, d in inflight.values()) - now,
                    )
                done, _ = wait(
                    set(inflight),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    index, attempt, payload, _deadline = inflight.pop(future)
                    try:
                        result, snapshot = future.result()
                    except BrokenProcessPool:
                        # The victim cannot be attributed: re-submit at
                        # the same attempt, no retry consumed.
                        pending.appendleft((index, attempt, payload))
                        broken = True
                    except Exception as exc:
                        _handle_failure(
                            kind, index, attempt, retries, backoff, registry,
                            exc=exc,
                        )
                        pending.append((index, attempt + 1, payload))
                    else:
                        _merge_task_snapshot(registry, snapshot)
                        on_result(index, result)
            if broken:
                rebuilds += 1
                recycle(kill=False, cause="broken")
                if rebuilds > MAX_POOL_REBUILDS:
                    remaining = [(i, p) for i, _a, p in pending]
                    pending.clear()
                    return remaining
                continue
            if task_timeout is None or not inflight:
                continue
            now = time.monotonic()
            hung = [
                future
                for future, (_i, _a, _p, deadline) in inflight.items()
                if deadline is not None and now >= deadline and not future.done()
            ]
            if not hung:
                continue
            for future in hung:
                index, attempt, payload, _deadline = inflight.pop(future)
                _handle_failure(
                    kind, index, attempt, retries, backoff, registry,
                    timeout=task_timeout,
                )
                pending.append((index, attempt + 1, payload))
            recycle(kill=True, cause="timeout")
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
    return []


def _drive(
    estimator: MaxPowerEstimator,
    items: List[Tuple[int, object]],
    workers: int,
    *,
    kind: str,
    worker_fn,
    local_fn: Callable[[object], object],
    retries: int,
    task_timeout: Optional[float],
    backoff: float,
    checkpoint: Optional[Union[str, Path]],
    resume: bool,
    checkpoint_kind: str,
    seed_key: str,
    from_dict: Callable[[dict], object],
    observer: Optional[Callable[[int, object], None]] = None,
) -> List[object]:
    """Shared fault-tolerant driver behind ``run_many``/``hyper_sample_many``."""
    registry = get_registry()
    tracer = get_tracer()
    total = len(items)
    results: Dict[int, object] = {}
    writer = None
    if checkpoint is not None:
        loaded, writer = open_checkpoint(
            checkpoint,
            kind=checkpoint_kind,
            key=seed_key,
            total=total,
            resume=resume,
            from_dict=from_dict,
        )
        results.update(loaded)
        if loaded:
            registry.counter(
                "checkpoint_results_total", kind=kind, status="loaded"
            ).inc(len(loaded))
        if tracer.enabled:
            tracer.emit(
                "checkpoint",
                kind=kind,
                action="resume" if resume else "start",
                path=str(checkpoint),
                loaded=len(loaded),
                total=total,
            )
        if observer is not None:
            # Checkpoint-loaded results reach the observer too, in index
            # order, so a caller's progress view is complete on resume.
            for index in sorted(loaded):
                observer(index, loaded[index])

    def on_result(index: int, result: object) -> None:
        results[index] = result
        if writer is not None:
            writer.write(index, result)
            registry.counter(
                "checkpoint_results_total", kind=kind, status="written"
            ).inc()
        if observer is not None:
            observer(index, result)

    todo = [(index, payload) for index, payload in items if index not in results]
    try:
        if todo and workers == 1:
            _run_serial(
                local_fn, todo, kind=kind, retries=retries, backoff=backoff,
                registry=registry, on_result=on_result,
            )
        elif todo:
            remaining = _run_pool(
                worker_fn, estimator, todo, workers, kind=kind,
                retries=retries, task_timeout=task_timeout, backoff=backoff,
                registry=registry, on_result=on_result,
            )
            if remaining:
                registry.counter(
                    "parallel_serial_degradations_total", kind=kind
                ).inc()
                if tracer.enabled:
                    tracer.emit(
                        "parallel_degraded", kind=kind, remaining=len(remaining)
                    )
                _run_serial(
                    local_fn, remaining, kind=kind, retries=retries,
                    backoff=backoff, registry=registry, on_result=on_result,
                )
    finally:
        if writer is not None:
            writer.close()
    missing = [index for index, _payload in items if index not in results]
    if missing:
        raise WorkerError(
            f"parallel {kind} gather incomplete: {len(results)}/{total} "
            f"results; missing task indices {missing[:8]}"
        )
    return [results[index] for index, _payload in items]


def _check_workers(workers: int) -> None:
    if workers < 1:
        raise ConfigError("workers must be >= 1")


def _check_fault_options(
    retries: int,
    task_timeout: Optional[float],
    backoff: float,
    checkpoint: Optional[Union[str, Path]],
    resume: bool,
) -> None:
    if retries < 0:
        raise ConfigError("retries must be >= 0")
    if task_timeout is not None and task_timeout <= 0:
        raise ConfigError("task_timeout must be positive (or None)")
    if backoff < 0:
        raise ConfigError("backoff must be >= 0")
    if resume and checkpoint is None:
        raise ConfigError("resume=True requires a checkpoint path")


def run_many(
    estimator: MaxPowerEstimator,
    num_runs: int,
    base_seed: SeedLike = 0,
    workers: int = 1,
    *,
    retries: int = 0,
    task_timeout: Optional[float] = None,
    backoff: float = DEFAULT_BACKOFF,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    on_result: Optional[Callable[[int, EstimationResult], None]] = None,
) -> List[EstimationResult]:
    """Repeat ``estimator.run`` ``num_runs`` times, optionally sharded
    across ``workers`` processes.

    Results come back ordered by run index and are identical for any
    ``workers`` value and any crash/retry/resume history (see the module
    docstring for the seed and fault-tolerance contracts).

    Parameters
    ----------
    retries:
        Extra attempts per task after a worker exception or timeout.
    task_timeout:
        Seconds before an in-flight task is declared hung, its pool
        killed, and the task retried (multi-worker runs only).
    backoff:
        First-retry delay in seconds; doubles per attempt, capped at 5 s.
    checkpoint:
        JSONL path; every completed run streams there immediately.
    resume:
        Load already-checkpointed runs instead of recomputing them.
    on_result:
        ``on_result(index, result)`` fires in the parent process for
        every completed run — including checkpoint-loaded ones on
        resume — in completion (not index) order.  Raising from it
        aborts the batch; the service uses this for live job progress
        and cancellation.  Purely observational: it never touches the
        RNG streams, so results are unchanged by its presence.
    """
    _check_workers(workers)
    _check_fault_options(retries, task_timeout, backoff, checkpoint, resume)
    seeds = spawn_run_seeds(base_seed, num_runs)
    if (
        workers == 1
        and retries == 0
        and task_timeout is None
        and checkpoint is None
        and on_result is None
    ):
        return [estimator.run(np.random.default_rng(s)) for s in seeds]
    return _drive(
        estimator,
        list(enumerate(seeds)),
        workers,
        kind="run",
        worker_fn=_run_task,
        local_fn=lambda seed_seq: estimator.run(np.random.default_rng(seed_seq)),
        retries=retries,
        task_timeout=task_timeout,
        backoff=backoff,
        checkpoint=checkpoint,
        resume=resume,
        checkpoint_kind="run_many",
        seed_key=_seed_key(base_seed, num_runs),
        from_dict=EstimationResult.from_dict,
        observer=on_result,
    )


def hyper_sample_many(
    estimator: MaxPowerEstimator,
    count: int,
    base_seed: SeedLike = 0,
    workers: int = 1,
    *,
    retries: int = 0,
    task_timeout: Optional[float] = None,
    backoff: float = DEFAULT_BACKOFF,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    on_result: Optional[Callable[[int, HyperSample], None]] = None,
) -> List[HyperSample]:
    """Draw ``count`` independent hyper-samples (Figure 2 style),
    optionally sharded across ``workers`` processes.

    Hyper-sample *i* (1-based index) uses the *i*-th spawned child
    stream; results are ordered and independent of the worker count and
    of any crash/retry/resume history, exactly as in :func:`run_many`
    (whose fault-tolerance parameters — and ``on_result`` progress hook
    — apply unchanged here).
    """
    _check_workers(workers)
    _check_fault_options(retries, task_timeout, backoff, checkpoint, resume)
    seeds = spawn_run_seeds(base_seed, count)
    items = [(i, (i + 1, seeds[i])) for i in range(count)]
    if (
        workers == 1
        and retries == 0
        and task_timeout is None
        and checkpoint is None
        and on_result is None
    ):
        return [
            estimator.hyper_sample(hyper_index, np.random.default_rng(seed_seq))
            for _index, (hyper_index, seed_seq) in items
        ]
    return _drive(
        estimator,
        items,
        workers,
        kind="hyper",
        worker_fn=_hyper_task,
        local_fn=lambda payload: estimator.hyper_sample(
            payload[0], np.random.default_rng(payload[1])
        ),
        retries=retries,
        task_timeout=task_timeout,
        backoff=backoff,
        checkpoint=checkpoint,
        resume=resume,
        checkpoint_kind="hyper_sample_many",
        seed_key=_seed_key(base_seed, count),
        from_dict=HyperSample.from_dict,
        observer=on_result,
    )

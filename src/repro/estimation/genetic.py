"""Genetic-search lower-bound baseline (paper reference [8], K2-style).

Hsiao/Rudnick/Patel's K2 searches the vector-pair space with a genetic
algorithm and reports the best power found — a *lower bound* on the
maximum with no confidence statement.  Implemented here as a baseline
for the comparison examples: chromosomes are concatenated ``(v1, v2)``
bit strings, fitness is the simulated cycle power, with tournament
selection, uniform crossover, bit-flip mutation and elitism.  Whole
generations are evaluated in one vectorized simulator call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

import numpy as np

from ..errors import ConfigError
from ..vectors.generators import RngLike, as_rng

__all__ = ["GeneticSearchResult", "GeneticMaxPowerSearch"]

PowerFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class GeneticSearchResult:
    """Outcome of one GA run.

    ``history`` holds the best-so-far power after each generation, so
    convergence plots and the efficiency comparison (units = evaluated
    pairs) come for free.
    """

    best_power: float
    best_v1: np.ndarray
    best_v2: np.ndarray
    units_used: int
    history: List[float] = field(default_factory=list)

    def relative_error(self, actual_max: float) -> float:
        return (self.best_power - actual_max) / actual_max


class GeneticMaxPowerSearch:
    """GA over input vector pairs maximizing simulated cycle power.

    Parameters
    ----------
    power_function:
        Batched fitness: ``(v1_bits, v2_bits) -> powers`` (e.g.
        :meth:`repro.sim.power.PowerAnalyzer.powers_for_pairs`).
    num_inputs:
        Width of each vector.
    population_size, generations:
        GA shape; total unit cost is ``population_size * (generations+1)``.
    mutation_rate:
        Per-bit flip probability.
    crossover_rate:
        Probability a child is produced by uniform crossover (else it is
        a mutated copy of one parent).
    elite:
        Chromosomes copied unchanged into the next generation.
    tournament:
        Tournament size for parent selection.
    """

    def __init__(
        self,
        power_function: PowerFunction,
        num_inputs: int,
        population_size: int = 32,
        generations: int = 30,
        mutation_rate: float = 0.02,
        crossover_rate: float = 0.8,
        elite: int = 2,
        tournament: int = 3,
    ):
        if num_inputs < 1:
            raise ConfigError("num_inputs must be >= 1")
        if population_size < 4:
            raise ConfigError("population_size must be >= 4")
        if generations < 1:
            raise ConfigError("generations must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ConfigError("mutation_rate must be in [0, 1]")
        if not 0.0 <= crossover_rate <= 1.0:
            raise ConfigError("crossover_rate must be in [0, 1]")
        if not 0 <= elite < population_size:
            raise ConfigError("elite must be in [0, population_size)")
        if tournament < 1:
            raise ConfigError("tournament must be >= 1")
        self.power_function = power_function
        self.num_inputs = num_inputs
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.elite = elite
        self.tournament = tournament

    # ------------------------------------------------------------------
    def _evaluate(self, chroms: np.ndarray) -> np.ndarray:
        v1 = chroms[:, : self.num_inputs]
        v2 = chroms[:, self.num_inputs:]
        return np.asarray(self.power_function(v1, v2), dtype=np.float64)

    def _select_parents(
        self, fitness: np.ndarray, gen: np.random.Generator
    ) -> Tuple[int, int]:
        def one() -> int:
            contenders = gen.integers(0, fitness.size, size=self.tournament)
            return int(contenders[np.argmax(fitness[contenders])])

        return one(), one()

    def run(self, rng: RngLike = None) -> GeneticSearchResult:
        """Execute the search and return the best pair found."""
        gen = as_rng(rng)
        width = 2 * self.num_inputs
        chroms = gen.integers(
            0, 2, size=(self.population_size, width), dtype=np.uint8
        )
        fitness = self._evaluate(chroms)
        units = self.population_size
        history: List[float] = [float(fitness.max())]

        for _generation in range(self.generations):
            order = np.argsort(fitness)[::-1]
            next_pop = [chroms[i].copy() for i in order[: self.elite]]
            while len(next_pop) < self.population_size:
                i, j = self._select_parents(fitness, gen)
                if gen.random() < self.crossover_rate:
                    mask = gen.integers(0, 2, size=width, dtype=np.uint8)
                    child = np.where(mask, chroms[i], chroms[j]).astype(
                        np.uint8
                    )
                else:
                    child = chroms[i].copy()
                flips = gen.random(width) < self.mutation_rate
                child[flips] ^= 1
                next_pop.append(child)
            chroms = np.stack(next_pop)
            fitness = self._evaluate(chroms)
            units += self.population_size
            history.append(max(history[-1], float(fitness.max())))

        best = int(np.argmax(fitness))
        best_power = float(fitness[best])
        # History tracks the global best; the final population may have
        # lost it to mutation, so recover from history bookkeeping.
        best_power = max(best_power, history[-1])
        return GeneticSearchResult(
            best_power=best_power,
            best_v1=chroms[best, : self.num_inputs].copy(),
            best_v2=chroms[best, self.num_inputs:].copy(),
            units_used=units,
            history=history,
        )

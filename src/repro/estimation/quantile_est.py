"""High-quantile estimation baseline (paper references [9][10]).

Hill/Teng/Kang-style "simulation-based maximum power estimation" and the
CDF-estimation approach of Ding et al. estimate a *high quantile* of the
per-vector power distribution as a stand-in for the maximum, with a
distribution-free order-statistic confidence interval.  The paper's
critique — efficiency no better than random sampling — can be reproduced
with this implementation: tightening the quantile toward 1 − 1/|V|
pushes the required sample size toward |V| itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError, EstimationError
from ..evt.order_stats import quantile_confidence_interval
from ..vectors.generators import RngLike
from ..vectors.population import PowerPopulation

__all__ = ["QuantileEstimate", "HighQuantileEstimator"]


@dataclass(frozen=True)
class QuantileEstimate:
    """Point estimate and distribution-free CI of a high power quantile."""

    q: float
    point: float
    low: float
    high: float
    level: float
    units_used: int

    def relative_error(self, actual_max: float) -> float:
        """Signed relative error vs. a known true maximum.

        Raises :class:`~repro.errors.EstimationError` when
        ``actual_max`` is zero (a degenerate all-zero-power population
        has no meaningful relative error), matching
        :meth:`repro.estimation.srs.SRSStudy.relative_errors`.
        """
        if actual_max == 0:
            raise EstimationError(
                "relative error is undefined against a zero actual maximum "
                "(degenerate all-zero-power population)"
            )
        return (self.point - actual_max) / actual_max


class HighQuantileEstimator:
    """Estimate the q-quantile of unit power by plain sampling.

    Parameters
    ----------
    population:
        Power population to sample.
    q:
        Quantile level; defaults to ``1 − 1/|V|`` for finite pools of
        at least two units (the level at which the quantile coincides
        with the maximum) and 0.999 for streaming populations, whose
        size is unknown.  Pools of a single unit have no high quantile
        distinct from the maximum, so ``q`` must be given explicitly.
    """

    def __init__(
        self, population: PowerPopulation, q: Optional[float] = None
    ):
        if q is None:
            size = population.size
            if not size:  # streaming/infinite population: size is None/0
                q = 0.999
            elif size <= 1:
                raise ConfigError(
                    f"cannot infer a quantile level for a population of "
                    f"size {size}: 1 - 1/|V| degenerates to 0; pass q "
                    "explicitly"
                )
            else:
                q = 1.0 - 1.0 / size
        if not 0.0 < q < 1.0:
            raise ConfigError("q must be in (0, 1)")
        self.population = population
        self.q = q

    def estimate(
        self, num_units: int, level: float = 0.9, rng: RngLike = None
    ) -> QuantileEstimate:
        """Sample ``num_units`` powers and report the q-quantile with CI.

        Note the statistical limitation the paper exploits: for the CI
        to have finite width above the point estimate, the sample must
        contain order statistics beyond rank ``q·num_units`` — i.e.
        ``num_units`` must be comparable to ``1/(1 − q)``.
        """
        if num_units < 2:
            raise ConfigError("num_units must be >= 2")
        values = self.population.sample_powers(num_units, rng)
        point, low, high = quantile_confidence_interval(
            values, self.q, level
        )
        return QuantileEstimate(
            q=self.q,
            point=point,
            low=low,
            high=high,
            level=level,
            units_used=num_units,
        )

"""Continuous-optimization baseline (paper reference [7], COSMOS-style).

Wang & Roy's COSMOS relaxes the discrete vector space into a continuous
one and gradient-searches for a maximum-power input.  Reproduced here
on the pair-probability relaxation: each primary input *i* carries a
continuous toggle probability ``t_i`` (and static probability
``p1_i = 0.5``); the objective is the *analytical expected switched
capacitance* from :mod:`repro.analysis.signal_prob`.  Projected
finite-difference gradient ascent drives the ``t_i`` toward a corner of
the hypercube; concrete vector pairs sampled from the optimized
distribution are then simulated, and the best simulated power is the
(lower-bound) estimate — with the same fundamental limitation the paper
notes for [7]: "the estimation accuracy is not high".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..analysis.signal_prob import expected_switched_capacitance
from ..errors import ConfigError
from ..netlist.circuit import Circuit
from ..netlist.library import CellLibrary, default_library
from ..vectors.generators import RngLike, as_rng, transition_prob_vector_pairs

__all__ = ["GradientSearchResult", "ContinuousMaxPowerSearch"]

PowerFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class GradientSearchResult:
    """Outcome of the continuous relaxation + sampling pipeline."""

    best_power: float
    toggle_probs: np.ndarray
    objective_history: List[float] = field(default_factory=list)
    units_used: int = 0

    def relative_error(self, actual_max: float) -> float:
        return (self.best_power - actual_max) / actual_max


class ContinuousMaxPowerSearch:
    """COSMOS-like relaxation search for a maximum-power vector pair.

    Parameters
    ----------
    circuit:
        Circuit under analysis.
    power_function:
        Batched simulator used in the final sampling phase.
    library:
        Capacitances for the analytical objective.
    step:
        Gradient-ascent step size on the toggle probabilities.
    iterations:
        Ascent iterations.
    fd_eps:
        Finite-difference perturbation.
    samples:
        Concrete pairs simulated from the optimized distribution.
    """

    def __init__(
        self,
        circuit: Circuit,
        power_function: PowerFunction,
        library: Optional[CellLibrary] = None,
        step: float = 0.25,
        iterations: int = 20,
        fd_eps: float = 0.05,
        samples: int = 256,
    ):
        if iterations < 1:
            raise ConfigError("iterations must be >= 1")
        if samples < 1:
            raise ConfigError("samples must be >= 1")
        if not 0 < fd_eps < 0.5:
            raise ConfigError("fd_eps must be in (0, 0.5)")
        circuit.validate()
        self.circuit = circuit
        self.power_function = power_function
        self.library = library if library is not None else default_library()
        self.step = step
        self.iterations = iterations
        self.fd_eps = fd_eps
        self.samples = samples

    # ------------------------------------------------------------------
    def _objective(self, toggles: np.ndarray) -> float:
        spec: Dict[str, float] = dict(zip(self.circuit.inputs, toggles))
        p1 = {net: 0.5 for net in self.circuit.inputs}
        return expected_switched_capacitance(
            self.circuit, p1, spec, self.library
        )

    def run(
        self,
        rng: RngLike = None,
        initial_toggles: "np.ndarray | float | None" = None,
    ) -> GradientSearchResult:
        """Ascend the relaxation, then sample and simulate.

        ``initial_toggles`` sets the starting point (scalar or per-line
        array).  The default 0.45 is deliberately off the symmetric 0.5
        point, which is a stationary saddle for XOR-dominated logic
        (every parity derivative vanishes there).
        """
        gen = as_rng(rng)
        num_inputs = self.circuit.num_inputs
        if initial_toggles is None:
            initial_toggles = 0.45
        toggles = np.clip(
            np.broadcast_to(
                np.asarray(initial_toggles, dtype=np.float64), (num_inputs,)
            ).copy(),
            0.0,
            1.0,
        )
        history = [self._objective(toggles)]

        for _ in range(self.iterations):
            grad = np.empty(num_inputs)
            base = history[-1]
            for i in range(num_inputs):
                bumped = toggles.copy()
                bumped[i] = min(1.0, bumped[i] + self.fd_eps)
                grad[i] = (self._objective(bumped) - base) / self.fd_eps
            norm = np.linalg.norm(grad)
            if norm == 0.0:
                break
            toggles = np.clip(toggles + self.step * grad / norm, 0.0, 1.0)
            history.append(self._objective(toggles))
            if abs(history[-1] - history[-2]) < 1e-18:
                break

        v1, v2 = transition_prob_vector_pairs(
            self.samples, num_inputs, toggles, rng=gen
        )
        powers = np.asarray(self.power_function(v1, v2))
        return GradientSearchResult(
            best_power=float(powers.max()),
            toggle_probs=toggles,
            objective_history=history,
            units_used=self.samples,
        )

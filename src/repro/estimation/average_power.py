"""Average-power estimation with CLT-based stopping.

The companion problem to the paper's maximum-power estimation: the
*mean* of the same per-vector-pair power distribution.  Because the mean
is a regular functional, plain Monte-Carlo with the classical
normal-approximation stopping rule suffices (this is the standard
technique of the DAC-era average-power literature, e.g. Burch et al.'s
McPOWER): keep sampling until

    ``t_{l,k-1} * s / (sqrt(k) * mean)  <=  epsilon``

over batch means.  Including it here lets users report the customary
max/avg power ratio from a single population object, and provides a
sanity anchor for the maximum estimates (max >= mean, ratios of 2-4x on
random logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigError
from ..evt.confidence import MeanInterval, t_mean_interval
from ..vectors.generators import RngLike, as_rng
from ..vectors.population import PowerPopulation

__all__ = ["AveragePowerResult", "AveragePowerEstimator"]


@dataclass
class AveragePowerResult:
    """Outcome of average-power estimation."""

    estimate: float
    interval: Optional[MeanInterval]
    converged: bool
    units_used: int
    batch_means: List[float] = field(default_factory=list)

    def relative_error(self, actual_mean: float) -> float:
        return (self.estimate - actual_mean) / actual_mean

    def summary(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (
            f"P_avg≈{self.estimate:.4g} W ({status}, "
            f"units={self.units_used})"
        )


class AveragePowerEstimator:
    """Monte-Carlo mean-power estimation with a Student-t stopping rule.

    Parameters
    ----------
    population:
        Any :class:`~repro.vectors.population.PowerPopulation`.
    batch_size:
        Units per batch; batch means are treated as i.i.d. normal.
    error, confidence:
        Target relative half-width and confidence level.
    min_batches, max_batches:
        Iteration bounds.
    """

    def __init__(
        self,
        population: PowerPopulation,
        batch_size: int = 64,
        error: float = 0.02,
        confidence: float = 0.95,
        min_batches: int = 4,
        max_batches: int = 10_000,
    ):
        if batch_size < 2:
            raise ConfigError("batch_size must be >= 2")
        if not 0 < error < 1:
            raise ConfigError("error must be in (0, 1)")
        if not 0 < confidence < 1:
            raise ConfigError("confidence must be in (0, 1)")
        if min_batches < 2:
            raise ConfigError("min_batches must be >= 2")
        if max_batches < min_batches:
            raise ConfigError("max_batches < min_batches")
        self.population = population
        self.batch_size = batch_size
        self.error = error
        self.confidence = confidence
        self.min_batches = min_batches
        self.max_batches = max_batches

    def run(self, rng: RngLike = None) -> AveragePowerResult:
        """Sample batches until the mean's CI meets the error target."""
        gen = as_rng(rng)
        means: List[float] = []
        units = 0
        interval: Optional[MeanInterval] = None
        for _ in range(self.max_batches):
            batch = self.population.sample_powers(self.batch_size, gen)
            units += self.batch_size
            means.append(float(batch.mean()))
            if len(means) < self.min_batches:
                continue
            interval = t_mean_interval(means, self.confidence)
            if interval.rel_half_width <= self.error:
                return AveragePowerResult(
                    estimate=interval.mean,
                    interval=interval,
                    converged=True,
                    units_used=units,
                    batch_means=means,
                )
        return AveragePowerResult(
            estimate=float(np.mean(means)),
            interval=interval,
            converged=False,
            units_used=units,
            batch_means=means,
        )

"""Simple random sampling (SRS) baseline (paper Section IV).

The baseline the paper compares against: draw ``x`` units, report the
largest power seen.  It always *under*-estimates (the sample maximum of
a finite pool can never exceed the pool maximum), cannot state a
confidence interval for the maximum, and needs
``x = log(1 − l)/log(1 − Y)`` units before it even touches a "qualified"
(within-ε-of-max) unit with probability ``l``.

:class:`SimpleRandomSampling` provides both single estimates and the
repeated-run error studies behind the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError, EstimationError
from ..evt.confidence import srs_required_units
from ..vectors.generators import RngLike, as_rng
from ..vectors.population import PowerPopulation

__all__ = ["SRSStudy", "SimpleRandomSampling", "srs_required_units"]


@dataclass(frozen=True)
class SRSStudy:
    """Repeated-run quality study of SRS at a fixed unit budget.

    Attributes
    ----------
    num_units:
        Units drawn per run.
    estimates:
        The per-run sample maxima.
    actual_max:
        The pool's true maximum the errors are measured against.
    """

    num_units: int
    estimates: np.ndarray
    actual_max: float

    @property
    def relative_errors(self) -> np.ndarray:
        """Signed per-run relative errors (non-positive by construction).

        Raises :class:`~repro.errors.EstimationError` when
        ``actual_max`` is zero — a degenerate all-zero-power population
        would otherwise silently produce NaN/inf errors (matching
        :meth:`repro.estimation.quantile_est.QuantileEstimate.relative_error`).
        """
        if self.actual_max == 0:
            raise EstimationError(
                "relative errors are undefined against a zero actual maximum "
                "(degenerate all-zero-power population)"
            )
        return (self.estimates - self.actual_max) / self.actual_max

    @property
    def largest_error(self) -> float:
        """The signed error of largest magnitude (paper Table 2 cols 4-6)."""
        errors = self.relative_errors
        return float(errors[np.argmax(np.abs(errors))])

    def exceed_fraction(self, epsilon: float = 0.05) -> float:
        """Fraction of runs whose |error| exceeds ``epsilon`` (cols 8-10)."""
        if not 0 < epsilon < 1:
            raise ConfigError("epsilon must be in (0, 1)")
        return float((np.abs(self.relative_errors) > epsilon).mean())


class SimpleRandomSampling:
    """Max-of-sample estimator over any power population."""

    def __init__(self, population: PowerPopulation):
        self.population = population

    def estimate_max(self, num_units: int, rng: RngLike = None) -> float:
        """Largest power among ``num_units`` random draws."""
        if num_units < 1:
            raise ConfigError("num_units must be >= 1")
        return float(self.population.sample_powers(num_units, rng).max())

    def study(
        self,
        num_units: int,
        repetitions: int,
        rng: RngLike = None,
        actual_max: Optional[float] = None,
    ) -> SRSStudy:
        """Run the estimator ``repetitions`` times at a fixed budget.

        ``actual_max`` may be supplied for streaming populations; finite
        pools report their own.
        """
        if repetitions < 1:
            raise ConfigError("repetitions must be >= 1")
        if actual_max is None:
            actual_max = self.population.actual_max_power
        if actual_max is None:
            raise ConfigError(
                "actual_max required for populations of unknown maximum"
            )
        gen = as_rng(rng)
        estimates = np.array(
            [self.estimate_max(num_units, gen) for _ in range(repetitions)]
        )
        return SRSStudy(
            num_units=num_units, estimates=estimates, actual_max=actual_max
        )

    def theoretical_units(
        self, epsilon: float = 0.05, level: float = 0.9
    ) -> float:
        """Paper's theoretical SRS cost for this population (Table 1 col 6).

        Requires a finite population (to know the qualified portion Y).
        """
        qualified = getattr(self.population, "qualified_portion", None)
        if qualified is None:
            raise ConfigError("theoretical cost needs a finite population")
        return srs_required_units(qualified(epsilon), level)

"""The paper's iterative Monte-Carlo maximum-power estimator.

Pipeline per hyper-sample (Figure 3): draw ``m`` samples of size ``n``
from the population, keep each sample's maximum, fit the generalized
Weibull by profile MLE, and report the location estimate (corrected to
the (1 − 1/|V|) quantile for finite populations).

Iterative loop (Figure 4): accumulate hyper-sample estimates
``P̂_1.., P̂_k``; after each one compute the Student-t confidence
interval of their mean (Theorem 6) and stop when the relative
half-width ``t_{l,k−1}·s / (√k · P̄_MAX)`` is within the user's error
bound ε at confidence level l.

The estimator is generic over :class:`~repro.vectors.population.PowerPopulation`,
so the same machinery estimates maximum circuit *delay* (paper §V) or
any other bounded simulation metric.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigError, FitError
from ..evt.block_maxima import (
    DEFAULT_NUM_SAMPLES,
    DEFAULT_SAMPLE_SIZE,
)
from ..evt.confidence import t_mean_interval
from ..evt.mle import fit_weibull_mle
from ..obs.metrics import (
    DEFAULT_ALPHA_BUCKETS,
    DEFAULT_K_BUCKETS,
    get_registry,
)
from ..obs.spans import get_span_recorder
from ..obs.trace import get_tracer
from ..vectors.generators import RngLike, as_rng
from ..vectors.population import PowerPopulation
from .finite_population import finite_population_estimate
from .result import EstimationResult, HyperSample

__all__ = ["MaxPowerEstimator"]

# Module-level metric handles: one dict lookup at import, then each
# record is a branch on the registry's enabled flag (no-op fast path).
_METRICS = get_registry()
_TRACER = get_tracer()
_SPANS = get_span_recorder()
_RUN_TIMER = _METRICS.timer("estimator_run_seconds")
_HS_TIMER = _METRICS.timer("estimator_hyper_sample_seconds")
_RUNS_TOTAL = _METRICS.counter("estimator_runs_total")
_RUNS_CONVERGED = _METRICS.counter("estimator_runs_converged_total")
_HS_TOTAL = _METRICS.counter("estimator_hyper_samples_total")
_HS_FALLBACKS = _METRICS.counter("estimator_fallbacks_total")
_UNITS_TOTAL = _METRICS.counter("estimator_units_total")
_NONREGULAR = _METRICS.counter("estimator_nonregular_fits_total")
_ALPHA_HIST = _METRICS.histogram("estimator_alpha", buckets=DEFAULT_ALPHA_BUCKETS)
_K_HIST = _METRICS.histogram("estimator_k", buckets=DEFAULT_K_BUCKETS)


def _hyper_sample_payload(hs: HyperSample) -> dict:
    """Trace payload for one hyper-sample (field names match
    :meth:`HyperSample.to_dict` where they overlap)."""
    maxima = hs.maxima
    payload = {
        "k": hs.index,
        "estimate": hs.estimate,
        "units_used": hs.units_used,
        "maxima_min": float(maxima.min()),
        "maxima_mean": float(maxima.mean()),
        "maxima_max": float(maxima.max()),
        "fallback_reason": hs.fallback_reason,
    }
    if hs.fit is not None:
        payload.update(
            alpha=hs.fit.alpha,
            beta=hs.fit.beta,
            mu=hs.fit.mu,
            shape_gt2=hs.fit.shape_gt2,
        )
    else:
        payload.update(alpha=None, beta=None, mu=None, shape_gt2=None)
    return payload


class MaxPowerEstimator:
    """User-facing estimator implementing the full paper flow.

    Parameters
    ----------
    population:
        Where unit powers come from — a pre-simulated
        :class:`~repro.vectors.population.FinitePopulation` (categories
        I.1/I.2 experimental setup) or a
        :class:`~repro.vectors.population.StreamingPopulation`
        (random-vector-generation production mode).
    n:
        Sample (block) size; the paper fixes 30 (Figure 1 study).
    m:
        Samples per hyper-sample; the paper fixes 10 (Figure 2 study).
    error:
        Target relative error ε (default 5 %).
    confidence:
        Confidence level l (default 90 %).
    min_hyper_samples:
        First k at which convergence may be declared; 2 matches the
        paper's minimum observed cost of 600 units.
    max_hyper_samples:
        Budget guard; the result is flagged unconverged when exhausted.
    finite_correction:
        Apply the §3.4 quantile correction.  ``None`` (default) means
        "apply exactly when the population reports a finite size".
    upper_bound:
        Optional physical upper bound on the metric (e.g. a static
        timing bound for delay estimation, or a switched-capacitance
        ceiling for power).  Hyper-sample estimates are clipped to it —
        an extension beyond the paper that prevents the endpoint
        extrapolation from ever exceeding a known certificate.

    Example
    -------
    >>> est = MaxPowerEstimator(pop, error=0.05, confidence=0.90)
    >>> result = est.run(rng=0)
    >>> result.estimate, result.interval.low, result.interval.high
    """

    def __init__(
        self,
        population: PowerPopulation,
        n: int = DEFAULT_SAMPLE_SIZE,
        m: int = DEFAULT_NUM_SAMPLES,
        error: float = 0.05,
        confidence: float = 0.90,
        min_hyper_samples: int = 2,
        max_hyper_samples: int = 200,
        finite_correction: Optional[bool] = None,
        upper_bound: Optional[float] = None,
    ):
        if n < 2:
            raise ConfigError("sample size n must be >= 2")
        if m < 3:
            raise ConfigError("need m >= 3 block maxima for the MLE")
        if not 0.0 < error < 1.0:
            raise ConfigError("error must be in (0, 1)")
        if not 0.0 < confidence < 1.0:
            raise ConfigError("confidence must be in (0, 1)")
        if min_hyper_samples < 2:
            raise ConfigError("min_hyper_samples must be >= 2")
        if max_hyper_samples < min_hyper_samples:
            raise ConfigError("max_hyper_samples < min_hyper_samples")
        self.population = population
        self.n = n
        self.m = m
        self.error = error
        self.confidence = confidence
        self.min_hyper_samples = min_hyper_samples
        self.max_hyper_samples = max_hyper_samples
        if finite_correction is None:
            finite_correction = population.size is not None
        if finite_correction and population.size is None:
            raise ConfigError(
                "finite_correction requires a population with known size"
            )
        self.finite_correction = finite_correction
        if upper_bound is not None and upper_bound <= 0:
            raise ConfigError("upper_bound must be positive")
        self.upper_bound = upper_bound

    @classmethod
    def from_config(cls, population: PowerPopulation, config) -> "MaxPowerEstimator":
        """Build an estimator from a :class:`repro.api.EstimatorConfig`.

        Duck-typed on the config's statistical fields so the estimation
        layer never imports the API layer; execution fields
        (``workers``/``retries``/``task_timeout``) belong to the drivers
        in :mod:`repro.estimation.parallel` and are ignored here.
        """
        return cls(
            population,
            n=config.n,
            m=config.m,
            error=config.error,
            confidence=config.confidence,
            min_hyper_samples=config.min_hyper_samples,
            max_hyper_samples=config.max_hyper_samples,
            finite_correction=config.finite_correction,
            upper_bound=config.upper_bound,
        )

    # ------------------------------------------------------------------
    def hyper_sample(
        self, index: int, rng: RngLike = None, _trace: bool = True
    ) -> HyperSample:
        """Produce one hyper-sample estimate (n·m simulated units).

        Degenerate draws (all block maxima equal — possible in tiny
        populations) fall back to the plain sample maximum with
        ``fit=None`` rather than failing the whole run.

        ``_trace=False`` is used internally by :meth:`run`, which emits
        an enriched per-k event (with CI half-width and cumulative
        units) instead of the standalone one — exactly one
        ``hyper_sample`` trace event fires per hyper-sample either way.
        """
        gen = as_rng(rng)
        with _SPANS.span("estimator.hyper_sample", k=index) as span, _HS_TIMER.time():
            # Batched fast path: all n*m units in one vectorized draw.
            maxima = self.population.sample_block_maxima(self.n, self.m, gen)
            units = self.n * self.m
            fallback_reason = None
            try:
                fit = fit_weibull_mle(maxima)
            except FitError as exc:
                fit = None
                fallback_reason = str(exc)
            if fit is None:
                # Fallback path: report the plain sample maximum
                # (observed, so never clipped).
                estimate = float(maxima.max())
            else:
                size = self.population.size if self.finite_correction else None
                estimate = finite_population_estimate(fit, size)
                # The corrected quantile can, at very small alpha-hat,
                # fall below the observed maximum — physically
                # impossible, so clamp.
                estimate = max(estimate, float(maxima.max()))
                if self.upper_bound is not None:
                    estimate = min(estimate, self.upper_bound)
            span.set(
                estimate=estimate,
                units=units,
                fallback=fallback_reason is not None,
            )
        hs = HyperSample(
            index=index,
            maxima=maxima,
            fit=fit,
            estimate=estimate,
            units_used=units,
            fallback_reason=fallback_reason,
        )
        _HS_TOTAL.inc()
        _UNITS_TOTAL.inc(units)
        if fit is None:
            _HS_FALLBACKS.inc()
        else:
            _ALPHA_HIST.observe(fit.alpha)
            if not fit.shape_gt2:
                _NONREGULAR.inc()
        if _trace and _TRACER.enabled:
            _TRACER.emit(
                "hyper_sample",
                population=self.population.name,
                rel_half_width=None,
                cumulative_units=None,
                **_hyper_sample_payload(hs),
            )
        return hs

    # ------------------------------------------------------------------
    def run(self, rng: RngLike = None, progress=None) -> EstimationResult:
        """Execute the iterative procedure of Figure 4.

        ``progress``, when given, is called as
        ``progress(hs, interval, cumulative_units)`` after every
        hyper-sample (``interval`` is ``None`` before
        ``min_hyper_samples``).  It observes the run for live status
        reporting — e.g. the job service's per-k convergence
        trajectory — and may abort it by raising (the service raises
        :class:`~repro.errors.JobCancelledError` to cancel a job); the
        callback does not participate in the RNG stream, so a run's
        result is bit-identical with or without it.
        """
        gen = as_rng(rng)
        result = EstimationResult(
            estimate=float("nan"),
            interval=None,
            converged=False,
            error_bound=self.error,
            confidence=self.confidence,
            population_name=self.population.name,
            population_size=self.population.size,
        )
        tracing = _TRACER.enabled
        run_id = _TRACER.next_id("run") if tracing else None
        if tracing:
            _TRACER.emit(
                "run_start",
                run_id=run_id,
                population=self.population.name,
                population_size=self.population.size,
                n=self.n,
                m=self.m,
                error=self.error,
                confidence=self.confidence,
                min_hyper_samples=self.min_hyper_samples,
                max_hyper_samples=self.max_hyper_samples,
                finite_correction=self.finite_correction,
            )
        _RUNS_TOTAL.inc()
        with _SPANS.span(
            "estimator.run",
            population=self.population.name,
            n=self.n,
            m=self.m,
        ) as run_span, _RUN_TIMER.time():
            estimates = []
            for k in range(1, self.max_hyper_samples + 1):
                hs = self.hyper_sample(k, gen, _trace=False)
                result.hyper_samples.append(hs)
                result.units_used += hs.units_used
                estimates.append(hs.estimate)
                interval = None
                if k >= self.min_hyper_samples:
                    interval = t_mean_interval(estimates, self.confidence)
                    result.interval = interval
                    result.estimate = interval.mean
                    result.ci_trajectory.append(interval.rel_half_width)
                if tracing:
                    _TRACER.emit(
                        "hyper_sample",
                        run_id=run_id,
                        rel_half_width=(
                            interval.rel_half_width if interval else None
                        ),
                        cumulative_units=result.units_used,
                        **_hyper_sample_payload(hs),
                    )
                if progress is not None:
                    progress(hs, interval, result.units_used)
                if interval is not None and (
                    interval.rel_half_width <= self.error
                ):
                    result.converged = True
                    break
            else:
                # Budget exhausted: report the final interval over *all*
                # k hyper-samples so that estimate == interval.mean
                # always holds (previously the estimate was overwritten
                # with the plain mean while the interval could lag
                # behind it).
                interval = t_mean_interval(estimates, self.confidence)
                result.interval = interval
                result.estimate = interval.mean
            run_span.set(
                k=result.k,
                converged=result.converged,
                estimate=result.estimate,
                units_used=result.units_used,
            )
        _K_HIST.observe(result.k)
        if result.converged:
            _RUNS_CONVERGED.inc()
        if tracing:
            _TRACER.emit(
                "run_end",
                run_id=run_id,
                converged=result.converged,
                k=result.k,
                estimate=result.estimate,
                units_used=result.units_used,
                rel_half_width=result.rel_half_width,
            )
        return result

"""The paper's iterative Monte-Carlo maximum-power estimator.

Pipeline per hyper-sample (Figure 3): draw ``m`` samples of size ``n``
from the population, keep each sample's maximum, fit the generalized
Weibull by profile MLE, and report the location estimate (corrected to
the (1 − 1/|V|) quantile for finite populations).

Iterative loop (Figure 4): accumulate hyper-sample estimates
``P̂_1.., P̂_k``; after each one compute the Student-t confidence
interval of their mean (Theorem 6) and stop when the relative
half-width ``t_{l,k−1}·s / (√k · P̄_MAX)`` is within the user's error
bound ε at confidence level l.

The estimator is generic over :class:`~repro.vectors.population.PowerPopulation`,
so the same machinery estimates maximum circuit *delay* (paper §V) or
any other bounded simulation metric.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigError, FitError
from ..evt.block_maxima import (
    DEFAULT_NUM_SAMPLES,
    DEFAULT_SAMPLE_SIZE,
)
from ..evt.confidence import t_mean_interval
from ..evt.mle import fit_weibull_mle
from ..vectors.generators import RngLike, as_rng
from ..vectors.population import PowerPopulation
from .finite_population import finite_population_estimate
from .result import EstimationResult, HyperSample

__all__ = ["MaxPowerEstimator"]


class MaxPowerEstimator:
    """User-facing estimator implementing the full paper flow.

    Parameters
    ----------
    population:
        Where unit powers come from — a pre-simulated
        :class:`~repro.vectors.population.FinitePopulation` (categories
        I.1/I.2 experimental setup) or a
        :class:`~repro.vectors.population.StreamingPopulation`
        (random-vector-generation production mode).
    n:
        Sample (block) size; the paper fixes 30 (Figure 1 study).
    m:
        Samples per hyper-sample; the paper fixes 10 (Figure 2 study).
    error:
        Target relative error ε (default 5 %).
    confidence:
        Confidence level l (default 90 %).
    min_hyper_samples:
        First k at which convergence may be declared; 2 matches the
        paper's minimum observed cost of 600 units.
    max_hyper_samples:
        Budget guard; the result is flagged unconverged when exhausted.
    finite_correction:
        Apply the §3.4 quantile correction.  ``None`` (default) means
        "apply exactly when the population reports a finite size".
    upper_bound:
        Optional physical upper bound on the metric (e.g. a static
        timing bound for delay estimation, or a switched-capacitance
        ceiling for power).  Hyper-sample estimates are clipped to it —
        an extension beyond the paper that prevents the endpoint
        extrapolation from ever exceeding a known certificate.

    Example
    -------
    >>> est = MaxPowerEstimator(pop, error=0.05, confidence=0.90)
    >>> result = est.run(rng=0)
    >>> result.estimate, result.interval.low, result.interval.high
    """

    def __init__(
        self,
        population: PowerPopulation,
        n: int = DEFAULT_SAMPLE_SIZE,
        m: int = DEFAULT_NUM_SAMPLES,
        error: float = 0.05,
        confidence: float = 0.90,
        min_hyper_samples: int = 2,
        max_hyper_samples: int = 200,
        finite_correction: Optional[bool] = None,
        upper_bound: Optional[float] = None,
    ):
        if n < 2:
            raise ConfigError("sample size n must be >= 2")
        if m < 3:
            raise ConfigError("need m >= 3 block maxima for the MLE")
        if not 0.0 < error < 1.0:
            raise ConfigError("error must be in (0, 1)")
        if not 0.0 < confidence < 1.0:
            raise ConfigError("confidence must be in (0, 1)")
        if min_hyper_samples < 2:
            raise ConfigError("min_hyper_samples must be >= 2")
        if max_hyper_samples < min_hyper_samples:
            raise ConfigError("max_hyper_samples < min_hyper_samples")
        self.population = population
        self.n = n
        self.m = m
        self.error = error
        self.confidence = confidence
        self.min_hyper_samples = min_hyper_samples
        self.max_hyper_samples = max_hyper_samples
        if finite_correction is None:
            finite_correction = population.size is not None
        if finite_correction and population.size is None:
            raise ConfigError(
                "finite_correction requires a population with known size"
            )
        self.finite_correction = finite_correction
        if upper_bound is not None and upper_bound <= 0:
            raise ConfigError("upper_bound must be positive")
        self.upper_bound = upper_bound

    # ------------------------------------------------------------------
    def hyper_sample(
        self, index: int, rng: RngLike = None
    ) -> HyperSample:
        """Produce one hyper-sample estimate (n·m simulated units).

        Degenerate draws (all block maxima equal — possible in tiny
        populations) fall back to the plain sample maximum with
        ``fit=None`` rather than failing the whole run.
        """
        gen = as_rng(rng)
        # Batched fast path: all n*m units in one vectorized draw.
        maxima = self.population.sample_block_maxima(self.n, self.m, gen)
        units = self.n * self.m
        try:
            fit = fit_weibull_mle(maxima)
        except FitError:
            return HyperSample(
                index=index,
                maxima=maxima,
                fit=None,
                estimate=float(maxima.max()),
                units_used=units,
            )
        size = self.population.size if self.finite_correction else None
        estimate = finite_population_estimate(fit, size)
        # The corrected quantile can, at very small alpha-hat, fall below
        # the observed maximum — physically impossible, so clamp.
        estimate = max(estimate, float(maxima.max()))
        if self.upper_bound is not None:
            estimate = min(estimate, self.upper_bound)
        return HyperSample(
            index=index,
            maxima=maxima,
            fit=fit,
            estimate=estimate,
            units_used=units,
        )

    # ------------------------------------------------------------------
    def run(self, rng: RngLike = None) -> EstimationResult:
        """Execute the iterative procedure of Figure 4."""
        gen = as_rng(rng)
        result = EstimationResult(
            estimate=float("nan"),
            interval=None,
            converged=False,
            error_bound=self.error,
            confidence=self.confidence,
            population_name=self.population.name,
            population_size=self.population.size,
        )
        estimates = []
        for k in range(1, self.max_hyper_samples + 1):
            hs = self.hyper_sample(k, gen)
            result.hyper_samples.append(hs)
            result.units_used += hs.units_used
            estimates.append(hs.estimate)
            if k < self.min_hyper_samples:
                continue
            interval = t_mean_interval(estimates, self.confidence)
            result.interval = interval
            result.estimate = interval.mean
            if interval.rel_half_width <= self.error:
                result.converged = True
                return result
        # Budget exhausted: report the final interval over *all* k
        # hyper-samples so that estimate == interval.mean always holds
        # (previously the estimate was overwritten with the plain mean
        # while the interval could lag behind it).
        interval = t_mean_interval(estimates, self.confidence)
        result.interval = interval
        result.estimate = interval.mean
        return result

"""JSONL checkpointing for the parallel estimation drivers.

A checkpoint file makes ``run_many``/``hyper_sample_many`` resumable:
every completed task's result is appended as one JSON line the moment it
finishes, so a crashed or killed sweep only loses the in-flight tasks.
On resume, completed indices are loaded back (through the
``to_dict``/``from_dict`` serialization of
:mod:`repro.estimation.result`) and never re-simulated.

File layout (one JSON object per line)::

    {"schema": "repro.checkpoint/v1", "schema_version": "1.0",
     "kind": "run_many", "key": "<seed key>", "total": 20}   # header, line 1
    {"index": 7, "result": {...}}               # one line per task
    ...

The ``key`` binds the checkpoint to the exact ``(base_seed, num_runs)``
pair that spawned the per-task ``SeedSequence`` streams — resuming with
a different seed or run count raises
:class:`~repro.errors.ConfigError` instead of silently mixing streams.

Robustness: a process killed mid-write leaves a truncated final line;
the loader tolerates (and discards) any trailing garbage, and the file
is compacted on resume so the retained prefix is always clean JSONL.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from ..errors import ConfigError
from ..schemas import (
    SCHEMA_VERSION,
    check_schema_version,
)
from ..schemas import CHECKPOINT_SCHEMA as _CHECKPOINT_SCHEMA

__all__ = ["CheckpointWriter", "open_checkpoint"]


def __getattr__(name: str):
    # Deprecation shim: CHECKPOINT_SCHEMA moved to repro.schemas.
    if name == "CHECKPOINT_SCHEMA":
        warnings.warn(
            "repro.estimation.checkpoint.CHECKPOINT_SCHEMA moved to "
            "repro.schemas.CHECKPOINT_SCHEMA; the old import path will "
            "be removed in a future major release",
            DeprecationWarning,
            stacklevel=2,
        )
        return _CHECKPOINT_SCHEMA
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class CheckpointWriter:
    """Append-only JSONL sink for completed task results.

    Each :meth:`write` appends one line and flushes it, so a ``kill -9``
    of the driver never loses a completed (written) task.
    """

    def __init__(self, path: Path, header: dict):
        self._path = Path(path)
        exists = self._path.exists() and self._path.stat().st_size > 0
        self._handle = open(self._path, "a", encoding="utf-8")
        if not exists:
            self._handle.write(json.dumps(header, sort_keys=True) + "\n")
            self._handle.flush()

    @property
    def path(self) -> Path:
        return self._path

    def write(self, index: int, result) -> None:
        """Persist one completed task (``result`` must have ``to_dict``)."""
        line = json.dumps({"index": int(index), "result": result.to_dict()})
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _read_tolerant(path: Path) -> Tuple[Optional[dict], Dict[int, dict]]:
    """Parse header + records, discarding everything after the first
    corrupt line (a kill mid-write truncates at most the last one)."""
    header: Optional[dict] = None
    records: Dict[int, dict] = {}
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                break
            if line_no == 0:
                if not (
                    isinstance(obj, dict) and obj.get("schema") == _CHECKPOINT_SCHEMA
                ):
                    break
                header = obj
            elif isinstance(obj, dict) and "index" in obj and "result" in obj:
                records[int(obj["index"])] = obj["result"]
            else:
                break
    return header, records


def open_checkpoint(
    path: Union[str, Path],
    *,
    kind: str,
    key: str,
    total: int,
    resume: bool,
    from_dict: Callable[[dict], object],
) -> Tuple[Dict[int, object], CheckpointWriter]:
    """Open ``path`` for checkpointing; return ``(loaded, writer)``.

    With ``resume=False`` any existing file is overwritten and
    ``loaded`` is empty.  With ``resume=True`` an existing file is
    validated against ``(kind, key, total)`` (mismatch raises
    :class:`~repro.errors.ConfigError`), its completed records are
    deserialized into ``loaded`` and the file is compacted in place so
    subsequent appends extend clean JSONL.
    """
    path = Path(path)
    header = {
        "schema": _CHECKPOINT_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "key": key,
        "total": int(total),
    }
    identity = {k: header[k] for k in ("schema", "kind", "key", "total")}
    loaded: Dict[int, object] = {}
    if resume and path.exists() and path.stat().st_size > 0:
        found, records = _read_tolerant(path)
        if found is not None:
            check_schema_version(found, f"checkpoint {path} header")
            stated = {k: found.get(k) for k in ("schema", "kind", "key", "total")}
            if stated != identity:
                raise ConfigError(
                    f"checkpoint {path} was written by a different run "
                    f"(header {stated} != expected {identity}); delete it or "
                    "drop --resume to start fresh"
                )
            records = {i: r for i, r in records.items() if 0 <= i < total}
            # Compact: rewrite the validated prefix so trailing garbage
            # from a mid-write kill never accumulates.
            tmp = path.with_suffix(path.suffix + ".tmp")
            with open(tmp, "w", encoding="utf-8") as out:
                out.write(json.dumps(header, sort_keys=True) + "\n")
                for index in sorted(records):
                    out.write(
                        json.dumps({"index": index, "result": records[index]})
                        + "\n"
                    )
            os.replace(tmp, path)
            loaded = {i: from_dict(r) for i, r in records.items()}
        else:
            # Unrecognizable file: refuse to clobber it silently.
            raise ConfigError(
                f"checkpoint {path} is not a {_CHECKPOINT_SCHEMA} file; "
                "point --checkpoint somewhere else or delete it"
            )
    elif path.exists():
        path.unlink()
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    return loaded, CheckpointWriter(path, header)

"""Maximum circuit-delay estimation — the paper's §V extension.

The conclusion notes the statistical machinery applies beyond power,
"for example, longest path delay estimation".  This module instantiates
that: the per-vector-pair *settle time* from the event-driven timing
simulator becomes the bounded random variable, and the same
block-maxima + Weibull-MLE + hyper-sample iteration estimates its right
endpoint — the true dynamic critical delay, which static timing analysis
only upper-bounds (false paths make STA pessimistic).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..netlist.circuit import Circuit
from ..sim.delay import DelayModel, LibraryDelay
from ..sim.event_sim import EventDrivenSimulator
from ..sim.sta import StaticTimingAnalyzer
from ..vectors.generators import RngLike, random_vector_pairs
from ..vectors.population import StreamingPopulation
from .mc_estimator import MaxPowerEstimator
from .result import EstimationResult

__all__ = ["MaxDelayEstimator"]


class MaxDelayEstimator:
    """Estimate the maximum input-to-output settle time of a circuit.

    Parameters
    ----------
    circuit:
        Circuit under analysis.
    delay_model:
        Timing model for the event-driven simulation (defaults to the
        library linear model).
    n, m, error, confidence:
        Passed through to :class:`~repro.estimation.mc_estimator.MaxPowerEstimator`
        (the machinery is metric-agnostic).

    Notes
    -----
    Settle times come from per-pair event-driven simulation, so this is
    ~1000x more expensive per unit than the vectorized power path; use
    it on small-to-medium circuits or lower n·m budgets.
    """

    def __init__(
        self,
        circuit: Circuit,
        delay_model: Optional[DelayModel] = None,
        n: int = 30,
        m: int = 10,
        error: float = 0.05,
        confidence: float = 0.90,
        max_hyper_samples: int = 50,
    ):
        circuit.validate()
        self.circuit = circuit
        self.delay_model = delay_model or LibraryDelay()
        self._sim = EventDrivenSimulator(circuit, self.delay_model)
        # The STA longest path is a hard physical ceiling on any settle
        # time — clip the endpoint extrapolation to it.
        sta_bound = StaticTimingAnalyzer(circuit, self.delay_model).max_delay()
        self._estimator = MaxPowerEstimator(
            self._make_population(),
            n=n,
            m=m,
            error=error,
            confidence=confidence,
            max_hyper_samples=max_hyper_samples,
            finite_correction=False,
            upper_bound=sta_bound if sta_bound > 0 else None,
        )

    # ------------------------------------------------------------------
    def _settle_times(
        self, v1: np.ndarray, v2: np.ndarray
    ) -> np.ndarray:
        return np.array(
            [
                self._sim.simulate_pair(v1[i], v2[i]).settle_time
                for i in range(v1.shape[0])
            ]
        )

    def _make_population(self) -> StreamingPopulation:
        num_inputs = self.circuit.num_inputs

        def generate(count: int, gen: np.random.Generator):
            return random_vector_pairs(count, num_inputs, gen)

        def measure(v1: np.ndarray, v2: np.ndarray) -> np.ndarray:
            return self._settle_times(v1, v2)

        return StreamingPopulation(
            generate, measure, name=f"{self.circuit.name}-delay"
        )

    # ------------------------------------------------------------------
    def run(self, rng: RngLike = None) -> EstimationResult:
        """Estimate maximum dynamic delay (same result type as power)."""
        return self._estimator.run(rng)

    def static_bound(self) -> float:
        """STA longest-path delay — the static upper bound to compare."""
        return StaticTimingAnalyzer(self.circuit, self.delay_model).max_delay()

"""Result records for the estimators (reported objects, no logic).

Both records serialize to plain JSON (``to_dict``/``to_json`` with
``from_dict``/``from_json`` round trips), and the dict forms share their
field names with the ``hyper_sample``/``run_end`` trace events emitted
by :mod:`repro.obs` — a persisted result and a trace of the run that
produced it describe the same thing in the same vocabulary.

The wire format itself (field set, ``schema_version`` stamping, major
version rejection) is owned by :mod:`repro.schemas`; the methods here
delegate to it.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import EstimationError
from ..evt.confidence import MeanInterval
from ..evt.mle import WeibullFit

__all__ = ["AdaptiveDecision", "HyperSample", "EstimationResult"]


def __getattr__(name: str):
    # Deprecation shim: RESULT_SCHEMA moved to repro.schemas.
    if name == "RESULT_SCHEMA":
        from ..schemas import RESULT_SCHEMA

        warnings.warn(
            "repro.estimation.result.RESULT_SCHEMA moved to "
            "repro.schemas.RESULT_SCHEMA; the old import path will be "
            "removed in a future major release",
            DeprecationWarning,
            stacklevel=2,
        )
        return RESULT_SCHEMA
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class AdaptiveDecision:
    """What the adaptive controller chose, and why (a result record).

    Attached to :attr:`EstimationResult.decision` by runs with
    ``method="auto"`` (see :mod:`repro.estimation.adaptive`); plain data
    so it serializes with the result and survives checkpoints, the job
    service, and trace exports unchanged.

    Attributes
    ----------
    chosen_n, chosen_m:
        The block size and blocks-per-hyper-sample the production run
        used (the paper fixes 30 and 10; the pilot may not).
    family:
        Selected estimator family: ``"weibull"`` (block-maxima MLE) or
        ``"pot"`` (peaks-over-threshold/GPD).
    cv_score_weibull, cv_score_pot:
        Cross-validation scores (mean relative prediction error of
        held-out pilot block maxima; lower is better).
    pilot_units:
        Vector pairs the pilot + cross-validation phases simulated
        (already included in :attr:`EstimationResult.units_used`).
    candidate_ns:
        Block sizes the pilot measured.
    pilot_fallback_rate:
        Fraction of pilot hyper-samples at ``chosen_n`` whose Weibull
        fit fell back to the sample maximum (drives the m policy).
    """

    chosen_n: int
    chosen_m: int
    family: str
    cv_score_weibull: float
    cv_score_pot: float
    pilot_units: int
    candidate_ns: List[int] = field(default_factory=list)
    pilot_fallback_rate: float = 0.0

    def to_dict(self) -> dict:
        """Versioned JSON-able form (see :mod:`repro.schemas`)."""
        from ..schemas import dump_adaptive_decision

        return dump_adaptive_decision(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AdaptiveDecision":
        from ..schemas import load_adaptive_decision

        return load_adaptive_decision(data)


@dataclass(frozen=True)
class HyperSample:
    """One hyper-sample (paper Figure 3): m block maxima -> one estimate.

    Attributes
    ----------
    index:
        1-based position in the iteration.
    maxima:
        The m block-maxima values the fit consumed.
    fit:
        The generalized-Weibull MLE fit, or ``None`` when the sample was
        degenerate (all maxima equal) and the plain maximum was used.
    estimate:
        The hyper-sample's maximum-power estimate ``P̂_i,MAX`` — μ̂ for
        infinite populations, the (1 − 1/|V|) Weibull quantile for
        finite ones, or the sample maximum in the degenerate case.
    units_used:
        Vector pairs simulated for this hyper-sample (n · m).
    fallback_reason:
        Why the fit fell back to the plain maximum (the ``FitError``
        message), or ``None`` when the fit succeeded.
    """

    index: int
    maxima: np.ndarray
    fit: Optional[WeibullFit]
    estimate: float
    units_used: int
    fallback_reason: Optional[str] = None

    @property
    def degenerate(self) -> bool:
        return self.fit is None

    def to_dict(self) -> dict:
        """Versioned JSON-able form (see :mod:`repro.schemas`)."""
        from ..schemas import dump_hyper_sample

        return dump_hyper_sample(self)

    @classmethod
    def from_dict(cls, data: dict) -> "HyperSample":
        from ..schemas import load_hyper_sample

        return load_hyper_sample(data)


@dataclass
class EstimationResult:
    """Outcome of the iterative maximum-power estimation (Figure 4).

    Attributes
    ----------
    estimate:
        ``P̄_MAX`` — the mean of the hyper-sample estimates.
    interval:
        The Student-t confidence interval at the requested level
        (``None`` only if the loop stopped before two hyper-samples,
        which cannot happen with default settings).
    converged:
        Whether the relative half-width met the error bound before the
        hyper-sample budget ran out.
    error_bound, confidence:
        The requested ε and l.
    hyper_samples:
        Full per-iteration history.
    units_used:
        Total simulated vector pairs (the paper's "# of units" columns).
    population_name, population_size:
        Provenance (size ``None`` for infinite populations).
    ci_trajectory:
        Relative CI half-width after each hyper-sample from
        ``min_hyper_samples`` on — the convergence trajectory the
        iterative procedure walked (one entry per evaluated interval).
    method:
        How the estimator was selected: ``"fixed"`` (the paper's
        block-maxima estimator with explicit n/m), ``"pot"``
        (peaks-over-threshold), or ``"auto"`` (the adaptive controller).
    decision:
        The adaptive controller's choices (``method="auto"`` only).
    """

    estimate: float
    interval: Optional[MeanInterval]
    converged: bool
    error_bound: float
    confidence: float
    hyper_samples: List[HyperSample] = field(default_factory=list)
    units_used: int = 0
    population_name: str = ""
    population_size: Optional[int] = None
    ci_trajectory: List[float] = field(default_factory=list)
    method: str = "fixed"
    decision: Optional[AdaptiveDecision] = None

    @property
    def k(self) -> int:
        """Number of hyper-samples consumed."""
        return len(self.hyper_samples)

    @property
    def rel_half_width(self) -> float:
        if self.interval is None:
            return float("inf")
        return self.interval.rel_half_width

    def relative_error(self, actual_max: float) -> float:
        """Signed relative error vs. a known true maximum.

        Raises :class:`~repro.errors.EstimationError` when
        ``actual_max`` is zero, consistently with the SRS and
        high-quantile baselines (a degenerate all-zero-power population
        has no meaningful relative error).
        """
        if actual_max == 0:
            raise EstimationError(
                "relative error is undefined against a zero actual maximum "
                "(degenerate all-zero-power population)"
            )
        return (self.estimate - actual_max) / actual_max

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "converged" if self.converged else "NOT converged"
        ci = (
            f" CI=[{self.interval.low:.4g}, {self.interval.high:.4g}]"
            if self.interval
            else ""
        )
        return (
            f"{self.population_name}: P_max≈{self.estimate:.4g} W{ci} "
            f"({status}, k={self.k}, units={self.units_used}, "
            f"ε={self.error_bound:.0%} @ l={self.confidence:.0%})"
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned JSON-able dump including every hyper-sample fit."""
        from ..schemas import dump_estimation_result

        return dump_estimation_result(self)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "EstimationResult":
        from ..schemas import load_estimation_result

        return load_estimation_result(data)

    @classmethod
    def from_json(cls, text: str) -> "EstimationResult":
        return cls.from_dict(json.loads(text))

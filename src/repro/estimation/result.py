"""Result records for the estimators (reported objects, no logic)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..evt.confidence import MeanInterval
from ..evt.mle import WeibullFit

__all__ = ["HyperSample", "EstimationResult"]


@dataclass(frozen=True)
class HyperSample:
    """One hyper-sample (paper Figure 3): m block maxima -> one estimate.

    Attributes
    ----------
    index:
        1-based position in the iteration.
    maxima:
        The m block-maxima values the fit consumed.
    fit:
        The generalized-Weibull MLE fit, or ``None`` when the sample was
        degenerate (all maxima equal) and the plain maximum was used.
    estimate:
        The hyper-sample's maximum-power estimate ``P̂_i,MAX`` — μ̂ for
        infinite populations, the (1 − 1/|V|) Weibull quantile for
        finite ones, or the sample maximum in the degenerate case.
    units_used:
        Vector pairs simulated for this hyper-sample (n · m).
    """

    index: int
    maxima: np.ndarray
    fit: Optional[WeibullFit]
    estimate: float
    units_used: int

    @property
    def degenerate(self) -> bool:
        return self.fit is None


@dataclass
class EstimationResult:
    """Outcome of the iterative maximum-power estimation (Figure 4).

    Attributes
    ----------
    estimate:
        ``P̄_MAX`` — the mean of the hyper-sample estimates.
    interval:
        The Student-t confidence interval at the requested level
        (``None`` only if the loop stopped before two hyper-samples,
        which cannot happen with default settings).
    converged:
        Whether the relative half-width met the error bound before the
        hyper-sample budget ran out.
    error_bound, confidence:
        The requested ε and l.
    hyper_samples:
        Full per-iteration history.
    units_used:
        Total simulated vector pairs (the paper's "# of units" columns).
    population_name, population_size:
        Provenance (size ``None`` for infinite populations).
    """

    estimate: float
    interval: Optional[MeanInterval]
    converged: bool
    error_bound: float
    confidence: float
    hyper_samples: List[HyperSample] = field(default_factory=list)
    units_used: int = 0
    population_name: str = ""
    population_size: Optional[int] = None

    @property
    def k(self) -> int:
        """Number of hyper-samples consumed."""
        return len(self.hyper_samples)

    @property
    def rel_half_width(self) -> float:
        if self.interval is None:
            return float("inf")
        return self.interval.rel_half_width

    def relative_error(self, actual_max: float) -> float:
        """Signed relative error vs. a known true maximum."""
        return (self.estimate - actual_max) / actual_max

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "converged" if self.converged else "NOT converged"
        ci = (
            f" CI=[{self.interval.low:.4g}, {self.interval.high:.4g}]"
            if self.interval
            else ""
        )
        return (
            f"{self.population_name}: P_max≈{self.estimate:.4g} W{ci} "
            f"({status}, k={self.k}, units={self.units_used}, "
            f"ε={self.error_bound:.0%} @ l={self.confidence:.0%})"
        )

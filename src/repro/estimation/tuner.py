"""Pilot-based tuning of the estimator's block size n.

The paper fixes n = 30 from its Figure-1 study on ISCAS85/PowerMill
populations, but the cost-optimal block size depends on the population's
tail shape: the expected total cost of a run is roughly

    units(n) ≈ n · m · k(n),   k(n) ≈ (t_l · s_rel(n) / ε)²

where ``s_rel(n)`` is the relative std of the hyper-sample estimate at
block size n — measurable with a small pilot.  :class:`BlockSizeTuner`
runs that pilot over candidate block sizes and recommends the n with the
lowest predicted cost for the user's (ε, l) target, reusing every pilot
sample it draws in the prediction.

This is an extension beyond the paper (which had no tuning step); the
default recommendation reduces to the paper's n = 30 whenever the
pilot shows the flat-cost plateau the paper's populations exhibit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..evt.confidence import t_two_sided_quantile
from ..vectors.generators import RngLike, as_rng
from ..vectors.population import PowerPopulation
from .mc_estimator import MaxPowerEstimator

__all__ = ["PilotResult", "TunerReport", "BlockSizeTuner"]


@dataclass(frozen=True)
class PilotResult:
    """Measured hyper-sample statistics at one block size."""

    n: int
    rel_std: float
    rel_bias_proxy: float  # spread-normalized center drift across pilot
    units_per_hyper_sample: int
    predicted_k: float
    predicted_units: float
    #: Fraction of pilot hyper-samples whose Weibull MLE fell back to
    #: the plain sample maximum (degenerate maxima / fit failure) — the
    #: adaptive controller's signal that m needs growing at this n.
    fallback_rate: float = 0.0


@dataclass
class TunerReport:
    """Outcome of a tuning pass."""

    recommended_n: int
    pilots: List[PilotResult] = field(default_factory=list)
    pilot_units_used: int = 0

    def render(self) -> str:
        lines = [
            f"{'n':>5} {'rel std':>9} {'pred. k':>9} {'pred. units':>12}"
        ]
        for p in self.pilots:
            marker = " <- recommended" if p.n == self.recommended_n else ""
            lines.append(
                f"{p.n:>5} {p.rel_std:>9.3f} {p.predicted_k:>9.1f} "
                f"{p.predicted_units:>12.0f}{marker}"
            )
        lines.append(f"pilot cost: {self.pilot_units_used} units")
        return "\n".join(lines)


class BlockSizeTuner:
    """Choose the block size n minimizing predicted estimation cost.

    Parameters
    ----------
    population:
        Power population the production run will sample.
    candidates:
        Block sizes to pilot (paper default 30 always included).
    pilot_hyper_samples:
        Hyper-samples drawn per candidate (small — this is a pilot).
    m, error, confidence:
        The production-run settings the prediction targets.
    """

    def __init__(
        self,
        population: PowerPopulation,
        candidates: Sequence[int] = (10, 30, 60, 100),
        pilot_hyper_samples: int = 12,
        m: int = 10,
        error: float = 0.05,
        confidence: float = 0.90,
    ):
        if pilot_hyper_samples < 4:
            raise ConfigError("pilot_hyper_samples must be >= 4")
        if not candidates:
            raise ConfigError("need at least one candidate block size")
        if any(n < 2 for n in candidates):
            raise ConfigError("block sizes must be >= 2")
        self.population = population
        self.candidates = sorted(set(candidates) | {30})
        self.pilot_hyper_samples = pilot_hyper_samples
        self.m = m
        self.error = error
        self.confidence = confidence

    # ------------------------------------------------------------------
    def _pilot_one(
        self, n: int, rng: np.random.Generator
    ) -> Tuple[PilotResult, int]:
        estimator = MaxPowerEstimator(
            self.population,
            n=n,
            m=self.m,
            error=self.error,
            confidence=self.confidence,
        )
        pilots = [
            estimator.hyper_sample(i, rng)
            for i in range(self.pilot_hyper_samples)
        ]
        estimates = np.array([hs.estimate for hs in pilots])
        fallback_rate = sum(
            hs.fit is None for hs in pilots
        ) / self.pilot_hyper_samples
        units = self.pilot_hyper_samples * n * self.m
        center = float(np.median(estimates))
        if center <= 0:
            raise ConfigError("population yields non-positive estimates")
        rel_std = float(estimates.std(ddof=1)) / center
        rel_bias_proxy = abs(float(estimates.mean()) - center) / center
        # Predicted k from the stopping rule t·s/(√k·P̄) <= ε, using the
        # large-k t quantile (the prediction is advisory, not exact).
        t = t_two_sided_quantile(self.confidence, 30)
        k = max(2.0, (t * rel_std / self.error) ** 2)
        return (
            PilotResult(
                n=n,
                rel_std=rel_std,
                rel_bias_proxy=rel_bias_proxy,
                units_per_hyper_sample=n * self.m,
                predicted_k=k,
                predicted_units=k * n * self.m,
                fallback_rate=fallback_rate,
            ),
            units,
        )

    def run(self, rng: RngLike = None) -> TunerReport:
        """Pilot every candidate and recommend the cheapest block size."""
        gen = as_rng(rng)
        report = TunerReport(recommended_n=30)
        best: Optional[PilotResult] = None
        for n in self.candidates:
            pilot, units = self._pilot_one(n, gen)
            report.pilots.append(pilot)
            report.pilot_units_used += units
            if best is None or pilot.predicted_units < best.predicted_units:
                best = pilot
        assert best is not None
        report.recommended_n = best.n
        return report

    # ------------------------------------------------------------------
    def tuned_estimator(self, rng: RngLike = None) -> MaxPowerEstimator:
        """Convenience: run the pilot and build the tuned estimator."""
        report = self.run(rng)
        return MaxPowerEstimator(
            self.population,
            n=report.recommended_n,
            m=self.m,
            error=self.error,
            confidence=self.confidence,
        )

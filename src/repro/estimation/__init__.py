"""Estimators: the paper's method, its baselines, and extensions."""

from .adaptive import AdaptiveMaxPowerEstimator, build_estimator
from .average_power import AveragePowerEstimator, AveragePowerResult
from .bounds import UncertaintyBound
from .delay_estimator import MaxDelayEstimator
from .finite_population import finite_population_estimate, finite_population_quantile
from .genetic import GeneticMaxPowerSearch, GeneticSearchResult
from .gradient import ContinuousMaxPowerSearch, GradientSearchResult
from .mc_estimator import MaxPowerEstimator
from .parallel import hyper_sample_many, run_many, spawn_run_seeds
from .pot import PeaksOverThresholdEstimator
from .tuner import BlockSizeTuner, TunerReport
from .quantile_est import HighQuantileEstimator, QuantileEstimate
from .result import AdaptiveDecision, EstimationResult, HyperSample
from .srs import SimpleRandomSampling, SRSStudy, srs_required_units

__all__ = [
    "MaxPowerEstimator",
    "AdaptiveMaxPowerEstimator",
    "AdaptiveDecision",
    "build_estimator",
    "run_many",
    "hyper_sample_many",
    "spawn_run_seeds",
    "PeaksOverThresholdEstimator",
    "BlockSizeTuner",
    "TunerReport",
    "AveragePowerEstimator",
    "AveragePowerResult",
    "EstimationResult",
    "HyperSample",
    "finite_population_estimate",
    "finite_population_quantile",
    "SimpleRandomSampling",
    "SRSStudy",
    "srs_required_units",
    "HighQuantileEstimator",
    "QuantileEstimate",
    "GeneticMaxPowerSearch",
    "GeneticSearchResult",
    "ContinuousMaxPowerSearch",
    "GradientSearchResult",
    "UncertaintyBound",
    "MaxDelayEstimator",
]

"""Finite-population correction (paper §3.4).

The MLE location μ̂ estimates the right endpoint of the *infinite*
population the Weibull limit describes; a finite pool of |V| units has
its maximum at roughly the (1 − 1/|V|) quantile of that distribution,
so using μ̂ directly overestimates.  The corrected estimator is the
(1 − 1/|V|) quantile of the fitted Weibull — justified by the
tail-equivalence property between F and the limit law of its maxima.
"""

from __future__ import annotations

from typing import Optional

from ..errors import EstimationError
from ..evt.mle import WeibullFit

__all__ = ["finite_population_quantile", "finite_population_estimate"]


def finite_population_quantile(population_size: int) -> float:
    """The quantile level targeted for a pool of ``population_size`` units.

    Assumes a single unit attains the maximum (the paper's assumption),
    i.e. level ``1 − 1/|V|``.
    """
    if population_size < 2:
        raise EstimationError("population_size must be >= 2")
    return 1.0 - 1.0 / population_size


def finite_population_estimate(
    fit: WeibullFit, population_size: Optional[int]
) -> float:
    """Maximum-power estimate honouring the population size.

    ``None`` (infinite population) returns μ̂ itself; a finite size
    returns the (1 − 1/|V|) quantile of the fitted distribution.
    """
    if population_size is None:
        return fit.mu
    return fit.quantile(finite_population_quantile(population_size))

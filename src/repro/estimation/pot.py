"""Peaks-over-threshold maximum power estimation (modern-EVT extension).

The paper forms *block maxima* and fits their Weibull limit.  The other
classical route to the same endpoint is **POT**: take all sample values
exceeding a high threshold ``u``, fit the generalized Pareto law to the
exceedances (Pickands–Balkema–de Haan), and read the endpoint
``u + σ̂/(−ξ̂)`` when the fitted tail index is negative.  POT uses every
extreme observation instead of one per block, which usually buys
efficiency — the ablation benchmark quantifies this against the paper's
estimator at equal unit budgets.

The iteration mirrors the paper's Figure-4 loop: each *round* draws a
fresh batch, produces one endpoint estimate, and rounds accumulate until
the Student-t interval of their mean meets the error/confidence target.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigError, FitError
from ..evt.confidence import t_mean_interval
from ..evt.gpd import fit_gpd_mle
from ..vectors.generators import RngLike, as_rng
from ..vectors.population import PowerPopulation
from .finite_population import finite_population_quantile
from .result import EstimationResult, HyperSample

__all__ = ["PeaksOverThresholdEstimator"]


class PeaksOverThresholdEstimator:
    """GPD/POT endpoint estimator with the paper-style stopping rule.

    Parameters
    ----------
    population:
        Power population to sample.
    batch_size:
        Units drawn per round (plays the role of the paper's n·m = 300).
    threshold_quantile:
        Exceedance threshold as an empirical quantile of each batch
        (0.9 keeps the top 10 %).
    error, confidence:
        Convergence target, as in the paper.
    min_rounds, max_rounds:
        Iteration bounds.
    finite_correction:
        Report the (1 − 1/|V|) quantile instead of the raw endpoint for
        finite populations (as §3.4 does for the Weibull route).
    """

    def __init__(
        self,
        population: PowerPopulation,
        batch_size: int = 300,
        threshold_quantile: float = 0.90,
        error: float = 0.05,
        confidence: float = 0.90,
        min_rounds: int = 2,
        max_rounds: int = 200,
        finite_correction: Optional[bool] = None,
    ):
        if batch_size < 20:
            raise ConfigError("batch_size must be >= 20")
        if not 0.5 <= threshold_quantile < 1.0:
            raise ConfigError("threshold_quantile must be in [0.5, 1)")
        if not 0.0 < error < 1.0:
            raise ConfigError("error must be in (0, 1)")
        if not 0.0 < confidence < 1.0:
            raise ConfigError("confidence must be in (0, 1)")
        if min_rounds < 2:
            raise ConfigError("min_rounds must be >= 2")
        if max_rounds < min_rounds:
            raise ConfigError("max_rounds < min_rounds")
        self.population = population
        self.batch_size = batch_size
        self.threshold_quantile = threshold_quantile
        self.error = error
        self.confidence = confidence
        self.min_rounds = min_rounds
        self.max_rounds = max_rounds
        if finite_correction is None:
            finite_correction = population.size is not None
        if finite_correction and population.size is None:
            raise ConfigError(
                "finite_correction requires a population with known size"
            )
        self.finite_correction = finite_correction

    # ------------------------------------------------------------------
    def round_estimate(self, index: int, rng: RngLike = None) -> HyperSample:
        """One POT round: batch -> exceedances -> GPD -> endpoint."""
        gen = as_rng(rng)
        batch = self.population.sample_powers(self.batch_size, gen)
        threshold = float(np.quantile(batch, self.threshold_quantile))
        exceedances = batch[batch > threshold] - threshold
        best_seen = float(batch.max())
        try:
            gpd = fit_gpd_mle(exceedances)
        except FitError:
            gpd = None
        if gpd is None or gpd.xi >= 0:
            # Heavy/unbounded tail verdict in this batch: the endpoint
            # is not identified; fall back to the batch maximum.
            estimate = best_seen
            fit = None
        else:
            endpoint = threshold + gpd.right_endpoint()
            if self.finite_correction and self.population.size:
                q = finite_population_quantile(self.population.size)
                # Tail quantile of the fitted exceedance law at the
                # population's effective level.
                tail_frac = 1.0 - self.threshold_quantile
                # P(X > x) = tail_frac * sf_gpd(x - u); solve for the
                # (1 - 1/|V|) quantile of X.
                target_sf = (1.0 - q) / tail_frac
                if target_sf < 1.0:
                    estimate = threshold + float(
                        gpd.ppf(1.0 - target_sf)
                    )
                else:
                    estimate = threshold
                estimate = min(estimate, endpoint)
            else:
                estimate = endpoint
            estimate = max(estimate, best_seen)
            fit = None  # GPD fit is not a WeibullFit; keep record slim
        return HyperSample(
            index=index,
            maxima=exceedances + threshold,
            fit=fit,
            estimate=float(estimate),
            units_used=self.batch_size,
        )

    # ------------------------------------------------------------------
    def run(self, rng: RngLike = None) -> EstimationResult:
        """Iterate rounds until the t-interval meets the target."""
        gen = as_rng(rng)
        result = EstimationResult(
            estimate=float("nan"),
            interval=None,
            converged=False,
            error_bound=self.error,
            confidence=self.confidence,
            population_name=f"{self.population.name} [POT]",
            population_size=self.population.size,
        )
        estimates = []
        for k in range(1, self.max_rounds + 1):
            hs = self.round_estimate(k, gen)
            result.hyper_samples.append(hs)
            result.units_used += hs.units_used
            estimates.append(hs.estimate)
            if k < self.min_rounds:
                continue
            interval = t_mean_interval(estimates, self.confidence)
            result.interval = interval
            result.estimate = interval.mean
            if interval.rel_half_width <= self.error:
                result.converged = True
                return result
        result.estimate = float(np.mean(estimates))
        return result

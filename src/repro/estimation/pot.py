"""Peaks-over-threshold maximum power estimation (modern-EVT extension).

The paper forms *block maxima* and fits their Weibull limit.  The other
classical route to the same endpoint is **POT**: take all sample values
exceeding a high threshold ``u``, fit the generalized Pareto law to the
exceedances (Pickands–Balkema–de Haan), and read the endpoint
``u + σ̂/(−ξ̂)`` when the fitted tail index is negative.  POT uses every
extreme observation instead of one per block, which usually buys
efficiency — the ablation benchmark quantifies this against the paper's
estimator at equal unit budgets.

The iteration mirrors the paper's Figure-4 loop: each *round* draws a
fresh batch, produces one endpoint estimate, and rounds accumulate until
the Student-t interval of their mean meets the error/confidence target.

The estimator follows the same config pattern as
:class:`~repro.estimation.mc_estimator.MaxPowerEstimator`: build it
from an :class:`~repro.api.EstimatorConfig` with :meth:`from_config`
(``method="pot"``), or directly with the iteration bounds named
``min_hyper_samples``/``max_hyper_samples``.  The pre-redesign
``min_rounds``/``max_rounds`` keyword names still work behind a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..errors import ConfigError, FitError
from ..evt.confidence import t_mean_interval
from ..evt.gpd import fit_gpd
from ..vectors.generators import RngLike, as_rng
from ..vectors.population import PowerPopulation
from .finite_population import finite_population_quantile
from .result import EstimationResult, HyperSample

__all__ = ["DEFAULT_POT_THRESHOLD_QUANTILE", "PeaksOverThresholdEstimator"]

#: Default exceedance threshold (keep the top 10 % of each batch) —
#: what ``method="auto"`` uses when the config names no POT policy.
DEFAULT_POT_THRESHOLD_QUANTILE = 0.90

#: Sentinel distinguishing "not passed" from an explicit value, so the
#: deprecated alias kwargs can be detected without shadowing real ones.
_UNSET = object()


class PeaksOverThresholdEstimator:
    """GPD/POT endpoint estimator with the paper-style stopping rule.

    Parameters
    ----------
    population:
        Power population to sample.
    batch_size:
        Units drawn per round (plays the role of the paper's n·m = 300).
    threshold_quantile:
        Exceedance threshold as an empirical quantile of each batch
        (0.9 keeps the top 10 %).
    error, confidence:
        Convergence target, as in the paper.
    min_hyper_samples, max_hyper_samples:
        Iteration bounds (a POT round is this estimator's
        hyper-sample); formerly ``min_rounds``/``max_rounds``, which
        still work behind a :class:`DeprecationWarning`.
    finite_correction:
        Report the (1 − 1/|V|) quantile instead of the raw endpoint for
        finite populations (as §3.4 does for the Weibull route).
    """

    def __init__(
        self,
        population: PowerPopulation,
        batch_size: int = 300,
        threshold_quantile: float = DEFAULT_POT_THRESHOLD_QUANTILE,
        error: float = 0.05,
        confidence: float = 0.90,
        min_hyper_samples: int = 2,
        max_hyper_samples: int = 200,
        finite_correction: Optional[bool] = None,
        min_rounds=_UNSET,
        max_rounds=_UNSET,
    ):
        if min_rounds is not _UNSET or max_rounds is not _UNSET:
            warnings.warn(
                "PeaksOverThresholdEstimator(min_rounds=, max_rounds=) "
                "is deprecated; use min_hyper_samples=/max_hyper_samples= "
                "(the EstimatorConfig field names)",
                DeprecationWarning,
                stacklevel=2,
            )
            if min_rounds is not _UNSET:
                if min_hyper_samples != 2:
                    raise ConfigError(
                        "pass min_hyper_samples or the deprecated "
                        "min_rounds, not both"
                    )
                min_hyper_samples = min_rounds
            if max_rounds is not _UNSET:
                if max_hyper_samples != 200:
                    raise ConfigError(
                        "pass max_hyper_samples or the deprecated "
                        "max_rounds, not both"
                    )
                max_hyper_samples = max_rounds
        if batch_size < 20:
            raise ConfigError("batch_size must be >= 20")
        if not 0.5 <= threshold_quantile < 1.0:
            raise ConfigError("threshold_quantile must be in [0.5, 1)")
        if not 0.0 < error < 1.0:
            raise ConfigError("error must be in (0, 1)")
        if not 0.0 < confidence < 1.0:
            raise ConfigError("confidence must be in (0, 1)")
        if min_hyper_samples < 2:
            raise ConfigError("min_rounds must be >= 2")
        if max_hyper_samples < min_hyper_samples:
            raise ConfigError("max_rounds < min_rounds")
        self.population = population
        self.batch_size = batch_size
        self.threshold_quantile = threshold_quantile
        self.error = error
        self.confidence = confidence
        self.min_hyper_samples = min_hyper_samples
        self.max_hyper_samples = max_hyper_samples
        if finite_correction is None:
            finite_correction = population.size is not None
        if finite_correction and population.size is None:
            raise ConfigError(
                "finite_correction requires a population with known size"
            )
        self.finite_correction = finite_correction

    @property
    def min_rounds(self) -> int:
        """Deprecated alias of :attr:`min_hyper_samples`."""
        warnings.warn(
            "PeaksOverThresholdEstimator.min_rounds is deprecated; use "
            "min_hyper_samples",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.min_hyper_samples

    @property
    def max_rounds(self) -> int:
        """Deprecated alias of :attr:`max_hyper_samples`."""
        warnings.warn(
            "PeaksOverThresholdEstimator.max_rounds is deprecated; use "
            "max_hyper_samples",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.max_hyper_samples

    @classmethod
    def from_config(
        cls, population: PowerPopulation, config
    ) -> "PeaksOverThresholdEstimator":
        """Build a POT estimator from a :class:`repro.api.EstimatorConfig`.

        Duck-typed like :meth:`MaxPowerEstimator.from_config` so the
        estimation layer never imports the API layer.  ``batch_size``
        defaults to the config's n·m (one Weibull hyper-sample's worth
        of units per round, so the two families compare at equal
        budget); the threshold comes from ``pot_threshold_quantile``
        (falling back to :data:`DEFAULT_POT_THRESHOLD_QUANTILE`).
        """
        batch = config.pot_batch_size
        if batch is None:
            batch = config.n * config.m
        threshold = config.pot_threshold_quantile
        if threshold is None:
            threshold = DEFAULT_POT_THRESHOLD_QUANTILE
        return cls(
            population,
            batch_size=batch,
            threshold_quantile=threshold,
            error=config.error,
            confidence=config.confidence,
            min_hyper_samples=config.min_hyper_samples,
            max_hyper_samples=config.max_hyper_samples,
            finite_correction=config.finite_correction,
        )

    # ------------------------------------------------------------------
    def round_estimate(self, index: int, rng: RngLike = None) -> HyperSample:
        """One POT round: batch -> exceedances -> GPD -> endpoint."""
        gen = as_rng(rng)
        batch = self.population.sample_powers(self.batch_size, gen)
        threshold = float(np.quantile(batch, self.threshold_quantile))
        exceedances = batch[batch > threshold] - threshold
        best_seen = float(batch.max())
        try:
            gpd = fit_gpd(exceedances)
        except FitError:
            gpd = None
        if gpd is None or gpd.xi >= 0:
            # Heavy/unbounded tail verdict in this batch: the endpoint
            # is not identified; fall back to the batch maximum.
            estimate = best_seen
            fit = None
        else:
            endpoint = threshold + gpd.right_endpoint()
            if self.finite_correction and self.population.size:
                q = finite_population_quantile(self.population.size)
                # Tail quantile of the fitted exceedance law at the
                # population's effective level.
                tail_frac = 1.0 - self.threshold_quantile
                # P(X > x) = tail_frac * sf_gpd(x - u); solve for the
                # (1 - 1/|V|) quantile of X.
                target_sf = (1.0 - q) / tail_frac
                if target_sf < 1.0:
                    estimate = threshold + float(
                        gpd.ppf(1.0 - target_sf)
                    )
                else:
                    estimate = threshold
                estimate = min(estimate, endpoint)
            else:
                estimate = endpoint
            estimate = max(estimate, best_seen)
            fit = None  # GPD fit is not a WeibullFit; keep record slim
        return HyperSample(
            index=index,
            maxima=exceedances + threshold,
            fit=fit,
            estimate=float(estimate),
            units_used=self.batch_size,
        )

    # ------------------------------------------------------------------
    def run(self, rng: RngLike = None, progress=None) -> EstimationResult:
        """Iterate rounds until the t-interval meets the target.

        ``progress`` follows the :meth:`MaxPowerEstimator.run` contract:
        called as ``progress(hs, interval, cumulative_units)`` after
        every round, may abort the run by raising, and never touches the
        RNG stream — a run's result is bit-identical with or without it.
        """
        gen = as_rng(rng)
        result = EstimationResult(
            estimate=float("nan"),
            interval=None,
            converged=False,
            error_bound=self.error,
            confidence=self.confidence,
            population_name=f"{self.population.name} [POT]",
            population_size=self.population.size,
            method="pot",
        )
        estimates = []
        for k in range(1, self.max_hyper_samples + 1):
            hs = self.round_estimate(k, gen)
            result.hyper_samples.append(hs)
            result.units_used += hs.units_used
            estimates.append(hs.estimate)
            interval = None
            if k >= self.min_hyper_samples:
                interval = t_mean_interval(estimates, self.confidence)
                result.interval = interval
                result.estimate = interval.mean
                result.ci_trajectory.append(interval.rel_half_width)
            if progress is not None:
                progress(hs, interval, result.units_used)
            if interval is not None and interval.rel_half_width <= self.error:
                result.converged = True
                return result
        result.estimate = float(np.mean(estimates))
        return result
